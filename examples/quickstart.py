#!/usr/bin/env python3
"""Quickstart: compile a parallel Slang program and simulate it under
cycle-by-cycle and bounded-slack synchronization.

Run:  python examples/quickstart.py
"""

from repro.core import run_simulation
from repro.lang import compile_source

# A 4-thread program using the paper's Table 1 API: spawn/join, a lock
# protecting a shared counter, and a barrier.
SOURCE = """
int lk;
int bar;
int histogram[4];
int total;

void worker(int tid) {
    // Each thread tallies its own bucket, then contributes to a shared
    // total under a lock.
    int mine = 0;
    for (int i = 0; i < 25; i = i + 1) {
        mine = mine + (tid + 1);
    }
    histogram[tid] = mine;
    lock(&lk);
    total = total + mine;
    unlock(&lk);
    barrier(&bar);
}

int main() {
    int tids[4];
    init_lock(&lk);
    init_barrier(&bar, 4);
    for (int t = 1; t < 4; t = t + 1) tids[t] = spawn(worker, t);
    worker(0);
    for (int t = 1; t < 4; t = t + 1) join(tids[t]);
    print_int(total);
    for (int i = 0; i < 4; i = i + 1) print_int(histogram[i]);
    return 0;
}
"""


def main() -> None:
    compiled = compile_source(SOURCE, name="quickstart")
    print(f"compiled: {compiled.program.size_insns} SPISA instructions\n")

    # The accuracy gold standard: cycle-by-cycle (0 slack).
    gold = run_simulation(compiled.program, scheme="cc", host_cores=8)
    print("cycle-by-cycle :", gold.summary())
    print("  program output:", gold.int_output())

    # Bounded slack: 9-cycle window (below the 10-cycle critical latency).
    fast = run_simulation(compiled.program, scheme="s9", host_cores=8)
    print("bounded slack 9:", fast.summary())
    print("  program output:", fast.int_output())

    assert fast.int_output() == gold.int_output(), "workload must execute correctly"
    print(f"\nsimulation speedup (s9 vs cc, same host): {gold.host_time / fast.host_time:.2f}x")
    print(f"timing error: {fast.error_vs(gold) * 100:.2f}%")


if __name__ == "__main__":
    main()
