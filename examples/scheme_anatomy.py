#!/usr/bin/env python3
"""Figure 2 live: watch the four synchronization disciplines pace a 4-core
simulation (cycle-by-cycle, quantum-3, bounded slack 2, unbounded).

Run:  python examples/scheme_anatomy.py
"""

from repro.experiments.figure2 import render_figure2, run_figure2


def main() -> None:
    traces = run_figure2(schemes=("cc", "q3", "s2", "s9", "su"))
    print(render_figure2(traces))
    print()
    print("Reading the tables: each row samples every thread's local time at")
    print("one instant of (modeled) host time.  Under cc the columns move in")
    print("lockstep; q3 lets them drift up to 3 cycles between barriers; s2")
    print("slides a 2-cycle window with no barriers at all; su never blocks")
    print("a thread — note how much earlier it finishes.")


if __name__ == "__main__":
    main()
