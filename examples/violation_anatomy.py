#!/usr/bin/env python3
"""The paper's violation taxonomy (§3.2, Figures 4-7), reproduced on the
actual substrate objects.

Run:  python examples/violation_anatomy.py
"""

from repro.mem.directory import Directory, ReqKind
from repro.mem.interconnect import Bus
from repro.violations.detect import ViolationCounters, WordOrderTracker


def figure4_bus() -> None:
    print("=== Figure 4: simulation-state violation (bus occupancy) ===")
    counters = ViolationCounters()
    bus = Bus(transfer_cycles=2, counters=counters)
    grant_p1 = bus.occupy(3)  # P1 requests at simulated clock 3 (processed first)
    grant_p2 = bus.occupy(2)  # P2's request from clock 2 arrives later
    print(f"P1 requested @3 -> granted @{grant_p1}")
    print(f"P2 requested @2 -> granted @{grant_p2}  (found the bus 'busy'")
    print("   because a request from its simulated future was served first)")
    print(f"simulation-state violations recorded: {counters.simulation_state}\n")


def figure6_directory() -> None:
    print("=== Figures 5-6: simulated-system-state violation (directory) ===")
    counters = ViolationCounters()
    directory = Directory(2, counters)
    addr = 0x500

    def show(label):
        bits, dirty = directory.presence_bits(addr)
        print(f"  {label}: presence bits={bits} dirty={dirty}")

    directory.handle(ReqKind.GETS, addr, core=1, ts=0)  # block clean in P2
    show("initial (P2 has the block)      ")
    # Slack order: P1's read (clock 3) is processed before P2's write (clock 2).
    directory.handle(ReqKind.GETS, addr, core=0, ts=3)
    show("after P1's read  (sim order)    ")
    directory.handle(ReqKind.UPGRADE, addr, core=1, ts=2)
    show("after P2's write (from the past)")
    print("  Cycle-by-cycle order (write first, then read) would end SHARED")
    print("  {P1,P2}+clean — here it ends EXCLUSIVE P2+dirty (Figure 6(c) vs (c')).")
    print(f"  system-state violations recorded: {counters.system_state}\n")


def figure7_word_race() -> None:
    print("=== Figure 7: workload-state violation + fast-forwarding ===")
    counters = ViolationCounters()
    tracker = WordOrderTracker(counters, fastforward=False)
    tracker.observe_load(0x200, core=0, ts=4)   # P1: Load R1, M at clock 4
    tracker.observe_store(0x200, core=1, ts=2)  # P2: Store R2, M at clock 2
    print(f"load@4 then store@2 (same word, other core):"
          f" workload violations = {counters.workload_state}")

    counters2 = ViolationCounters()
    tracker2 = WordOrderTracker(counters2, fastforward=True)
    tracker2.observe_load(0x200, core=0, ts=4)
    ff = tracker2.observe_store(0x200, core=1, ts=2)
    print(f"with compensation: the storing core fast-forwards {ff} cycles so")
    print("the store appears contemporaneous with the load (paper §3.2.3);")
    print(f"fastforwards recorded = {counters2.fastforwards}\n")


def isochrones_note() -> None:
    print("=== Figure 3: why state stays consistent anyway ===")
    print("All manager-side state advances in *simulation-time* order —")
    print("isochrones never cross — so occupancy variables and directory")
    print("entries remain internally consistent; only their mapping onto")
    print("simulated time is distorted.  That is why the benchmarks still")
    print("execute correctly under every scheme (asserted in the test suite).")


if __name__ == "__main__":
    figure4_bus()
    figure6_directory()
    figure7_word_race()
    isochrones_note()
