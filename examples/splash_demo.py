#!/usr/bin/env python3
"""Run a SPLASH-2-style benchmark under every slack scheme and compare
speed, accuracy and violations — a miniature of the paper's evaluation.

Run:  python examples/splash_demo.py [fft|lu|barnes|water] [tiny|small|paper]
"""

import sys

from repro.core import run_simulation
from repro.stats import Table
from repro.workloads import make_workload

SCHEMES = ["cc", "q10", "l10", "s9", "s9*", "s100", "su"]


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "fft"
    scale = sys.argv[2] if len(sys.argv) > 2 else "tiny"
    workload = make_workload(name, scale=scale)
    print(f"benchmark: {name} ({workload.input_set}), "
          f"{workload.program.size_insns} instructions of SPISA text\n")

    baseline = run_simulation(workload.program, scheme="cc", host_cores=1)
    gold = run_simulation(workload.program, scheme="cc", host_cores=8)

    table = Table(
        f"{name} on an 8-core target, 8 host cores (baseline: cc on 1 host core)",
        ["scheme", "speedup", "T_target (cyc)", "error", "violations", "correct"],
    )
    for scheme in SCHEMES:
        r = run_simulation(workload.program, scheme=scheme, host_cores=8)
        table.add_row(
            scheme,
            r.speedup_over(baseline),
            r.execution_cycles,
            f"{r.error_vs(gold) * 100:.2f}%",
            r.violations.total,
            "yes" if workload.verify(r.output) else "NO",
        )
    print(table.render())
    print("\nNote how conservative schemes (cc, q10, l10, s9*) report zero")
    print("order violations, while s9/s100/su trade violations for speed —")
    print("yet the program output stays correct in every row (paper §3.2.3).")


if __name__ == "__main__":
    main()
