#!/usr/bin/env python3
"""Run the same workload on the two engines:

* the deterministic sequential engine with the modeled virtual host (what
  all published numbers use), and
* the threaded engine — the paper's literal Pthreads structure on real
  Python threads.

CPython's GIL serialises the threaded engine, so its wall-clock time shows
no parallel speedup — exactly the reproduction gate documented in DESIGN.md
§2.  What the threaded run *does* prove is that the concurrent protocol
(queues, clocks, window sleeps, lock emulation) is correct: same output,
same invariants, no deadlock.

Run:  python examples/threaded_parity.py
"""

import time

from repro.core import run_simulation
from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.core.threaded import ThreadedEngine
from repro.workloads import make_workload


def main() -> None:
    workload = make_workload("lu", scale="tiny")
    target = TargetConfig()

    t0 = time.perf_counter()
    seq = run_simulation(workload.program, scheme="s9", host_cores=8, target=target)
    seq_wall = time.perf_counter() - t0
    print("sequential engine (virtual host):")
    print("  ", seq.summary())
    print(f"   wall-clock: {seq_wall:.2f}s, output correct: {workload.verify(seq.output)}")

    engine = ThreadedEngine(
        workload.program,
        target=target,
        host=HostConfig(num_cores=8),
        sim=SimConfig(scheme="s9", seed=1),
    )
    t0 = time.perf_counter()
    thr = engine.run(timeout=120.0)
    thr_wall = time.perf_counter() - t0
    print("\nthreaded engine (real Python threads, 9 of them):")
    print(f"   T_target={thr.execution_cycles} cyc, instr={thr.instructions}, "
          f"wall-clock {thr_wall:.2f}s (GIL-bound; no parallel speedup expected)")
    print(f"   output correct: {workload.verify(thr.output)}")

    assert workload.verify(seq.output) and workload.verify(thr.output)
    print("\nBoth engines execute the workload correctly; the virtual host is")
    print("what turns this structure into the paper's speedup numbers.")


if __name__ == "__main__":
    main()
