#!/usr/bin/env python3
"""Explore the slack design space: the speed/accuracy trade-off curve the
paper's §6 argues for ("Computer architects are allowed to balance the need
for simulation efficiency and accuracy").

Run:  python examples/design_space.py
"""

from repro.experiments.ablations import run_critical_latency_sweep, run_slack_sweep
from repro.experiments.common import Runner
from repro.stats import Table


def ascii_bar(value: float, scale: float, width: int = 40) -> str:
    n = min(width, int(round(value / scale * width)))
    return "#" * n


def main() -> None:
    runner = Runner(scale="tiny", seed=1)
    points = run_slack_sweep("fft", slacks=(1, 2, 4, 9, 25, 100, 400), runner=runner)
    max_speed = max(p.speedup for p in points)

    table = Table("A1: bounded-slack design space (fft, 8 host cores)",
                  ["slack", "speedup", "error", "violations", "speed bar"])
    for p in points:
        table.add_row(p.label, p.speedup, f"{p.error * 100:.2f}%", p.violations,
                      ascii_bar(p.speedup, max_speed))
    print(table.render())

    print()
    sweep = run_critical_latency_sweep("fft", slacks=(2, 5, 9, 15, 30, 60), runner=runner)
    table = Table("A2: conservative (oldest-first) slack vs the critical latency (10)",
                  ["slack*", "speedup", "error", "violations"])
    for p in sweep:
        table.add_row(p.label, p.speedup, f"{p.error * 100:.2f}%", p.violations)
    print(table.render())
    print("\nBelow the critical latency the oldest-first discipline is")
    print("violation-free (paper §3.1); above it, violations appear even")
    print("though requests are processed strictly in timestamp order.")


if __name__ == "__main__":
    main()
