"""CLI tests (``slacksim`` / ``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


def test_schemes_lists_all(capsys):
    assert main(["schemes"]) == 0
    out = capsys.readouterr().out
    for name in ("cc", "q10", "l10", "s9", "s9*", "s100", "su"):
        assert name in out


def test_run_verifies_workload(capsys):
    assert main(["run", "--workload", "lu", "--scheme", "s9", "--scale", "tiny",
                 "--host-cores", "4"]) == 0
    out = capsys.readouterr().out
    assert "verified" in out and "[s9" in out


def test_run_verbose_shows_cores(capsys):
    assert main(["run", "--workload", "water", "--scale", "tiny", "-v",
                 "--host-cores", "2"]) == 0
    out = capsys.readouterr().out
    assert "core 0:" in out and "L1 misses" in out


def test_run_ooo_core_model(capsys):
    assert main(["run", "--workload", "fft", "--scale", "tiny",
                 "--core-model", "ooo", "--host-cores", "2"]) == 0
    assert "verified" in capsys.readouterr().out


def test_compile_and_functional_run(tmp_path, capsys):
    src = tmp_path / "p.sl"
    src.write_text("int main() { print_int(6 * 7); return 0; }\n")
    assert main(["compile", str(src), "--run"]) == 0
    out = capsys.readouterr().out
    assert "42" in out and "functional run" in out


def test_compile_asm_output(tmp_path, capsys):
    src = tmp_path / "p.sl"
    src.write_text("int main() { return 3; }\n")
    assert main(["compile", str(src), "--asm"]) == 0
    out = capsys.readouterr().out
    assert "fn_main:" in out and ".text" in out


def test_sweep(capsys):
    assert main(["sweep", "--workload", "lu", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "slack sweep" in out and "su" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_run_requires_known_workload():
    with pytest.raises(KeyError):
        main(["run", "--workload", "nosuch", "--scale", "tiny"])
