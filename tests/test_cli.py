"""CLI tests (``slacksim`` / ``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


def test_schemes_lists_all(capsys):
    assert main(["schemes"]) == 0
    out = capsys.readouterr().out
    for name in ("cc", "q10", "l10", "s9", "s9*", "s100", "su"):
        assert name in out


def test_run_verifies_workload(capsys):
    assert main(["run", "--workload", "lu", "--scheme", "s9", "--scale", "tiny",
                 "--host-cores", "4"]) == 0
    out = capsys.readouterr().out
    assert "verified" in out and "[s9" in out


def test_run_verbose_shows_cores(capsys):
    assert main(["run", "--workload", "water", "--scale", "tiny", "-v",
                 "--host-cores", "2"]) == 0
    out = capsys.readouterr().out
    assert "core 0:" in out and "L1 misses" in out


def test_run_ooo_core_model(capsys):
    assert main(["run", "--workload", "fft", "--scale", "tiny",
                 "--core-model", "ooo", "--host-cores", "2"]) == 0
    assert "verified" in capsys.readouterr().out


def test_compile_and_functional_run(tmp_path, capsys):
    src = tmp_path / "p.sl"
    src.write_text("int main() { print_int(6 * 7); return 0; }\n")
    assert main(["compile", str(src), "--run"]) == 0
    out = capsys.readouterr().out
    assert "42" in out and "functional run" in out


def test_compile_asm_output(tmp_path, capsys):
    src = tmp_path / "p.sl"
    src.write_text("int main() { return 3; }\n")
    assert main(["compile", str(src), "--asm"]) == 0
    out = capsys.readouterr().out
    assert "fn_main:" in out and ".text" in out


def test_sweep(capsys):
    assert main(["sweep", "--workload", "lu", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "slack sweep" in out and "su" in out


def test_run_stats_out_then_show_and_diff(tmp_path, capsys):
    a = tmp_path / "a.stats.json"
    b = tmp_path / "b.stats.json"
    run = ["run", "--workload", "fft", "--scale", "tiny", "--scheme", "s9",
           "--host-cores", "2"]
    assert main(run + ["--stats-out", str(a)]) == 0
    assert main(run + ["--stats-out", str(b)]) == 0
    capsys.readouterr()

    assert main(["stats", "show", str(a)]) == 0
    out = capsys.readouterr().out
    assert "target.instructions" in out and "scheme.slack_cycles.count" in out

    # Deterministic reruns diff clean (exit 0).
    assert main(["stats", "diff", str(a), str(b)]) == 0
    assert "identical" in capsys.readouterr().out


def test_stats_diff_reports_differences(tmp_path, capsys):
    import json

    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps({"stats": {"x": 1, "only_a": 2}}))
    b.write_text(json.dumps({"stats": {"x": 3, "only_b": 4}}))
    assert main(["stats", "diff", str(a), str(b)]) == 1
    out = capsys.readouterr().out
    assert "~ x: 1 -> 3" in out
    assert "- only_a = 2" in out
    assert "+ only_b = 4" in out


def test_stats_diff_exits_nonzero_on_digest_mismatch(tmp_path, capsys):
    # Identical stats sections but differing digests (digest-marked lines
    # can canonicalise differently than the dump renders) must fail the
    # diff — CI determinism gates rely on the exit code, not the listing.
    import json

    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps({"digest": "aa" * 32, "stats": {"x": 1}}))
    b.write_text(json.dumps({"digest": "bb" * 32, "stats": {"x": 1}}))
    assert main(["stats", "diff", str(a), str(b)]) == 1
    out = capsys.readouterr().out
    assert f"~ digest: {'aa' * 32} -> {'bb' * 32}" in out


def test_stats_diff_equal_digests_exit_zero(tmp_path, capsys):
    import json

    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps({"digest": "aa" * 32, "stats": {"x": 1}}))
    b.write_text(json.dumps({"digest": "aa" * 32, "stats": {"x": 1}}))
    assert main(["stats", "diff", str(a), str(b)]) == 0
    assert "identical" in capsys.readouterr().out


def test_stats_diff_needs_two_files(tmp_path, capsys):
    a = tmp_path / "a.json"
    a.write_text('{"stats": {}}')
    assert main(["stats", "diff", str(a)]) == 2


def test_run_stats_csv_output(tmp_path, capsys):
    out_file = tmp_path / "run.csv"
    assert main(["run", "--workload", "fft", "--scale", "tiny",
                 "--host-cores", "2", "--stats-out", str(out_file),
                 "--stats-format", "csv"]) == 0
    text = out_file.read_text()
    assert text.startswith("stat,value\n")
    assert "violations.simulation_state," in text


def test_run_stats_interval_records_snapshots(tmp_path, capsys):
    import json

    out_file = tmp_path / "run.stats.json"
    assert main(["run", "--workload", "fft", "--scale", "tiny",
                 "--host-cores", "2", "--stats-interval", "5000",
                 "--stats-out", str(out_file)]) == 0
    doc = json.loads(out_file.read_text())
    assert doc["snapshots"], "expected at least one interval snapshot"
    assert doc["stats"]["sim.scheme"] == "cc"


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_run_requires_known_workload():
    with pytest.raises(KeyError):
        main(["run", "--workload", "nosuch", "--scale", "tiny"])
