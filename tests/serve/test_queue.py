"""Unit tests for the durable job queue's state machine (DESIGN.md §13).

Everything runs on a logical clock — every mutating call passes ``now``
explicitly — so lease expiry, backoff visibility, and retry budgets are
tested deterministically, no sleeps."""

import pytest

from repro.serve.queue import JobQueue, QueueError, STATES, TERMINAL


@pytest.fixture()
def q(tmp_path):
    queue = JobQueue(tmp_path / "queue.sqlite")
    yield queue
    queue.close()


def submit(q, key="k1", **kwargs):
    view, created = q.submit(key, '{"spec": true}', now=0.0, **kwargs)
    return view, created


def test_submit_creates_queued_row(q):
    view, created = submit(q)
    assert created
    assert view["state"] == "QUEUED"
    assert view["attempts"] == 0


def test_submit_is_idempotent_attach(q):
    submit(q)
    view, created = submit(q)
    assert not created
    assert view["state"] == "QUEUED"
    assert q.counts()["QUEUED"] == 1


def test_submit_straight_to_done_for_store_hits(q):
    view, created = submit(q, state="DONE")
    assert created and view["state"] == "DONE"
    assert q.depth() == 0  # cache hits never occupy admission-control depth


def test_submit_rejects_other_states(q):
    with pytest.raises(QueueError):
        submit(q, state="RUNNING")


def test_lease_is_fifo_and_mints_token(q):
    submit(q, key="a")
    submit(q, key="b")
    first = q.lease("w0", ttl=10, now=1.0)
    second = q.lease("w1", ttl=10, now=1.0)
    assert first["job_key"] == "a" and second["job_key"] == "b"
    assert first["lease_id"] and first["lease_id"] != second["lease_id"]
    assert q.lease("w2", ttl=10, now=1.0) is None


def test_full_happy_path(q):
    submit(q)
    job = q.lease("w0", ttl=10, now=1.0)
    q.start("k1", job["lease_id"], now=2.0)
    assert q.get("k1")["state"] == "RUNNING"
    q.complete("k1", job["lease_id"], now=3.0)
    assert q.get("k1")["state"] == "DONE"
    assert q.get("k1")["lease_id"] is None


def test_stale_lease_is_fenced_out(q):
    submit(q)
    job = q.lease("w0", ttl=1, now=0.0)
    assert q.expire(now=5.0) == ["k1"]  # lease lapsed, job requeued
    release = q.lease("w1", ttl=10, now=5.0)
    # The original leaseholder's verdict no longer counts for anything.
    for verb in (q.start, q.complete):
        with pytest.raises(QueueError):
            verb("k1", job["lease_id"], now=6.0)
    with pytest.raises(QueueError):
        q.fail("k1", job["lease_id"], "late", now=6.0)
    # ...while the current one proceeds normally.
    q.start("k1", release["lease_id"], now=6.0)
    q.complete("k1", release["lease_id"], now=7.0)
    assert q.get("k1")["state"] == "DONE"


def test_no_double_complete(q):
    submit(q)
    job = q.lease("w0", ttl=10, now=0.0)
    q.complete("k1", job["lease_id"], now=1.0)
    with pytest.raises(QueueError):
        q.complete("k1", job["lease_id"], now=2.0)


def test_requeue_charges_attempt_and_applies_backoff(q):
    submit(q)
    job = q.lease("w0", ttl=10, now=0.0)
    state = q.requeue("k1", job["lease_id"], "worker lost", delay=4.0, now=1.0)
    assert state == "QUEUED"
    assert q.get("k1")["attempts"] == 1
    # Parked behind not_before until the backoff delay elapses.
    assert q.lease("w1", ttl=10, now=2.0) is None
    assert q.lease("w1", ttl=10, now=5.0)["job_key"] == "k1"


def test_retry_budget_exhaustion_dead_letters(q):
    submit(q, max_retries=2)
    for now in (0.0, 1.0):
        job = q.lease("w0", ttl=10, now=now)
        assert q.requeue("k1", job["lease_id"], "crash", now=now) == "QUEUED"
    job = q.lease("w0", ttl=10, now=2.0)
    assert q.requeue("k1", job["lease_id"], "crash #3", now=2.0) == "DEAD"
    view = q.get("k1")
    assert view["state"] == "DEAD"
    assert view["attempts"] == 3  # budget of 2 retries ⇒ third charge kills it
    assert view["error"] == "crash #3"
    assert q.lease("w0", ttl=10, now=99.0) is None  # dead jobs never re-lease


def test_job_error_fails_without_retry(q):
    submit(q)
    job = q.lease("w0", ttl=10, now=0.0)
    q.fail("k1", job["lease_id"], "ValueError: bad workload", now=1.0)
    view = q.get("k1")
    assert view["state"] == "FAILED"
    assert view["attempts"] == 0  # deterministic errors never charge retries
    assert "ValueError" in view["error"]


def test_recover_requeues_orphans_without_charging(q):
    submit(q, key="leased")
    submit(q, key="running")
    submit(q, key="done")
    a = q.lease("w0", ttl=10, now=0.0)
    b = q.lease("w1", ttl=10, now=0.0)
    q.start(b["job_key"], b["lease_id"], now=1.0)
    c = q.lease("w2", ttl=10, now=1.0)
    q.complete(c["job_key"], c["lease_id"], now=2.0)
    recovered = q.recover(now=3.0)
    assert sorted(recovered) == ["leased", "running"]
    for key in ("leased", "running"):
        view = q.get(key)
        assert view["state"] == "QUEUED"
        assert view["attempts"] == 0  # daemon death is not the job's fault
        assert view["lease_id"] is None
    assert q.get("done")["state"] == "DONE"
    # The dead incarnation's tokens are void.
    with pytest.raises(QueueError):
        q.complete("leased", a["lease_id"], now=4.0)


def test_renew_extends_monotonically(q):
    submit(q)
    job = q.lease("w0", ttl=10, now=0.0)
    q.renew("k1", job["lease_id"], ttl=10, now=5.0)   # expiry → 15
    q.renew("k1", job["lease_id"], ttl=10, now=2.0)   # older now: no shrink
    assert q.get("k1")["lease_expiry"] == 15.0
    assert q.expire(now=14.0) == []


def test_cancel_queued_is_immediate(q):
    submit(q)
    assert q.request_cancel("k1", now=1.0) == "FAILED"
    assert q.get("k1")["error"] == "cancelled"


def test_cancel_running_is_flagged_for_supervisor(q):
    submit(q)
    job = q.lease("w0", ttl=10, now=0.0)
    q.start("k1", job["lease_id"], now=1.0)
    assert q.request_cancel("k1", now=2.0) == "RUNNING"
    flagged = q.cancel_requests()
    assert [j["job_key"] for j in flagged] == ["k1"]


def test_cancel_terminal_is_noop(q):
    submit(q)
    job = q.lease("w0", ttl=10, now=0.0)
    q.complete("k1", job["lease_id"], now=1.0)
    assert q.request_cancel("k1", now=2.0) == "DONE"


def test_operator_retry_rearms_budget(q):
    submit(q, max_retries=0)
    job = q.lease("w0", ttl=10, now=0.0)
    assert q.requeue("k1", job["lease_id"], "crash", now=1.0) == "DEAD"
    view = q.retry("k1", now=2.0)
    assert view["state"] == "QUEUED" and view["attempts"] == 0
    with pytest.raises(QueueError):
        q.retry("k1", now=3.0)  # only FAILED/DEAD are retryable


def test_counts_and_depth(q):
    for key in ("a", "b", "c"):
        submit(q, key=key)
    job = q.lease("w0", ttl=10, now=0.0)
    q.complete(job["job_key"], job["lease_id"], now=1.0)
    counts = q.counts()
    assert set(counts) == set(STATES)
    assert counts["DONE"] == 1 and counts["QUEUED"] == 2
    assert q.depth() == 2  # terminal states don't count against admission


def test_queue_survives_reopen(q, tmp_path):
    submit(q)
    job = q.lease("w0", ttl=10, now=0.0)
    q.start("k1", job["lease_id"], now=1.0)
    q.close()
    reopened = JobQueue(tmp_path / "queue.sqlite")
    try:
        assert reopened.get("k1")["state"] == "RUNNING"
        assert reopened.recover(now=2.0) == ["k1"]
    finally:
        reopened.close()


def test_unknown_key_raises(q):
    assert q.get("missing") is None
    with pytest.raises(QueueError):
        q.start("missing", "nope")
    with pytest.raises(QueueError):
        q.retry("missing")


def test_terminal_set_matches_states():
    assert TERMINAL < set(STATES)
    assert TERMINAL == {"DONE", "FAILED", "DEAD"}
