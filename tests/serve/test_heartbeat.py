"""Tests for per-job progress heartbeats (the cross-process watchdog
signal): the writer's file discipline, the reader's tolerance, and the
engine integration that publishes real progress markers during a run."""

import json
import threading
import time

from repro.core import run_simulation
from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.serve.heartbeat import HeartbeatWriter, engine_progress, read_heartbeat
from repro.workloads.synthetic import sharing_workload


def run_traced(cores, **sim_kw):
    return run_simulation(
        None,
        trace_cores=cores,
        host=HostConfig(num_cores=4),
        sim=SimConfig(scheme="s9", seed=1, **sim_kw),
        target=TargetConfig(num_cores=len(cores), core_model="trace"),
    )


def test_writer_publishes_and_final_beat_on_stop(tmp_path):
    path = tmp_path / "hb.json"
    values = iter(range(100))
    writer = HeartbeatWriter(path, lambda: [next(values)], interval=0.05)
    writer.start()
    try:
        deadline = time.time() + 5.0
        while writer.beats < 3 and time.time() < deadline:
            time.sleep(0.02)
    finally:
        writer.stop()
    beat = read_heartbeat(path)
    assert beat is not None
    assert beat["beats"] == writer.beats >= 3
    assert beat["progress"] == [writer.beats - 1]  # stop() flushed a final beat
    assert isinstance(beat["pid"], int) and beat["wall"] > 0


def test_stop_without_thread_still_flushes(tmp_path):
    path = tmp_path / "hb.json"
    writer = HeartbeatWriter(path, lambda: "marker")
    writer.stop()  # never started: still writes the final state
    assert read_heartbeat(path)["progress"] == "marker"


def test_reader_tolerates_absent_and_garbage(tmp_path):
    assert read_heartbeat(tmp_path / "missing.json") is None
    garbage = tmp_path / "garbage.json"
    garbage.write_text("{not json")
    assert read_heartbeat(garbage) is None
    garbage.write_text('["a", "list"]')  # parseable but not a beat
    assert read_heartbeat(garbage) is None


def test_writer_survives_unwritable_path():
    writer = HeartbeatWriter("/nonexistent-dir/nope/hb.json", lambda: [1])
    writer.beat()  # must not raise: a vanished serve dir can't kill the job
    assert writer.beats == 1


def test_engine_publishes_progress_during_run(tmp_path):
    """A real tiny simulation with heartbeat_path set writes at least one
    beat whose progress marker reflects actual forward motion."""
    path = tmp_path / "job.heartbeat.json"
    result = run_traced(
        sharing_workload(4, 20, seed=5),
        heartbeat_path=str(path),
        heartbeat_interval=0.05,
    )
    assert result.completed
    beat = read_heartbeat(path)
    assert beat is not None  # final beat flushed even for sub-interval runs
    global_time, committed, local = beat["progress"]
    assert global_time > 0 and committed > 0 and local > 0


def test_engine_without_heartbeat_writes_nothing(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    result = run_traced(sharing_workload(4, 10, seed=2))
    assert result.completed
    assert list(tmp_path.iterdir()) == []


def test_engine_progress_handles_broken_engine():
    class Broken:
        @property
        def cores(self):
            raise RuntimeError("mid-construction")

    assert engine_progress(Broken()) == []


def test_beats_are_atomic_under_concurrent_reads(tmp_path):
    """Hammer reads while the writer beats fast: every successful read is a
    complete, well-formed beat (the atomic-write guarantee)."""
    path = tmp_path / "hb.json"
    writer = HeartbeatWriter(path, lambda: list(range(50)), interval=0.01)
    torn = []
    stop = threading.Event()

    def reader():
        while not stop.is_set():
            beat = read_heartbeat(path)
            if beat is not None and beat.get("progress") != list(range(50)):
                torn.append(beat)

    thread = threading.Thread(target=reader)
    writer.start()
    thread.start()
    time.sleep(0.3)
    stop.set()
    thread.join()
    writer.stop()
    assert torn == []
    assert json.loads(path.read_text())["beats"] == writer.beats
