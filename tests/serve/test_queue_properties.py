"""Property tests: the durable queue against a pure-Python reference model.

Hypothesis drives random transition sequences — submits, leases (live and
stale), completions, worker-loss requeues, lease expiry, daemon-restart
recovery, operator retries, cancels, and logical-clock jumps — and after
every step the sqlite queue must agree with the model exactly.  The three
headline invariants from the serve contract fall out of that agreement:

* **No job lost** — every submitted key is always present, in exactly the
  state the model predicts; no transition sequence can drop a row.
* **No double-complete** — ``complete`` is fenced by the live lease token,
  and completing clears the token, so a second completion (from anyone)
  must raise; DONE is absorbing.
* **Lease expiry is monotone** — ``renew`` can only extend the expiry,
  never shorten it, even when renews arrive with out-of-order timestamps.

The queue runs on its logical clock (explicit ``now``), so sequences are
fully deterministic and shrinkable."""

from hypothesis import given, settings, strategies as st

from repro.serve.queue import JobQueue, QueueError, TERMINAL

KEYS = ("job-a", "job-b", "job-c")
MAX_RETRIES = 2
LIVE = ("LEASED", "RUNNING")


class Model:
    """Pure-Python twin of the queue's documented state machine."""

    def __init__(self):
        self.jobs = {}      # key -> {state, attempts, lease, expiry, not_before}
        self.order = []     # submission order (rowid FIFO)
        self.clock = 0.0
        self.tokens = []    # every lease token ever minted: (key, token)

    def job_of(self, token):
        for key, t in self.tokens:
            if t == token:
                return key
        return None

    def live(self, key, token):
        job = self.jobs.get(key)
        return job is not None and job["lease"] == token

    def submit(self, key):
        if key in self.jobs:
            return False
        self.jobs[key] = {
            "state": "QUEUED", "attempts": 0,
            "lease": None, "expiry": None, "not_before": 0.0,
        }
        self.order.append(key)
        return True

    def lease(self, token, ttl):
        for key in self.order:
            job = self.jobs[key]
            if job["state"] == "QUEUED" and job["not_before"] <= self.clock:
                job.update(state="LEASED", lease=token, expiry=self.clock + ttl)
                self.tokens.append((key, token))
                return key
        return None

    def _fenced_live(self, key, token):
        if key is None or not self.live(key, token):
            raise QueueError("stale")
        if self.jobs[key]["state"] not in LIVE:
            raise QueueError("not live")
        return self.jobs[key]

    def start(self, key, token):
        job = self._fenced_live(key, token)
        if job["state"] != "LEASED":
            raise QueueError("start wants LEASED")
        job["state"] = "RUNNING"

    def renew(self, key, token, ttl):
        job = self._fenced_live(key, token)
        job["expiry"] = max(job["expiry"], self.clock + ttl)

    def complete(self, key, token):
        job = self._fenced_live(key, token)
        job.update(state="DONE", lease=None, expiry=None)

    def fail(self, key, token):
        job = self._fenced_live(key, token)
        job.update(state="FAILED", lease=None, expiry=None)

    def requeue(self, key, token, delay, charge=True):
        job = self._fenced_live(key, token)
        job["attempts"] += 1 if charge else 0
        if job["attempts"] > MAX_RETRIES:
            job.update(state="DEAD", lease=None, expiry=None)
        else:
            job.update(
                state="QUEUED", lease=None, expiry=None,
                not_before=self.clock + delay,
            )

    def expire(self):
        for key in self.order:
            job = self.jobs[key]
            if job["state"] in LIVE and job["expiry"] < self.clock:
                self.requeue(key, job["lease"], 0.0)

    def recover(self):
        for job in self.jobs.values():
            if job["state"] in LIVE:
                job.update(state="QUEUED", lease=None, expiry=None,
                           not_before=0.0)

    def retry(self, key):
        job = self.jobs.get(key)
        if job is None or job["state"] not in ("FAILED", "DEAD"):
            raise QueueError("retry wants FAILED|DEAD")
        job.update(state="QUEUED", attempts=0, not_before=0.0)

    def cancel(self, key):
        job = self.jobs.get(key)
        if job is None:
            raise QueueError("unknown")
        if job["state"] == "QUEUED":
            job["state"] = "FAILED"


def token_for(model, ops_token):
    """Map a hypothesis-drawn index onto a real minted token (possibly a
    stale one — that's the point) or a never-issued token."""
    if not model.tokens or ops_token is None:
        return "never-issued"
    return model.tokens[ops_token % len(model.tokens)][1]


OPS = st.one_of(
    st.tuples(st.just("submit"), st.sampled_from(KEYS)),
    st.tuples(st.just("lease"), st.floats(min_value=1.0, max_value=20.0)),
    st.tuples(st.just("start"), st.integers(min_value=0, max_value=64)),
    st.tuples(st.just("renew"), st.integers(min_value=0, max_value=64),
              st.floats(min_value=1.0, max_value=20.0)),
    st.tuples(st.just("complete"), st.integers(min_value=0, max_value=64)),
    st.tuples(st.just("fail"), st.integers(min_value=0, max_value=64)),
    st.tuples(st.just("requeue"), st.integers(min_value=0, max_value=64),
              st.floats(min_value=0.0, max_value=10.0)),
    st.tuples(st.just("expire")),
    st.tuples(st.just("recover")),
    st.tuples(st.just("retry"), st.sampled_from(KEYS)),
    st.tuples(st.just("cancel"), st.sampled_from(KEYS)),
    st.tuples(st.just("tick"), st.floats(min_value=0.0, max_value=30.0)),
)


def apply_both(q, model, op):
    """Apply *op* to the queue and the model; they must agree on outcome
    (value vs value, or both raising QueueError)."""
    kind = op[0]
    if kind == "submit":
        _, created = q.submit(op[1], "{}", max_retries=MAX_RETRIES,
                              now=model.clock)
        assert created == model.submit(op[1])
        return
    if kind == "lease":
        view = q.lease("w", ttl=op[1], now=model.clock)
        if view is None:
            assert model.lease("x", op[1]) is None
        else:
            assert model.lease(view["lease_id"], op[1]) == view["job_key"]
        return
    if kind == "tick":
        model.clock += op[1]
        return
    if kind == "expire":
        q.expire(now=model.clock)
        model.expire()
        return
    if kind == "recover":
        q.recover(now=model.clock)
        model.recover()
        return
    if kind in ("retry", "cancel"):
        verb = {"retry": (q.retry, model.retry),
                "cancel": (q.request_cancel, model.cancel)}[kind]
        real_exc = model_exc = False
        try:
            verb[0](op[1], now=model.clock)
        except QueueError:
            real_exc = True
        try:
            verb[1](op[1])
        except QueueError:
            model_exc = True
        assert real_exc == model_exc
        return
    # Lease-fenced verbs: start/renew/complete/fail/requeue.
    token = token_for(model, op[1])
    key = model.job_of(token)
    real_exc = model_exc = False
    try:
        if kind == "start":
            q.start(key or "?", token, now=model.clock)
        elif kind == "renew":
            q.renew(key or "?", token, ttl=op[2], now=model.clock)
        elif kind == "complete":
            q.complete(key or "?", token, now=model.clock)
        elif kind == "fail":
            q.fail(key or "?", token, "boom", now=model.clock)
        elif kind == "requeue":
            q.requeue(key or "?", token, "lost", delay=op[2], now=model.clock)
    except QueueError:
        real_exc = True
    try:
        if kind == "start":
            model.start(key, token)
        elif kind == "renew":
            model.renew(key, token, op[2])
        elif kind == "complete":
            model.complete(key, token)
        elif kind == "fail":
            model.fail(key, token)
        elif kind == "requeue":
            model.requeue(key, token, op[2])
    except QueueError:
        model_exc = True
    assert real_exc == model_exc, f"{kind}: queue/{real_exc} model/{model_exc}"


def check_agreement(q, model, done_ever):
    views = {v["job_key"]: v for v in q.jobs()}
    # No job lost: exactly the submitted keys, nothing more or less.
    assert set(views) == set(model.jobs)
    for key, job in model.jobs.items():
        view = views[key]
        assert view["state"] == job["state"], key
        assert view["attempts"] == job["attempts"], key
        if job["state"] in LIVE:
            # Lease expiry monotone: the model only ever max()es it.
            assert view["lease_expiry"] == job["expiry"], key
    # DONE is absorbing: anything ever completed stays completed.
    for key in done_ever:
        assert views[key]["state"] == "DONE"


@settings(max_examples=60, deadline=None)
@given(st.lists(OPS, min_size=1, max_size=60))
def test_queue_agrees_with_reference_model(ops):
    q = JobQueue(":memory:")
    model = Model()
    done_ever = set()
    try:
        for op in ops:
            apply_both(q, model, op)
            done_ever |= {
                k for k, j in model.jobs.items() if j["state"] == "DONE"
            }
            check_agreement(q, model, done_ever)
    finally:
        q.close()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1,
                max_size=20),
       st.floats(min_value=1.0, max_value=30.0))
def test_renew_never_shortens_lease(nows, ttl):
    """Renews with arbitrarily shuffled timestamps: expiry is the running
    max, never less than any previously granted expiry."""
    q = JobQueue(":memory:")
    try:
        q.submit("k", "{}", now=0.0)
        job = q.lease("w", ttl=ttl, now=0.0)
        high_water = ttl
        for now in nows:
            q.renew("k", job["lease_id"], ttl=ttl, now=now)
            expiry = q.get("k")["lease_expiry"]
            assert expiry >= high_water
            high_water = max(high_water, expiry)
    finally:
        q.close()
