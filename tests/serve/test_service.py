"""End-to-end serve tests: a real ``repro serve`` daemon subprocess, real
worker processes, real signals.  This is the chaos ladder from DESIGN.md
§13 in miniature — crash a worker, kill the daemon, poison a job, overflow
the queue — each rung asserting the serve contract: nothing lost, nothing
duplicated, failures explicit."""

import pytest

from repro.jobs import ResultStore
from repro.jobs.execute import execute
from repro.jobs.spec import job_key, spec_to_dict

from tests.serve.conftest import tiny_spec, wait_terminal

#: Deterministic fields a served record must share with a direct run —
#: provenance (wall time, engine, timestamps) legitimately differs.
IDENTICAL_FIELDS = ("metrics", "stats", "stats_digest", "stats_dump",
                    "output_sha256", "cores", "completed")


def direct_baseline(spec, tmp_path):
    """Run *spec* in-process against an isolated store: the ground truth a
    served result must reproduce byte-for-byte on deterministic fields."""
    store = ResultStore(tmp_path / "baseline-store")
    return execute(spec, store=store, trace=None).record


@pytest.mark.slow
def test_served_results_match_direct_runs(daemon, tmp_path):
    daemon.start("--workers", "2")
    client = daemon.client()
    specs = [tiny_spec(seed=s) for s in (1, 2, 3)]
    keys = [client.submit(spec_to_dict(s))["job_key"] for s in specs]
    for key in keys:
        assert wait_terminal(client, key)["state"] == "DONE"
    for spec, key in zip(specs, keys):
        served = client.fetch(key)
        baseline = direct_baseline(spec, tmp_path)
        for field in IDENTICAL_FIELDS:
            assert served[field] == baseline[field], field
    # Idempotent resubmission attaches to the finished row.
    again = client.submit(spec_to_dict(specs[0]))
    assert again["state"] == "DONE" and not again["created"]


@pytest.mark.slow
def test_sigkilled_worker_retries_to_identical_result(daemon, tmp_path):
    """Rung (a): SIGKILL a worker mid-job → the job retries on a fresh
    worker and the final record equals the direct run exactly."""
    spec = tiny_spec(seed=11)
    key = job_key(spec)
    marker = tmp_path / "crashed-once"
    daemon.start(
        "--workers", "2",
        env={
            "REPRO_SERVE_CRASH_KEY": key[:12],
            "REPRO_SERVE_CRASH_ONCE": str(marker),
        },
    )
    client = daemon.client()
    out = client.submit(spec_to_dict(spec))
    job = wait_terminal(client, out["job_key"])
    assert job["state"] == "DONE"
    assert job["attempts"] == 1  # exactly one worker-loss charge
    assert marker.exists()       # the crash really fired
    status = client.status()
    assert status["telemetry"]["workers_replaced"] >= 1
    served = client.fetch(key)
    baseline = direct_baseline(spec, tmp_path)
    for field in IDENTICAL_FIELDS:
        assert served[field] == baseline[field], field


@pytest.mark.slow
def test_poison_job_dead_letters_without_stalling_others(daemon):
    """Rung (c): a job that crashes its worker every time exhausts the
    retry budget into DEAD — with the captured error — while healthy jobs
    sharing the pool still complete."""
    poison = tiny_spec(seed=21)
    daemon.start(
        "--workers", "2",
        "--max-retries", "1",
        env={"REPRO_SERVE_CRASH_KEY": job_key(poison)[:12]},
    )
    client = daemon.client()
    poison_key = client.submit(spec_to_dict(poison))["job_key"]
    healthy_keys = [
        client.submit(spec_to_dict(tiny_spec(seed=s)))["job_key"]
        for s in (22, 23, 24)
    ]
    dead = wait_terminal(client, poison_key, timeout=120)
    assert dead["state"] == "DEAD"
    assert dead["attempts"] == 2  # budget of 1 retry: two crashes, then dead
    assert dead["error"]          # stderr/diagnosis captured, not silent
    for key in healthy_keys:
        assert wait_terminal(client, key, timeout=120)["state"] == "DONE"


@pytest.mark.slow
def test_daemon_sigkill_restart_recovers_orphans(daemon, tmp_path):
    """Rung (b): SIGKILL the daemon with work in flight; a restart re-leases
    every orphaned job and completes it, attempts uncharged, results exact."""
    specs = [tiny_spec(seed=s) for s in (31, 32, 33, 34)]
    daemon.start("--workers", "2")
    client = daemon.client()
    keys = [client.submit(spec_to_dict(s))["job_key"] for s in specs]
    daemon.sigkill()  # no drain, no cleanup — leases die with the daemon
    daemon.wait()
    daemon.start("--workers", "2")
    client = daemon.client()
    for key in keys:
        job = wait_terminal(client, key, timeout=120)
        assert job["state"] == "DONE"
        assert job["attempts"] == 0  # daemon death never charges the budget
    # No duplicates: one row per submitted key, even across incarnations.
    assert sorted(j["job_key"] for j in client.jobs()) == sorted(keys)
    for spec, key in zip(specs, keys):
        served = client.fetch(key)
        baseline = direct_baseline(spec, tmp_path)
        for field in IDENTICAL_FIELDS:
            assert served[field] == baseline[field], field


@pytest.mark.slow
def test_queue_full_backpressure_is_explicit(daemon):
    """Rung (d): a full queue answers 429 + Retry-After — clients are told
    to back off; submissions are never silently dropped."""
    from repro.serve.client import ServeRejected

    blocker = tiny_spec(seed=41)
    daemon.start(
        "--workers", "1",
        "--max-depth", "1",
        "--max-retries", "8",
        # The blocker crashes its worker every attempt, so it cycles
        # through backoff requeues and holds the queue at depth 1.
        env={"REPRO_SERVE_CRASH_KEY": job_key(blocker)[:12]},
    )
    client = daemon.client()
    client.submit(spec_to_dict(blocker))
    with pytest.raises(ServeRejected) as exc_info:
        client.submit(spec_to_dict(tiny_spec(seed=42)))
    assert exc_info.value.status == 429
    assert float(exc_info.value.retry_after) >= 1
    # The refused job left no trace — explicit rejection, not a half-insert.
    assert len(client.jobs()) == 1


@pytest.mark.slow
def test_sigterm_drains_gracefully(daemon):
    """SIGTERM finishes in-flight (leased) work before exit: the daemon
    drains instead of dropping what its workers already hold."""
    import time

    daemon.start("--workers", "2")
    client = daemon.client()
    keys = [
        client.submit(spec_to_dict(tiny_spec(seed=s)))["job_key"]
        for s in (51, 52)
    ]
    # Wait until both jobs are actually in flight — drain only promises to
    # finish *leased* work; anything still QUEUED waits for the next boot.
    deadline = time.time() + 60
    while time.time() < deadline:
        if all(client.poll(k)["state"] != "QUEUED" for k in keys):
            break
        time.sleep(0.05)
    daemon.sigterm()
    assert daemon.wait(timeout=120) == 0
    # The daemon is gone but its durable state answers for it.
    from repro.serve.queue import JobQueue

    queue = JobQueue(daemon.serve_dir / "queue.sqlite")
    try:
        states = {j["job_key"]: j["state"] for j in queue.jobs()}
    finally:
        queue.close()
    assert [states[k] for k in keys] == ["DONE", "DONE"]
