"""Serve-layer fixtures: isolated cache roots plus a daemon harness that
runs ``repro serve`` as a real subprocess so SIGKILL/SIGTERM tests exercise
the same process boundaries production does."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.jobs import JobSpec
from repro.serve.client import ServeClient

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture()
def cache_root(tmp_path, monkeypatch):
    """Point REPRO_CACHE_DIR at a per-test temp directory (shared by the
    in-process client helpers and any daemon subprocesses the test spawns)."""
    root = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
    return root


def tiny_spec(seed: int = 3, workload: str = "fft") -> JobSpec:
    """The cheapest real job: a tiny workload on the bulk-synchronous
    scheme (~0.5 s wall), varied by seed so tests get distinct job keys."""
    return JobSpec.build(workload, "tiny", scheme="s9", seed=seed, host_cores=4)


class DaemonHarness:
    """Drive a ``repro serve`` daemon subprocess against one cache root.

    ``start()`` waits for the *new incarnation's* endpoint file (matched by
    pid) so restart tests never talk to a stale endpoint left behind by a
    SIGKILLed predecessor.
    """

    def __init__(self, cache_root: Path) -> None:
        self.cache_root = Path(cache_root)
        self.serve_dir = self.cache_root / "serve"
        self.proc: "subprocess.Popen | None" = None

    def start(self, *args: str, env: "dict | None" = None, timeout: float = 30.0):
        full_env = {
            **os.environ,
            "PYTHONPATH": str(SRC),
            "REPRO_CACHE_DIR": str(self.cache_root),
            **(env or {}),
        }
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--seed", "7", *args],
            env=full_env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        endpoint = self.serve_dir / "endpoint.json"
        deadline = time.time() + timeout
        while time.time() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"daemon exited early ({self.proc.returncode}):\n"
                    + (self.proc.stdout.read() if self.proc.stdout else "")
                )
            try:
                published = json.loads(endpoint.read_text())
                if published.get("pid") == self.proc.pid:
                    return self
            except (OSError, json.JSONDecodeError):
                pass
            time.sleep(0.05)
        raise RuntimeError("daemon did not publish an endpoint in time")

    def client(self, **kwargs) -> ServeClient:
        return ServeClient(serve_dir=self.serve_dir, **kwargs)

    def sigterm(self) -> None:
        assert self.proc is not None
        self.proc.send_signal(signal.SIGTERM)

    def sigkill(self) -> None:
        assert self.proc is not None
        self.proc.kill()

    def wait(self, timeout: float = 60.0) -> int:
        assert self.proc is not None
        return self.proc.wait(timeout=timeout)

    def stop(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)
        if self.proc is not None and self.proc.stdout is not None:
            self.proc.stdout.close()


@pytest.fixture()
def daemon(cache_root):
    harness = DaemonHarness(cache_root)
    yield harness
    harness.stop()


def wait_terminal(client: ServeClient, key: str, timeout: float = 60.0) -> dict:
    """Poll *key* until it reaches a terminal state (test-paced, fast)."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        job = client.poll(key)
        if job["state"] in ("DONE", "FAILED", "DEAD"):
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {key[:16]} still {job['state']} after {timeout}s")
