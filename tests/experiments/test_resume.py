"""Resumable-sweep tests: manifests, kill-and-resume, crash retry.

The contract (module docstring of :mod:`repro.experiments.parallel`): a
sweep that loses workers or is killed and resumed renders **byte-identical**
JSON to one uninterrupted run, because every finished point's document is a
pure function of its spec and is persisted atomically.
"""

import json
import os

import pytest

from repro.experiments.parallel import (
    SweepError,
    build_points,
    manifest_path,
    point_key,
    run_point,
    run_sweep,
    sweep_to_json,
)

EXPERIMENT = "ablations"
SCALE = "tiny"


@pytest.fixture(scope="module")
def baseline():
    """One uninterrupted serial sweep: the bytes every variant must match."""
    return sweep_to_json(run_sweep(EXPERIMENT, jobs=1, scale=SCALE))


def test_manifests_written_per_point(tmp_path, baseline):
    mdir = tmp_path / "manifests"
    payload = run_sweep(EXPERIMENT, jobs=1, scale=SCALE, manifest_dir=mdir)
    assert sweep_to_json(payload) == baseline
    specs = build_points(EXPERIMENT, SCALE, 1)
    for spec in specs:
        path = manifest_path(mdir, spec)
        assert path.exists(), f"no manifest for {point_key(spec)}"
        doc = json.loads(path.read_text())
        assert doc == payload["points"][point_key(spec)]


def test_resume_skips_finished_points(tmp_path, baseline):
    """Prefill all but two manifests, then resume: only the missing points
    run, and the rendered sweep is byte-identical to the uninterrupted one."""
    mdir = tmp_path / "manifests"
    full = run_sweep(EXPERIMENT, jobs=1, scale=SCALE, manifest_dir=mdir)
    specs = build_points(EXPERIMENT, SCALE, 1)
    removed = specs[1], specs[-1]
    for spec in removed:
        manifest_path(mdir, spec).unlink()

    resumed = run_sweep(
        EXPERIMENT, jobs=1, scale=SCALE, manifest_dir=mdir, resume=True
    )
    assert sweep_to_json(resumed) == sweep_to_json(full) == baseline
    for spec in removed:  # the re-run points re-manifested
        assert manifest_path(mdir, spec).exists()


def test_resume_distrusts_stale_and_torn_manifests(tmp_path, baseline):
    """A manifest from a different grid (other seed) or a torn write must be
    re-run, not trusted."""
    mdir = tmp_path / "manifests"
    run_sweep(EXPERIMENT, jobs=1, scale=SCALE, manifest_dir=mdir)
    specs = build_points(EXPERIMENT, SCALE, 1)
    stale = json.loads(manifest_path(mdir, specs[0]).read_text())
    stale["spec"]["seed"] += 1  # pretend it came from another base seed
    stale["instructions"] = -1
    manifest_path(mdir, specs[0]).write_text(json.dumps(stale))
    manifest_path(mdir, specs[1]).write_text('{"spec": {"workl')  # torn

    resumed = run_sweep(
        EXPERIMENT, jobs=1, scale=SCALE, manifest_dir=mdir, resume=True
    )
    assert sweep_to_json(resumed) == baseline


def test_resume_without_manifest_dir_rejected():
    with pytest.raises(ValueError, match="manifest_dir"):
        run_sweep(EXPERIMENT, jobs=1, scale=SCALE, resume=True)


def test_crash_injection_is_inert_without_env(monkeypatch):
    monkeypatch.delenv("REPRO_SWEEP_CRASH_POINT", raising=False)
    spec = build_points(EXPERIMENT, SCALE, 1)[0]
    assert run_point(spec)["completed"]


def test_kill_one_worker_then_recover(tmp_path, monkeypatch, baseline):
    """A worker that dies mid-sweep (os._exit, no cleanup — the pool sees a
    BrokenProcessPool) is retried with a fresh pool; the sweep completes and
    its bytes match the uninterrupted baseline."""
    victim = point_key(build_points(EXPERIMENT, SCALE, 1)[2])
    marker = tmp_path / "crashed-once"
    monkeypatch.setenv("REPRO_SWEEP_CRASH_POINT", victim)
    monkeypatch.setenv("REPRO_SWEEP_CRASH_ONCE", str(marker))

    payload = run_sweep(
        EXPERIMENT, jobs=2, scale=SCALE,
        manifest_dir=tmp_path / "manifests", max_retries=2,
    )
    assert marker.exists(), "the injected crash never fired"
    assert sweep_to_json(payload) == baseline


def test_kill_then_separate_resume_run(tmp_path, monkeypatch, baseline):
    """The CI kill-and-resume shape: sweep #1 dies (a point's worker always
    crashes, retries exhausted), sweep #2 with --resume finishes from the
    manifests — byte-identical to the uninterrupted baseline."""
    victim = point_key(build_points(EXPERIMENT, SCALE, 1)[2])
    mdir = tmp_path / "manifests"
    monkeypatch.setenv("REPRO_SWEEP_CRASH_POINT", victim)
    # No CRASH_ONCE marker: the point crashes every attempt -> SweepError.
    with pytest.raises(SweepError, match="lost its worker"):
        run_sweep(
            EXPERIMENT, jobs=2, scale=SCALE,
            manifest_dir=mdir, max_retries=1,
        )
    survivors = [p for p in os.listdir(mdir) if p.endswith(".json")]
    assert survivors, "no point finished before the sweep died"

    monkeypatch.delenv("REPRO_SWEEP_CRASH_POINT")
    resumed = run_sweep(
        EXPERIMENT, jobs=2, scale=SCALE, manifest_dir=mdir, resume=True
    )
    assert sweep_to_json(resumed) == baseline
