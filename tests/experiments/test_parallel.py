"""Process-parallel sweep tests: serial and sharded runs are byte-identical."""

import json

import pytest

from repro.experiments.parallel import (
    SWEEP_EXPERIMENTS,
    build_points,
    derive_seed,
    point_key,
    run_point,
    run_sweep,
    sweep_to_json,
)


def test_derive_seed_is_stable_and_distinct():
    a = derive_seed(1, "fft", "s9", 8)
    assert a == derive_seed(1, "fft", "s9", 8)
    assert a != derive_seed(2, "fft", "s9", 8)
    assert a != derive_seed(1, "fft", "s9", 4)
    assert a != derive_seed(1, "lu", "s9", 8)
    assert a >= 1


@pytest.mark.parametrize("experiment", SWEEP_EXPERIMENTS)
def test_grids_are_well_formed(experiment):
    points = build_points(experiment, "tiny", 1)
    keys = [point_key(p) for p in points]
    assert len(keys) == len(set(keys)), "grid keys must be unique"
    assert all(p.seed == derive_seed(1, p.workload, p.scheme, p.host_cores) for p in points)


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError, match="unknown sweep experiment"):
        build_points("figure9", "tiny", 1)


def test_point_metrics_are_json_safe():
    spec = build_points("ablations", "tiny", 1)[0]
    metrics = run_point(spec)
    json.dumps(metrics)
    assert metrics["completed"]
    assert metrics["instructions"] > 0
    assert len(metrics["output_sha256"]) == 64


def test_serial_and_parallel_sweeps_are_byte_identical():
    serial = sweep_to_json(run_sweep("ablations", jobs=1, scale="tiny"))
    sharded = sweep_to_json(run_sweep("ablations", jobs=2, scale="tiny"))
    assert serial == sharded
    payload = json.loads(serial)
    assert payload["experiment"] == "ablations"
    assert payload["points"]
    assert payload["derived"]["speedup_over_cc1"]


def test_repeated_serial_sweeps_are_byte_identical():
    a = sweep_to_json(run_sweep("ablations", jobs=1, scale="tiny"))
    b = sweep_to_json(run_sweep("ablations", jobs=1, scale="tiny"))
    assert a == b
