"""Experiment-harness shape tests: the DESIGN.md acceptance criteria at tiny
scale.  These are the executable paper-vs-measured checks."""

import pytest

from repro.experiments import (
    Runner,
    run_figure2,
    run_figure8,
    run_table2,
    run_table3,
)
from repro.experiments.ablations import (
    run_coremodel_ablation,
    run_critical_latency_sweep,
    run_fastforward_ablation,
    run_slack_sweep,
)
from repro.experiments.figure8 import render_figure8
from repro.experiments.table2 import render_table2
from repro.experiments.table3 import render_table3


@pytest.fixture(scope="module")
def runner():
    return Runner(scale="tiny", seed=1)


class TestTable2:
    def test_kips_in_paper_magnitude(self, runner):
        rows = run_table2(runner)
        assert len(rows) == 4
        for row in rows:
            # Same order of magnitude as the paper's 111-127 KIPS.
            assert 30 < row.kips < 500, row
            assert row.instructions > 1000

    def test_render(self, runner):
        text = render_table2(run_table2(runner))
        assert "KIPS" in text and "barnes" in text


class TestFigure8:
    @pytest.fixture(scope="class")
    def data(self, runner):
        return run_figure8(runner, host_counts=(2, 8))

    def test_speedup_improves_with_host_cores(self, data):
        for bench in data.benchmarks:
            for scheme in data.schemes:
                series = data.series(bench, scheme)
                assert series[-1] >= series[0] * 0.9, (bench, scheme)

    def test_cc_is_slowest(self, data):
        for bench in data.benchmarks:
            cc = data.speedup[bench]["cc"][8]
            for scheme in data.schemes:
                if scheme != "cc":
                    assert data.speedup[bench][scheme][8] > cc, (bench, scheme)

    def test_cc_scales_poorly(self, data):
        for h in (2, 8):
            assert data.hmean["cc"][h] < 3.5

    def test_slack_schemes_clear_paper_floor(self, data):
        """Paper: 'Even when simulation threads are limited to run on 2 host
        cores, their speedups are at least 3.3'."""
        for scheme in ("q10", "l10", "s9", "s9*", "s100", "su"):
            assert data.hmean[scheme][2] >= 3.3, scheme

    def test_scheme_ordering_at_8_hosts(self, data):
        h = data.hmean
        assert h["su"][8] >= h["s9"][8] * 0.9
        assert h["s100"][8] >= h["s9"][8] * 0.95
        assert h["s9"][8] > h["q10"][8]
        assert h["l10"][8] >= h["q10"][8]

    def test_s9_star_close_to_s9(self, data):
        """Paper: 'The speedup of S9* is almost the same as the speedup of
        S9'."""
        ratio = data.hmean["s9*"][8] / data.hmean["s9"][8]
        assert 0.85 < ratio < 1.15

    def test_render(self, data):
        text = render_figure8(data)
        assert "Figure 8(e)" in text and "harmonic" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self, runner):
        return run_table3(runner)

    def test_errors_grow_with_slack(self, rows):
        for row in rows:
            assert row.errors["s9"] <= row.errors["s100"] + 0.02
            assert row.errors["s100"] <= row.errors["su"] + 0.02

    def test_s9_errors_are_small(self, rows):
        for row in rows:
            assert row.errors["s9"] < 0.06, row.benchmark

    def test_su_errors_are_moderate(self, rows):
        """Paper: even unbounded slack stays below ~6%; allow headroom for
        our much smaller inputs (higher sync density)."""
        for row in rows:
            assert row.errors["su"] < 0.35, row.benchmark

    def test_conservative_schemes_have_no_order_violations(self, rows):
        for row in rows:
            assert row.violations["su"] >= 0
        # (simulation/system violations for conservative schemes are asserted
        # at engine level in tests/core/test_engine.py)

    def test_render(self, rows):
        text = render_table3(rows)
        assert "S100" in text and "%" in text


class TestFigure2:
    @pytest.fixture(scope="class")
    def traces(self):
        return run_figure2()

    def test_cc_is_lockstep(self, traces):
        cc = next(t for t in traces if t.scheme == "cc")
        assert cc.max_slack_observed() <= 1

    def test_quantum_and_bounded_respect_windows(self, traces):
        q3 = next(t for t in traces if t.scheme == "q3")
        s2 = next(t for t in traces if t.scheme == "s2")
        assert q3.max_slack_observed() <= 3
        assert s2.max_slack_observed() <= 2
        assert s2.window_respected(2)

    def test_unbounded_exceeds_small_windows(self, traces):
        su = next(t for t in traces if t.scheme == "su")
        assert su.max_slack_observed() > 3

    def test_less_synchronization_is_faster(self, traces):
        by_name = {t.scheme: t.final_host_time for t in traces}
        assert by_name["cc"] > by_name["q3"] > by_name["su"]


class TestAblations:
    def test_slack_sweep_tradeoff(self, runner):
        points = run_slack_sweep("fft", slacks=(1, 9, 100), runner=runner)
        speedups = [p.speedup for p in points]
        assert speedups[-1] >= speedups[0]          # su fastest
        assert points[0].violations <= points[-2].violations + 5

    def test_critical_latency_violation_onset(self, runner):
        points = run_critical_latency_sweep("fft", slacks=(5, 9, 60), runner=runner)
        below = [p for p in points if int(p.label[1:-1]) < 10]
        for p in below:
            assert p.violations == 0, p.label

    def test_fastforward_reduces_nothing_when_no_races(self, runner):
        result = run_fastforward_ablation("lu", "s9", runner=runner)
        assert result["on"]["fastforwards"] >= 0

    def test_coremodel_ordering_stable(self, runner):
        orderings = run_coremodel_ablation("fft", schemes=("cc", "q10", "su"), runner=runner)
        # cc slowest under both core models.
        assert orderings["inorder"][0] == "cc"
        assert orderings["ooo"][0] == "cc"
