"""Differential tests: predecoded dispatch vs the decode oracle.

The predecoded execution layer is a pure performance optimisation — it must
be bit-identical to the oracle (``funcsim.execute``) path.  These tests run
every registered workload through both dispatch modes and compare the full
architectural digest, the output stream, and the instruction count.
"""

import pytest

from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.core.engine import SequentialEngine
from repro.cpu.interp import FunctionalInterpreter
from repro.workloads.registry import WORKLOADS, make_workload


@pytest.mark.parametrize("name", sorted(WORKLOADS), ids=sorted(WORKLOADS))
def test_interpreter_differential(name):
    """Functional interpreter: identical digest/output/count per workload."""
    program = make_workload(name, scale="tiny", nthreads=1).program
    results = {}
    for dispatch in ("predecoded", "oracle"):
        interp = FunctionalInterpreter(program, dispatch=dispatch)
        result = interp.run()
        results[dispatch] = (
            interp.state.digest(),
            result.output,
            result.instructions,
            result.exit_code,
        )
    assert results["predecoded"] == results["oracle"]


@pytest.mark.parametrize("core_model", ["inorder", "ooo"])
def test_engine_differential(core_model):
    """Timing engine: both core models match the oracle cycle-for-cycle."""
    workload = make_workload("fft", scale="tiny")
    metrics = {}
    for dispatch in ("predecoded", "oracle"):
        engine = SequentialEngine(
            workload.program,
            target=TargetConfig(core_model=core_model),
            host=HostConfig(num_cores=4),
            sim=SimConfig(scheme="s9", seed=1, dispatch=dispatch),
        )
        result = engine.run()
        assert not workload.mismatches(result.output)
        metrics[dispatch] = (
            result.execution_cycles,
            result.global_time,
            result.instructions,
            result.output,
            result.violations.total,
        )
    assert metrics["predecoded"] == metrics["oracle"]
