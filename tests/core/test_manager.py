"""SimulationManager unit tests with stub core models."""

import pytest

from repro.core.corethread import CoreState, CoreThread
from repro.core.events import EvKind, Event
from repro.core.manager import SimulationManager
from repro.core.schemes import parse_scheme
from repro.mem.memsys import MemorySystem
from repro.violations.detect import ViolationCounters


class _StubModel:
    """Records delivered events; never steps (manager tests drive times)."""

    def __init__(self):
        self.responses = []
        self.invalidations = []
        self.downgrades = []
        self.pending_wakes = []

    def deliver_response(self, ev):
        self.responses.append(ev)

    def apply_invalidation(self, addr):
        self.invalidations.append(addr)

    def apply_downgrade(self, addr):
        self.downgrades.append(addr)


def make_manager(scheme, n=2):
    cores = []
    for i in range(n):
        ct = CoreThread(i, _StubModel())
        ct.state = CoreState.ACTIVE
        cores.append(ct)
    counters = ViolationCounters()
    manager = SimulationManager(cores, MemorySystem(num_cores=n, counters=counters), parse_scheme(scheme))
    return manager, cores, counters


def req(core, ts, kind=EvKind.GETS, addr=0x1000):
    return Event(kind, addr, core, ts)


class TestGlobalTime:
    def test_global_is_min_active_local(self):
        manager, cores, _ = make_manager("s9")
        cores[0].local_time = 7
        cores[1].local_time = 3
        manager.step()
        assert manager.global_time == 3

    def test_global_is_monotonic(self):
        manager, cores, _ = make_manager("s9")
        cores[0].local_time = cores[1].local_time = 10
        manager.step()
        cores[1].local_time = 5  # cannot happen in practice; manager clamps
        manager.step()
        assert manager.global_time == 10

    def test_done_cores_excluded(self):
        manager, cores, _ = make_manager("s9")
        cores[0].local_time = 100
        cores[0].state = CoreState.DONE
        cores[1].local_time = 4
        manager.step()
        assert manager.global_time == 4

    def test_windows_raised_per_scheme(self):
        manager, cores, _ = make_manager("s9")
        cores[0].local_time = cores[1].local_time = 5
        result = manager.step()
        assert sorted(result.raised) == [0, 1]
        assert all(ct.max_local_time == 5 + 9 for ct in cores)


class TestPolicies:
    def test_immediate_services_on_sight(self):
        manager, cores, _ = make_manager("s9")
        cores[0].outq.push(req(0, ts=50))
        result = manager.step()
        assert result.processed == 1
        response = cores[0].inq.pop_due(10**9)
        assert response is not None and response.kind is EvKind.RESPONSE
        assert response.ts > 50

    def test_oldest_waits_for_global(self):
        manager, cores, _ = make_manager("s9*")
        cores[0].local_time = 0
        cores[1].local_time = 0
        cores[1].outq.push(req(1, ts=8))
        result = manager.step()
        assert result.processed == 0  # global is 0 < 8
        cores[0].local_time = cores[1].local_time = 8
        result = manager.step()
        assert result.processed == 1

    def test_barrier_waits_for_all_at_window_edge(self):
        manager, cores, _ = make_manager("q10")
        cores[0].max_local_time = cores[1].max_local_time = 10
        cores[0].local_time = 10
        cores[1].local_time = 6
        cores[0].outq.push(req(0, ts=3))
        assert manager.step().processed == 0  # core 1 not at barrier
        cores[1].local_time = 10
        assert manager.step().processed == 1
        assert manager.barriers_completed == 1

    def test_barrier_processes_in_timestamp_order(self):
        manager, cores, counters = make_manager("q10")
        cores[0].max_local_time = cores[1].max_local_time = 10
        cores[0].local_time = cores[1].local_time = 10
        cores[0].outq.push(req(0, ts=9, addr=0x40))
        cores[1].outq.push(req(1, ts=2, addr=0x40))
        manager.step()
        assert counters.simulation_state == 0  # ts order despite arrival order

    def test_immediate_arrival_order_can_violate(self):
        manager, cores, counters = make_manager("su")
        cores[0].outq.push(req(0, ts=9, addr=0x40))
        cores[1].outq.push(req(1, ts=2, addr=0x40))
        manager.step()
        assert counters.simulation_state > 0


class TestCoherenceDelivery:
    def test_invalidations_reach_victims(self):
        manager, cores, _ = make_manager("su")
        cores[0].outq.push(req(0, ts=1, kind=EvKind.GETS, addr=0x80))
        manager.step()
        cores[1].outq.push(req(1, ts=2, kind=EvKind.GETX, addr=0x80))
        manager.step()
        # core 0 held the block E; core 1's GETX must invalidate it.
        # Delivery goes through core 0's InQ.
        delivered = []
        while True:
            ev = cores[0].inq.pop_due(10**9)
            if ev is None:
                break
            delivered.append(ev)
        kinds = {e.kind for e in delivered}
        assert EvKind.INVALIDATE in kinds or EvKind.RESPONSE in kinds

    def test_putm_produces_no_response(self):
        manager, cores, _ = make_manager("su")
        cores[0].outq.push(req(0, ts=1, kind=EvKind.GETX, addr=0xC0))
        manager.step()
        n_before = len(cores[0].model.responses) + len(cores[0].inq)
        cores[0].outq.push(req(0, ts=30, kind=EvKind.PUTM, addr=0xC0))
        manager.step()
        n_after = len(cores[0].model.responses) + len(cores[0].inq)
        assert n_after == n_before

    def test_lookahead_uses_oldest_pending(self):
        manager, cores, _ = make_manager("l10")
        cores[0].local_time = cores[1].local_time = 20
        manager.step()
        assert manager.global_time == 20
        assert cores[0].max_local_time == 30  # global + L with empty GQ

    def test_invariant_checker_raises_on_corruption(self):
        manager, cores, _ = make_manager("cc")
        manager.global_time = 50
        cores[0].local_time = 10  # below global: corrupted

        with pytest.raises(AssertionError, match="invariant"):
            manager.check_invariants()


#: One representative per GQ-policy family: barrier (cc, qN), immediate
#: (su/sN), oldest (sN*), lookahead (lN).
SCHEME_FAMILIES = ["cc", "q10", "s9", "s9*", "l10"]


class TestActiveWindowInterplay:
    """``_active()`` vs window-raise under mixed core states: cores that go
    IDLE or DONE mid-window must drop out of pacing (global time, barrier
    membership, window raises) without stalling the survivors."""

    @pytest.mark.parametrize("scheme", SCHEME_FAMILIES)
    def test_idle_core_excluded_from_pacing(self, scheme):
        manager, cores, _ = make_manager(scheme, n=3)
        cores[0].local_time = cores[1].local_time = 5
        cores[2].local_time = 0
        cores[2].state = CoreState.IDLE
        result = manager.step()
        assert manager.global_time == 5  # idle core's stale clock ignored
        assert 2 not in result.raised

    @pytest.mark.parametrize("scheme", SCHEME_FAMILIES)
    def test_done_mid_window_does_not_stall_window_raise(self, scheme):
        manager, cores, _ = make_manager(scheme)
        manager.step()  # establish the first window from t=0
        edge = cores[0].max_local_time
        assert edge > 0
        cores[1].state = CoreState.DONE  # finishes mid-window, clock behind
        cores[0].local_time = edge
        result = manager.step()
        assert manager.global_time == edge  # DONE core no longer the min
        assert result.raised == [0]
        assert cores[0].max_local_time > edge

    @pytest.mark.parametrize("scheme", SCHEME_FAMILIES)
    def test_idle_core_window_untouched_until_reactivated(self, scheme):
        manager, cores, _ = make_manager(scheme, n=3)
        cores[2].state = CoreState.IDLE
        stale_edge = cores[2].max_local_time
        cores[0].local_time = cores[1].local_time = 20
        manager.step()
        assert cores[2].max_local_time == stale_edge  # idle: no raise
        cores[2].state = CoreState.ACTIVE
        cores[2].local_time = manager.global_time  # wakes at global (engine contract)
        result = manager.step()
        assert 2 in result.raised
        assert cores[2].max_local_time == manager.current_max_local()

    @pytest.mark.parametrize("scheme", SCHEME_FAMILIES)
    def test_all_inactive_freezes_clock_and_windows(self, scheme):
        manager, cores, _ = make_manager(scheme)
        cores[0].local_time = 50
        cores[1].local_time = 60
        for ct in cores:
            ct.state = CoreState.IDLE
        result = manager.step()
        assert manager.global_time == 0  # no active minimum to advance to
        assert result.raised == []
        assert manager.barriers_completed == 0

    def test_barrier_completes_without_done_core(self):
        # Under a barrier policy the at-edge check spans only active cores:
        # a core that went DONE mid-window (clock short of the edge) must
        # not hold the barrier open forever.
        manager, cores, _ = make_manager("q10")
        cores[0].max_local_time = cores[1].max_local_time = 10
        cores[0].local_time = 10
        cores[1].local_time = 4
        cores[1].state = CoreState.DONE
        result = manager.step()
        assert manager.barriers_completed == 1
        assert result.raised == [0]

    def test_barrier_services_requests_left_by_done_core(self):
        # Requests a core issued before finishing still drain and are
        # serviced at the surviving cores' barrier.
        manager, cores, _ = make_manager("q10")
        cores[0].max_local_time = cores[1].max_local_time = 10
        cores[0].local_time = 10
        cores[1].outq.push(req(1, ts=4))
        cores[1].state = CoreState.DONE
        result = manager.step()
        assert result.drained == 1
        assert result.processed == 1
