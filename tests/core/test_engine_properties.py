"""Property-based engine tests: invariants over random workloads/schemes."""

from hypothesis import given, settings, strategies as st

from repro.core import SequentialEngine, run_simulation
from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.core.corethread import CoreState
from repro.workloads.synthetic import sharing_workload

SCHEMES = ["cc", "q10", "l10", "s9", "s9*", "s100", "su", "aq10-80"]


@settings(max_examples=25, deadline=None)
@given(
    scheme=st.sampled_from(SCHEMES),
    num_cores=st.integers(2, 6),
    ops=st.integers(5, 25),
    shared=st.floats(0.0, 0.8),
    writes=st.floats(0.0, 1.0),
    wl_seed=st.integers(0, 50),
    host_cores=st.integers(1, 8),
)
def test_random_workloads_terminate_with_invariants(
    scheme, num_cores, ops, shared, writes, wl_seed, host_cores
):
    """Every scheme must terminate on every random sharing workload with the
    clock invariant intact and sane accounting."""
    cores = sharing_workload(
        num_cores, ops, shared_fraction=shared, write_fraction=writes, seed=wl_seed
    )
    engine = SequentialEngine(
        None,
        target=TargetConfig(num_cores=num_cores, core_model="trace"),
        host=HostConfig(num_cores=host_cores),
        sim=SimConfig(scheme=scheme, seed=3),
        trace_cores=cores,
    )
    violations_of_window = []
    slack_bound = engine.scheme.slack

    def probe(host_t, global_t, locals_):
        for t in locals_:
            if t >= 0 and (t < global_t or t > global_t + slack_bound):
                violations_of_window.append((global_t, t))

    engine.probe = probe
    result = engine.run()
    assert result.completed
    assert not violations_of_window
    assert result.execution_cycles > 0
    assert result.host_time > 0
    assert result.instructions == sum(c.committed for c in result.cores)
    if engine.scheme.conservative:
        assert result.violations.simulation_state == 0
        assert result.violations.system_state == 0


@settings(max_examples=25, deadline=None)
@given(
    scheme=st.sampled_from(SCHEMES),
    num_cores=st.integers(2, 5),
    ops=st.integers(5, 20),
    wl_seed=st.integers(0, 40),
)
def test_clock_invariant_global_local_max_local(scheme, num_cores, ops, wl_seed):
    """The paper's pacing invariant, checked at every manager step:
    ``global <= local <= max_local`` for every active core."""
    engine = SequentialEngine(
        None,
        target=TargetConfig(num_cores=num_cores, core_model="trace"),
        host=HostConfig(num_cores=num_cores),
        sim=SimConfig(scheme=scheme, seed=5),
        trace_cores=sharing_workload(num_cores, ops, seed=wl_seed),
    )

    def probe(host_t, global_t, locals_):
        engine.manager.check_invariants()
        for ct in engine.cores:
            if ct.state == CoreState.ACTIVE:
                assert global_t <= ct.local_time <= max(ct.max_local_time, ct.local_time)

    engine.probe = probe
    assert engine.run().completed


@settings(max_examples=25, deadline=None)
@given(
    scheme=st.sampled_from(SCHEMES),
    num_cores=st.integers(2, 5),
    ops=st.integers(5, 20),
    shared=st.floats(0.0, 0.8),
    wl_seed=st.integers(0, 40),
    seed=st.integers(0, 10),
)
def test_step_many_equals_per_cycle_stepping(scheme, num_cores, ops, shared, wl_seed, seed):
    """The batched fast path (``step_many`` jumping wait stretches via
    ``skip``) must be observationally identical to stepping every cycle:
    same clocks, same events, same bit-exact host times."""
    def run(stepping):
        return run_simulation(
            None,
            trace_cores=sharing_workload(num_cores, ops, shared_fraction=shared, seed=wl_seed),
            host=HostConfig(num_cores=num_cores),
            sim=SimConfig(scheme=scheme, seed=seed, stepping=stepping),
            target=TargetConfig(num_cores=num_cores, core_model="trace"),
        )

    a, b = run("batched"), run("single")
    assert a.execution_cycles == b.execution_cycles
    assert a.global_time == b.global_time
    assert a.instructions == b.instructions
    assert a.host_time == b.host_time  # bit-exact, not approximate
    assert a.host_busy == b.host_busy
    assert a.requests == b.requests
    assert a.barriers == b.barriers
    assert [(c.committed, c.cycles, c.final_time) for c in a.cores] == [
        (c.committed, c.cycles, c.final_time) for c in b.cores
    ]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 30))
def test_determinism_over_random_seeds(seed):
    cores = lambda: sharing_workload(3, 12, seed=9)
    a = run_simulation(None, trace_cores=cores(), scheme="s9",
                       host=HostConfig(num_cores=3),
                       sim=SimConfig(scheme="s9", seed=seed),
                       target=TargetConfig(num_cores=3, core_model="trace"))
    b = run_simulation(None, trace_cores=cores(), scheme="s9",
                       host=HostConfig(num_cores=3),
                       sim=SimConfig(scheme="s9", seed=seed),
                       target=TargetConfig(num_cores=3, core_model="trace"))
    assert (a.execution_cycles, a.host_time, a.violations.total) == (
        b.execution_cycles, b.host_time, b.violations.total
    )
