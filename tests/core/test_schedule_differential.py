"""Differential matrix: static scheduling and timing codegen vs their oracles.

Two independent fast paths landed in DESIGN.md §9, and each must be a pure
host-side speedup:

* ``scheduling="static"`` plans each barrier window as one bulk-synchronous
  superstep instead of the dynamic per-turn host interleaving;
* timing superblocks (``dispatch="predecoded"`` on the in-order core) run
  straight-line latency-1 runs as one compiled call per block.

This matrix pins both against the full stats digest for every workload
class × scheme shape: a trace workload (where static *engages* under
barrier schemes) and a lock/barrier program workload on timing cores (where
static *falls back* — system emulation is host-order sensitive — and the
fallback must be digest-transparent).  ``stats_sha256`` covers every
digest-marked stat down to slack-distribution samples, so "identical
digest" means the turn decomposition itself is preserved, not just end
totals.
"""

from __future__ import annotations

import pytest

from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.core.engine import SequentialEngine
from repro.lang import compile_source
from repro.workloads.synthetic import sharing_workload

#: One scheme per gq_policy shape: cycle-accurate barrier, quantum barrier,
#: bounded slack (sliding), unbounded slack.  Static engages only on the
#: first two; the second two pin the fallback.
SCHEMES = ["cc", "q3", "s2", "su"]
STATIC_SCHEMES = {"cc", "q3"}

HOST = HostConfig(num_cores=4)

PROGRAM_SRC = """
int lk; int bar; int counter;
void worker(int tid) {
    for (int i = 0; i < 5; i = i + 1) {
        lock(&lk);
        counter = counter + 1;
        unlock(&lk);
    }
    barrier(&bar);
}
int main() {
    int tids[4];
    init_lock(&lk);
    init_barrier(&bar, 4);
    for (int t = 1; t < 4; t = t + 1) tids[t] = spawn(worker, t);
    worker(0);
    for (int t = 1; t < 4; t = t + 1) join(tids[t]);
    print_int(counter);
    return 0;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_source(PROGRAM_SRC).program


def run_trace(scheme: str, scheduling: str):
    engine = SequentialEngine(
        None,
        trace_cores=sharing_workload(4, 24, seed=3),
        target=TargetConfig(num_cores=4, core_model="trace"),
        host=HOST,
        sim=SimConfig(scheme=scheme, seed=11, scheduling=scheduling),
    )
    return engine.run()


def run_program(program, scheme: str, scheduling: str, dispatch: str):
    engine = SequentialEngine(
        program,
        target=TargetConfig(num_cores=4),
        host=HOST,
        sim=SimConfig(scheme=scheme, seed=11, scheduling=scheduling, dispatch=dispatch),
    )
    return engine.run()


@pytest.mark.parametrize("scheme", SCHEMES)
def test_trace_static_vs_dynamic(scheme):
    """Static scheduling is digest-identical to dynamic — and actually
    engages under pure-barrier schemes (not a vacuous pass)."""
    dynamic = run_trace(scheme, "dynamic")
    static = run_trace(scheme, "static")
    assert static.stats_sha256 == dynamic.stats_sha256
    assert dynamic.stats["engine.scheduling"] == "dynamic"
    if scheme in STATIC_SCHEMES:
        assert static.stats["engine.scheduling"] == "static"
        assert static.stats["engine.static_windows"] > 0
    else:
        # Sliding-window schemes service the GQ mid-window: the static
        # planner must refuse and fall back, transparently.
        assert static.stats["engine.scheduling"] == "dynamic"
        assert static.stats["engine.static_windows"] == 0


@pytest.mark.parametrize("scheme", SCHEMES)
def test_program_scheduling_and_dispatch_matrix(program, scheme):
    """Timing cores: (static|dynamic) × (predecoded|oracle) all byte-agree.

    Program workloads carry system emulation, so ``scheduling="static"``
    falls back to the dynamic loop here — the matrix checks that fallback
    plus the timing-superblock fast path leave the digest untouched.
    """
    base = run_program(program, scheme, "dynamic", "predecoded")
    assert base.output, "workload produced no output"
    for scheduling, dispatch in (
        ("dynamic", "oracle"),
        ("static", "predecoded"),
        ("static", "oracle"),
    ):
        other = run_program(program, scheme, scheduling, dispatch)
        assert other.stats_sha256 == base.stats_sha256, (
            f"digest diverged: scheduling={scheduling} dispatch={dispatch}"
        )
        if scheduling == "static":
            assert other.stats["engine.scheduling"] == "dynamic"


def test_trace_static_single_stepping_agrees():
    """Tri-modal closure: static, dynamic-batched and dynamic-single-step
    all produce one digest (the single-step oracle anchors the chain)."""
    batched = run_trace("q3", "static")
    engine = SequentialEngine(
        None,
        trace_cores=sharing_workload(4, 24, seed=3),
        target=TargetConfig(num_cores=4, core_model="trace"),
        host=HOST,
        sim=SimConfig(scheme="q3", seed=11, stepping="single"),
    )
    single = engine.run()
    assert batched.stats_sha256 == single.stats_sha256
