"""OutQ / InQ / GQ behaviour tests."""

from hypothesis import given, strategies as st

from repro.core.events import EvKind, Event
from repro.core.queues import GlobalQueue, InQ, OutQ


def ev(ts, kind=EvKind.GETS, core=0, addr=0):
    return Event(kind, addr, core, ts)


class TestOutQ:
    def test_drain_preserves_order_and_empties(self):
        q = OutQ()
        events = [ev(3), ev(1), ev(2)]
        for e in events:
            q.push(e)
        assert q.drain() == events
        assert len(q) == 0
        assert q.drain() == []


class TestInQ:
    def test_pop_due_respects_timestamps(self):
        q = InQ()
        q.push(ev(10))
        q.push(ev(5))
        assert q.pop_due(4) is None
        assert q.pop_due(5).ts == 5
        assert q.pop_due(9) is None
        assert q.pop_due(10).ts == 10

    def test_past_events_pop_immediately(self):
        q = InQ()
        q.push(ev(3))
        assert q.pop_due(100).ts == 3

    def test_peek_ts(self):
        q = InQ()
        assert q.peek_ts() is None
        q.push(ev(7))
        q.push(ev(2))
        assert q.peek_ts() == 2

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
    def test_pop_due_yields_sorted_prefix(self, stamps):
        q = InQ()
        for ts in stamps:
            q.push(ev(ts))
        out = []
        while True:
            e = q.pop_due(50)
            if e is None:
                break
            out.append(e.ts)
        assert out == sorted(ts for ts in stamps if ts <= 50)


class TestGQ:
    def test_fifo_pop_is_arrival_order(self):
        q = GlobalQueue()
        for e in [ev(5), ev(1), ev(3)]:
            q.push(e)
        assert [q.pop_fifo().ts for _ in range(3)] == [5, 1, 3]
        assert q.pop_fifo() is None

    def test_oldest_pop_is_timestamp_order_with_bound(self):
        q = GlobalQueue()
        for e in [ev(5), ev(1), ev(3)]:
            q.push(e)
        assert q.pop_oldest(0) is None
        assert q.pop_oldest(3).ts == 1
        assert q.pop_oldest(3).ts == 3
        assert q.pop_oldest(3) is None
        assert q.pop_oldest(10).ts == 5

    def test_mixed_disciplines_never_double_serve(self):
        q = GlobalQueue()
        events = [ev(i) for i in (4, 2, 9, 2)]
        for e in events:
            q.push(e)
        served = [q.pop_oldest(3), q.pop_fifo(), q.pop_fifo(), q.pop_fifo()]
        served = [e for e in served if e is not None]
        assert len(served) == 4
        assert len({id(e) for e in served}) == 4

    def test_oldest_ts_skips_consumed(self):
        q = GlobalQueue()
        q.push(ev(2))
        q.push(ev(7))
        assert q.oldest_ts() == 2
        q.pop_oldest(5)
        assert q.oldest_ts() == 7

    def test_len_counts_unconsumed(self):
        q = GlobalQueue()
        q.push(ev(1))
        q.push(ev(2))
        q.pop_fifo()
        assert len(q) == 1

    def test_ties_broken_by_core_then_sequence(self):
        """Same-ts requests are serviced in core-id order regardless of the
        (host-dependent) arrival order; within one core, creation order."""
        q = GlobalQueue()
        b, a = ev(5, core=2), ev(5, core=1)
        q.push(b)  # core 2 arrives first...
        q.push(a)
        assert q.pop_oldest(5) is a  # ...but core 1 is serviced first
        assert q.pop_oldest(5) is b
        q2 = GlobalQueue()
        first, second = ev(5, core=1), ev(5, core=1)
        q2.push(first)
        q2.push(second)
        assert q2.pop_oldest(5) is first
        assert q2.pop_oldest(5) is second
