"""Slack-engine integration tests: clock protocol, determinism, scheme
behaviour, termination, and the paper's headline properties."""

import pytest

from repro.core import EngineError, SequentialEngine, run_simulation
from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.lang import compile_source
from repro.workloads.synthetic import (
    pingpong_workload,
    sharing_workload,
    uniform_think_workload,
)

TRACE_TARGET = TargetConfig(num_cores=4, core_model="trace")
ALL_SCHEMES = ["cc", "q10", "l10", "s9", "s9*", "s100", "su"]


def run_trace(cores, scheme="cc", hosts=4, seed=1, **sim_kw):
    return run_simulation(
        None,
        trace_cores=cores,
        scheme=scheme,
        host=HostConfig(num_cores=hosts),
        sim=SimConfig(scheme=scheme, seed=seed, **sim_kw),
        target=TargetConfig(num_cores=len(cores), core_model="trace"),
    )


class TestBasicTermination:
    def test_pure_compute_finishes_at_exact_cycle(self):
        r = run_trace(uniform_think_workload(4, 100), "cc")
        assert r.completed
        # 100 think cycles + the halt step cycle.
        assert r.execution_cycles == 101

    def test_every_scheme_terminates(self):
        for scheme in ALL_SCHEMES:
            r = run_trace(sharing_workload(4, 10, seed=5), scheme)
            assert r.completed, scheme

    def test_single_core_target(self):
        r = run_trace(uniform_think_workload(1, 50), "cc")
        assert r.completed and r.execution_cycles == 51

    def test_single_host_core(self):
        r = run_trace(sharing_workload(2, 10, seed=2), "s9", hosts=1)
        assert r.completed


class TestDeterminism:
    def test_same_seed_same_everything(self):
        a = run_trace(sharing_workload(4, 20, seed=3), "s9", seed=11)
        b = run_trace(sharing_workload(4, 20, seed=3), "s9", seed=11)
        assert a.execution_cycles == b.execution_cycles
        assert a.host_time == b.host_time
        assert a.violations.total == b.violations.total

    def test_different_seed_different_host_time(self):
        a = run_trace(sharing_workload(4, 20, seed=3), "s9", seed=1)
        b = run_trace(sharing_workload(4, 20, seed=3), "s9", seed=2)
        assert a.host_time != b.host_time


class TestClockProtocol:
    def test_invariant_holds_throughout(self):
        """global <= local <= max_local sampled at every manager step."""
        for scheme in ALL_SCHEMES:
            engine = SequentialEngine(
                None,
                target=TRACE_TARGET,
                host=HostConfig(num_cores=4),
                sim=SimConfig(scheme=scheme, seed=1),
                trace_cores=sharing_workload(4, 15, seed=4),
            )
            failures = []

            def probe(host_t, global_t, locals_, scheme=scheme):
                for t in locals_:
                    if 0 <= t < global_t:
                        failures.append((scheme, host_t, global_t, t))

            engine.probe = probe
            engine.run()
            assert not failures

    def test_bounded_slack_respects_window(self):
        for slack in (2, 9, 50):
            engine = SequentialEngine(
                None,
                target=TRACE_TARGET,
                host=HostConfig(num_cores=4),
                sim=SimConfig(scheme=f"s{slack}", seed=1),
                trace_cores=sharing_workload(4, 15, seed=4),
            )
            worst = []

            def probe(host_t, global_t, locals_):
                for t in locals_:
                    if t >= 0:
                        worst.append(t - global_t)

            engine.probe = probe
            engine.run()
            assert max(worst) <= slack

    def test_cc_lockstep(self):
        engine = SequentialEngine(
            None,
            target=TRACE_TARGET,
            host=HostConfig(num_cores=4),
            sim=SimConfig(scheme="cc", seed=1),
            trace_cores=sharing_workload(4, 15, seed=4),
        )
        spreads = []

        def probe(host_t, global_t, locals_):
            active = [t for t in locals_ if t >= 0]
            if len(active) > 1:
                spreads.append(max(active) - min(active))

        engine.probe = probe
        engine.run()
        assert max(spreads) <= 1


class TestSchemeProperties:
    def test_conservative_schemes_are_violation_free(self):
        for scheme in ("cc", "q10", "l10", "s9*"):
            r = run_trace(sharing_workload(4, 30, seed=3), scheme)
            assert r.violations.simulation_state == 0, scheme
            assert r.violations.system_state == 0, scheme

    def test_slack_schemes_beat_cc(self):
        cores = lambda: sharing_workload(4, 30, seed=3)
        cc = run_trace(cores(), "cc")
        for scheme in ("q10", "s9", "su"):
            r = run_trace(cores(), scheme)
            assert r.host_time < cc.host_time, scheme

    def test_unbounded_is_fastest_or_close(self):
        cores = lambda: sharing_workload(4, 30, seed=3)
        times = {s: run_trace(cores(), s).host_time for s in ALL_SCHEMES}
        assert times["su"] <= min(times[s] for s in ("cc", "q10", "s9")) * 1.05

    def test_violations_grow_with_slack(self):
        cores = lambda: sharing_workload(4, 40, seed=9)
        v9 = run_trace(cores(), "s9").violations.total
        vu = run_trace(cores(), "su").violations.total
        assert vu >= v9

    def test_pingpong_generates_coherence_violations_under_slack(self):
        r = run_trace(pingpong_workload(4, 16), "su")
        assert r.violations.total > 0
        r_cc = run_trace(pingpong_workload(4, 16), "cc")
        assert r_cc.violations.total == 0


class TestInstructionCap:
    def test_max_instructions_truncates(self):
        r = run_trace(uniform_think_workload(4, 10_000), "s9", max_instructions=500)
        assert not r.completed
        assert r.instructions >= 500

    def test_max_cycles_guard_raises(self):
        src = "int main() { while (1) { } return 0; }"
        prog = compile_source(src).program
        with pytest.raises(EngineError, match="max_cycles"):
            run_simulation(prog, scheme="su", sim=SimConfig(scheme="su", max_cycles=2000))


class TestProgramEngine:
    SRC = """
    int bar;
    int data[8];
    void worker(int tid) { data[tid] = tid * tid; barrier(&bar); }
    int main() {
        int tids[4];
        init_barrier(&bar, 4);
        for (int t = 1; t < 4; t = t + 1) tids[t] = spawn(worker, t);
        worker(0);
        for (int t = 1; t < 4; t = t + 1) join(tids[t]);
        int s = 0;
        for (int i = 0; i < 4; i = i + 1) s = s + data[i];
        print_int(s);
        return 0;
    }
    """

    def test_spawn_join_barrier_pipeline(self):
        prog = compile_source(self.SRC).program
        for scheme in ALL_SCHEMES:
            r = run_simulation(prog, scheme=scheme, host_cores=4,
                               target=TargetConfig(num_cores=4))
            assert r.int_output() == [14], scheme
            assert r.completed

    def test_result_accounting(self):
        prog = compile_source(self.SRC).program
        r = run_simulation(prog, scheme="cc", host_cores=4,
                           target=TargetConfig(num_cores=4))
        assert r.instructions == sum(c.committed for c in r.cores)
        assert r.instructions > 0
        assert all(c.cycles >= c.committed for c in r.cores)
        assert 0 < r.host_utilization <= 1.0
        assert r.kips > 0

    def test_too_many_spawns_raises(self):
        src = """
        int gate;
        void w(int t) { sema_wait(&gate); }   // park forever: core stays busy
        int main() {
            init_sema(&gate, 0);
            for (int i = 0; i < 8; i = i + 1) spawn(w, i);
            return 0;
        }
        """
        from repro.sysapi.system import TargetError

        prog = compile_source(src).program
        with pytest.raises(TargetError, match="no idle core"):
            run_simulation(prog, scheme="cc", host_cores=2,
                           target=TargetConfig(num_cores=8))

    def test_core_becomes_idle_after_exit_and_is_reusable(self):
        src = """
        int acc;
        void w(int t) { atomic_add(&acc, t); }
        int main() {
            // two waves of 7 workers each: cores must be recycled
            int tids[8];
            for (int wave = 0; wave < 2; wave = wave + 1) {
                for (int t = 1; t < 8; t = t + 1) tids[t] = spawn(w, t);
                for (int t = 1; t < 8; t = t + 1) join(tids[t]);
            }
            print_int(acc);
            return 0;
        }
        """
        prog = compile_source(src).program
        r = run_simulation(prog, scheme="s9", host_cores=8)
        assert r.int_output() == [2 * sum(range(1, 8))]


def test_result_to_dict_is_json_serialisable():
    import json

    from repro.workloads.synthetic import sharing_workload

    r = run_trace(sharing_workload(2, 10, seed=1), "s9")
    blob = json.dumps(r.to_dict())
    data = json.loads(blob)
    assert data["scheme"] == "s9"
    assert data["completed"] is True
    assert data["violations"]["simulation_state"] >= 0
    assert len(data["cores"]) == 2
