"""Engine <-> stats-registry integration: digest stability and thin views.

The registry's ``stats_digest()`` is the machine-independent fingerprint of
simulated behaviour.  These tests pin the guarantees DESIGN.md §7 promises:

* byte-identical across stepping modes (batched vs per-cycle single),
* byte-identical across funcsim dispatch modes (predecoded vs oracle),
* unperturbed by ``--stats-interval`` snapshotting,
* ``SimulationResult`` is a thin view — its legacy fields agree with the
  registry dump it was built from,
* per-scheme digests match goldens checked into the repo
  (``tests/core/goldens/stats_digests.json``; regenerate deliberately with
  ``--update-goldens``).
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.core.engine import SequentialEngine
from repro.lang import compile_source
from repro.workloads.synthetic import sharing_workload

GOLDEN_PATH = Path(__file__).parent / "goldens" / "stats_digests.json"

SCHEMES = ["cc", "q10", "l10", "s9", "s9*", "s100", "su"]

PROGRAM_SRC = """
int lk; int counter;
void worker(int tid) {
    for (int i = 0; i < 5; i = i + 1) {
        lock(&lk);
        counter = counter + 1;
        unlock(&lk);
    }
}
int main() {
    int tids[4];
    init_lock(&lk);
    for (int t = 1; t < 4; t = t + 1) tids[t] = spawn(worker, t);
    worker(0);
    for (int t = 1; t < 4; t = t + 1) join(tids[t]);
    print_int(counter);
    return 0;
}
"""

HOST = HostConfig(num_cores=4)
TRACE_TARGET = TargetConfig(num_cores=4, core_model="trace")
PROGRAM_TARGET = TargetConfig(num_cores=4)
SIM = SimConfig(seed=17)


@pytest.fixture(scope="module")
def program():
    return compile_source(PROGRAM_SRC).program


def trace_engine(scheme: str, **sim_overrides) -> SequentialEngine:
    return SequentialEngine(
        None,
        trace_cores=sharing_workload(4, 24, seed=5),
        target=TRACE_TARGET,
        host=HOST,
        sim=replace(SIM, scheme=scheme, **sim_overrides),
    )


def program_engine(program, scheme: str, **sim_overrides) -> SequentialEngine:
    return SequentialEngine(
        program,
        target=PROGRAM_TARGET,
        host=HOST,
        sim=replace(SIM, scheme=scheme, **sim_overrides),
    )


@pytest.mark.parametrize("scheme", ["cc", "s9", "su"])
def test_digest_identical_across_stepping_modes(scheme, program):
    batched = program_engine(program, scheme, stepping="batched").run()
    single = program_engine(program, scheme, stepping="single").run()
    assert batched.stats_sha256 == single.stats_sha256
    # The whole digested dump matches, not just the hash of it.
    assert {k: v for k, v in batched.stats.items()} != {}
    trace_b = trace_engine(scheme, stepping="batched").run()
    trace_s = trace_engine(scheme, stepping="single").run()
    assert trace_b.stats_sha256 == trace_s.stats_sha256


@pytest.mark.parametrize("scheme", ["cc", "s9"])
def test_digest_identical_across_dispatch_modes(scheme, program):
    predecoded = program_engine(program, scheme, dispatch="predecoded").run()
    oracle = program_engine(program, scheme, dispatch="oracle").run()
    assert predecoded.stats_sha256 == oracle.stats_sha256


def test_snapshots_recorded_and_digest_unperturbed():
    plain = trace_engine("s9").run()
    snapped_engine = trace_engine("s9", stats_interval=50)
    snapped = snapped_engine.run()
    # Snapshotting is observation only: simulated behaviour cannot move.
    assert snapped.stats_sha256 == plain.stats_sha256
    snapshots = snapped_engine.registry.snapshots
    assert snapshots, "stats_interval=50 run recorded no snapshots"
    labels = [s["label"] for s in snapshots]
    assert labels == sorted(labels)
    assert all(isinstance(s["stats"], dict) and s["stats"] for s in snapshots)
    # Deterministic: a re-run snapshots at the same global times with the
    # same contents.
    again = trace_engine("s9", stats_interval=50)
    again.run()
    assert [s["label"] for s in again.registry.snapshots] == labels
    assert again.registry.snapshots == snapshots


def test_result_is_thin_view_over_registry(program):
    result = program_engine(program, "s9").run()
    stats = result.stats
    assert result.instructions == stats["target.instructions"]
    assert result.execution_cycles == stats["target.execution_cycles"]
    assert result.global_time == stats["target.global_time"]
    assert result.requests == stats["manager.requests"]
    assert result.barriers == stats["manager.barriers"]
    assert result.violations.simulation_state == stats["violations.simulation_state"]
    assert result.violations.system_state == stats["violations.system_state"]
    assert result.violations.workload_state == stats["violations.workload_state"]
    for core in result.cores:
        prefix = f"core{core.core_id}"
        assert core.committed == stats[f"{prefix}.committed"]
        assert core.cycles == stats[f"{prefix}.cycles"]
    # The slack histogram saw one sample per core turn.
    assert stats["scheme.slack_cycles.count"] == stats["engine.core_turns"]
    # Live digest off the attached registry matches the stored one.
    assert result.stats_digest() == result.stats_sha256


def test_dump_json_document_shape(program):
    result = program_engine(program, "q10").run()
    doc = json.loads(result.dump_json())
    assert doc["digest"] == result.stats_sha256
    assert doc["meta"]["scheme"] == "q10"
    assert doc["stats"] == result.stats
    csv = result.dump_csv()
    assert csv.startswith("stat,value\n")
    assert "target.instructions," in csv


@pytest.mark.parametrize("scheme", SCHEMES)
def test_stats_digest_matches_golden(request, scheme, program):
    fresh = {
        "trace": trace_engine(scheme).run().stats_sha256,
        "program": program_engine(program, scheme).run().stats_sha256,
    }
    if request.config.getoption("--update-goldens"):
        goldens = (
            json.loads(GOLDEN_PATH.read_text()) if GOLDEN_PATH.exists() else {}
        )
        goldens[scheme] = fresh
        GOLDEN_PATH.write_text(
            json.dumps(goldens, indent=2, sort_keys=True) + "\n"
        )
        return
    assert GOLDEN_PATH.exists(), (
        f"golden {GOLDEN_PATH} missing — generate with "
        "pytest tests/core/test_stats_integration.py --update-goldens"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    assert fresh == golden[scheme], (
        f"{scheme}: stats digest diverged from golden — simulated behaviour "
        "changed; if intentional, regenerate with --update-goldens"
    )
