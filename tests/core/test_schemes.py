"""Slack scheme policy tests (paper §3.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.schemes import (
    INFINITY,
    BoundedSlack,
    CycleByCycle,
    Lookahead,
    OldestFirstBoundedSlack,
    QuantumBased,
    UnboundedSlack,
    parse_scheme,
)


class TestParsing:
    def test_all_paper_schemes_parse(self):
        for spec, cls in [
            ("cc", CycleByCycle),
            ("q10", QuantumBased),
            ("l10", Lookahead),
            ("s9", BoundedSlack),
            ("s9*", OldestFirstBoundedSlack),
            ("s100", BoundedSlack),
            ("su", UnboundedSlack),
        ]:
            assert isinstance(parse_scheme(spec), cls)

    def test_names_roundtrip(self):
        for spec in ["cc", "q10", "l10", "s9", "s9*", "s100", "su"]:
            assert parse_scheme(spec).name == spec

    def test_case_and_whitespace_tolerant(self):
        assert parse_scheme(" S9* ").name == "s9*"

    def test_scheme_object_passthrough(self):
        s = BoundedSlack(5)
        assert parse_scheme(s) is s

    def test_bad_specs_rejected(self):
        for bad in ["", "x9", "s", "q", "s-1", "q0x", "ss9", "9s"]:
            with pytest.raises(ValueError):
                parse_scheme(bad)

    def test_zero_parameters_rejected(self):
        with pytest.raises(ValueError):
            QuantumBased(0)
        with pytest.raises(ValueError):
            BoundedSlack(0)
        with pytest.raises(ValueError):
            Lookahead(0)


class TestWindows:
    def test_cc_window_is_one_cycle(self):
        cc = CycleByCycle()
        assert cc.max_local(0) == 1
        assert cc.max_local(41) == 42
        assert cc.gq_policy == "barrier" and cc.conservative

    def test_quantum_window_aligns_to_boundaries(self):
        q = QuantumBased(10)
        assert q.max_local(0) == 10
        assert q.max_local(9) == 10
        assert q.max_local(10) == 20
        assert q.max_local(15) == 20

    def test_bounded_window_slides(self):
        s = BoundedSlack(9)
        assert s.max_local(0) == 9
        assert s.max_local(100) == 109
        assert s.gq_policy == "immediate" and not s.conservative

    def test_oldest_first_is_conservative(self):
        s = OldestFirstBoundedSlack(9)
        assert s.max_local(5) == 14
        assert s.gq_policy == "oldest" and s.conservative

    def test_lookahead_bounded_by_oldest_pending(self):
        la = Lookahead(10)
        assert la.max_local(50) == 60
        assert la.max_local(50, oldest_pending_ts=45) == 55
        assert la.max_local(50, oldest_pending_ts=70) == 60  # min(global, oldest)

    def test_unbounded_never_blocks(self):
        su = UnboundedSlack()
        assert su.max_local(0) == INFINITY
        assert su.max_local(10**9) == INFINITY

    @given(st.integers(0, 10**6), st.integers(1, 1000))
    def test_window_invariant_max_exceeds_global(self, global_time, param):
        for scheme in [CycleByCycle(), QuantumBased(param), BoundedSlack(param),
                       OldestFirstBoundedSlack(param), UnboundedSlack()]:
            assert scheme.max_local(global_time) > global_time

    @given(st.integers(0, 10**6), st.integers(1, 100))
    def test_quantum_window_is_next_multiple(self, global_time, q):
        m = QuantumBased(q).max_local(global_time)
        assert m % q == 0 and 0 < m - global_time <= q


class TestAdaptiveQuantum:
    def test_parse(self):
        from repro.core.schemes import AdaptiveQuantum

        s = parse_scheme("aq10-160")
        assert isinstance(s, AdaptiveQuantum)
        assert s.min_quantum == 10 and s.max_quantum == 160
        assert not s.conservative and s.gq_policy == "barrier"

    def test_bad_bounds_rejected(self):
        from repro.core.schemes import AdaptiveQuantum

        with pytest.raises(ValueError):
            AdaptiveQuantum(0, 10)
        with pytest.raises(ValueError):
            AdaptiveQuantum(20, 10)

    def test_boundary_is_absolute(self):
        s = parse_scheme("aq10-160")
        assert s.max_local(0) == 10
        assert s.max_local(7) == 10  # does NOT slide with global time

    def test_adapt_grows_when_sparse(self):
        s = parse_scheme("aq10-160")
        s.adapt(requests=0, quantum_cycles=10)   # sparse -> double
        assert s.current_quantum == 20
        assert s.next_boundary == 30

    def test_adapt_shrinks_when_dense(self):
        s = parse_scheme("aq10-160")
        s.adapt(requests=0, quantum_cycles=10)   # 10 -> 20
        s.adapt(requests=50, quantum_cycles=20)  # dense -> halve
        assert s.current_quantum == 10

    def test_quantum_stays_in_bounds(self):
        s = parse_scheme("aq10-40")
        for _ in range(10):
            s.adapt(requests=0, quantum_cycles=10)
        assert s.current_quantum == 40
        for _ in range(10):
            s.adapt(requests=1000, quantum_cycles=10)
        assert s.current_quantum == 10

    def test_runs_and_stays_correct(self):
        from repro.core import run_simulation
        from repro.workloads import make_workload

        w = make_workload("lu", scale="tiny")
        r = run_simulation(w.program, scheme="aq10-160", host_cores=4)
        assert w.verify(r.output)
        q10 = run_simulation(w.program, scheme="q10", host_cores=4)
        assert r.barriers < q10.barriers
