"""Property tests for the static window planner (repro.core.schedule).

The planner's contract (DESIGN.md §9) is that a static superstep is a
re-bracketing of the dynamic loop's per-turn budgets, never a behavioural
change.  Hypothesis pins the invariants the differential tests rely on:

* batches are positive, never exceed the turn cap, and never cross the
  window edge — the core's next possible cross-core interaction point;
* they sum to exactly the planned span (window, or the ``max_cycles``
  runaway net plus the one-cycle overshoot the guard observes);
* the first batch equals the per-turn budget the dynamic engine computes
  for a barrier-policy core at the same clock state, so consuming a batch
  and re-planning reproduces the dynamic decomposition turn for turn.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.schedule import plan_window, split_batches

TIMES = st.integers(min_value=0, max_value=10_000)
CAPS = st.integers(min_value=1, max_value=512)


def dynamic_turn_budget(local: int, edge: int, turn_cap: int, limit: int) -> int:
    """``SequentialEngine._turn_budget`` for a barrier-policy core whose
    scheme grant equals its window remainder (grant >= window there)."""
    budget = edge - local
    if turn_cap < budget:
        budget = turn_cap
    net = limit + 1 - local
    if net < budget:
        budget = net
    return budget if budget > 0 else 1


@settings(max_examples=200, deadline=None)
@given(start=TIMES, span=st.integers(0, 4096), turn_cap=CAPS)
def test_batches_tile_the_window(start, span, turn_cap):
    edge = start + span
    batches = split_batches(start, edge, turn_cap)
    assert all(b > 0 for b in batches)
    assert all(b <= turn_cap for b in batches)
    assert sum(batches) == span  # exact tiling: nothing crosses the edge
    # Maximality: every batch but the last is a full turn cap (the planner
    # never cuts a batch short of a possible interaction point).
    assert all(b == turn_cap for b in batches[:-1])


@settings(max_examples=200, deadline=None)
@given(
    start=TIMES,
    span=st.integers(0, 4096),
    turn_cap=CAPS,
    headroom=st.integers(-64, 4096),
)
def test_limit_net_clamps_like_the_runaway_guard(start, span, turn_cap, headroom):
    edge = start + span
    limit = start + headroom
    batches = split_batches(start, edge, turn_cap, limit)
    if span == 0:
        assert batches == ()
        return
    assert all(0 < b <= turn_cap for b in batches)
    planned = sum(batches)
    if limit + 1 - start >= span:
        assert planned == span  # net not binding
    else:
        # Clamped at the net, overshooting the limit by exactly the one
        # cycle the engine's runaway guard needs to observe — with the
        # dynamic floor of one granted cycle.
        assert planned == max(limit + 1 - start, 1)
        assert start + planned <= max(limit + 1, start + 1)


@settings(max_examples=300, deadline=None)
@given(
    start=TIMES,
    span=st.integers(1, 4096),
    turn_cap=CAPS,
    headroom=st.integers(0, 8192),
)
def test_first_batch_is_the_dynamic_turn_budget(start, span, turn_cap, headroom):
    """Re-planning after each consumed batch replays the dynamic loop."""
    edge = start + span
    limit = start + headroom
    local = start
    while local < edge:
        plan = split_batches(local, edge, turn_cap, limit)
        assert plan, "plan empty before the edge"
        expected = dynamic_turn_budget(local, edge, turn_cap, limit)
        assert plan[0] == expected
        local += plan[0]
        if local > limit:
            break  # the engine's runaway guard fires here


@settings(max_examples=100, deadline=None)
@given(
    data=st.lists(
        st.tuples(TIMES, st.integers(0, 1024)), min_size=0, max_size=8
    ),
    turn_cap=CAPS,
)
def test_plan_window_covers_every_active_core(data, turn_cap):
    cores = [(cid, local, local + span) for cid, (local, span) in enumerate(data)]
    plans = plan_window(cores, turn_cap)
    assert [p.core_id for p in plans] == [c[0] for c in cores]
    for plan, (_, local, edge) in zip(plans, cores):
        assert plan.cycles == edge - local
        assert plan.batches == split_batches(local, edge, turn_cap)
        # A core already at its edge gets an empty plan (suspends without
        # a turn — only reachable mid-restore).
        if edge == local:
            assert plan.batches == ()
