"""Threaded engine tests: functional parity with the sequential engine.

Wall-clock numbers are GIL-bound and nondeterministic; these tests assert
*correctness* (outputs, invariants, termination), never timing.
"""

import pytest

from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.core.threaded import ThreadedEngine
from repro.lang import compile_source
from repro.workloads import make_workload

SMALL_TARGET = TargetConfig(num_cores=4)


def run_threaded(prog, scheme, num_cores=4, seed=1):
    engine = ThreadedEngine(
        prog,
        target=TargetConfig(num_cores=num_cores),
        host=HostConfig(num_cores=4),
        sim=SimConfig(scheme=scheme, seed=seed),
    )
    return engine.run(timeout=60.0)


COUNTER_SRC = """
int lk; int bar; int counter;
void worker(int tid) {
    for (int i = 0; i < 10; i = i + 1) {
        lock(&lk);
        counter = counter + 1;
        unlock(&lk);
    }
    barrier(&bar);
}
int main() {
    int tids[4];
    init_lock(&lk);
    init_barrier(&bar, 4);
    for (int t = 1; t < 4; t = t + 1) tids[t] = spawn(worker, t);
    worker(0);
    for (int t = 1; t < 4; t = t + 1) join(tids[t]);
    print_int(counter);
    return 0;
}
"""


@pytest.mark.parametrize("scheme", ["cc", "q10", "s9", "su"])
def test_lock_counter_is_exact_under_real_threads(scheme):
    prog = compile_source(COUNTER_SRC).program
    r = run_threaded(prog, scheme)
    assert r.int_output() == [40]
    assert r.completed


def test_semaphore_pipeline_under_threads():
    src = """
    int items; int space; int mailbox; int got[8];
    void consumer(int tid) {
        for (int i = 0; i < 8; i = i + 1) {
            sema_wait(&items);
            got[i] = mailbox;
            sema_signal(&space);
        }
    }
    int main() {
        init_sema(&items, 0);
        init_sema(&space, 1);
        int c = spawn(consumer, 0);
        for (int i = 0; i < 8; i = i + 1) {
            sema_wait(&space);
            mailbox = i * 5;
            sema_signal(&items);
        }
        join(c);
        int s = 0;
        for (int i = 0; i < 8; i = i + 1) s = s + got[i];
        print_int(s);
        return 0;
    }
    """
    prog = compile_source(src).program
    r = run_threaded(prog, "s9")
    assert r.int_output() == [5 * sum(range(8))]


def test_benchmark_verifies_on_threads():
    w = make_workload("lu", scale="tiny")
    r = run_threaded(w.program, "s9")
    assert w.verify(r.output)


def test_threaded_matches_sequential_functionally():
    from repro.core import run_simulation

    prog = compile_source(COUNTER_SRC).program
    seq = run_simulation(prog, scheme="s9", host_cores=4,
                         target=TargetConfig(num_cores=4))
    thr = run_threaded(prog, "s9")
    assert seq.int_output() == thr.int_output()
    assert seq.instructions > 0 and thr.instructions > 0


def test_instruction_counts_are_consistent():
    prog = compile_source(COUNTER_SRC).program
    r = run_threaded(prog, "su")
    assert r.instructions == sum(c.committed for c in r.cores)


# --------------------------------------------------------------------- stress
#
# Stress shapes chosen to hammer the two synchronization hot spots of the
# threaded engine: the window-edge suspend/wake path (a storm of target
# barriers forces every thread through it repeatedly) and the InQ/OutQ lock
# traffic under a heavily contended target lock.  Each shape runs across many
# seeds — seeds change the modeled cost jitter and hence thread interleaving —
# and must produce the exact output of the deterministic sequential engine.
# The engine-level timeout is a hard deadlock detector: a lost wake or
# deadlocked window protocol fails the test instead of hanging the suite.

BARRIER_STORM_SRC = """
int bar; int acc; int lk;
void worker(int tid) {
    for (int i = 0; i < 8; i = i + 1) {
        barrier(&bar);
        lock(&lk);
        acc = acc + tid + i;
        unlock(&lk);
        barrier(&bar);
    }
}
int main() {
    int tids[4];
    init_lock(&lk);
    init_barrier(&bar, 4);
    for (int t = 1; t < 4; t = t + 1) tids[t] = spawn(worker, t);
    worker(0);
    for (int t = 1; t < 4; t = t + 1) join(tids[t]);
    print_int(acc);
    return 0;
}
"""

LOCK_CONTENTION_SRC = """
int lk; int counter;
void worker(int tid) {
    for (int i = 0; i < 25; i = i + 1) {
        lock(&lk);
        counter = counter + 1;
        unlock(&lk);
    }
}
int main() {
    int tids[4];
    init_lock(&lk);
    for (int t = 1; t < 4; t = t + 1) tids[t] = spawn(worker, t);
    worker(0);
    for (int t = 1; t < 4; t = t + 1) join(tids[t]);
    print_int(counter);
    return 0;
}
"""

#: barrier storm: sum over threads/iterations of (tid + i).
BARRIER_STORM_EXPECT = sum(tid + i for tid in range(4) for i in range(8))
LOCK_CONTENTION_EXPECT = 4 * 25


@pytest.mark.parametrize("seed", range(10))
def test_barrier_storm_across_seeds(seed):
    prog = compile_source(BARRIER_STORM_SRC).program
    r = run_threaded(prog, "q10", seed=seed)
    assert r.completed
    assert r.int_output() == [BARRIER_STORM_EXPECT]


@pytest.mark.parametrize("seed", range(10))
def test_lock_contention_across_seeds(seed):
    prog = compile_source(LOCK_CONTENTION_SRC).program
    r = run_threaded(prog, "s9", seed=seed)
    assert r.completed
    assert r.int_output() == [LOCK_CONTENTION_EXPECT]


@pytest.mark.parametrize("scheme", ["cc", "q10", "s9", "su"])
def test_stress_output_matches_sequential(scheme):
    from repro.core import run_simulation

    prog = compile_source(BARRIER_STORM_SRC).program
    seq = run_simulation(
        prog,
        target=TargetConfig(num_cores=4),
        host=HostConfig(num_cores=4),
        sim=SimConfig(scheme=scheme, seed=2),
    )
    thr = run_threaded(prog, scheme, seed=2)
    assert seq.int_output() == thr.int_output() == [BARRIER_STORM_EXPECT]


# ------------------------------------------------------------------ watchdog
def test_watchdog_aborts_hung_run_with_diagnostics():
    """A frozen manager (global time pinned, no window raises) starves every
    core; the progress watchdog must abort with per-core clock state and
    thread stacks instead of hanging until a wall-clock cap."""
    from repro.core.manager import ManagerStepResult
    from repro.core.threaded import SimulationHungError

    prog = compile_source(COUNTER_SRC).program
    engine = ThreadedEngine(
        prog,
        target=SMALL_TARGET,
        host=HostConfig(num_cores=4),
        sim=SimConfig(scheme="cc", host_timeout=0.5),
    )
    engine.manager.step = lambda: ManagerStepResult()  # type: ignore[method-assign]
    with pytest.raises(SimulationHungError) as excinfo:
        engine.run()  # watchdog window comes from SimConfig.host_timeout
    err = excinfo.value
    assert err.timeout == 0.5
    assert err.global_time == 0
    assert len(err.core_clocks) == 4
    assert all(
        set(c) == {"core", "state", "local", "max_local", "inq", "outq"}
        for c in err.core_clocks
    )
    assert "manager" in err.stacks and "core-0" in err.stacks
    assert "no progress" in str(err) and "thread stacks" in str(err)


def test_watchdog_window_passes_healthy_runs():
    """The window bounds *stall* time, not total time: a progressing run
    with a window far shorter than its full runtime still completes."""
    prog = compile_source(COUNTER_SRC).program
    engine = ThreadedEngine(
        prog,
        target=SMALL_TARGET,
        host=HostConfig(num_cores=4),
        sim=SimConfig(scheme="q10", host_timeout=10.0),
    )
    r = engine.run()  # no explicit timeout: SimConfig.host_timeout applies
    assert r.completed
    assert r.int_output() == [40]
