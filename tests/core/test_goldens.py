"""Golden determinism tests: pinned digests of full simulation results.

Two guarantees per scheme:

1. **Determinism across commits** — the batched sequential engine's complete
   result (target clocks, instruction counts, modeled host times down to the
   bit, via ``float.hex``) matches a golden digest checked into the repo.
   Any change to the engine, cost model or scheme logic that perturbs
   behavior shows up as a golden diff and must be deliberate: regenerate
   with ``pytest tests/core/test_goldens.py --update-goldens``.

2. **Batching is behavior-invariant** — running the identical configuration
   with ``stepping="single"`` (one ``model.step`` call per cycle, the
   equivalence oracle for the ``wait_state``/``skip`` fast path) produces
   the *same* digest.  The run-ahead jumps in ``CoreThread.step_many`` are
   a pure host-side speedup, never a semantic change.

The threaded engine is additionally checked *functionally*: its workload
output must match the golden (wall-clock host numbers are real time there
and inherently nondeterministic).
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.core.engine import SequentialEngine
from repro.core.threaded import ThreadedEngine
from repro.lang import compile_source
from repro.workloads.synthetic import sharing_workload

GOLDEN_DIR = Path(__file__).parent / "goldens"

SCHEMES = ["cc", "q10", "l10", "s9", "s9*", "s100", "su"]

#: Small but contentious: 4 threads, a shared lock-protected counter and a
#: closing barrier — exercises locks, coherence and spawn/join.
PROGRAM_SRC = """
int lk; int bar; int counter;
void worker(int tid) {
    for (int i = 0; i < 6; i = i + 1) {
        lock(&lk);
        counter = counter + 1;
        unlock(&lk);
    }
    barrier(&bar);
}
int main() {
    int tids[4];
    init_lock(&lk);
    init_barrier(&bar, 4);
    for (int t = 1; t < 4; t = t + 1) tids[t] = spawn(worker, t);
    worker(0);
    for (int t = 1; t < 4; t = t + 1) join(tids[t]);
    print_int(counter);
    return 0;
}
"""

TRACE_SIM = SimConfig(seed=11)
TRACE_TARGET = TargetConfig(num_cores=4, core_model="trace")
PROGRAM_SIM = SimConfig(seed=11)
PROGRAM_TARGET = TargetConfig(num_cores=4)
HOST = HostConfig(num_cores=4)


@pytest.fixture(scope="module")
def program():
    return compile_source(PROGRAM_SRC).program


def digest(result) -> dict:
    """Stable, JSON-serializable fingerprint of a SimulationResult.

    Host times are recorded via ``float.hex`` so the comparison is bit-exact
    (``engine_steps`` is excluded: it counts host scheduler-loop iterations,
    an implementation detail that optimizations legitimately change).
    """
    return {
        "scheme": result.scheme,
        "completed": result.completed,
        "execution_cycles": result.execution_cycles,
        "global_time": result.global_time,
        "instructions": result.instructions,
        "host_time": float(result.host_time).hex(),
        "host_busy": float(result.host_busy).hex(),
        "output": list(result.output),
        "requests": result.requests,
        "barriers": result.barriers,
        "violations": {
            "simulation_state": result.violations.simulation_state,
            "system_state": result.violations.system_state,
            "workload_state": result.violations.workload_state,
        },
        "cores": [
            {
                "committed": c.committed,
                "cycles": c.cycles,
                "final_time": c.final_time,
            }
            for c in result.cores
        ],
    }


def run_sequential(scheme: str, program, stepping: str) -> dict:
    if program is None:
        engine = SequentialEngine(
            None,
            trace_cores=sharing_workload(4, 24, seed=3),
            target=TRACE_TARGET,
            host=HOST,
            sim=replace(TRACE_SIM, scheme=scheme, stepping=stepping),
        )
    else:
        engine = SequentialEngine(
            program,
            target=PROGRAM_TARGET,
            host=HOST,
            sim=replace(PROGRAM_SIM, scheme=scheme, stepping=stepping),
        )
    return digest(engine.run())


def golden_path(scheme: str) -> Path:
    return GOLDEN_DIR / f"{scheme.replace('*', 'star')}.json"


def load_or_update(request, scheme: str, fresh: dict) -> dict:
    path = golden_path(scheme)
    if request.config.getoption("--update-goldens"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(fresh, indent=2, sort_keys=True) + "\n")
        return fresh
    assert path.exists(), (
        f"golden {path} missing — generate with "
        "pytest tests/core/test_goldens.py --update-goldens"
    )
    return json.loads(path.read_text())


@pytest.mark.parametrize("scheme", SCHEMES)
def test_sequential_batched_matches_golden(request, scheme, program):
    fresh = {
        "trace": run_sequential(scheme, None, "batched"),
        "program": run_sequential(scheme, program, "batched"),
    }
    golden = load_or_update(request, scheme, fresh)
    assert fresh == golden, (
        f"{scheme}: batched result diverged from golden — if intentional, "
        "regenerate with --update-goldens"
    )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_single_stepping_matches_golden(request, scheme, program):
    """stepping='single' (per-cycle oracle) must be bit-identical to the
    batched fast path: run-ahead jumps never change behavior."""
    fresh = {
        "trace": run_sequential(scheme, None, "single"),
        "program": run_sequential(scheme, program, "single"),
    }
    golden = load_or_update(request, scheme, fresh)
    assert fresh == golden, f"{scheme}: single-step oracle diverged from batched golden"


@pytest.mark.parametrize("scheme", SCHEMES)
def test_threaded_functional_matches_golden(request, scheme, program):
    """The real-thread engine must reproduce the golden workload output
    (host timing is wall-clock there, so only functional state is pinned)."""
    golden = load_or_update(
        request, scheme, {
            "trace": run_sequential(scheme, None, "batched"),
            "program": run_sequential(scheme, program, "batched"),
        },
    )
    engine = ThreadedEngine(
        program,
        target=PROGRAM_TARGET,
        host=HOST,
        sim=replace(PROGRAM_SIM, scheme=scheme),
    )
    result = engine.run(timeout=120.0)
    assert result.completed
    assert list(result.output) == golden["program"]["output"]
    assert result.instructions == sum(c.committed for c in result.cores)
