"""CoreThread unit tests: batching, window edges, InQ routing, skip-ahead."""

from repro.core.corethread import BatchStats, CoreState, CoreThread
from repro.core.events import EvKind, Event
from repro.cpu.interfaces import CorePhase


class _ScriptedModel:
    """A minimal core model whose per-cycle behaviour is scripted."""

    def __init__(self, active_pattern=None, halt_after=None):
        self.phase = CorePhase.ACTIVE
        self.pending_wakes = []
        self.steps = []
        self.delivered = []
        self.invalidated = []
        self.downgraded = []
        self.active_pattern = active_pattern or []
        self.halt_after = halt_after
        self._hint = None

    def activate(self, pc, arg, ts):
        self.phase = CorePhase.ACTIVE

    def step(self, now):
        self.steps.append(now)
        if self.halt_after is not None and len(self.steps) > self.halt_after:
            self.phase = CorePhase.HALTED
            return 0, True
        if self.active_pattern:
            active = self.active_pattern[min(len(self.steps) - 1, len(self.active_pattern) - 1)]
        else:
            active = True
        return (1 if active else 0), active

    def deliver_response(self, ev):
        self.delivered.append(ev)

    def apply_invalidation(self, addr):
        self.invalidated.append(addr)

    def apply_downgrade(self, addr):
        self.downgraded.append(addr)

    def stall_hint(self, now):
        return self._hint


def make_thread(model=None, max_local=100):
    ct = CoreThread(0, model or _ScriptedModel())
    ct.activate(0, 0, 0)
    ct.max_local_time = max_local
    return ct


class TestBatching:
    def test_budget_limits_cycles(self):
        ct = make_thread()
        stats = ct.run(5)
        assert stats.cycles == 5
        assert ct.local_time == 5

    def test_window_edge_stops_batch(self):
        ct = make_thread(max_local=3)
        stats = ct.run(10)
        assert stats.cycles == 3
        assert stats.hit_window_edge
        assert ct.local_time == 3

    def test_zero_window_runs_nothing(self):
        ct = make_thread(max_local=0)
        stats = ct.run(10)
        assert stats.cycles == 0 and stats.hit_window_edge

    def test_halting_sets_done_and_final_time(self):
        ct = make_thread(_ScriptedModel(halt_after=4))
        ct.run(20)
        assert ct.state == CoreState.DONE
        assert ct.final_time == 5
        assert not ct.run(20).cycles  # done threads do not run

    def test_active_idle_classification(self):
        ct = make_thread(_ScriptedModel(active_pattern=[True, False, False, True]))
        stats = ct.run(4)
        assert stats.active_cycles == 2
        assert stats.idle_cycles == 2

    def test_totals_accumulate(self):
        ct = make_thread()
        ct.run(4)
        ct.run(3)
        assert ct.total_cycles == 7
        assert ct.total_committed == 7


class TestInQRouting:
    def test_due_events_route_by_kind(self):
        model = _ScriptedModel()
        ct = make_thread(model)
        ct.deliver(Event(EvKind.RESPONSE, 0x40, 0, ts=0, grant="E"))
        ct.deliver(Event(EvKind.INVALIDATE, 0x80, 0, ts=0))
        ct.deliver(Event(EvKind.DOWNGRADE, 0xC0, 0, ts=0))
        ct.run(1)
        assert [e.addr for e in model.delivered] == [0x40]
        assert model.invalidated == [0x80]
        assert model.downgraded == [0xC0]

    def test_future_events_wait_for_local_time(self):
        model = _ScriptedModel()
        ct = make_thread(model)
        ct.deliver(Event(EvKind.RESPONSE, 0x40, 0, ts=6, grant="E"))
        ct.run(3)
        assert model.delivered == []
        ct.run(5)
        assert len(model.delivered) == 1

    def test_wakes_are_collected(self):
        model = _ScriptedModel()
        ct = make_thread(model)
        model.pending_wakes.append((3, 17))
        stats = ct.run(1)
        assert stats.wakes == [(3, 17)]
        assert model.pending_wakes == []


class TestSkipAhead:
    def test_hint_jumps_in_one_batch(self):
        model = _ScriptedModel(active_pattern=[False])
        model._hint = 50
        ct = make_thread(model)
        stats = ct.run(100)
        # The first cycle steps, then a 49-cycle jump happens without any
        # model.step calls; past the hint the model is stepped per cycle.
        assert ct.local_time >= 50
        assert len(model.steps) == stats.cycles - 49

    def test_jump_capped_by_window(self):
        model = _ScriptedModel(active_pattern=[False])
        model._hint = 500
        ct = make_thread(model, max_local=20)
        ct.run(100)
        assert ct.local_time == 20

    def test_jump_capped_by_pending_event(self):
        model = _ScriptedModel(active_pattern=[False])
        model._hint = 80
        ct = make_thread(model)
        ct.deliver(Event(EvKind.INVALIDATE, 0x80, 0, ts=10))
        ct.run(100)
        # The jump may not skip past the event's timestamp undelivered.
        assert model.invalidated == [0x80]
