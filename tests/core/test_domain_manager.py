"""DomainManager and backend integration tests (DESIGN.md §10).

The determinism ladder under test:

* N=1, any backend — byte-identical stats digests to the monolithic manager;
* N>1 — seed-stable and backend-independent (sequential == threaded ==
  process), with windows floored at the cross-domain exchange quantum.
"""

import os
import pytest

from repro.core import run_simulation
from repro.core.checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.core.domains import DomainManager, SchedulingDomain, ThreadedBackend
from repro.core.engine import EngineError, SequentialEngine
from repro.core.events import EvKind, Event
from repro.workloads.synthetic import sharing_workload

BACKENDS = ["sequential", "threaded", "process"]
#: One scheme per GQ-policy family: barrier, immediate, oldest, lookahead.
SCHEME_FAMILIES = ["cc", "su", "s9*", "l10"]


def _kwargs(scheme="cc", backend="sequential", mem_domains=1, scheduling="dynamic", **sim_kw):
    return dict(
        program=None,
        trace_cores=sharing_workload(4, 16, seed=1),
        host=HostConfig(num_cores=4),
        sim=SimConfig(scheme=scheme, seed=1, scheduling=scheduling,
                      backend=backend, mem_domains=mem_domains, **sim_kw),
        target=TargetConfig(num_cores=4, core_model="trace"),
    )


def run(**kw):
    return run_simulation(**_kwargs(**kw))


def make_engine(**kw):
    return SequentialEngine(**_kwargs(**kw))


class TestInterface:
    def test_both_managers_satisfy_the_protocol(self):
        mono = make_engine().manager
        dom = make_engine(mem_domains=4).manager
        assert not isinstance(mono, DomainManager)
        assert isinstance(dom, DomainManager)
        assert isinstance(mono, SchedulingDomain)
        assert isinstance(dom, SchedulingDomain)

    def test_default_config_keeps_the_monolithic_manager(self):
        assert not make_engine()._domained

    def test_window_floor_is_the_critical_latency(self):
        eng = make_engine(mem_domains=4)
        assert eng.manager.exchange_quantum == eng.memsys.critical_latency() == 10
        assert eng.manager.current_max_local() >= eng.manager.global_time + 10

    def test_single_domain_has_no_floor(self):
        eng = make_engine(backend="threaded", mem_domains=1)
        assert eng.manager.exchange_quantum == 0


class TestDigestLadder:
    @pytest.mark.parametrize("scheme", SCHEME_FAMILIES)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_one_domain_matches_monolithic(self, scheme, backend):
        mono = run(scheme=scheme)
        sharded = run(scheme=scheme, backend=backend, mem_domains=1)
        assert sharded.stats_sha256 == mono.stats_sha256

    def test_multi_domain_seed_stable_and_backend_independent(self):
        digests = {be: run(backend=be, mem_domains=4).stats_sha256 for be in BACKENDS}
        assert len(set(digests.values())) == 1
        assert run(backend="sequential", mem_domains=4).stats_sha256 == digests["sequential"]
        # The floor coarsens cc's windows: behaviour legitimately differs
        # from the monolith (that difference is the speedup).
        assert digests["sequential"] != run().stats_sha256

    def test_threaded_worker_path_matches_inline(self, monkeypatch):
        # The inline fast path normally soaks tiny exchanges; force every
        # exchange through the worker threads and require the same digest.
        reference = run(backend="sequential", mem_domains=4).stats_sha256
        monkeypatch.setattr(ThreadedBackend, "inline_threshold", 0)
        assert run(backend="threaded", mem_domains=4).stats_sha256 == reference

    def test_static_schedule_matches_dynamic_under_domains(self):
        dynamic = run(mem_domains=4)
        static = run(mem_domains=4, scheduling="static")
        assert static.stats["engine.scheduling"] == "static"
        assert static.stats_sha256 == dynamic.stats_sha256


class TestDomainStats:
    def test_per_domain_subtree_and_aggregates(self):
        r = run(backend="threaded", mem_domains=4)
        assert r.stats["mem.domains.count"] == 4
        assert r.stats["mem.domains.exchange_quantum"] == 10
        assert r.stats["mem.domains.exchanges"] > 0
        per_domain = sum(r.stats[f"mem.domains.d{k}.requests_serviced"] for k in range(4))
        assert per_domain == r.stats["mem.requests_serviced"]
        l2_sum = sum(r.stats[f"mem.domains.d{k}.l2_accesses"] for k in range(4))
        assert l2_sum == r.stats["mem.l2.accesses"]
        # Bulk-synchronous lockstep: every domain clock ends at global time.
        clocks = {r.stats[f"mem.domains.d{k}.clock"] for k in range(4)}
        assert len(clocks) == 1
        assert r.stats["violations.cross_domain"] == r.stats.get("violations.cross_domain", 0)

    def test_monolithic_dump_has_no_domain_keys(self):
        r = run()
        assert "mem.domains.count" not in r.stats
        assert "violations.cross_domain" not in r.stats

    def test_backend_and_domains_excluded_from_digest(self):
        # The config knobs appear in the dump but must not enter the digest
        # (otherwise the N=1 ladder could never be byte-identical).
        r = run(backend="threaded", mem_domains=1)
        assert r.stats["sim.backend"] == "threaded"
        assert r.stats["sim.mem_domains"] == 1


class TestCrossDomainDetection:
    def _manager_and_addrs(self):
        eng = make_engine(mem_domains=4)
        manager = eng.manager
        addr_of = {}
        for addr in range(0, 0x4000, 0x40):
            addr_of.setdefault(eng.memsys.domain_of(addr), addr)
        return manager, addr_of

    def test_same_exchange_events_never_count(self):
        manager, addr_of = self._manager_and_addrs()
        batches = [[] for _ in range(4)]
        batches[0] = [Event(EvKind.GETS, addr_of[0], 0, 50)]
        batches[1] = [Event(EvKind.GETS, addr_of[1], 1, 10)]
        manager._detect_cross_domain(batches)
        assert manager.counters.cross_domain == 0  # horizons were empty

    def test_event_below_remote_horizon_is_counted(self):
        manager, addr_of = self._manager_and_addrs()
        first = [[] for _ in range(4)]
        first[0] = [Event(EvKind.GETS, addr_of[0], 0, 50)]
        manager._detect_cross_domain(first)
        second = [[] for _ in range(4)]
        second[1] = [Event(EvKind.GETS, addr_of[1], 1, 10)]
        manager._detect_cross_domain(second)
        assert manager.counters.cross_domain == 1
        assert manager.counters.by_resource == {"domain[1]": 1}

    def test_own_horizon_does_not_self_count(self):
        manager, addr_of = self._manager_and_addrs()
        first = [[] for _ in range(4)]
        first[0] = [Event(EvKind.GETS, addr_of[0], 0, 50)]
        manager._detect_cross_domain(first)
        second = [[] for _ in range(4)]
        second[0] = [Event(EvKind.GETS, addr_of[0], 0, 10)]  # late vs own horizon only
        manager._detect_cross_domain(second)
        assert manager.counters.cross_domain == 0


class TestGates:
    def test_unknown_backend(self):
        with pytest.raises(EngineError, match="unknown backend"):
            make_engine(backend="gpu")

    def test_domains_out_of_range(self):
        with pytest.raises(EngineError, match="mem_domains"):
            make_engine(mem_domains=9)

    def test_faults_rejected_with_domains(self):
        with pytest.raises(EngineError, match="fault"):
            make_engine(mem_domains=4,
                        fault_plan="overrun_window:core=1,at=200,extra=16")

    def test_process_requires_trace_workload(self):
        from repro.workloads.registry import make_workload

        kw = _kwargs(backend="process", mem_domains=4)
        kw["program"] = make_workload("fft", scale="tiny", nthreads=4).program
        kw["trace_cores"] = None
        with pytest.raises(EngineError, match="trace"):
            SequentialEngine(**kw)

    def test_process_rejects_checkpointing(self, tmp_path):
        with pytest.raises(EngineError, match="checkpoint"):
            make_engine(backend="process", mem_domains=4,
                        checkpoint_interval=100,
                        checkpoint_path=str(tmp_path / "ck.pkl"))

    def test_save_checkpoint_rejects_process_backend(self):
        eng = make_engine(backend="process", mem_domains=4)
        with pytest.raises(CheckpointError, match="process"):
            save_checkpoint(eng, os.devnull)


class TestCheckpointRoundTrip:
    def test_threaded_domained_resume_is_byte_identical(self, tmp_path):
        path = str(tmp_path / "ck.pkl")
        eng = make_engine(backend="threaded", mem_domains=4,
                          checkpoint_interval=400, checkpoint_path=path)
        uninterrupted = eng.run()
        resumed = load_checkpoint(path).run()
        assert resumed.stats_sha256 == uninterrupted.stats_sha256
        assert resumed.stats_sha256 == run(backend="threaded", mem_domains=4).stats_sha256
