"""Checkpoint/restore tests (DESIGN.md §8).

The contract under test is **restore equivalence**: for each scheme, the
stats digest (sha256 over the full registry dump, ``float.hex`` host times
included) of

* an uninterrupted run with checkpointing *off*,
* the same run with periodic checkpointing *on*, and
* a run restored from the last checkpoint and finished

must be identical — and match the digest pinned in
``goldens/checkpoint_digests.json`` (regenerate deliberately with
``pytest tests/core/test_checkpoint.py --update-goldens``).  Equality of the
three proves checkpointing is behaviour-free and restores are exact; the
golden proves both stay that way across commits.
"""

from __future__ import annotations

import json
import pickle
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core import events
from repro.core.checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.core.engine import EngineError, SequentialEngine
from repro.lang import compile_source

GOLDEN_PATH = Path(__file__).parent / "goldens" / "checkpoint_digests.json"

SCHEMES = ["cc", "q3", "s2", "su"]

#: The goldens' program shape: contended lock + closing barrier on 4 cores.
PROGRAM_SRC = """
int lk; int bar; int counter;
void worker(int tid) {
    for (int i = 0; i < 6; i = i + 1) {
        lock(&lk);
        counter = counter + 1;
        unlock(&lk);
    }
    barrier(&bar);
}
int main() {
    int tids[4];
    init_lock(&lk);
    init_barrier(&bar, 4);
    for (int t = 1; t < 4; t = t + 1) tids[t] = spawn(worker, t);
    worker(0);
    for (int t = 1; t < 4; t = t + 1) join(tids[t]);
    print_int(counter);
    return 0;
}
"""

HOST = HostConfig(num_cores=4)
TARGET = TargetConfig(num_cores=4)
SIM = SimConfig(seed=11)


@pytest.fixture(scope="module")
def program():
    return compile_source(PROGRAM_SRC).program


def build(program, scheme: str, **sim_overrides) -> SequentialEngine:
    return SequentialEngine(
        program, target=TARGET, host=HOST,
        sim=replace(SIM, scheme=scheme, **sim_overrides),
    )


def pinned_digest(request, scheme: str, fresh: str) -> str:
    goldens = json.loads(GOLDEN_PATH.read_text()) if GOLDEN_PATH.exists() else {}
    if request.config.getoption("--update-goldens"):
        goldens[scheme] = fresh
        GOLDEN_PATH.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
        return fresh
    assert scheme in goldens, (
        f"no checkpoint golden for {scheme} — generate with "
        "pytest tests/core/test_checkpoint.py --update-goldens"
    )
    return goldens[scheme]


# ------------------------------------------------------------- equivalence
@pytest.mark.parametrize("scheme", SCHEMES)
def test_restore_equivalence(request, scheme, program, tmp_path):
    cp = str(tmp_path / "ck.pkl")
    plain = build(program, scheme).run()
    full = build(
        program, scheme, checkpoint_interval=300, checkpoint_path=cp
    ).run()
    assert (tmp_path / "ck.pkl").exists(), "no checkpoint was ever written"
    resumed = load_checkpoint(cp).run()

    # Checkpointing is behaviour-free, restores are exact — to the bit.
    assert plain.stats_sha256 == full.stats_sha256
    assert full.stats_sha256 == resumed.stats_sha256
    assert resumed.completed and list(resumed.output) == [24]
    assert pinned_digest(request, scheme, plain.stats_sha256) == plain.stats_sha256


def test_restore_in_fresh_process(program, tmp_path):
    """The global event seq counter travels in the payload: a restore in a
    brand-new interpreter (counter at zero) must still replay the exact
    tie-break stream."""
    cp = str(tmp_path / "ck.pkl")
    full = build(
        program, "q3", checkpoint_interval=300, checkpoint_path=cp
    ).run()
    script = (
        "from repro.core.checkpoint import load_checkpoint\n"
        f"print(load_checkpoint({cp!r}).run().stats_sha256)\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, check=True,
        cwd=str(Path(__file__).resolve().parents[2] / "src"),
    )
    assert out.stdout.strip() == full.stats_sha256


def test_ooo_core_roundtrip(program, tmp_path):
    """The OoO model's in-flight state (ROB, MSHRs, store buffer) pickles;
    its predecode closures are re-derived on restore."""
    cp = str(tmp_path / "ck.pkl")
    target = TargetConfig(num_cores=4, core_model="ooo")

    def run_ooo(**overrides):
        return SequentialEngine(
            program, target=target, host=HOST,
            sim=replace(SIM, scheme="s2", **overrides),
        ).run()

    plain = run_ooo()
    full = run_ooo(checkpoint_interval=300, checkpoint_path=cp)
    resumed = load_checkpoint(cp).run()
    assert plain.stats_sha256 == full.stats_sha256 == resumed.stats_sha256


def test_static_schedule_checkpoint_fresh_process(tmp_path):
    """A checkpoint written at a static window boundary restores bit-exactly
    in a brand-new interpreter.

    Trace cores under a barrier scheme are where static scheduling actually
    engages; the payload's ``static_release`` marker must route the restored
    run back into the superstep loop, and the digest must match both the
    uninterrupted static run and the dynamic oracle.
    """
    from repro.workloads.synthetic import sharing_workload

    target = TargetConfig(num_cores=4, core_model="trace")

    def run_trace(scheduling, **overrides):
        return SequentialEngine(
            None,
            trace_cores=sharing_workload(4, 24, seed=3),
            target=target, host=HOST,
            sim=replace(SIM, scheme="q3", scheduling=scheduling, **overrides),
        ).run()

    cp = str(tmp_path / "ck.pkl")
    dynamic = run_trace("dynamic")
    static = run_trace("static", checkpoint_interval=300, checkpoint_path=cp)
    assert static.stats["engine.scheduling"] == "static"
    assert (tmp_path / "ck.pkl").exists(), "no static checkpoint was written"
    assert static.stats_sha256 == dynamic.stats_sha256

    script = (
        "from repro.core.checkpoint import load_checkpoint\n"
        f"result = load_checkpoint({cp!r}).run()\n"
        "print(result.stats_sha256)\n"
        "print(result.stats['engine.scheduling'])\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, check=True,
        cwd=str(Path(__file__).resolve().parents[2] / "src"),
    )
    digest, scheduling = out.stdout.split()
    assert digest == static.stats_sha256
    assert scheduling == "static"  # resumed mid-window back into the superstep


def test_timing_blocks_rederived_on_restore(program, tmp_path):
    """The in-order core's compiled timing superblocks are closures — they
    must be dropped at pickle time and re-derived (fresh tables, same
    program) on restore, like the per-instruction predecode tables."""
    from repro.cpu.predecode import TimingBlocks

    cp = str(tmp_path / "ck.pkl")
    engine = build(program, "q3")
    models = [ct.model for ct in engine.cores]
    assert all(m._tblocks is not None for m in models)
    save_checkpoint(engine, cp)
    restored = load_checkpoint(cp)
    for ct in restored.cores:
        tb = ct.model._tblocks
        assert isinstance(tb, TimingBlocks)
        assert any(tb.lens), "restored timing-block table is empty"
        # Re-derived, not round-tripped: fresh objects per restored program.
        assert tb is not models[0]._tblocks
    assert restored.run().stats_sha256 == build(program, "q3").run().stats_sha256


def test_time_zero_checkpoint(program, tmp_path):
    """save_checkpoint works on an engine that has not run yet: the restored
    engine runs the whole simulation from scratch, bit-identically."""
    cp = str(tmp_path / "ck.pkl")
    save_checkpoint(build(program, "q3"), cp)
    restored = load_checkpoint(cp).run()
    plain = build(program, "q3").run()
    assert restored.stats_sha256 == plain.stats_sha256


def test_registry_rebuilds_after_restore(program, tmp_path):
    """The dropped registry (dump-time lambdas) reattaches lazily and still
    sees the travelled slack histogram."""
    cp = str(tmp_path / "ck.pkl")
    build(program, "q3", checkpoint_interval=300, checkpoint_path=cp).run()
    engine = load_checkpoint(cp)
    assert engine._registry is None
    result = engine.run()
    stats = result.stats
    assert stats["engine.core_turns"] > 0  # sourced from the pickled _slack_dist
    assert stats["sim.completed"] == 1


# ------------------------------------------------------------- configuration
def test_interval_without_path_rejected(program):
    with pytest.raises(EngineError, match="checkpoint_path"):
        build(program, "cc", checkpoint_interval=100)


def test_faulted_runs_cannot_checkpoint(program, tmp_path):
    cp = str(tmp_path / "ck.pkl")
    with pytest.raises(EngineError, match="fault"):
        build(
            program, "cc", checkpoint_interval=100, checkpoint_path=cp,
            fault_plan="corrupt_dir:at=400",
        )
    # Direct save on a faulted engine is refused too.
    engine = build(program, "cc", fault_plan="corrupt_dir:at=400")
    with pytest.raises(CheckpointError, match="fault"):
        save_checkpoint(engine, cp)


def test_load_rejects_missing_and_garbage(tmp_path):
    with pytest.raises(CheckpointError, match="no checkpoint"):
        load_checkpoint(str(tmp_path / "absent.pkl"))
    garbage = tmp_path / "garbage.pkl"
    garbage.write_bytes(b"not a pickle at all")
    with pytest.raises(CheckpointError):
        load_checkpoint(str(garbage))
    wrong = tmp_path / "wrong.pkl"
    wrong.write_bytes(pickle.dumps({"format": 999, "engine": None, "seq_position": 0}))
    with pytest.raises(CheckpointError, match="format"):
        load_checkpoint(str(wrong))


# ---------------------------------------------------------------- seq counter
def test_seq_helpers_are_monotonic():
    before = events.seq_position()
    events.new_seq()
    assert events.seq_position() == before + 1
    # Advancing forward moves the stream; "advancing" backward is a no-op.
    events.seq_advance_to(events.seq_position() + 10)
    jumped = events.seq_position()
    assert jumped == before + 11
    events.seq_advance_to(0)
    assert events.seq_position() == jumped
