"""Virtual-host schedule builder and cost-model tests."""

import pytest
from hypothesis import given, strategies as st

from repro.core.config import HostConfig
from repro.core.corethread import BatchStats
from repro.host.costmodel import CostModel
from repro.host.hostmodel import HostModel


class TestHostModel:
    def test_single_core_serialises(self):
        host = HostModel(1)
        assert host.run(0.0, 5.0) == 5.0
        assert host.run(0.0, 5.0) == 10.0
        assert host.makespan() == 10.0

    def test_two_cores_parallelise(self):
        host = HostModel(2)
        assert host.run(0.0, 5.0) == 5.0
        assert host.run(0.0, 5.0) == 5.0
        assert host.run(0.0, 5.0) == 10.0

    def test_ready_time_respected(self):
        host = HostModel(2)
        assert host.run(7.0, 1.0) == 8.0

    def test_earliest_start_choice(self):
        host = HostModel(2)
        host.run(0.0, 10.0)   # core 0 busy until 10
        host.run(0.0, 2.0)    # core 1 busy until 2
        assert host.run(0.0, 1.0) == 3.0  # goes to core 1

    def test_utilization_report(self):
        host = HostModel(2)
        host.run(0.0, 4.0)
        host.run(0.0, 4.0)
        report = host.report()
        assert report.makespan == 4.0
        assert report.utilization == 1.0

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            HostModel(0)

    @given(st.lists(st.tuples(st.floats(0, 100), st.floats(0.1, 10)), min_size=1, max_size=60),
           st.integers(1, 8))
    def test_makespan_bounds(self, jobs, cores):
        """Makespan is at least busy/cores and at least the longest job."""
        host = HostModel(cores)
        for ready, cost in jobs:
            host.run(ready, cost)
        total = sum(cost for _, cost in jobs)
        assert host.makespan() >= total / cores - 1e-9
        assert host.busy == pytest.approx(total)


class TestCostModel:
    def make(self, sigma=0.25, seed=1):
        return CostModel(HostConfig(jitter_sigma=sigma), seed, num_cores=4)

    def stats(self, active=10, idle=0, ev=0):
        s = BatchStats()
        s.active_cycles = active
        s.idle_cycles = idle
        s.events_out = ev
        return s

    def test_deterministic_per_seed(self):
        a = self.make(seed=3)
        b = self.make(seed=3)
        sa = [a.core_batch_cost(0, self.stats(), suspended=False) for _ in range(5)]
        sb = [b.core_batch_cost(0, self.stats(), suspended=False) for _ in range(5)]
        assert sa == sb

    def test_different_cores_have_different_jitter_streams(self):
        m = self.make(seed=3)
        a = [m.core_batch_cost(0, self.stats(), suspended=False) for _ in range(5)]
        b = [m.core_batch_cost(1, self.stats(), suspended=False) for _ in range(5)]
        assert a != b

    def test_zero_sigma_is_exact(self):
        m = self.make(sigma=0.0)
        cfg = HostConfig(jitter_sigma=0.0)
        expected = 10 * cfg.cycle_cost
        assert m.core_batch_cost(0, self.stats(), suspended=False) == pytest.approx(expected)

    def test_idle_cycles_are_cheaper(self):
        m = self.make(sigma=0.0)
        active = m.core_batch_cost(0, self.stats(active=10, idle=0), suspended=False)
        idle = m.core_batch_cost(0, self.stats(active=0, idle=10), suspended=False)
        assert idle < active

    def test_events_add_cost(self):
        m = self.make(sigma=0.0)
        without = m.core_batch_cost(0, self.stats(), suspended=False)
        with_ev = m.core_batch_cost(0, self.stats(ev=3), suspended=False)
        assert with_ev > without

    def test_suspend_surcharge(self):
        m = self.make(sigma=0.0)
        plain = m.core_batch_cost(0, self.stats(), suspended=False)
        susp = m.core_batch_cost(0, self.stats(), suspended=True)
        assert susp == pytest.approx(plain + HostConfig().suspend_cost)

    def test_manager_poll_is_cheap(self):
        m = self.make(sigma=0.0)
        assert m.manager_step_cost(0, 0) == HostConfig().manager_poll_cost
        assert m.manager_step_cost(2, 5) > m.manager_step_cost(0, 0)

    def test_minimum_step_cost(self):
        m = self.make(sigma=0.0)
        empty = BatchStats()
        assert m.core_batch_cost(0, empty, suspended=False) > 0
