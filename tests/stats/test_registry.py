"""Unit tests for the hierarchical stats registry (repro.stats.registry)."""

import json

import pytest

from repro.stats.registry import (
    Distribution,
    StatError,
    StatsRegistry,
    canonical_value,
    diff_dumps,
    dump_to_csv,
    load_dump,
    render_dump,
)


class TestScalar:
    def test_direct_set_and_add(self):
        reg = StatsRegistry()
        s = reg.scalar("a")
        assert s.value == 0
        s.add()
        s.add(4)
        assert s.value == 5
        s.set(2)
        assert s.value == 2

    def test_sourced_scalar_resolves_at_dump_time(self):
        reg = StatsRegistry()
        box = {"n": 1}
        reg.scalar("n", source=lambda: box["n"])
        assert reg.dump() == {"n": 1}
        box["n"] = 7
        assert reg.dump() == {"n": 7}

    def test_sourced_scalar_rejects_mutation(self):
        reg = StatsRegistry()
        s = reg.scalar("n", source=lambda: 3)
        with pytest.raises(StatError):
            s.set(1)
        with pytest.raises(StatError):
            s.add()


class TestFormula:
    def test_evaluated_at_dump_time(self):
        reg = StatsRegistry()
        hits = reg.scalar("hits")
        total = reg.scalar("total")
        reg.formula("rate", lambda: hits.value / total.value)
        hits.set(3)
        total.set(4)
        assert reg.dump()["rate"] == pytest.approx(0.75)

    def test_zero_division_yields_zero(self):
        reg = StatsRegistry()
        reg.formula("rate", lambda: 1 / 0)
        assert reg.dump()["rate"] == 0.0

    def test_excluded_from_digest_by_default(self):
        reg = StatsRegistry()
        reg.scalar("a", value=1)
        base = reg.stats_digest()
        reg.formula("derived", lambda: 42.0)
        assert reg.stats_digest() == base


class TestVector:
    def test_sequence_expands_by_index(self):
        reg = StatsRegistry()
        banks = [5, 0, 2]
        reg.vector("bank", lambda: banks)
        assert reg.dump() == {"bank.0": 5, "bank.1": 0, "bank.2": 2}

    def test_mapping_expands_by_sorted_key(self):
        reg = StatsRegistry()
        reg.vector("by_resource", lambda: {"mem": 2, "lock": 1})
        assert list(reg.dump()) == ["by_resource.lock", "by_resource.mem"]


class TestDistribution:
    def test_log2_buckets(self):
        d = Distribution("slack")
        for v in (0, 1, 2, 3, 9):
            d.add(v)
        entries = dict(d.entries())
        assert entries["slack.count"] == 5
        assert entries["slack.sum"] == 15
        assert entries["slack.min"] == 0
        assert entries["slack.max"] == 9
        assert entries["slack.bucket0"] == 1  # the zero sample
        assert entries["slack.bucket1"] == 1  # 1
        assert entries["slack.bucket2"] == 2  # 2, 3
        assert entries["slack.bucket4"] == 1  # 9
        assert "slack.bucket3" not in entries  # empty buckets elided

    def test_huge_samples_clamp_to_last_bucket(self):
        d = Distribution("slack")
        d.add(1 << 200)
        assert dict(d.entries())[f"slack.bucket{Distribution._MAX_BUCKET}"] == 1

    def test_negative_sample_rejected(self):
        d = Distribution("slack")
        with pytest.raises(StatError):
            d.add(-1)

    def test_mean(self):
        d = Distribution("slack")
        assert d.mean == 0.0
        d.add(2)
        d.add(4)
        assert d.mean == pytest.approx(3.0)


class TestRegistry:
    def test_duplicate_path_rejected(self):
        reg = StatsRegistry()
        reg.scalar("a.b")
        with pytest.raises(StatError):
            reg.scalar("a.b")

    def test_bad_component_rejected(self):
        reg = StatsRegistry()
        with pytest.raises(StatError):
            reg.scalar("spaced name")
        with pytest.raises(StatError):
            reg.scalar("")

    def test_groups_prefix_paths(self):
        reg = StatsRegistry()
        core = reg.group("core0")
        core.group("l1d").scalar("misses", value=3)
        assert reg.dump() == {"core0.l1d.misses": 3}
        assert reg.get("core0.l1d.misses").value == 3
        with pytest.raises(StatError):
            reg.get("core0.l1d.nope")

    def test_dump_is_sorted(self):
        reg = StatsRegistry()
        reg.scalar("z", value=1)
        reg.scalar("a", value=2)
        reg.scalar("m.n", value=3)
        assert list(reg.dump()) == ["a", "m.n", "z"]

    def test_digest_excludes_unmarked_stats(self):
        reg = StatsRegistry()
        reg.scalar("behaviour", value=1)
        base = reg.stats_digest()
        host = reg.scalar("host_detail", value=10, digest=False)
        assert reg.stats_digest() == base
        host.set(99)
        assert reg.stats_digest() == base

    def test_digest_changes_with_digested_values(self):
        reg = StatsRegistry()
        s = reg.scalar("a", value=1)
        base = reg.stats_digest()
        s.add()
        assert reg.stats_digest() != base

    def test_digest_is_registration_order_independent(self):
        a = StatsRegistry()
        a.scalar("x", value=1)
        a.scalar("y", value=2)
        b = StatsRegistry()
        b.scalar("y", value=2)
        b.scalar("x", value=1)
        assert a.stats_digest() == b.stats_digest()

    def test_snapshot_records_labelled_dumps(self):
        reg = StatsRegistry()
        s = reg.scalar("a")
        reg.snapshot(100)
        s.add(5)
        reg.snapshot(200)
        assert [snap["label"] for snap in reg.snapshots] == [100, 200]
        assert reg.snapshots[0]["stats"] == {"a": 0}
        assert reg.snapshots[1]["stats"] == {"a": 5}

    def test_dump_json_roundtrip(self, tmp_path):
        reg = StatsRegistry()
        reg.scalar("a", value=3)
        reg.snapshot("t0")
        text = reg.dump_json(meta={"scheme": "s9"})
        doc = json.loads(text)
        assert doc["meta"] == {"scheme": "s9"}
        assert doc["digest"] == reg.stats_digest()
        assert doc["stats"] == {"a": 3}
        assert doc["snapshots"][0]["label"] == "t0"
        path = tmp_path / "run.json"
        path.write_text(text)
        assert load_dump(str(path)) == {"a": 3}

    def test_load_dump_accepts_bare_dict(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps({"a": 1}))
        assert load_dump(str(path)) == {"a": 1}
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        with pytest.raises(StatError):
            load_dump(str(bad))

    def test_dump_csv(self):
        reg = StatsRegistry()
        reg.scalar("b", value=2)
        reg.scalar("a", value=0.5)
        assert reg.dump_csv() == "stat,value\na,0.5\nb,2\n"
        assert dump_to_csv({"x": 1}) == "stat,value\nx,1\n"


class TestDocumentHelpers:
    def test_canonical_value(self):
        assert canonical_value(True) == "1"
        assert canonical_value(3) == "3"
        assert canonical_value(0.5) == float(0.5).hex()

    def test_diff_dumps(self):
        a = {"x": 1, "y": 2.0, "gone": 3}
        b = {"x": 1, "y": 2.5, "new": 4}
        lines = diff_dumps(a, b)
        assert "- gone = 3" in lines
        assert "+ new = 4" in lines
        assert any(line.startswith("~ y:") for line in lines)
        assert not any(line.startswith("~ x") for line in lines)
        assert diff_dumps(a, dict(a)) == []

    def test_render_dump_contains_paths(self):
        text = render_dump({"core0.ipc": 1.5, "a": 2}, title="demo")
        assert "demo" in text
        assert "core0.ipc" in text
