"""Metrics and table-rendering tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.stats import Table, geometric_mean, harmonic_mean, percent, relative_error


class TestMetrics:
    def test_harmonic_mean_known_value(self):
        assert harmonic_mean([1, 2, 4]) == pytest.approx(12 / 7)

    def test_harmonic_mean_of_constant(self):
        assert harmonic_mean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_harmonic_mean_rejects_bad_input(self):
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            harmonic_mean([1.0, -2.0])

    @given(st.lists(st.floats(0.1, 100), min_size=1, max_size=20))
    def test_harmonic_le_geometric_le_max(self, values):
        h = harmonic_mean(values)
        g = geometric_mean(values)
        assert h <= g * (1 + 1e-9)
        assert min(values) - 1e-9 <= h <= max(values) + 1e-9

    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.10)
        assert relative_error(90, 100) == pytest.approx(0.10)
        with pytest.raises(ValueError):
            relative_error(1, 0)

    def test_percent(self):
        assert percent(0.0594) == "5.94%"
        assert percent(0.1, 0) == "10%"


class TestMetricsEdgeCases:
    """Boundary behaviour pinned explicitly (empty, negative, rounding)."""

    def test_geometric_mean_rejects_bad_input(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([2.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([2.0, -1.0])

    def test_single_element_means_are_identity(self):
        assert harmonic_mean([7.0]) == pytest.approx(7.0)
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_geometric_mean_known_value(self):
        assert geometric_mean([1, 4, 16]) == pytest.approx(4.0)

    def test_relative_error_negative_reference_uses_magnitude(self):
        assert relative_error(-90, -100) == pytest.approx(0.10)
        assert relative_error(110, -100) == pytest.approx(2.10)

    def test_relative_error_exact_match_is_zero(self):
        assert relative_error(5.0, 5.0) == 0.0

    def test_percent_rounding(self):
        # f-string formatting uses round-half-even on the decimal digits.
        assert percent(0.12345, 1) == "12.3%"
        assert percent(0.12355, 1) == "12.4%"
        assert percent(1.0) == "100.00%"
        assert percent(0.0) == "0.00%"
        assert percent(-0.05) == "-5.00%"


class TestTable:
    def test_render_contains_cells(self):
        t = Table("Demo", ["a", "b"])
        t.add_row("x", 1.5)
        text = t.render()
        assert "Demo" in text and "x" in text and "1.50" in text

    def test_row_width_checked(self):
        t = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row("only-one")

    def test_alignment_is_consistent(self):
        t = Table("T", ["col", "value"])
        t.add_row("short", 1)
        t.add_row("a-much-longer-cell", 22)
        lines = t.render().splitlines()
        header = next(line for line in lines if "col" in line)
        rows = [line for line in lines if "short" in line or "longer" in line]
        assert len({len(r) for r in rows + [header]}) == 1
