"""Tests for the interconnect, L2 NUCA, DRAM and the composed MemorySystem."""

from repro.mem.dram import Dram
from repro.mem.interconnect import Bus, Crossbar
from repro.mem.l2nuca import L2Config, L2Nuca
from repro.mem.memsys import MemorySystem, MemSysConfig, ReqKind
from repro.violations.detect import ViolationCounters


class TestBus:
    def test_uncontended_grants_at_request_time(self):
        bus = Bus(transfer_cycles=2)
        assert bus.occupy(10) == 10
        assert bus.free_at == 12

    def test_contention_serialises(self):
        bus = Bus(transfer_cycles=2)
        assert bus.occupy(10) == 10
        assert bus.occupy(10) == 12
        assert bus.occupy(11) == 14
        assert bus.stats.contention_cycles == 2 + 3

    def test_out_of_order_counts_violation(self):
        counters = ViolationCounters()
        bus = Bus(counters=counters)
        bus.occupy(10)
        bus.occupy(4)   # simulated past
        assert counters.simulation_state == 1
        assert counters.by_resource["bus"] == 1

    def test_figure4_scenario(self):
        """Paper Figure 4: P1 (clock 3) gets the bus; P2's request at clock 2
        is processed later and finds it busy -> granted only after release."""
        bus = Bus(transfer_cycles=2, counters=ViolationCounters())
        grant_p1 = bus.occupy(3)
        grant_p2 = bus.occupy(2)
        assert grant_p1 == 3
        assert grant_p2 == 5  # would have been 2 in cycle-by-cycle order


class TestCrossbar:
    def test_ports_are_independent(self):
        xbar = Crossbar(ports=2, transfer_cycles=3)
        assert xbar.occupy(5, 0) == 5
        assert xbar.occupy(5, 1) == 5
        assert xbar.occupy(5, 0) == 8


class TestDram:
    def test_latency_plus_queue(self):
        dram = Dram(latency=100, service_cycles=10)
        assert dram.access(0) == 100
        assert dram.access(0) == 110  # port busy until 10


class TestL2:
    def test_bank_mapping_spreads_blocks(self):
        l2 = L2Nuca(L2Config(num_banks=4))
        banks = {l2.bank_of(i * 64) for i in range(8)}
        assert banks == {0, 1, 2, 3}

    def test_hit_after_fill(self):
        l2 = L2Nuca()
        _, hit = l2.access(0x1000, 0, 0)
        assert not hit
        _, hit = l2.access(0x1000, 0, 10)
        assert hit

    def test_nuca_distance_affects_latency(self):
        l2 = L2Nuca(L2Config(num_banks=8, bank_latency=8, hop_cycles=1), num_cores=8)
        near = l2.unloaded_latency(0, 0)
        far = l2.unloaded_latency(0, 7)
        assert near == 8 and far == 15

    def test_bank_conflicts_serialise(self):
        cfg = L2Config(num_banks=1, bank_occupancy=4)
        l2 = L2Nuca(cfg, num_cores=2)
        t0, _ = l2.access(0x0, 0, 0)
        t1, _ = l2.access(0x40, 1, 0)  # same bank, busy
        assert t1 > t0 - cfg.bank_latency  # started later
        assert l2.stats.bank_conflict_cycles == 4


class TestMemorySystem:
    def make(self, **kw):
        counters = ViolationCounters()
        return MemorySystem(MemSysConfig(**kw), num_cores=8, counters=counters), counters

    def test_critical_latency_is_ten_by_default(self):
        ms, _ = self.make()
        assert ms.critical_latency() == 10

    def test_gets_returns_after_l2_roundtrip(self):
        ms, _ = self.make(dram_latency=50)
        r = ms.service(ReqKind.GETS, 0x0, 0, 100)
        # cold miss goes to DRAM
        assert not r.l2_hit
        assert r.ready_ts > 100 + 50
        assert r.grant == "E"

    def test_l2_hit_is_fast(self):
        ms, _ = self.make()
        ms.service(ReqKind.GETS, 0x0, 0, 0)      # warm the L2
        ms.service(ReqKind.PUTM, 0x0, 0, 10)     # release ownership
        r = ms.service(ReqKind.GETS, 0x0, 0, 1000)
        assert r.l2_hit
        assert 1000 + 10 <= r.ready_ts <= 1000 + 30

    def test_getx_sends_invalidations(self):
        ms, _ = self.make()
        ms.service(ReqKind.GETS, 0x0, 0, 0)
        ms.service(ReqKind.GETS, 0x0, 1, 20)
        r = ms.service(ReqKind.GETX, 0x0, 2, 40)
        assert r.grant == "M"
        assert {victim for victim, _ in r.invalidations} == {0, 1}
        assert all(addr == 0x0 for _, addr in r.invalidations)
        assert r.coherence_ts >= 40

    def test_remote_dirty_read_downgrades(self):
        ms, _ = self.make()
        ms.service(ReqKind.GETX, 0x40, 3, 0)
        r = ms.service(ReqKind.GETS, 0x40, 5, 30)
        assert r.downgrades == [(3, 0x40)]
        assert r.grant == "S"

    def test_upgrade_is_cheaper_than_getx(self):
        ms, _ = self.make()
        ms.service(ReqKind.GETS, 0x80, 0, 0)
        ms.service(ReqKind.GETS, 0x80, 1, 10)
        up = ms.service(ReqKind.UPGRADE, 0x80, 0, 1000)
        ms2, _ = self.make()
        ms2.service(ReqKind.GETS, 0x80, 1, 10)
        ms2.service(ReqKind.PUTM, 0x80, 1, 20)
        gx = ms2.service(ReqKind.GETX, 0x80, 0, 1000)
        assert up.ready_ts - 1000 < gx.ready_ts - 1000

    def test_putm_has_no_response_grant(self):
        ms, _ = self.make()
        ms.service(ReqKind.GETX, 0xC0, 0, 0)
        r = ms.service(ReqKind.PUTM, 0xC0, 0, 50)
        assert r.grant is None

    def test_out_of_order_servicing_counts_violations(self):
        ms, counters = self.make()
        ms.service(ReqKind.GETS, 0x0, 0, 100)
        ms.service(ReqKind.GETS, 0x40, 1, 50)  # simulated past on the bus
        assert counters.simulation_state >= 1

    def test_in_order_servicing_is_violation_free(self):
        ms, counters = self.make()
        for ts, core in ((10, 0), (20, 1), (30, 2)):
            ms.service(ReqKind.GETS, 0x0, core, ts)
        assert counters.simulation_state == 0
        assert counters.system_state == 0
