"""ShardedMemorySystem unit tests: partition, routing, aggregation."""

import pytest

from repro.mem.directory import ReqKind
from repro.mem.l2nuca import banks_of_domain, domain_of_bank
from repro.mem.domains import ShardedMemorySystem
from repro.mem.memsys import MemorySystem
from repro.violations.detect import ViolationCounters


class TestBankPartition:
    @pytest.mark.parametrize("num_domains", [1, 2, 3, 4, 8])
    def test_every_bank_owned_by_exactly_one_domain(self, num_domains):
        num_banks = 8
        owners = [domain_of_bank(b, num_banks, num_domains) for b in range(num_banks)]
        for domain in range(num_domains):
            claimed = list(banks_of_domain(domain, num_banks, num_domains))
            assert claimed == [b for b in range(num_banks) if owners[b] == domain]
        assert sorted(b for d in range(num_domains)
                      for b in banks_of_domain(d, num_banks, num_domains)) == list(range(num_banks))

    def test_ranges_are_contiguous_and_ordered(self):
        owners = [domain_of_bank(b, 8, 3) for b in range(8)]
        assert owners == sorted(owners)  # contiguous ranges in bank order

    def test_domain_count_bounds(self):
        with pytest.raises(ValueError):
            domain_of_bank(0, 8, 0)
        with pytest.raises(ValueError):
            domain_of_bank(0, 8, 9)
        with pytest.raises(ValueError):
            ShardedMemorySystem(num_cores=4, num_domains=9)


def _drive(memsys, stream):
    """Service a fixed request stream, returning the ServiceResult fields
    that define timing behaviour (ready/coherence times, grants, victims)."""
    out = []
    for kind, addr, core, ts in stream:
        r = memsys.service(kind, addr, core, ts)
        out.append((r.ready_ts, r.grant, tuple(r.invalidations), tuple(r.downgrades), r.coherence_ts))
    return out


def _stream(n=60):
    kinds = [ReqKind.GETS, ReqKind.GETX, ReqKind.UPGRADE, ReqKind.PUTM]
    return [
        (kinds[i % 3], (i * 0x40) % 0x2000, i % 4, i * 3)
        for i in range(n)
    ]


class TestShardEquivalence:
    def test_single_domain_matches_monolithic(self):
        # The 1-domain shard IS a full-geometry MemorySystem seeing every
        # address: its trajectory must equal the monolith's exactly.
        mono = MemorySystem(num_cores=4, counters=ViolationCounters())
        sharded = ShardedMemorySystem(num_cores=4, num_domains=1)
        stream = _stream()
        assert _drive(mono, stream) == _drive(sharded.shards[0], stream)
        assert sharded.requests_serviced == mono.requests_serviced
        assert sharded.bank_accesses() == mono.l2.bank_accesses

    def test_shard_matches_monolith_on_restricted_stream(self):
        # A shard is a full-geometry MemorySystem that only ever sees the
        # addresses it owns: its trajectory on that restricted stream must
        # equal a monolith driven with the same restricted stream.
        sharded = ShardedMemorySystem(num_cores=4, num_domains=4)
        per_domain = [[] for _ in range(4)]
        for entry in _stream():
            per_domain[sharded.domain_of(entry[1])].append(entry)
        assert all(per_domain)  # the stream exercises every domain
        for domain, sub in enumerate(per_domain):
            reference = MemorySystem(num_cores=4, counters=ViolationCounters())
            assert _drive(sharded.shards[domain], sub) == _drive(reference, sub)
            for bank, count in enumerate(sharded.shards[domain].l2.bank_accesses):
                if count:
                    assert bank in sharded.banks_of(domain)

    def test_routing_matches_bank_partition(self):
        sharded = ShardedMemorySystem(num_cores=4, num_domains=4)
        for addr in range(0, 0x4000, 0x40):
            domain = sharded.domain_of(addr)
            assert sharded.shards[0].l2.bank_of(addr) in sharded.banks_of(domain)

    def test_critical_latency_matches_monolithic(self):
        mono = MemorySystem(num_cores=4, counters=ViolationCounters())
        sharded = ShardedMemorySystem(num_cores=4, num_domains=4)
        assert sharded.critical_latency() == mono.critical_latency()


class TestAggregation:
    def test_bank_accesses_disjoint_merge(self):
        sharded = ShardedMemorySystem(num_cores=4, num_domains=2)
        for kind, addr, core, ts in _stream():
            sharded.shards[sharded.domain_of(addr)].service(kind, addr, core, ts)
        total = sharded.bank_accesses()
        assert sum(total) == sharded.requests_serviced
        for domain in range(2):
            for bank, count in enumerate(sharded.shards[domain].l2.bank_accesses):
                if bank not in sharded.banks_of(domain):
                    assert count == 0

    def test_resource_prefix_only_when_sharded(self):
        assert ShardedMemorySystem(num_domains=1).shards[0].resource_prefix == ""
        sharded = ShardedMemorySystem(num_domains=4)
        assert [s.resource_prefix for s in sharded.shards] == ["d0:", "d1:", "d2:", "d3:"]

    def test_merged_counters_fold_engine_and_shards(self):
        sharded = ShardedMemorySystem(num_cores=4, num_domains=2)
        engine = ViolationCounters()
        engine.record_cross_domain("domain[1]", 3)
        sharded.shards[0].counters.record_simulation_state("d0:bus")
        sharded.shards[1].counters.record_simulation_state("d1:bus")
        merged = sharded.merged_counters(engine)
        assert merged.cross_domain == 3
        assert merged.simulation_state == 2
        assert merged.by_resource == {"domain[1]": 3, "d0:bus": 1, "d1:bus": 1}
        # Inputs are not mutated (report-time fold).
        assert engine.simulation_state == 0
        assert sharded.shards[0].counters.cross_domain == 0
