"""Directory MESI protocol tests, including the paper's Figure 6 scenario."""

from hypothesis import given, settings, strategies as st

from repro.mem.directory import Directory, DirState, ReqKind
from repro.violations.detect import ViolationCounters


def test_first_read_grants_exclusive():
    d = Directory(4)
    out = d.handle(ReqKind.GETS, 0x100, 0, 1)
    assert out.grant == "E" and not out.invalidate and out.downgrade is None
    assert d.state_of(0x100) is DirState.EXCLUSIVE


def test_second_read_downgrades_owner():
    d = Directory(4)
    d.handle(ReqKind.GETS, 0x100, 0, 1)
    out = d.handle(ReqKind.GETS, 0x100, 1, 2)
    assert out.grant == "S"
    assert out.downgrade == 0 and out.cache_to_cache
    assert d.sharers_of(0x100) == {0, 1}


def test_write_invalidates_sharers():
    d = Directory(4)
    d.handle(ReqKind.GETS, 0x100, 0, 1)
    d.handle(ReqKind.GETS, 0x100, 1, 2)
    d.handle(ReqKind.GETS, 0x100, 2, 3)
    out = d.handle(ReqKind.GETX, 0x100, 3, 4)
    assert out.grant == "M"
    assert out.invalidate == [0, 1, 2]
    assert d.state_of(0x100) is DirState.EXCLUSIVE
    assert d.sharers_of(0x100) == {3}


def test_write_to_remote_modified_fetches_cache_to_cache():
    d = Directory(4)
    d.handle(ReqKind.GETX, 0x200, 0, 1)
    out = d.handle(ReqKind.GETX, 0x200, 1, 2)
    assert out.grant == "M" and out.invalidate == [0] and out.cache_to_cache


def test_upgrade_fast_path():
    d = Directory(4)
    d.handle(ReqKind.GETS, 0x300, 0, 1)
    d.handle(ReqKind.GETS, 0x300, 1, 2)
    out = d.handle(ReqKind.UPGRADE, 0x300, 0, 3)
    assert out.grant == "M" and out.invalidate == [1]
    assert not out.upgrade_promoted


def test_upgrade_race_promotes_to_getx():
    d = Directory(4)
    d.handle(ReqKind.GETS, 0x300, 0, 1)
    d.handle(ReqKind.GETS, 0x300, 1, 2)
    # Core 1 wins a GETX first; core 0's queued UPGRADE must become a GETX.
    d.handle(ReqKind.GETX, 0x300, 1, 3)
    out = d.handle(ReqKind.UPGRADE, 0x300, 0, 4)
    assert out.upgrade_promoted and out.grant == "M"
    assert d.sharers_of(0x300) == {0}


def test_putm_releases_ownership():
    d = Directory(4)
    d.handle(ReqKind.GETX, 0x400, 2, 1)
    out = d.handle(ReqKind.PUTM, 0x400, 2, 5)
    assert out.grant is None
    assert d.state_of(0x400) is DirState.INVALID


def test_stale_putm_ignored():
    d = Directory(4)
    d.handle(ReqKind.GETX, 0x400, 2, 1)
    d.handle(ReqKind.GETX, 0x400, 3, 2)  # ownership moved to core 3
    d.handle(ReqKind.PUTM, 0x400, 2, 3)  # stale
    assert d.state_of(0x400) is DirState.EXCLUSIVE
    assert d.sharers_of(0x400) == {3}


def test_figure6_presence_bits():
    """Paper Figure 6: read by P1 then write by P2 (simulation-time order)."""
    d = Directory(2)
    # Initial: block clean in P2's cache (state (a)): P2 read it earlier.
    d.handle(ReqKind.GETS, 0x500, 1, 0)
    assert d.presence_bits(0x500) == ([0, 1], 1)  # E counts as present+dirty-capable
    # T1: P1 reads -> both present, clean share (state (b)).
    d.handle(ReqKind.GETS, 0x500, 0, 3)
    assert d.presence_bits(0x500) == ([1, 1], 0)
    # T2: P2 writes -> P1 invalidated, P2 dirty (state (c)).
    d.handle(ReqKind.UPGRADE, 0x500, 1, 2)
    assert d.presence_bits(0x500) == ([0, 1], 1)


def test_out_of_order_requests_counted_as_system_violations():
    counters = ViolationCounters()
    d = Directory(2, counters)
    d.handle(ReqKind.GETS, 0x500, 0, 10)
    d.handle(ReqKind.GETS, 0x500, 1, 5)  # from the simulated past
    assert counters.system_state == 1


def test_in_order_requests_do_not_count():
    counters = ViolationCounters()
    d = Directory(2, counters)
    d.handle(ReqKind.GETS, 0x500, 0, 5)
    d.handle(ReqKind.GETS, 0x500, 1, 10)
    assert counters.system_state == 0


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from([ReqKind.GETS, ReqKind.GETX, ReqKind.UPGRADE, ReqKind.PUTM]),
            st.integers(0, 3),   # core
            st.integers(0, 7),   # block index
        ),
        min_size=1,
        max_size=100,
    )
)
def test_property_directory_invariants(ops):
    """EXCLUSIVE entries have exactly one presence bit; SHARED entries are
    clean; INVALID entries have none."""
    d = Directory(4)
    for ts, (kind, core, block) in enumerate(ops):
        d.handle(kind, block * 64, core, ts)
        for addr in {b * 64 for _, _, b in ops}:
            bits, dirty = d.presence_bits(addr)
            state = d.state_of(addr)
            if state is DirState.EXCLUSIVE:
                assert sum(bits) == 1 and dirty == 1
            elif state is DirState.SHARED:
                assert sum(bits) >= 1 and dirty == 0
            else:
                assert sum(bits) == 0
