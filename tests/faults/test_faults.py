"""Fault-injection tests (DESIGN.md §8).

The FaultPlan exists so the violation detectors, clock invariants and
fast-forward compensation are *exercised*, not just carried: each test
injects one fault family at a seam and asserts that the engine (a) records
the injection, (b) completes cleanly (``manager.check_invariants`` runs at
the end of every ``SequentialEngine.run``), and (c) where the fault
manufactures a timestamp inversion, the corresponding detector fires.
"""

from __future__ import annotations

import pytest

from repro.core.config import SimConfig
from repro.core.engine import SequentialEngine
from repro.faults import FaultPlan, FaultSpec, parse_fault_plan
from repro.lang import compile_source

#: Lock-protected counter + closing barrier (the goldens' program shape):
#: fully synchronized, so every scheme yields counter == 24.
LOCKED_SRC = """
int lk; int bar; int counter;
void worker(int tid) {
    for (int i = 0; i < 6; i = i + 1) {
        lock(&lk);
        counter = counter + 1;
        unlock(&lk);
    }
    barrier(&bar);
}
int main() {
    int tids[4];
    init_lock(&lk);
    init_barrier(&bar, 4);
    for (int t = 1; t < 4; t = t + 1) tids[t] = spawn(worker, t);
    worker(0);
    for (int t = 1; t < 4; t = t + 1) join(tids[t]);
    print_int(counter);
    return 0;
}
"""

#: Unsynchronized same-word sharing: core 1 hammers stores into ``flag``
#: while core 0 reads it — the WordOrderTracker's target pattern.  The
#: printed value (core 1's private tally) is interleaving-independent.
RACY_SRC = """
int flag; int bar;
void worker(int tid) {
    if (tid == 1) {
        for (int i = 0; i < 200; i = i + 1) flag = flag + 1;
    } else {
        int s = 0;
        for (int i = 0; i < 40; i = i + 1) s = s + flag;
    }
    barrier(&bar);
}
int main() {
    int t;
    init_barrier(&bar, 2);
    t = spawn(worker, 1);
    worker(0);
    join(t);
    print_int(flag);
    return 0;
}
"""

#: Streaming writes over 32KB (2x the 16KB L1): every lap evicts dirty
#: blocks, so refill misses emit back-to-back PUTM + GETX pairs — the
#: pattern reorder_outq needs to find a queue-mate.
STREAM_SRC = """
int a[4096]; int bar;
void worker(int tid) {
    for (int lap = 0; lap < 2; lap = lap + 1)
        for (int i = 0; i < 4096; i = i + 8)
            a[i] = a[i] + tid + 1;
    barrier(&bar);
}
int main() {
    int t;
    init_barrier(&bar, 2);
    t = spawn(worker, 1);
    worker(0);
    join(t);
    print_int(a[0]);
    return 0;
}
"""


@pytest.fixture(scope="module")
def locked_prog():
    return compile_source(LOCKED_SRC, name="faults-locked").program


@pytest.fixture(scope="module")
def racy_prog():
    return compile_source(RACY_SRC, name="faults-racy").program


def run(prog, *, scheme="cc", plan=None, seed=1, **sim):
    engine = SequentialEngine(
        prog, sim=SimConfig(scheme=scheme, seed=seed, fault_plan=plan, **sim)
    )
    return engine, engine.run()


# ----------------------------------------------------------------- parsing
def test_parse_plan():
    plan = parse_fault_plan(
        "delay_inq:core=1,at=200,delta=40,count=3;overrun_window:core=2,extra=256"
    )
    assert [s.kind for s in plan.specs] == ["delay_inq", "overrun_window"]
    assert plan.specs[0] == FaultSpec(
        kind="delay_inq", core=1, at=200, delta=40, count=3
    )
    assert plan.specs[1].extra == 256


def test_parse_hex_addr_and_default_any_core():
    plan = parse_fault_plan("delay_gq:addr=0x400000,delta=100;corrupt_dir:at=5")
    assert plan.specs[0].addr == 0x400000
    assert plan.specs[0].core == -1  # unfiltered
    assert plan.specs[1].core == -1  # seeded victim pick


@pytest.mark.parametrize(
    "bad",
    [
        "flip_bits:core=1",                       # unknown kind
        "delay_inq:core=1,magnitude=4",           # unknown field
        "overrun_window:core=1,delta=4",          # field of another kind
        "dup_inq:core=1,events=response",         # duplicated response
        "delay_inq:core=1,events=bogus",          # unknown event kind
        "   ;  ",                                 # no faults at all
    ],
)
def test_parse_rejects(bad):
    with pytest.raises(ValueError):
        parse_fault_plan(bad)


def test_misconfigured_plan_fails_at_engine_construction(locked_prog):
    with pytest.raises(ValueError):
        SequentialEngine(
            locked_prog, sim=SimConfig(fault_plan="overrun_window:core=99")
        )


def test_plan_installs_once():
    plan = parse_fault_plan("corrupt_dir:at=5")
    plan._installed = True
    with pytest.raises(RuntimeError):
        plan.install(object())


# ------------------------------------------------- injection + clean completion
ALL_KIND_PLANS = [
    "delay_inq:core=1,at=100,delta=40,count=3",
    "dup_inq:core=1,count=4",
    "delay_gq:delta=60,count=3",
    "stall_core:core=3,at=100,host_delay=500",
    "corrupt_dir:at=400",
    "overrun_window:core=2,at=200,extra=256,count=2",
]


@pytest.mark.parametrize("plan", ALL_KIND_PLANS)
def test_every_kind_injects_and_completes(locked_prog, plan):
    engine, result = run(locked_prog, plan=plan)
    assert result.completed
    assert engine.faults.fired, f"plan {plan!r} never injected"
    for entry in engine.faults.fired:
        assert entry["kind"] == plan.split(":")[0]
    # check_invariants ran inside run(); the registry reports the plan.
    assert result.stats["faults.injected"] == len(engine.faults.fired)
    assert result.stats["faults.specs"] == 1


def test_unfaulted_engine_has_no_hooks(locked_prog):
    engine = SequentialEngine(locked_prog, sim=SimConfig(scheme="cc", seed=1))
    assert engine.faults is None
    # Seams are untouched bound methods / original queue classes.
    assert "deliver" not in engine.cores[0].__dict__
    assert type(engine.manager.gq).__name__ == "GlobalQueue"
    assert "core_batch_cost" not in engine.costmodel.__dict__
    assert "_turn_budget" not in engine.__dict__


def test_fault_runs_are_deterministic(racy_prog):
    plan = "overrun_window:core=1,at=50,extra=800,count=1;corrupt_dir:at=200"
    _, a = run(racy_prog, plan=plan, seed=7)
    _, b = run(racy_prog, plan=plan, seed=7)
    assert a.stats_sha256 == b.stats_sha256
    engine_a, _ = run(racy_prog, plan=plan, seed=7)
    engine_b, _ = run(racy_prog, plan=plan, seed=7)
    assert engine_a.faults.fired == engine_b.faults.fired


# ----------------------------------------------------- detector-firing recipes
def test_overrun_window_fires_simulation_state(locked_prog):
    """A forced slack overrun sends one core's requests far ahead in ts;
    the shared resources then see younger requests after older ones."""
    _, base = run(locked_prog)
    assert base.violations.simulation_state == 0
    engine, result = run(locked_prog, plan="overrun_window:core=0,at=50,extra=512,count=4")
    assert engine.faults.fired
    assert result.completed and result.output == [24]
    assert result.violations.simulation_state > 0


def test_delay_gq_fires_system_state(racy_prog):
    """Delaying a shared-block request at the GQ pushes the directory's
    last_ts ahead of every younger request on that block (paper §3.2.2)."""
    block = racy_prog.symbols["g_flag"] & ~63
    for scheme in ("cc", "q3", "s2"):
        _, base = run(racy_prog, scheme=scheme)
        assert base.violations.system_state == 0
        engine, result = run(
            racy_prog, scheme=scheme,
            plan=f"delay_gq:addr={block},at=100,delta=2000,count=1",
        )
        assert engine.faults.fired and result.completed
        assert result.violations.system_state > 0, scheme


def test_delay_inq_response_drives_fastforward(racy_prog):
    """A late response replays the reader's loads at inflated timestamps;
    with fastforward on, the conflicting store side compensates (§3.2.3)."""
    engine, result = run(
        racy_prog, fastforward=True,
        plan="delay_inq:core=0,delta=200,count=10,events=response",
    )
    assert engine.faults.fired
    assert result.violations.workload_state > 0
    assert result.violations.fastforwards > 0
    assert result.violations.fastforward_cycles > 0


def test_reorder_outq_swaps_writeback_pairs():
    """Dirty evictions emit PUTM + refill back-to-back: the reorder swaps
    them, and the directory's stale-writeback handling absorbs it.  (Under
    cc a turn is one cycle, so the OutQ never holds two events — a quantum
    scheme gives the fault its queue-mate.)"""
    prog = compile_source(STREAM_SRC, name="faults-stream").program
    engine, result = run(prog, scheme="q10", plan="reorder_outq:core=0,count=4")
    assert result.completed and result.output == [6]
    assert engine.faults.fired
    for entry in engine.faults.fired:
        assert entry["moved_ahead"] > entry["now_behind"]


def test_corrupt_dir_clears_presence_bit(locked_prog):
    engine, result = run(locked_prog, plan="corrupt_dir:at=400")
    assert result.completed  # MESI handling degrades cleanly, never crashes
    (entry,) = engine.faults.fired
    assert entry["kind"] == "corrupt_dir"
    victim, addr = entry["victim"], entry["addr"]
    assert victim not in engine.memsys.directory.sharers_of(addr)


def test_corrupt_dir_victim_pick_is_seeded(locked_prog):
    fired = []
    for _ in range(2):
        engine, _ = run(locked_prog, plan="corrupt_dir:at=400", seed=3)
        fired.append(engine.faults.fired)
    assert fired[0] == fired[1]


def test_stall_core_costs_host_time(locked_prog):
    _, base = run(locked_prog)
    engine, result = run(locked_prog, plan="stall_core:core=3,at=100,host_delay=500")
    assert engine.faults.fired
    assert result.completed and result.output == [24]
    # The surcharge lands on the modeled host timeline, not the target's.
    assert result.host_time > base.host_time + 400
    assert result.execution_cycles == base.execution_cycles


def test_summary_renders(locked_prog):
    engine, _ = run(locked_prog, plan="corrupt_dir:at=400")
    text = engine.faults.summary()
    assert "1 spec(s), 1 injected" in text and "corrupt_dir" in text


def test_cli_run_with_faults(capsys):
    from repro.cli import main

    assert main([
        "run", "--workload", "fft", "--scale", "tiny", "--scheme", "q3",
        "--faults", "corrupt_dir:at=200",
    ]) == 0
    out = capsys.readouterr().out
    assert "faults injected:" in out
