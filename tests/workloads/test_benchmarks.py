"""SPLASH-2-style benchmark tests: oracles, correctness under slack."""

import pytest

from repro.core import run_simulation
from repro.core.config import TargetConfig
from repro.workloads import ALL_BENCHMARKS, BENCHMARKS, SCALES, lcg_stream, make_workload
from repro.workloads.base import LCG_ADD, LCG_MOD, LCG_MULT


class TestLCG:
    def test_stream_is_deterministic(self):
        assert lcg_stream(42, 5) == lcg_stream(42, 5)

    def test_stream_matches_recurrence(self):
        x = 42
        expected = []
        for _ in range(4):
            x = (x * LCG_MULT + LCG_ADD) % LCG_MOD
            expected.append(x / LCG_MOD)
        assert lcg_stream(42, 4) == expected

    def test_values_in_unit_interval(self):
        assert all(0.0 <= v < 1.0 for v in lcg_stream(7, 100))

    def test_slang_lcg_matches_python(self):
        """The in-target generator must produce the identical stream."""
        from repro.cpu.interp import run_functional
        from repro.lang import compile_source
        from repro.workloads.base import SLANG_LCG

        src = SLANG_LCG + """
        int main() {
            lcg_state = 42;
            for (int i = 0; i < 6; i = i + 1) print_float(lcg_next());
            return 0;
        }
        """
        out = run_functional(compile_source(src).program).float_output
        assert out == lcg_stream(42, 6)


class TestRegistry:
    def test_all_benchmarks_registered(self):
        assert set(BENCHMARKS) == {"barnes", "fft", "lu", "water"}
        assert set(ALL_BENCHMARKS) == set(BENCHMARKS) | {"radix", "ocean"}

    def test_scales_cover_all_benchmarks(self):
        for scale, table in SCALES.items():
            assert set(table) == set(ALL_BENCHMARKS), scale

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            make_workload("radiosity")
        with pytest.raises(KeyError):
            make_workload("fft", scale="gigantic")

    def test_overrides_apply(self):
        w = make_workload("fft", scale="tiny", n=32)
        assert w.params["n"] == 32


class TestVerification:
    def test_mismatch_reporting(self):
        w = make_workload("lu", scale="tiny")
        assert w.verify(list(w.expected_output))
        bad = list(w.expected_output)
        bad[0] += 1.0
        problems = w.mismatches(bad)
        assert problems and "lu[0]" in problems[0]
        assert w.mismatches([1.0]) != []

    def test_tolerance_is_relative(self):
        w = make_workload("fft", scale="tiny")
        nudged = [v * (1 + 1e-9) for v in w.expected_output]
        assert w.verify(nudged)


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
class TestBenchmarkExecution:
    def test_correct_under_cc(self, name):
        w = make_workload(name, scale="tiny")
        r = run_simulation(w.program, scheme="cc", host_cores=4)
        assert w.verify(r.output), w.mismatches(r.output)

    def test_correct_under_bounded_slack(self, name):
        w = make_workload(name, scale="tiny")
        r = run_simulation(w.program, scheme="s9", host_cores=4)
        assert w.verify(r.output), w.mismatches(r.output)

    def test_correct_under_unbounded_slack(self, name):
        """Paper §3.2.3: 'the benchmarks we have tested still execute
        correctly' even with unbounded slack."""
        w = make_workload(name, scale="tiny")
        r = run_simulation(w.program, scheme="su", host_cores=4)
        assert w.verify(r.output), w.mismatches(r.output)

    def test_uses_all_threads(self, name):
        w = make_workload(name, scale="tiny")
        r = run_simulation(w.program, scheme="cc", host_cores=4)
        active = [c for c in r.cores if c.committed > 0]
        assert len(active) == w.params["nthreads"]


def test_benchmarks_generate_coherence_traffic():
    w = make_workload("water", scale="tiny")
    r = run_simulation(w.program, scheme="cc", host_cores=4)
    assert r.requests > 0
    assert sum(c.l1_misses for c in r.cores) > 0
