"""Tests for the crash-safe write primitive every artifact producer shares
(compile cache, stats dumps, sweep manifests, checkpoints)."""

import os

import pytest

from repro._util import (
    Backoff,
    atomic_write_bytes,
    atomic_write_text,
    retry_with_backoff,
)


def test_writes_new_file_and_creates_parents(tmp_path):
    path = tmp_path / "a" / "b" / "out.bin"
    atomic_write_bytes(path, b"\x00\x01payload")
    assert path.read_bytes() == b"\x00\x01payload"


def test_replaces_existing_content_wholesale(tmp_path):
    path = tmp_path / "doc.json"
    atomic_write_text(path, "old " * 1000)
    atomic_write_text(path, "new")
    assert path.read_text() == "new"


def test_no_tempfile_left_behind(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write_text(path, "hello")
    assert os.listdir(tmp_path) == ["out.txt"]


def test_failed_write_keeps_old_content_and_cleans_up(tmp_path):
    """A crash mid-write (here: encoding error before any bytes land) leaves
    the published file untouched and no orphan tempfile."""
    path = tmp_path / "out.txt"
    atomic_write_text(path, "original")
    with pytest.raises(UnicodeEncodeError):
        atomic_write_text(path, "\udc80 unpaired surrogate")
    assert path.read_text() == "original"
    assert os.listdir(tmp_path) == ["out.txt"]


def test_accepts_str_and_pathlike(tmp_path):
    atomic_write_text(str(tmp_path / "s.txt"), "via str")
    atomic_write_text(tmp_path / "p.txt", "via Path")
    assert (tmp_path / "s.txt").read_text() == "via str"
    assert (tmp_path / "p.txt").read_text() == "via Path"


# ----------------------------------------------------- retry-pacing helpers
class TestBackoff:
    def test_unjittered_schedule_doubles_to_cap(self):
        b = Backoff(base=0.5, cap=8.0, jitter=0.0)
        assert [b.next() for _ in range(6)] == [0.5, 1.0, 2.0, 4.0, 8.0, 8.0]

    def test_reset_restarts_the_schedule(self):
        b = Backoff(base=1.0, cap=64.0, jitter=0.0)
        b.next(), b.next()
        b.reset()
        assert b.next() == 1.0

    def test_jitter_stays_within_band(self):
        b = Backoff(base=1.0, cap=1.0, jitter=0.25, seed=1)
        for _ in range(200):
            assert 0.75 <= b.next() <= 1.25

    def test_seeded_schedules_are_deterministic(self):
        one = Backoff(base=0.5, cap=8.0, seed=42)
        two = Backoff(base=0.5, cap=8.0, seed=42)
        assert [one.next() for _ in range(8)] == [two.next() for _ in range(8)]

    def test_peek_does_not_advance(self):
        b = Backoff(base=2.0, cap=16.0, jitter=0.0)
        assert b.peek() == b.peek() == 2.0
        b.next()
        assert b.peek() == 4.0


class TestRetryWithBackoff:
    def test_returns_first_success(self):
        calls = []
        assert retry_with_backoff(lambda: calls.append(1) or "ok") == "ok"
        assert len(calls) == 1

    def test_retries_matching_errors_then_succeeds(self):
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise ConnectionRefusedError("not yet")
            return attempts["n"]

        observed = []
        result = retry_with_backoff(
            flaky,
            retries=5,
            retry_on=ConnectionRefusedError,
            backoff=Backoff(base=0.0, cap=0.0),
            on_retry=lambda attempt, exc, delay: observed.append(attempt),
        )
        assert result == 3
        assert observed == [1, 2]

    def test_exhausted_budget_raises_last_error(self):
        def always():
            raise ConnectionRefusedError("down")

        with pytest.raises(ConnectionRefusedError):
            retry_with_backoff(
                always, retries=2, retry_on=ConnectionRefusedError,
                backoff=Backoff(base=0.0, cap=0.0),
            )

    def test_non_matching_error_propagates_immediately(self):
        calls = []

        def wrong_kind():
            calls.append(1)
            raise ValueError("deterministic bug")

        with pytest.raises(ValueError):
            retry_with_backoff(
                wrong_kind, retries=5, retry_on=ConnectionRefusedError,
                backoff=Backoff(base=0.0, cap=0.0),
            )
        assert len(calls) == 1  # never retried: not a transient failure
