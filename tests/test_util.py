"""Tests for the crash-safe write primitive every artifact producer shares
(compile cache, stats dumps, sweep manifests, checkpoints)."""

import os

import pytest

from repro._util import atomic_write_bytes, atomic_write_text


def test_writes_new_file_and_creates_parents(tmp_path):
    path = tmp_path / "a" / "b" / "out.bin"
    atomic_write_bytes(path, b"\x00\x01payload")
    assert path.read_bytes() == b"\x00\x01payload"


def test_replaces_existing_content_wholesale(tmp_path):
    path = tmp_path / "doc.json"
    atomic_write_text(path, "old " * 1000)
    atomic_write_text(path, "new")
    assert path.read_text() == "new"


def test_no_tempfile_left_behind(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write_text(path, "hello")
    assert os.listdir(tmp_path) == ["out.txt"]


def test_failed_write_keeps_old_content_and_cleans_up(tmp_path):
    """A crash mid-write (here: encoding error before any bytes land) leaves
    the published file untouched and no orphan tempfile."""
    path = tmp_path / "out.txt"
    atomic_write_text(path, "original")
    with pytest.raises(UnicodeEncodeError):
        atomic_write_text(path, "\udc80 unpaired surrogate")
    assert path.read_text() == "original"
    assert os.listdir(tmp_path) == ["out.txt"]


def test_accepts_str_and_pathlike(tmp_path):
    atomic_write_text(str(tmp_path / "s.txt"), "via str")
    atomic_write_text(tmp_path / "p.txt", "via Path")
    assert (tmp_path / "s.txt").read_text() == "via str"
    assert (tmp_path / "p.txt").read_text() == "via Path"
