"""Disassembler tests: canonical text, assembler round-trips."""

from hypothesis import given, strategies as st

from repro.isa import Instruction, Op, OPINFO, Format, assemble, disassemble_word, format_instruction


def roundtrip(insn: Instruction) -> Instruction:
    """format -> assemble -> first instruction."""
    return assemble(format_instruction(insn)).text[0]


def test_known_renderings():
    cases = [
        (Instruction(Op.ADD, rd=10, rs1=11, rs2=12), "add a0, a1, a2"),
        (Instruction(Op.ADDI, rd=2, rs1=2, imm=-16), "addi sp, sp, -16"),
        (Instruction(Op.LD, rd=10, rs1=2, imm=8), "ld a0, 8(sp)"),
        (Instruction(Op.FSD, rs1=8, rs2=3, imm=-24), "fsd f3, -24(s0)"),
        (Instruction(Op.AMOADD, rd=5, rs1=6, rs2=7), "amoadd t0, t2, (t1)"),
        (Instruction(Op.BEQ, rs1=1, rs2=0, imm=16), "beq ra, zero, 16"),
        (Instruction(Op.JALR, rd=0, rs1=1), "jalr zero, ra, 0"),
        (Instruction(Op.FADD, rd=1, rs1=2, rs2=3), "fadd f1, f2, f3"),
        (Instruction(Op.FCVT_D_L, rd=4, rs1=10), "fcvt.d.l f4, a0"),
        (Instruction(Op.ECALL), "ecall"),
    ]
    for insn, text in cases:
        assert format_instruction(insn) == text


def test_disassemble_word():
    word = Instruction(Op.MUL, rd=3, rs1=4, rs2=5).encode()
    assert disassemble_word(word) == "mul gp, tp, t0"


def _fields_for(op: Op):
    """Strategy for valid field ranges per format (register fields < 32 so
    ABI names round-trip; immediates that survive branch re-encoding)."""
    reg = st.integers(0, 31)
    imm = st.integers(-(1 << 20), (1 << 20) - 1).map(lambda v: v * 8)
    return st.tuples(reg, reg, reg, imm)


@given(
    op=st.sampled_from(sorted(Op, key=int)),
    fields=st.integers(0, 31),
    fields2=st.integers(0, 31),
    fields3=st.integers(0, 31),
    imm8=st.integers(-(1 << 16), (1 << 16) - 1).map(lambda v: v * 8),
)
def test_roundtrip_property(op, fields, fields2, fields3, imm8):
    info = OPINFO[op]
    insn = Instruction(op, rd=fields, rs1=fields2, rs2=fields3, imm=imm8)
    # Branch/jump immediates are re-encoded PC-relative against address 0 of
    # the single-instruction program, so the offset must be preserved as-is.
    again = roundtrip(insn)
    assert again.op is insn.op
    if info.fmt in (Format.R, Format.FR):
        assert (again.rd, again.rs1, again.rs2) == (insn.rd, insn.rs1, insn.rs2)
    if info.fmt in (Format.I, Format.LOAD, Format.STORE, Format.JR, Format.LI):
        assert again.imm == insn.imm
    if info.fmt in (Format.B, Format.J):
        assert again.imm == insn.imm  # pc-relative from address 0


def test_listing_includes_symbols_and_addresses():
    prog = assemble("main: nop\nloop: j loop\n")
    listing = prog.listing()
    assert "main:" in listing and "loop:" in listing
    assert "0x00010000" in listing
