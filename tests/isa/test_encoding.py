"""Encoding/decoding round-trip tests for SPISA instructions."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import EncodingError, Instruction, Op, OPINFO, Format


def test_simple_encode_decode():
    insn = Instruction(Op.ADD, rd=5, rs1=6, rs2=7)
    assert Instruction.decode(insn.encode()) == insn


def test_negative_immediate_roundtrip():
    insn = Instruction(Op.ADDI, rd=1, rs1=2, imm=-12345)
    assert Instruction.decode(insn.encode()).imm == -12345


def test_extreme_immediates():
    for imm in (-(1 << 31), (1 << 31) - 1, 0, -1, 1):
        insn = Instruction(Op.ADDI, rd=1, rs1=1, imm=imm)
        assert Instruction.decode(insn.encode()).imm == imm


def test_imm_out_of_range_rejected():
    with pytest.raises(EncodingError):
        Instruction(Op.ADDI, rd=1, rs1=1, imm=1 << 31).encode()
    with pytest.raises(EncodingError):
        Instruction(Op.ADDI, rd=1, rs1=1, imm=-(1 << 31) - 1).encode()


def test_register_out_of_range_rejected():
    with pytest.raises(EncodingError):
        Instruction(Op.ADD, rd=64).encode()
    with pytest.raises(EncodingError):
        Instruction(Op.ADD, rd=-1).encode()


def test_unknown_opcode_rejected():
    with pytest.raises(EncodingError):
        Instruction.decode(0xFE << 56)


def test_reserved_bits_rejected():
    word = Instruction(Op.ADD, rd=1, rs1=2, rs2=3).encode() | (1 << 35)
    with pytest.raises(EncodingError):
        Instruction.decode(word)


def test_non_64bit_word_rejected():
    with pytest.raises(EncodingError):
        Instruction.decode(1 << 64)
    with pytest.raises(EncodingError):
        Instruction.decode(-1)


@given(
    op=st.sampled_from(sorted(Op, key=int)),
    rd=st.integers(0, 63),
    rs1=st.integers(0, 63),
    rs2=st.integers(0, 63),
    imm=st.integers(-(1 << 31), (1 << 31) - 1),
)
def test_roundtrip_property(op, rd, rs1, rs2, imm):
    insn = Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
    word = insn.encode()
    assert 0 <= word < (1 << 64)
    assert Instruction.decode(word) == insn


def test_every_op_has_metadata():
    for op in Op:
        info = OPINFO[op]
        assert info.mnemonic
        assert info.latency >= 1
        assert isinstance(info.fmt, Format)


def test_mem_flags_consistent():
    for op in Op:
        info = OPINFO[op]
        if info.is_amo:
            assert info.is_load and info.is_store
        if info.fmt is Format.LOAD:
            assert info.is_load and not info.is_store
        if info.fmt is Format.STORE:
            assert info.is_store and not info.is_load
