"""Assembler tests: syntax, pseudo-ops, labels, layout, error reporting."""

import pytest

from repro.isa import (
    DATA_BASE,
    TEXT_BASE,
    AssemblerError,
    Instruction,
    Op,
    assemble,
    format_instruction,
)


def test_empty_program():
    prog = assemble("")
    assert prog.text == ()
    assert prog.entry == TEXT_BASE


def test_basic_rtype():
    prog = assemble(".text\nadd a0, a1, a2\n")
    assert prog.text[0] == Instruction(Op.ADD, rd=10, rs1=11, rs2=12)


def test_default_segment_is_text():
    prog = assemble("add t0, t1, t2")
    assert prog.text[0].op is Op.ADD


def test_xn_register_names():
    prog = assemble("add x3, x4, x31")
    assert (prog.text[0].rd, prog.text[0].rs1, prog.text[0].rs2) == (3, 4, 31)


def test_immediate_forms():
    prog = assemble("addi a0, a0, -8\nandi a1, a1, 0xff\n")
    assert prog.text[0].imm == -8
    assert prog.text[1].imm == 0xFF


def test_load_store_operands():
    prog = assemble("ld a0, 16(sp)\nsd a1, -8(s0)\nfld f1, 0(a2)\nfsd f2, 24(a3)\n")
    ld, sd, fld, fsd = prog.text
    assert (ld.op, ld.rd, ld.rs1, ld.imm) == (Op.LD, 10, 2, 16)
    assert (sd.op, sd.rs2, sd.rs1, sd.imm) == (Op.SD, 11, 8, -8)
    assert (fld.op, fld.rd, fld.rs1) == (Op.FLD, 1, 12)
    assert (fsd.op, fsd.rs2, fsd.rs1, fsd.imm) == (Op.FSD, 2, 13, 24)


def test_amo_syntax():
    prog = assemble("amoswap a0, a1, (a2)\namoadd t0, t1, 8(t2)\n")
    swap, add = prog.text
    assert (swap.op, swap.rd, swap.rs2, swap.rs1, swap.imm) == (Op.AMOSWAP, 10, 11, 12, 0)
    assert (add.op, add.imm) == (Op.AMOADD, 8)


def test_branch_offsets_are_pc_relative():
    prog = assemble(
        """
        .text
        top:
            addi a0, a0, -1
            bnez a0, top
            halt
        """
    )
    bne = prog.text[1]
    assert bne.op is Op.BNE
    # bne is at TEXT_BASE+8, target TEXT_BASE: offset -8.
    assert bne.imm == -8


def test_forward_branch():
    prog = assemble("beq a0, a1, done\nnop\nnop\ndone: halt\n")
    assert prog.text[0].imm == 24


def test_jal_and_call_ret():
    prog = assemble(
        """
        main:
            call fn
            halt
        fn:
            ret
        """
    )
    call, _, ret = prog.text
    assert call.op is Op.JAL and call.rd == 1 and call.imm == 16
    assert ret.op is Op.JALR and ret.rd == 0 and ret.rs1 == 1


def test_pseudo_expansions():
    prog = assemble("nop\nli a0, 42\nmv a1, a0\nnot a2, a1\nneg a3, a2\nj end\nend: halt\n")
    ops = [i.op for i in prog.text]
    assert ops == [Op.NOPOP, Op.ADDI, Op.ADDI, Op.XORI, Op.SUB, Op.JAL, Op.HALT]


def test_branch_pseudo_swaps():
    prog = assemble("bgt a0, a1, l\nble a2, a3, l\nl: halt\n")
    bgt, ble = prog.text[0], prog.text[1]
    assert bgt.op is Op.BLT and (bgt.rs1, bgt.rs2) == (11, 10)
    assert ble.op is Op.BGE and (ble.rs1, ble.rs2) == (13, 12)


def test_data_words_and_labels():
    prog = assemble(
        """
        .data
        tab: .word 1, 2, 3
        val: .double 2.5
        buf: .space 32
        end_marker: .word 9
        """
    )
    assert prog.symbols["tab"] == DATA_BASE
    assert prog.symbols["val"] == DATA_BASE + 24
    assert prog.symbols["buf"] == DATA_BASE + 32
    assert prog.symbols["end_marker"] == DATA_BASE + 64
    assert len(prog.data) == 72


def test_la_resolves_data_symbol():
    prog = assemble(
        """
        .data
        v: .word 7
        .text
        main: la a0, v
        """
    )
    assert prog.text[0].imm == DATA_BASE


def test_label_plus_offset():
    prog = assemble(
        """
        .data
        arr: .word 0, 0, 0
        .text
        la a0, arr + 16
        """
    )
    assert prog.text[0].imm == DATA_BASE + 16


def test_entry_is_main_when_defined():
    prog = assemble("nop\nmain: halt\n")
    assert prog.entry == TEXT_BASE + 8


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError, match="duplicate"):
        assemble("x: nop\nx: nop\n")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblerError, match="unknown mnemonic"):
        assemble("frobnicate a0, a1\n")


def test_unknown_register_rejected():
    with pytest.raises(AssemblerError, match="register"):
        assemble("add a0, a1, q9\n")


def test_unresolved_symbol_rejected():
    with pytest.raises(AssemblerError, match="unresolved"):
        assemble("j nowhere\n")


def test_operand_count_checked():
    with pytest.raises(AssemblerError, match="expects"):
        assemble("add a0, a1\n")


def test_instruction_in_data_segment_rejected():
    with pytest.raises(AssemblerError, match="outside"):
        assemble(".data\nadd a0, a1, a2\n")


def test_comments_are_ignored():
    prog = assemble("# leading comment\nadd a0, a1, a2  # trailing\n; semicolon comment\n")
    assert len(prog.text) == 1


def test_word_in_text_segment_rejected():
    with pytest.raises(AssemblerError):
        assemble(".text\n.word 1\n")


def test_listing_roundtrip_through_disassembler():
    src = """
    main:
        li a0, 5
        li a1, 0
    loop:
        add a1, a1, a0
        addi a0, a0, -1
        bnez a0, loop
        halt
    """
    prog = assemble(src)
    # Re-assemble the canonical disassembly (labels become numeric offsets,
    # which the assembler accepts as immediates).
    listing = "\n".join(format_instruction(i) for i in prog.text)
    prog2 = assemble(listing)
    assert [i.op for i in prog.text] == [i.op for i in prog2.text]
    assert [i.imm for i in prog.text] == [i.imm for i in prog2.text]


def test_program_instruction_at():
    prog = assemble("nop\nhalt\n")
    assert prog.instruction_at(TEXT_BASE + 8).op is Op.HALT
    with pytest.raises(IndexError):
        prog.instruction_at(TEXT_BASE + 16)
    with pytest.raises(IndexError):
        prog.instruction_at(TEXT_BASE + 3)
