"""The execute() pipeline: miss -> hit transparency, replay, drift, sweeps."""

import json

import pytest

from repro.experiments.parallel import run_sweep, sweep_to_json
from repro.jobs import (
    JobSpec,
    ResultStore,
    execute,
    execute_functional,
    record_summary,
)


def spec(**kwargs) -> JobSpec:
    base = dict(scheme="s9", seed=5, host_cores=2)
    base.update(kwargs)
    return JobSpec.build("fft", "tiny", **base)


class TestMissThenHit:
    def test_hit_returns_the_identical_record(self, store):
        miss = execute(spec(), store)
        hit = execute(spec(), store)
        assert not miss.hit and hit.hit
        assert hit.record == miss.record
        assert hit.result is None  # nothing ran
        assert miss.record["stats_dump"] == hit.record["stats_dump"]

    def test_summary_reconstruction_matches_live_result(self, store):
        miss = execute(spec(), store)
        assert record_summary(miss.record) == miss.result.summary()

    def test_stats_dump_matches_live_result_bytes(self, store):
        miss = execute(spec(), store)
        assert miss.record["stats_dump"] == miss.result.dump_json()

    def test_refresh_bypasses_the_store_read(self, store):
        execute(spec(), store)
        again = execute(spec(), store, refresh=True)
        assert not again.hit and again.result is not None

    def test_no_store_always_runs(self):
        outcome = execute(spec(), store=None)
        assert not outcome.hit and outcome.result is not None

    def test_mode_guard(self, store):
        with pytest.raises(ValueError):
            execute(spec(mode="functional"), store)
        with pytest.raises(ValueError):
            execute_functional(spec(), store)


class TestReplay:
    def test_auto_replay_serves_a_miss_byte_identically(self, store, cache_root):
        """A sweep-style capture in the trace store serves a later miss via
        replay, and the stored record is byte-for-byte what a direct run
        produces (ROADMAP item 4: replay-powered result reuse)."""
        from repro.core.config import SimConfig
        from repro.core.engine import SequentialEngine
        from repro.trace.format import program_digest
        from repro.trace.store import trace_key, trace_store_path

        from repro.jobs.spec import spec_program

        workload = spec_program(spec())
        source = {"workload": "fft", "scale": "tiny"}
        path = trace_store_path(
            trace_key(program_digest(workload.program), source, 1)
        )
        SequentialEngine(
            workload.program,
            sim=SimConfig(
                scheme="su", seed=1, trace_mode="capture", trace_path=str(path),
                trace_source=json.dumps(source, sort_keys=True),
            ),
        ).run()

        replayed = execute(spec(scheme="q10", seed=9, host_cores=4), store)
        assert replayed.replayed
        assert replayed.record["provenance"]["engine"] == "replay"

        direct = execute(
            spec(scheme="q10", seed=9, host_cores=4), store=None, trace=None
        )
        assert direct.record["stats_dump"] == replayed.record["stats_dump"]
        assert direct.record["output_sha256"] == replayed.record["output_sha256"]
        # Same job key: replay and direct are the same job.
        assert direct.key == replayed.key

    def test_trace_none_never_replays(self, store):
        outcome = execute(spec(), store, trace=None)
        assert not outcome.replayed


class TestFunctional:
    def test_records_and_detects_no_drift_on_identical_rerun(self, store):
        fspec = spec(
            mode="functional", scheme="cc", seed=1, host_cores=8,
            workload_args={"nthreads": 1},
        )
        first = execute_functional(fspec, store)
        second = execute_functional(fspec, store)
        assert not first.hit and second.hit
        assert second.drift == []
        assert second.record["metrics"] == first.record["metrics"]

    def test_drift_is_surfaced(self, store):
        fspec = spec(
            mode="functional", scheme="cc", seed=1, host_cores=8,
            workload_args={"nthreads": 1},
        )
        first = execute_functional(fspec, store)
        # Corrupt the stored metrics while keeping the seal valid, as if an
        # earlier toolchain had produced different numbers under this key.
        tampered = dict(first.record)
        tampered["metrics"] = dict(tampered["metrics"], instructions=1)
        store.put(first.key, tampered)
        second = execute_functional(fspec, store)
        assert second.drift and "metrics" in second.drift[0]


class TestSweepWarmPath:
    def test_second_sweep_is_all_store_hits_and_byte_identical(self, cache_root):
        cold_tel: dict = {}
        warm_tel: dict = {}
        kwargs = dict(scale="tiny", base_seed=1, workload="fft", slacks=(9,))
        cold = run_sweep("ablations", telemetry=cold_tel, **kwargs)
        warm = run_sweep("ablations", telemetry=warm_tel, **kwargs)
        assert cold_tel["store_misses"] == len(cold["points"])
        assert warm_tel["store_hits"] == len(warm["points"])
        assert warm_tel["store_misses"] == 0
        assert sweep_to_json(cold) == sweep_to_json(warm)

    def test_manifest_resume_reads_the_store_view(self, cache_root, tmp_path):
        mdir = tmp_path / "manifests"
        kwargs = dict(scale="tiny", base_seed=1, workload="fft", slacks=(9,))
        full = run_sweep("ablations", manifest_dir=mdir, **kwargs)
        tel: dict = {}
        resumed = run_sweep(
            "ablations", manifest_dir=mdir, resume=True, telemetry=tel, **kwargs
        )
        assert tel["manifest_resumed"] == len(full["points"])
        assert tel["store_hits"] == 0 and tel["store_misses"] == 0
        assert sweep_to_json(full) == sweep_to_json(resumed)
