"""Job-key derivation: what must (and must not) change the identity.

The invalidation contract (DESIGN.md §12): program content, toolchain
fingerprint and every digest-relevant configuration field participate in
the key; execution mechanics proven observationally equivalent elsewhere
(scheduling mode, backend at one domain, watchdog, output paths) must not.
"""

import pytest

import repro.lang.compiler as compiler
from repro.jobs import JobSpec, digest_payload, job_key

#: A fixed fake program digest so these tests never need to compile.
DIGEST = "ab" * 32
OTHER_DIGEST = "cd" * 32


def spec(**kwargs) -> JobSpec:
    base = dict(workload="fft", scale="tiny", scheme="s9", seed=7, host_cores=4)
    base.update(kwargs)
    return JobSpec.build(base.pop("workload"), base.pop("scale"), **base)


class TestKeyChanges:
    """Everything here MUST produce a different job key."""

    def test_program_digest(self):
        assert job_key(spec(), DIGEST) != job_key(spec(), OTHER_DIGEST)

    def test_toolchain_fingerprint(self, monkeypatch):
        before = job_key(spec(), DIGEST)
        monkeypatch.setattr(compiler, "_fingerprint", "f" * 64)
        assert job_key(spec(), DIGEST) != before

    @pytest.mark.parametrize(
        "change",
        [
            {"scheme": "su"},
            {"seed": 8},
            {"host_cores": 8},
            {"core_model": "ooo"},
            {"fastforward": True},
            {"scale": "small"},
            {"workload": "lu"},
            {"max_cycles": 1234},
            {"max_instructions": 99},
            {"detect_violations": False},
            {"batch_cycles": 32},
            {"turn_cycles": 128},
            {"wait_chunk": 4},
            {"stats_interval": 500},
            {"fault_plan": "corrupt_dir:at=800"},
            {"checkpoint_interval": 1000},
            {"mem_domains": 2},
            {"mode": "functional"},
            {"workload_args": {"nthreads": 1}},
        ],
    )
    def test_digest_relevant_field(self, change):
        if "workload_args" in change:
            changed = spec(workload_args=change["workload_args"])
        else:
            changed = spec(**change)
        assert job_key(changed, DIGEST) != job_key(spec(), DIGEST)

    def test_backend_included_with_multiple_domains(self):
        a = spec(mem_domains=2, backend="sequential")
        b = spec(mem_domains=2, backend="threaded")
        assert job_key(a, DIGEST) != job_key(b, DIGEST)


class TestKeyInvariant:
    """Everything here must NOT change the job key."""

    @pytest.mark.parametrize(
        "change",
        [
            {"scheduling": "static"},
            {"stepping": "looped"},
            {"dispatch": "oracle"},
            {"host_timeout": 5.0},
            {"backend": "threaded"},  # one memory domain: digest-excluded
            {"checkpoint_path": "/tmp/ckpt.bin"},
            {"trace_mode": "replay", "trace_path": "/tmp/x.trace"},
        ],
    )
    def test_digest_excluded_field(self, change):
        assert job_key(spec(**change), DIGEST) == job_key(spec(), DIGEST)

    def test_build_without_overrides_matches_explicit_defaults(self):
        assert job_key(spec(), DIGEST) == job_key(spec(host_timeout=120.0), DIGEST)


class TestPayload:
    def test_payload_is_json_pure_and_stable(self):
        import json

        payload = digest_payload(spec(), DIGEST)
        assert json.loads(json.dumps(payload)) == payload
        assert payload["program_digest"] == DIGEST
        assert payload["format"] == 1
        assert set(payload) == {
            "format", "mode", "workload", "program_digest", "toolchain",
            "target", "host", "sim",
        }

    def test_functional_payload_drops_timing_config(self):
        payload = digest_payload(spec(mode="functional"), DIGEST)
        assert "sim" not in payload and "host" not in payload

    def test_top_level_fields_overlay_sim(self):
        s = spec(scheme="su", max_cycles=777)
        assert s.sim_config().scheme == "su"
        assert s.sim_config().max_cycles == 777
        assert digest_payload(s, DIGEST)["sim"]["scheme"] == "su"
