"""Result-store mechanics: sealing, corruption, quarantine, gc, and
concurrent writers."""

import json
import multiprocessing
import os

import pytest

from repro.jobs import RESULT_FORMAT, ResultStore, seal_record
from repro.jobs.store import TELEMETRY

KEY = "k" * 64


@pytest.fixture(autouse=True)
def _reset_telemetry():
    TELEMETRY.update(dict.fromkeys(TELEMETRY, 0))


def record(**extra) -> dict:
    base = {"spec": {"toolchain": "t1"}, "metrics": {"x": 1}, "stats": {"a": 2}}
    base.update(extra)
    return base


class TestSealing:
    def test_put_then_load_roundtrips(self, store):
        store.put(KEY, record())
        loaded = store.load(KEY)
        assert loaded is not None
        assert loaded["metrics"] == {"x": 1}
        assert loaded["format"] == RESULT_FORMAT
        assert loaded["job_key"] == KEY
        assert loaded["record_sha256"] == seal_record(loaded)

    def test_absent_key_is_a_miss(self, store):
        assert store.load("0" * 64) is None

    def test_corrupt_json_is_a_miss_not_an_error(self, store):
        path = store.put(KEY, record())
        path.write_text("{ not json")
        assert store.load(KEY) is None

    def test_tampered_field_fails_the_seal(self, store):
        path = store.put(KEY, record())
        doc = json.loads(path.read_text())
        doc["metrics"]["x"] = 999
        path.write_text(json.dumps(doc))
        assert store.load(KEY) is None

    def test_wrong_embedded_key_is_a_miss(self, store):
        path = store.put(KEY, record())
        other = store.path("1" * 64)
        other.write_text(path.read_text())  # valid seal, wrong filename
        assert store.load("1" * 64) is None

    def test_format_mismatch_is_a_miss(self, store):
        path = store.put(KEY, record())
        doc = json.loads(path.read_text())
        doc["format"] = RESULT_FORMAT + 1
        doc["record_sha256"] = seal_record(doc)
        path.write_text(json.dumps(doc))  # self-consistent but future-format
        assert store.load(KEY) is None


class TestManagement:
    def test_keys_and_entries(self, store):
        store.put(KEY, record())
        store.put("a" * 64, record())
        assert store.keys() == sorted([KEY, "a" * 64])
        assert all(rec is not None for _, rec in store.entries())

    def test_gc_drops_invalid_and_stale_toolchain(self, store):
        store.put(KEY, record())
        store.put("a" * 64, record(spec={"toolchain": "old"}))
        store.path("b" * 64).parent.mkdir(parents=True, exist_ok=True)
        store.path("b" * 64).write_text("junk")
        dropped = store.gc(toolchain="t1")
        assert sorted(dropped) == sorted(["a" * 64, "b" * 64])
        assert store.load(KEY) is not None

    def test_gc_dry_run_deletes_nothing(self, store):
        store.path("b" * 64).parent.mkdir(parents=True, exist_ok=True)
        store.path("b" * 64).write_text("junk")
        assert store.gc(dry_run=True) == ["b" * 64]
        assert store.path("b" * 64).exists()

    def test_clear(self, store):
        store.put(KEY, record())
        assert store.clear() == 1
        assert store.keys() == []

    def test_default_is_none_when_caching_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        assert ResultStore.default() is None


class TestQuarantine:
    """Damaged entries are misses *and* get moved aside as evidence."""

    def test_corrupt_entry_is_quarantined_on_load(self, store):
        path = store.put(KEY, record())
        path.write_text("{ torn bytes")
        assert store.load(KEY) is None
        assert not path.exists()  # the broken file no longer shadows the key
        quarantined = path.with_suffix(".corrupt")
        assert quarantined.read_text() == "{ torn bytes"
        # The next lookup is a clean miss, not a second quarantine.
        assert store.load(KEY) is None
        assert TELEMETRY["corrupt"] == 1
        assert TELEMETRY["quarantined"] == 1

    def test_failed_seal_quarantines(self, store):
        path = store.put(KEY, record())
        doc = json.loads(path.read_text())
        doc["metrics"]["x"] = 999
        path.write_text(json.dumps(doc))
        assert store.load(KEY) is None
        assert path.with_suffix(".corrupt").exists()
        assert TELEMETRY["corrupt"] == 1

    def test_stale_format_is_miss_but_not_quarantined(self, store):
        path = store.put(KEY, record())
        doc = json.loads(path.read_text())
        doc["format"] = RESULT_FORMAT + 1
        doc["record_sha256"] = seal_record(doc)
        path.write_text(json.dumps(doc))
        assert store.load(KEY) is None
        assert path.exists()  # stale ≠ damaged: left in place for gc
        assert TELEMETRY["stale"] == 1
        assert TELEMETRY["quarantined"] == 0

    def test_requarantine_overwrites_older_evidence(self, store):
        path = store.put(KEY, record())
        path.with_suffix(".corrupt").write_text("older evidence")
        path.write_text("fresh damage")
        assert store.load(KEY) is None
        assert path.with_suffix(".corrupt").read_text() == "fresh damage"

    def test_telemetry_counts_hits_and_misses(self, store):
        store.put(KEY, record())
        assert store.load(KEY) is not None
        assert store.load("0" * 64) is None
        assert TELEMETRY["hits"] == 1
        assert TELEMETRY["misses"] == 1

    def test_verify_scans_and_quarantines(self, store):
        store.put(KEY, record())                     # ok
        bad = store.put("a" * 64, record())
        bad.write_text("junk")                       # corrupt
        stale = store.put("b" * 64, record())
        doc = json.loads(stale.read_text())
        doc["format"] = RESULT_FORMAT + 1
        doc["record_sha256"] = seal_record(doc)
        stale.write_text(json.dumps(doc))            # stale
        report = store.verify()
        assert report["checked"] == 3
        assert report["ok"] == [KEY]
        assert report["corrupt"] == ["a" * 64]
        assert report["stale"] == ["b" * 64]
        assert report["quarantined"] == ["a" * 64 + ".corrupt"]
        assert bad.with_suffix(".corrupt").exists()
        assert store.load(KEY) is not None           # good entry untouched

    def test_verify_on_empty_store(self, store):
        report = store.verify()
        assert report["checked"] == 0
        assert report["corrupt"] == []

    def test_entries_is_non_mutating(self, store):
        """gc --dry-run and `cache ls` walk entries(); a scan must never
        move files."""
        path = store.put(KEY, record())
        path.write_text("junk")
        listed = dict(store.entries())
        assert listed[KEY] is None
        assert path.exists()
        assert not path.with_suffix(".corrupt").exists()


# ------------------------------------------------------- concurrent writers
def _worker_execute(cache_dir: str, queue) -> None:
    """Run the same job as the sibling process, racing on one store key."""
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    from repro.jobs import JobSpec, ResultStore, execute

    outcome = execute(
        JobSpec.build("fft", "tiny", scheme="s9", seed=3, host_cores=2),
        store=ResultStore.default(),
    )
    queue.put((outcome.key, outcome.record["stats_dump"]))


class TestConcurrency:
    def test_two_processes_same_key_one_valid_record(self, cache_root, store):
        """Satellite: two processes computing the same job key concurrently
        both succeed, the store ends with one valid record, and both saw
        byte-identical stats dumps (the runs are deterministic, so the
        last-writer-wins race is benign)."""
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        procs = [
            ctx.Process(target=_worker_execute, args=(str(cache_root), queue))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        results = [queue.get(timeout=120) for _ in procs]
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        (key_a, dump_a), (key_b, dump_b) = results
        assert key_a == key_b
        assert dump_a == dump_b  # deterministic engine: identical bytes
        assert store.keys() == [key_a]  # exactly one record survived
        stored = store.load(key_a)
        assert stored is not None  # ... and it seals valid
        assert stored["stats_dump"] == dump_a
