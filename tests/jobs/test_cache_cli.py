"""``slacksim cache`` subcommand: ls / info / gc / clear over the store."""

from repro.cli import main
from repro.jobs import JobSpec, ResultStore, execute


def _populate(store) -> str:
    outcome = execute(
        JobSpec.build("fft", "tiny", scheme="s9", seed=2, host_cores=2), store
    )
    return outcome.key


def test_ls_lists_records(store, capsys):
    key = _populate(store)
    assert main(["cache", "ls"]) == 0
    out = capsys.readouterr().out
    assert key[:16] in out
    assert "fft/tiny s9 h2 seed=2" in out
    assert "1 record(s)" in out


def test_info_prints_one_record_by_prefix(store, capsys):
    key = _populate(store)
    assert main(["cache", "info", key[:12]]) == 0
    out = capsys.readouterr().out
    assert f'"job_key": "{key}"' in out
    assert '"stats_dump"' not in out  # elided from the human view


def test_info_rejects_ambiguous_or_unknown_prefix(store, capsys):
    _populate(store)
    assert main(["cache", "info", "zzzz"]) == 1
    assert main(["cache", "info"]) == 2


def test_gc_drops_corrupt_records(store, capsys):
    key = _populate(store)
    store.path(key).write_text("garbage")
    assert main(["cache", "gc"]) == 0
    out = capsys.readouterr().out
    assert "dropped 1 record(s)" in out
    assert store.keys() == []


def test_gc_dry_run_keeps_files(store, capsys):
    key = _populate(store)
    store.path(key).write_text("garbage")
    assert main(["cache", "gc", "--dry-run"]) == 0
    assert "would drop 1" in capsys.readouterr().out
    assert store.path(key).exists()


def test_clear_removes_everything(store, capsys):
    _populate(store)
    assert main(["cache", "clear"]) == 0
    assert "removed 1 record(s)" in capsys.readouterr().out
    assert store.keys() == []


def test_cache_disabled_exits_nonzero(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", "")
    assert main(["cache", "ls"]) == 2
    assert ResultStore.default() is None


def test_run_twice_reports_store_hit(store, capsys):
    argv = ["run", "--workload", "fft", "--scheme", "s9", "--host-cores", "2",
            "--scale", "tiny", "--seed", "2"]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "served from result store" not in cold
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert "served from result store" in warm
    # The summary and verification lines are byte-identical either way.
    assert cold.splitlines()[0] == warm.splitlines()[0]
    assert cold.splitlines()[-1] == warm.splitlines()[-1]


def test_verify_clean_store_exits_zero(store, capsys):
    _populate(store)
    assert main(["cache", "verify"]) == 0
    out = capsys.readouterr().out
    assert "1 ok, 0 stale, 0 corrupt" in out


def test_verify_quarantines_and_exits_nonzero(store, capsys):
    key = _populate(store)
    store.path(key).write_text("torn")
    assert main(["cache", "verify"]) == 1
    out = capsys.readouterr().out
    assert f"{key[:16]}  CORRUPT -> quarantined" in out
    assert not store.path(key).exists()
    assert store.path(key).with_suffix(".corrupt").read_text() == "torn"
    # A second pass finds a clean (empty) store.
    assert main(["cache", "verify"]) == 0
