"""Job-layer fixtures: every test runs against an isolated cache root."""

import pytest

from repro.jobs import ResultStore


@pytest.fixture()
def cache_root(tmp_path, monkeypatch):
    """Point REPRO_CACHE_DIR (compile cache, trace store, result store) at a
    per-test temp directory so tests never see each other's records."""
    root = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
    return root


@pytest.fixture()
def store(cache_root):
    store = ResultStore.default()
    assert store is not None
    return store
