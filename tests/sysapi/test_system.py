"""SystemEmulation (syscall router) unit tests."""

import pytest

from repro.cpu.arch import ArchState
from repro.isa import assemble
from repro.sysapi.loader import load_program
from repro.sysapi.syscalls import Sys
from repro.sysapi.system import SysAction, SystemEmulation, TargetError


@pytest.fixture
def system():
    image = load_program(assemble("main: halt\n"), num_contexts=4)
    sysm = SystemEmulation(image, num_cores=4)
    activations = []
    sysm.activate_context = lambda core, pc, arg, ts: activations.append((core, pc, arg, ts))
    sysm._test_activations = activations  # type: ignore[attr-defined]
    return sysm


def call(system, core, num, a0=0, a1=0, ts=0, fa0=0.0):
    state = ArchState(context_id=core)
    state.set_x(17, int(num))
    state.set_x(10, a0)
    state.set_x(11, a1)
    state.f[10] = fa0
    return system.syscall(core, state, ts), state


class TestBasics:
    def test_print_int_routes_to_output(self, system):
        call(system, 0, Sys.PRINT_INT, a0=42)
        assert system.merged_output() == [42]
        assert system.output_of(0) == [42]

    def test_print_float_uses_fa0(self, system):
        call(system, 0, Sys.PRINT_FLOAT, fa0=2.5)
        assert system.merged_output() == [2.5]

    def test_print_char(self, system):
        call(system, 0, Sys.PRINT_CHAR, a0=65)
        assert system.merged_output() == ["A"]

    def test_clock_returns_local_time(self, system):
        result, state = call(system, 0, Sys.CLOCK, ts=777)
        assert state.x[10] == 777

    def test_sbrk_is_shared_and_monotonic(self, system):
        _, s1 = call(system, 0, Sys.SBRK, a0=64)
        _, s2 = call(system, 1, Sys.SBRK, a0=64)
        assert s2.x[10] >= s1.x[10] + 64

    def test_sbrk_exhaustion_raises(self, system):
        with pytest.raises(TargetError, match="exhausts"):
            call(system, 0, Sys.SBRK, a0=1 << 30)

    def test_unknown_syscall_raises(self, system):
        with pytest.raises(TargetError, match="unknown syscall"):
            call(system, 0, 99)

    def test_registers_preserved_except_a0(self, system):
        state = ArchState(context_id=0)
        state.set_x(17, int(Sys.CLOCK))
        state.set_x(5, 12345)  # t0
        system.syscall(0, state, 9)
        assert state.x[5] == 12345


class TestThreads:
    def test_spawn_claims_lowest_free_core(self, system):
        result, state = call(system, 0, Sys.THREAD_SPAWN, a0=0x10000, a1=7, ts=5)
        assert result.action is SysAction.PROCEED
        assert state.x[10] == 1  # tid
        assert system._test_activations == [(1, 0x10000, 7, 5)]

    def test_spawn_exhaustion(self, system):
        for _ in range(3):
            call(system, 0, Sys.THREAD_SPAWN, a0=0x10000, a1=0)
        with pytest.raises(TargetError, match="no idle core"):
            call(system, 0, Sys.THREAD_SPAWN, a0=0x10000, a1=0)

    def test_join_blocks_until_exit(self, system):
        _, st = call(system, 0, Sys.THREAD_SPAWN, a0=0x10000, a1=0)
        tid = st.x[10]
        result, _ = call(system, 0, Sys.THREAD_JOIN, a0=tid)
        assert result.action is SysAction.BLOCK
        # The spawned thread (on core 1) exits -> joiner woken.
        result, _ = call(system, 1, Sys.EXIT, ts=40)
        assert result.action is SysAction.EXIT
        assert result.wakes == [(0, 42)]

    def test_join_on_exited_thread_proceeds(self, system):
        _, st = call(system, 0, Sys.THREAD_SPAWN, a0=0x10000, a1=0)
        call(system, 1, Sys.EXIT)
        result, _ = call(system, 0, Sys.THREAD_JOIN, a0=st.x[10])
        assert result.action is SysAction.PROCEED

    def test_join_unknown_tid_raises(self, system):
        with pytest.raises(TargetError, match="unknown thread"):
            call(system, 0, Sys.THREAD_JOIN, a0=55)

    def test_exit_frees_the_core_for_reuse(self, system):
        call(system, 0, Sys.THREAD_SPAWN, a0=0x10000, a1=0)  # core 1
        call(system, 1, Sys.EXIT)
        _, st = call(system, 0, Sys.THREAD_SPAWN, a0=0x10000, a1=0)
        # Core 1 is reused; the tid keeps counting.
        assert system._test_activations[-1][0] == 1
        assert st.x[10] == 2

    def test_thread_id_and_count(self, system):
        _, st = call(system, 0, Sys.THREAD_ID)
        assert st.x[10] == 0
        call(system, 0, Sys.THREAD_SPAWN, a0=0x10000, a1=0)
        _, st = call(system, 1, Sys.THREAD_ID)
        assert st.x[10] == 1
        _, st = call(system, 0, Sys.NUM_THREADS)
        assert st.x[10] == 2

    def test_live_threads_accounting(self, system):
        assert system.live_threads() == 1
        call(system, 0, Sys.THREAD_SPAWN, a0=0x10000, a1=0)
        assert system.live_threads() == 2
        call(system, 1, Sys.EXIT)
        assert system.live_threads() == 1


class TestSyncRouting:
    def test_lock_calls_route_to_emulation(self, system):
        call(system, 0, Sys.LOCK_INIT, a0=0x500)
        r1, _ = call(system, 0, Sys.LOCK_ACQ, a0=0x500)
        r2, _ = call(system, 1, Sys.LOCK_ACQ, a0=0x500)
        assert r1.action is SysAction.PROCEED
        assert r2.action is SysAction.BLOCK
        r3, _ = call(system, 0, Sys.LOCK_REL, a0=0x500, ts=30)
        assert r3.wakes == [(1, 32)]

    def test_barrier_calls_route(self, system):
        call(system, 0, Sys.BARRIER_INIT, a0=0x600, a1=2)
        r1, _ = call(system, 0, Sys.BARRIER_WAIT, a0=0x600, ts=5)
        assert r1.action is SysAction.BLOCK
        r2, _ = call(system, 1, Sys.BARRIER_WAIT, a0=0x600, ts=9)
        assert r2.action is SysAction.PROCEED and r2.wakes == [(0, 11)]

    def test_sema_calls_route(self, system):
        call(system, 0, Sys.SEMA_INIT, a0=0x700, a1=1)
        r1, _ = call(system, 0, Sys.SEMA_WAIT, a0=0x700)
        assert r1.action is SysAction.PROCEED
        r2, _ = call(system, 1, Sys.SEMA_WAIT, a0=0x700)
        assert r2.action is SysAction.BLOCK
        r3, _ = call(system, 0, Sys.SEMA_SIGNAL, a0=0x700, ts=50)
        assert r3.wakes == [(1, 52)]
