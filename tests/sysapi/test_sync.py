"""Table 1 synchronization-primitive emulation tests (paper §4)."""

import pytest

from repro.sysapi.sync import SyncAction, SyncEmulation


@pytest.fixture
def sync():
    return SyncEmulation()


class TestLocks:
    def test_uncontended_acquire(self, sync):
        sync.lock_init(0x100)
        r = sync.lock_acquire(0x100, core=0, ts=10)
        assert r.action is SyncAction.PROCEED
        assert sync.lock_holder(0x100) == 0

    def test_contended_acquire_blocks(self, sync):
        sync.lock_init(0x100)
        sync.lock_acquire(0x100, 0, 10)
        r = sync.lock_acquire(0x100, 1, 11)
        assert r.action is SyncAction.BLOCK
        assert sync.stats.lock_contended == 1

    def test_release_hands_off_fifo(self, sync):
        sync.lock_init(0x100)
        sync.lock_acquire(0x100, 0, 10)
        sync.lock_acquire(0x100, 1, 11)
        sync.lock_acquire(0x100, 2, 12)
        r = sync.lock_release(0x100, 0, 20)
        assert r.wakes == [(1, 22)]
        assert sync.lock_holder(0x100) == 1  # direct handoff
        r = sync.lock_release(0x100, 1, 30)
        assert r.wakes == [(2, 32)]

    def test_release_without_waiters_frees(self, sync):
        sync.lock_init(0x100)
        sync.lock_acquire(0x100, 0, 10)
        sync.lock_release(0x100, 0, 20)
        assert sync.lock_holder(0x100) is None

    def test_release_by_non_holder_rejected(self, sync):
        sync.lock_init(0x100)
        sync.lock_acquire(0x100, 0, 10)
        with pytest.raises(RuntimeError, match="held by"):
            sync.lock_release(0x100, 1, 20)

    def test_recursive_acquire_rejected(self, sync):
        sync.lock_init(0x100)
        sync.lock_acquire(0x100, 0, 10)
        with pytest.raises(RuntimeError, match="re-acquired"):
            sync.lock_acquire(0x100, 0, 11)

    def test_implicit_init_tolerated(self, sync):
        r = sync.lock_acquire(0x200, 0, 5)
        assert r.action is SyncAction.PROCEED

    def test_distinct_addresses_are_distinct_locks(self, sync):
        sync.lock_acquire(0x100, 0, 1)
        r = sync.lock_acquire(0x108, 1, 2)
        assert r.action is SyncAction.PROCEED


class TestBarriers:
    def test_all_but_last_block(self, sync):
        sync.barrier_init(0x300, 3)
        assert sync.barrier_wait(0x300, 0, 10).action is SyncAction.BLOCK
        assert sync.barrier_wait(0x300, 1, 12).action is SyncAction.BLOCK
        r = sync.barrier_wait(0x300, 2, 15)
        assert r.action is SyncAction.PROCEED
        assert sorted(r.wakes) == [(0, 17), (1, 17)]  # released at last arrival

    def test_barrier_is_reusable(self, sync):
        sync.barrier_init(0x300, 2)
        sync.barrier_wait(0x300, 0, 10)
        sync.barrier_wait(0x300, 1, 11)
        assert sync.barrier_wait(0x300, 1, 20).action is SyncAction.BLOCK
        r = sync.barrier_wait(0x300, 0, 25)
        assert r.wakes == [(1, 27)]
        assert sync.stats.barrier_episodes == 2

    def test_single_participant_never_blocks(self, sync):
        sync.barrier_init(0x300, 1)
        assert sync.barrier_wait(0x300, 0, 10).action is SyncAction.PROCEED

    def test_uninitialised_barrier_rejected(self, sync):
        with pytest.raises(RuntimeError, match="uninitialised"):
            sync.barrier_wait(0x400, 0, 10)

    def test_bad_count_rejected(self, sync):
        with pytest.raises(RuntimeError):
            sync.barrier_init(0x300, 0)


class TestSemaphores:
    def test_wait_consumes_value(self, sync):
        sync.sema_init(0x500, 2)
        assert sync.sema_wait(0x500, 0, 1).action is SyncAction.PROCEED
        assert sync.sema_wait(0x500, 1, 2).action is SyncAction.PROCEED
        assert sync.sema_wait(0x500, 2, 3).action is SyncAction.BLOCK

    def test_signal_wakes_fifo(self, sync):
        sync.sema_init(0x500, 0)
        sync.sema_wait(0x500, 0, 1)
        sync.sema_wait(0x500, 1, 2)
        r = sync.sema_signal(0x500, 7, 10)
        assert r.wakes == [(0, 12)]
        r = sync.sema_signal(0x500, 7, 20)
        assert r.wakes == [(1, 22)]

    def test_signal_without_waiters_increments(self, sync):
        sync.sema_init(0x500, 0)
        sync.sema_signal(0x500, 0, 1)
        assert sync.sema_wait(0x500, 1, 2).action is SyncAction.PROCEED

    def test_uninitialised_sema_rejected(self, sync):
        with pytest.raises(RuntimeError, match="uninitialised"):
            sync.sema_wait(0x600, 0, 1)

    def test_negative_initial_value_rejected(self, sync):
        with pytest.raises(RuntimeError):
            sync.sema_init(0x500, -1)


def test_producer_consumer_protocol(sync):
    """Semaphore pair as a 1-slot mailbox: orders are consistent."""
    sync.sema_init(0x10, 0)  # items
    sync.sema_init(0x18, 1)  # space
    # producer acquires space, consumer blocks on items
    assert sync.sema_wait(0x18, 0, 1).action is SyncAction.PROCEED
    assert sync.sema_wait(0x10, 1, 2).action is SyncAction.BLOCK
    # producer publishes
    r = sync.sema_signal(0x10, 0, 5)
    assert r.wakes == [(1, 7)]
