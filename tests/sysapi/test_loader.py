"""Program loader tests."""

import pytest

from repro.isa import DATA_BASE, TEXT_BASE, assemble
from repro.sysapi.loader import load_program


def test_text_and_data_materialised():
    prog = assemble(
        """
        .data
        v: .word 77
        .text
        main: nop
        """
    )
    image = load_program(prog, num_contexts=2)
    from repro._util import to_unsigned64

    assert to_unsigned64(image.memory.load_word(TEXT_BASE)) == prog.text[0].encode()
    assert image.memory.load_word(DATA_BASE) == 77


def test_heap_starts_after_data_aligned():
    prog = assemble(".data\nv: .word 1, 2, 3\n.text\nmain: nop\n")
    image = load_program(prog)
    assert image.heap_start >= prog.data_end
    assert image.heap_start % 64 == 0


def test_per_context_stacks_are_disjoint():
    prog = assemble("main: nop\n")
    image = load_program(prog, num_contexts=4, stack_bytes=128 * 1024)
    tops = [image.stack_top(i) for i in range(4)]
    assert len(set(tops)) == 4
    assert all(tops[i] - tops[i + 1] == 128 * 1024 for i in range(3))
    assert max(tops) < 16 * 1024 * 1024


def test_thread_exit_symbol_resolved():
    prog = assemble("main: nop\n__thread_exit: halt\n")
    image = load_program(prog)
    assert image.thread_exit_pc == prog.symbols["__thread_exit"]


def test_memory_too_small_rejected():
    prog = assemble("main: nop\n")
    with pytest.raises(ValueError, match="memory too small"):
        load_program(prog, num_contexts=8, memory_bytes=1 << 20, stack_bytes=256 * 1024)
