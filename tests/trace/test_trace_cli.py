"""CLI surface of the trace subsystem: ``run --capture-trace/--replay-trace``
and ``trace info``."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def captured(tmp_path, capsys):
    path = str(tmp_path / "fft.trace")
    assert main(["run", "--workload", "fft", "--scale", "tiny",
                 "--capture-trace", path]) == 0
    out = capsys.readouterr().out
    assert "trace captured" in out and path in out
    return path


def test_run_replay_matches_direct_stats(captured, tmp_path, capsys):
    direct = tmp_path / "direct.stats.json"
    replay = tmp_path / "replay.stats.json"
    assert main(["run", "--workload", "fft", "--scale", "tiny", "--scheme",
                 "q3", "--stats-out", str(direct)]) == 0
    assert main(["run", "--workload", "fft", "--scale", "tiny", "--scheme",
                 "q3", "--replay-trace", captured,
                 "--stats-out", str(replay)]) == 0
    out = capsys.readouterr().out
    assert "replayed from" in out
    # The CI trace job leans on this: direct vs replay dumps diff clean.
    assert main(["stats", "diff", str(direct), str(replay)]) == 0


def test_capture_and_replay_are_mutually_exclusive(tmp_path, capsys):
    assert main(["run", "--workload", "fft", "--scale", "tiny",
                 "--capture-trace", str(tmp_path / "a.trace"),
                 "--replay-trace", str(tmp_path / "b.trace")]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_trace_info(captured, capsys):
    assert main(["trace", "info", captured]) == 0
    out = capsys.readouterr().out
    assert "flavor:" in out and "program" in out
    assert "program digest:" in out
    assert "sha256:" in out
    assert "mem" in out  # op breakdown present


def test_trace_info_rejects_garbage(tmp_path, capsys):
    junk = tmp_path / "junk.trace"
    junk.write_bytes(b"not a trace at all, nope" * 4)
    assert main(["trace", "info", str(junk)]) == 1
    assert capsys.readouterr().err.strip()


def test_help_parity():
    """Every trace flag documents itself: --help text exists for the new
    run flags, the trace subcommand, and the sweep --trace toggle."""
    parser = build_parser()
    fmt = parser.format_help()
    assert "trace" in fmt
    run_help = next(
        a for a in parser._subparsers._group_actions[0].choices.items()
        if a[0] == "run")[1].format_help()
    assert "--capture-trace" in run_help and "--replay-trace" in run_help
    sweep_help = parser._subparsers._group_actions[0].choices["sweep"].format_help()
    assert "--trace" in sweep_help
    trace_help = parser._subparsers._group_actions[0].choices["trace"].format_help()
    assert "info" in trace_help
