"""Sweep trace reuse: capture once per (workload, scale), replay every
point, and produce byte-identical JSON to the non-traced runner."""

import pathlib

import pytest

from repro.experiments.parallel import run_sweep, sweep_to_json


@pytest.fixture()
def trace_store(tmp_path, monkeypatch):
    cache = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
    return cache / "traces"


def _store_state(store: pathlib.Path):
    return sorted((p.name, p.stat().st_mtime_ns) for p in store.glob("*.trace"))


def test_traced_sweep_is_byte_identical_and_captures_once(trace_store):
    plain = sweep_to_json(run_sweep("ablations", jobs=1, scale="tiny"))
    traced = sweep_to_json(run_sweep("ablations", jobs=1, scale="tiny",
                                     trace=True))
    assert traced == plain
    # ablations sweeps one (workload, scale) combo -> exactly one functional
    # capture, keyed on (program digest, workload config, base seed).
    state = _store_state(trace_store)
    assert len(state) == 1

    # A second traced sweep reuses the stored capture (mtimes untouched)
    # and stays byte-identical.
    again = sweep_to_json(run_sweep("ablations", jobs=1, scale="tiny",
                                    trace=True))
    assert again == plain
    assert _store_state(trace_store) == state


def test_traced_sweep_is_backend_invariant(trace_store):
    serial = sweep_to_json(run_sweep("ablations", jobs=1, scale="tiny",
                                     trace=True))
    sharded = sweep_to_json(run_sweep("ablations", jobs=2, scale="tiny",
                                      trace=True))
    assert serial == sharded
    assert len(_store_state(trace_store)) == 1


def test_corrupt_stored_trace_is_recaptured(trace_store):
    run_sweep("ablations", jobs=1, scale="tiny", trace=True)
    (path,) = trace_store.glob("*.trace")
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0x10
    path.write_bytes(bytes(raw))
    # The poisoned file fails its integrity check at capture-validity time
    # and is silently re-captured; the sweep still runs clean.
    plain = sweep_to_json(run_sweep("ablations", jobs=1, scale="tiny"))
    traced = sweep_to_json(run_sweep("ablations", jobs=1, scale="tiny",
                                     trace=True))
    assert traced == plain
