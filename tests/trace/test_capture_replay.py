"""Capture → replay equivalence tests (DESIGN.md §11).

The contract under test is **replay transparency**: a run replayed from a
captured trace must produce a stats digest byte-identical to a direct run
under the identical (scheme, scheduling, backend, mem_domains) config —
for every scheme family, because the trace records only the committed-op
stream at the core → memory seam and everything scheme-dependent (windows,
violations, coherence, sync outcomes) is re-enacted live.

The flip side is **capture invariance**: because nothing pacing-dependent
is recorded, capturing the same workload under different schemes and sim
seeds must yield byte-identical trace files.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core import run_simulation
from repro.core.checkpoint import load_checkpoint
from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.core.engine import EngineError, SequentialEngine
from repro.trace import TraceError, read_trace
from repro.workloads.registry import make_workload
from repro.workloads.synthetic import sharing_workload

#: One representative per scheme family (Table 2): cycle-count, quantum,
#: slack, unbounded.
SCHEMES = ["cc", "q3", "s2", "su"]


@pytest.fixture(scope="module")
def fft():
    return make_workload("fft", scale="tiny").program


@pytest.fixture(scope="module")
def fft_trace(fft, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("trace") / "fft.trace")
    result = run_simulation(
        fft, sim=SimConfig(scheme="cc", seed=1, trace_mode="capture",
                           trace_path=path))
    assert result.completed
    return path


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("scheduling", ["dynamic", "static"])
@pytest.mark.parametrize("backend,mem_domains",
                         [("sequential", 1), ("threaded", 4)])
def test_replay_digest_matches_direct(fft, fft_trace, scheme, scheduling,
                                      backend, mem_domains):
    sim = dict(scheme=scheme, seed=1, scheduling=scheduling,
               backend=backend, mem_domains=mem_domains)
    direct = run_simulation(fft, sim=SimConfig(**sim))
    replay = run_simulation(
        fft, sim=SimConfig(trace_mode="replay", trace_path=fft_trace, **sim))
    assert direct.completed and replay.completed
    # Full-dump equality, not just the digest: this is what makes traced
    # sweep JSON byte-identical to the non-traced runner's.
    assert replay.stats == direct.stats
    assert replay.stats_sha256 == direct.stats_sha256


def test_capture_is_scheme_and_seed_invariant(fft, tmp_path):
    """Same workload captured under (cc, seed 1) and (s4, seed 9) is the
    same file, byte for byte — the sim seed only jitters host costs and the
    scheme only paces, neither reaches the committed stream."""
    a, b = tmp_path / "a.trace", tmp_path / "b.trace"
    run_simulation(fft, sim=SimConfig(scheme="cc", seed=1,
                                      trace_mode="capture", trace_path=str(a)))
    run_simulation(fft, sim=SimConfig(scheme="s4", seed=9,
                                      trace_mode="capture", trace_path=str(b)))
    assert a.read_bytes() == b.read_bytes()


def test_stale_trace_is_refused(fft_trace):
    """Replaying against a different program is a hard error, not garbage:
    the recorded streams describe a different execution."""
    lu = make_workload("lu", scale="tiny").program
    with pytest.raises(EngineError, match="digest"):
        run_simulation(lu, sim=SimConfig(trace_mode="replay",
                                         trace_path=fft_trace))


def test_corrupt_trace_is_refused(fft_trace, tmp_path):
    raw = bytearray(pathlib.Path(fft_trace).read_bytes())
    raw[len(raw) // 2] ^= 0x40
    bad = tmp_path / "bad.trace"
    bad.write_bytes(bytes(raw))
    with pytest.raises(TraceError, match="integrity"):
        read_trace(str(bad))


def test_replay_composes_with_checkpoints(fft, fft_trace, tmp_path):
    """Checkpointing a replay run and resuming it stays digest-identical
    to the uninterrupted direct run — the two subsystems compose."""
    sim = dict(scheme="q3", seed=5)
    direct = run_simulation(fft, sim=SimConfig(**sim))
    ckpt = str(tmp_path / "replay.ckpt")
    engine = SequentialEngine(
        fft, sim=SimConfig(trace_mode="replay", trace_path=fft_trace,
                           checkpoint_interval=2000, checkpoint_path=ckpt,
                           **sim))
    result = engine.run()
    assert result.completed
    assert result.stats_sha256 == direct.stats_sha256
    assert pathlib.Path(ckpt).exists()
    resumed = load_checkpoint(ckpt).run()
    assert resumed.completed
    assert resumed.stats_sha256 == direct.stats_sha256


def test_capture_refuses_fault_injection(fft, tmp_path):
    """A trace must record a clean execution; capture under fault injection
    or instruction caps is refused rather than silently recorded."""
    with pytest.raises(EngineError, match="capture"):
        run_simulation(
            fft, sim=SimConfig(trace_mode="capture",
                               trace_path=str(tmp_path / "x.trace"),
                               max_instructions=100))


# ----------------------------------------------------------- trace flavor
def _trace_flavor_sim(**kw):
    return dict(
        trace_cores=sharing_workload(4, 20, seed=1),
        host=HostConfig(num_cores=4),
        target=TargetConfig(num_cores=4, core_model="trace"),
        sim=SimConfig(**kw),
    )


@pytest.fixture(scope="module")
def sharing_trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("trace") / "sharing.trace")
    result = run_simulation(
        None, **_trace_flavor_sim(scheme="cc", seed=1, trace_mode="capture",
                                  trace_path=path))
    assert result.completed
    assert read_trace(path).flavor == "trace"
    return path


@pytest.mark.parametrize("scheme", SCHEMES)
def test_trace_flavor_replay_matches_direct(sharing_trace, scheme):
    direct = run_simulation(None, **_trace_flavor_sim(scheme=scheme, seed=1))
    kw = _trace_flavor_sim(scheme=scheme, seed=1, trace_mode="replay",
                           trace_path=sharing_trace)
    kw.pop("trace_cores")
    replay = run_simulation(None, **kw)
    assert replay.stats == direct.stats
    assert replay.stats_sha256 == direct.stats_sha256


def test_trace_flavor_replay_under_process_backend(sharing_trace):
    """Trace-flavor replay rebuilds literal TraceCores, so the process
    backend (which program-flavor replay refuses, matching direct runs)
    keeps working and stays digest-identical."""
    direct = run_simulation(
        None, **_trace_flavor_sim(scheme="cc", seed=1, backend="process",
                                  mem_domains=2))
    kw = _trace_flavor_sim(scheme="cc", seed=1, backend="process",
                           mem_domains=2, trace_mode="replay",
                           trace_path=sharing_trace)
    kw.pop("trace_cores")
    replay = run_simulation(None, **kw)
    assert replay.stats == direct.stats
    assert replay.stats_sha256 == direct.stats_sha256
