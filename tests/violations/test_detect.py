"""Violation taxonomy tests (paper §3.2): counters, Figure 7 word races,
fast-forward compensation."""

from repro.violations.detect import ViolationCounters, WordOrderTracker


class TestCounters:
    def test_totals(self):
        c = ViolationCounters()
        c.record_simulation_state("bus")
        c.record_system_state()
        c.record_workload_state()
        assert c.total == 3
        assert c.by_resource == {"bus": 1, "directory": 1}

    def test_summary_text(self):
        c = ViolationCounters()
        c.record_workload_state()
        assert "workload=1" in c.summary()

    def test_fastforward_accounting(self):
        c = ViolationCounters()
        c.record_fastforward(5)
        c.record_fastforward(3)
        assert c.fastforwards == 2
        assert c.fastforward_cycles == 8


class TestWordOrderTracker:
    def test_clean_ordering_has_no_violations(self):
        c = ViolationCounters()
        t = WordOrderTracker(c)
        t.observe_store(0x100, core=0, ts=10)
        t.observe_load(0x100, core=1, ts=20)
        assert c.workload_state == 0

    def test_figure7_scenario(self):
        """Paper Figure 7: P1 loads M (simulated cycle 4) before P2's store
        to M (simulated cycle 2) is performed — in simulation time the load
        came first, violating the cycle-by-cycle order."""
        c = ViolationCounters()
        t = WordOrderTracker(c)
        t.observe_load(0x200, core=0, ts=4)    # P1: Load R1, M at cycle 4
        t.observe_store(0x200, core=1, ts=2)   # P2: Store R2, M at cycle 2
        assert c.workload_state == 1

    def test_load_after_future_store(self):
        c = ViolationCounters()
        t = WordOrderTracker(c)
        t.observe_store(0x200, core=1, ts=50)
        t.observe_load(0x200, core=0, ts=30)   # reads the "future" value
        assert c.workload_state == 1

    def test_same_core_races_do_not_count(self):
        c = ViolationCounters()
        t = WordOrderTracker(c)
        t.observe_load(0x300, core=0, ts=10)
        t.observe_store(0x300, core=0, ts=5)   # same core: program order
        assert c.workload_state == 0

    def test_different_words_are_independent(self):
        c = ViolationCounters()
        t = WordOrderTracker(c)
        t.observe_load(0x100, core=0, ts=10)
        t.observe_store(0x108, core=1, ts=5)
        assert c.workload_state == 0

    def test_fastforward_compensation(self):
        """§3.2.3: the store's core fast-forwards so the store appears
        contemporaneous with the conflicting load."""
        c = ViolationCounters()
        t = WordOrderTracker(c, fastforward=True)
        t.observe_load(0x200, core=0, ts=10)
        ff = t.observe_store(0x200, core=1, ts=7)
        assert ff == 4  # 10 - 7 + 1
        assert c.fastforwards == 1
        assert c.fastforward_cycles == 4

    def test_no_fastforward_when_disabled(self):
        c = ViolationCounters()
        t = WordOrderTracker(c, fastforward=False)
        t.observe_load(0x200, core=0, ts=10)
        assert t.observe_store(0x200, core=1, ts=7) == 0
        assert c.workload_state == 1

    def test_fastforwarded_store_timestamp_advances(self):
        c = ViolationCounters()
        t = WordOrderTracker(c, fastforward=True)
        t.observe_load(0x200, core=0, ts=10)
        t.observe_store(0x200, core=1, ts=7)   # fast-forwarded to ts 11
        # A later load at 12 sees the store in its past: no new violation.
        t.observe_load(0x200, core=0, ts=12)
        assert c.workload_state == 1  # only the original one


class TestWordOrderEdgeCases:
    """Boundary semantics of the Figure 7 detector: ties, multi-core
    interleavings, and the fast-forward landing point."""

    def test_same_timestamp_store_after_load_is_a_violation(self):
        """A cross-core store processed at the *same* simulated cycle as an
        already-performed load conflicts: the load provably read the old
        value, so ties count (``>=`` in observe_store)."""
        c = ViolationCounters()
        t = WordOrderTracker(c)
        t.observe_load(0x400, core=0, ts=25)
        t.observe_store(0x400, core=1, ts=25)
        assert c.workload_state == 1

    def test_same_timestamp_load_after_store_is_clean(self):
        """The symmetric tie is *not* a violation: a load at the store's own
        cycle observing the new value is a legal same-cycle outcome, so the
        load check is strict (``>`` in observe_load)."""
        c = ViolationCounters()
        t = WordOrderTracker(c)
        t.observe_store(0x400, core=1, ts=25)
        t.observe_load(0x400, core=0, ts=25)
        assert c.workload_state == 0

    def test_fastforward_lands_strictly_past_the_load(self):
        """§3.2.3 compensation must end *after* the conflicting load — a
        store fast-forwarded exactly onto the load's cycle would still tie
        with it, so even a same-cycle conflict forwards by one."""
        c = ViolationCounters()
        t = WordOrderTracker(c, fastforward=True)
        t.observe_load(0x500, core=0, ts=30)
        ff = t.observe_store(0x500, core=1, ts=30)
        assert ff == 1  # lands at 31, one past the load
        # The recorded store time includes the fast-forward: a re-load at
        # the adjusted cycle ties with the store and stays clean.
        t.observe_load(0x500, core=0, ts=31)
        assert c.workload_state == 1  # only the store's original conflict

    def test_three_core_interleaving_checks_against_latest_load(self):
        """Loads from several cores: the detector keeps the *latest* load
        per word, so a store conflicts iff it precedes that frontier —
        regardless of which core set it."""
        c = ViolationCounters()
        t = WordOrderTracker(c)
        t.observe_load(0x600, core=0, ts=40)
        t.observe_load(0x600, core=2, ts=15)  # earlier: frontier stays at 40
        t.observe_store(0x600, core=1, ts=20)  # past core 0's load -> race
        assert c.workload_state == 1
        # A second store by yet another core, after the frontier: clean.
        t.observe_store(0x600, core=2, ts=41)
        assert c.workload_state == 1

    def test_store_frontier_is_latest_not_last_observed(self):
        """Stores arriving out of simulated order: the kept frontier is the
        max timestamp, so a load between the two store times races with the
        *later* store only."""
        c = ViolationCounters()
        t = WordOrderTracker(c)
        t.observe_store(0x700, core=1, ts=50)
        t.observe_store(0x700, core=2, ts=10)  # late-processed early store
        t.observe_load(0x700, core=0, ts=30)   # future value from ts=50 store
        assert c.workload_state == 1

    def test_storing_core_own_frontier_does_not_self_conflict(self):
        """A core racing with *its own* earlier accesses is program order on
        that core, never a violation — even interleaved with other cores'
        clean accesses on the same word."""
        c = ViolationCounters()
        t = WordOrderTracker(c)
        t.observe_load(0x800, core=1, ts=60)
        t.observe_store(0x800, core=1, ts=55)  # same core: clean
        t.observe_load(0x800, core=0, ts=70)   # other core, after: clean
        assert c.workload_state == 0
