"""Violation taxonomy tests (paper §3.2): counters, Figure 7 word races,
fast-forward compensation."""

from repro.violations.detect import ViolationCounters, WordOrderTracker


class TestCounters:
    def test_totals(self):
        c = ViolationCounters()
        c.record_simulation_state("bus")
        c.record_system_state()
        c.record_workload_state()
        assert c.total == 3
        assert c.by_resource == {"bus": 1, "directory": 1}

    def test_summary_text(self):
        c = ViolationCounters()
        c.record_workload_state()
        assert "workload=1" in c.summary()

    def test_fastforward_accounting(self):
        c = ViolationCounters()
        c.record_fastforward(5)
        c.record_fastforward(3)
        assert c.fastforwards == 2
        assert c.fastforward_cycles == 8


class TestWordOrderTracker:
    def test_clean_ordering_has_no_violations(self):
        c = ViolationCounters()
        t = WordOrderTracker(c)
        t.observe_store(0x100, core=0, ts=10)
        t.observe_load(0x100, core=1, ts=20)
        assert c.workload_state == 0

    def test_figure7_scenario(self):
        """Paper Figure 7: P1 loads M (simulated cycle 4) before P2's store
        to M (simulated cycle 2) is performed — in simulation time the load
        came first, violating the cycle-by-cycle order."""
        c = ViolationCounters()
        t = WordOrderTracker(c)
        t.observe_load(0x200, core=0, ts=4)    # P1: Load R1, M at cycle 4
        t.observe_store(0x200, core=1, ts=2)   # P2: Store R2, M at cycle 2
        assert c.workload_state == 1

    def test_load_after_future_store(self):
        c = ViolationCounters()
        t = WordOrderTracker(c)
        t.observe_store(0x200, core=1, ts=50)
        t.observe_load(0x200, core=0, ts=30)   # reads the "future" value
        assert c.workload_state == 1

    def test_same_core_races_do_not_count(self):
        c = ViolationCounters()
        t = WordOrderTracker(c)
        t.observe_load(0x300, core=0, ts=10)
        t.observe_store(0x300, core=0, ts=5)   # same core: program order
        assert c.workload_state == 0

    def test_different_words_are_independent(self):
        c = ViolationCounters()
        t = WordOrderTracker(c)
        t.observe_load(0x100, core=0, ts=10)
        t.observe_store(0x108, core=1, ts=5)
        assert c.workload_state == 0

    def test_fastforward_compensation(self):
        """§3.2.3: the store's core fast-forwards so the store appears
        contemporaneous with the conflicting load."""
        c = ViolationCounters()
        t = WordOrderTracker(c, fastforward=True)
        t.observe_load(0x200, core=0, ts=10)
        ff = t.observe_store(0x200, core=1, ts=7)
        assert ff == 4  # 10 - 7 + 1
        assert c.fastforwards == 1
        assert c.fastforward_cycles == 4

    def test_no_fastforward_when_disabled(self):
        c = ViolationCounters()
        t = WordOrderTracker(c, fastforward=False)
        t.observe_load(0x200, core=0, ts=10)
        assert t.observe_store(0x200, core=1, ts=7) == 0
        assert c.workload_state == 1

    def test_fastforwarded_store_timestamp_advances(self):
        c = ViolationCounters()
        t = WordOrderTracker(c, fastforward=True)
        t.observe_load(0x200, core=0, ts=10)
        t.observe_store(0x200, core=1, ts=7)   # fast-forwarded to ts 11
        # A later load at 12 sees the store in its past: no new violation.
        t.observe_load(0x200, core=0, ts=12)
        assert c.workload_state == 1  # only the original one
