"""End-to-end Slang execution tests: compile then run on the functional
interpreter.  These are the compiler's behavioural ground truth."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.interp import run_functional
from repro.lang import compile_source


def run(src, **kw):
    return run_functional(compile_source(src).program, **kw)


def ints(src, **kw):
    return run(src, **kw).int_output


def floats(src, **kw):
    return run(src, **kw).float_output


class TestBasics:
    def test_return_value_is_exit_code(self):
        assert run("int main() { return 7; }").exit_code == 7

    def test_print_int(self):
        assert ints("int main() { print_int(42); return 0; }") == [42]

    def test_arithmetic(self):
        assert ints("int main() { print_int(2 + 3 * 4 - 6 / 2); return 0; }") == [11]

    def test_unary_minus_and_not(self):
        assert ints("int main() { print_int(-5); print_int(!0); print_int(!3); print_int(~0); return 0; }") == [-5, 1, 0, -1]

    def test_modulo_and_shifts(self):
        assert ints("int main() { print_int(17 % 5); print_int(1 << 10); print_int(-16 >> 2); return 0; }") == [2, 1024, -4]

    def test_bitwise(self):
        assert ints("int main() { print_int(12 & 10); print_int(12 | 10); print_int(12 ^ 10); return 0; }") == [8, 14, 6]

    def test_comparisons(self):
        src = """
        int main() {
            print_int(1 < 2); print_int(2 < 1); print_int(2 <= 2);
            print_int(3 > 2); print_int(2 >= 3); print_int(2 == 2); print_int(2 != 2);
            return 0;
        }"""
        assert ints(src) == [1, 0, 1, 1, 0, 1, 0]

    def test_assignment_chains(self):
        assert ints("int main() { int a; int b; a = b = 5; print_int(a + b); return 0; }") == [10]

    def test_locals_with_initializers(self):
        assert ints("int main() { int a = 3; int b = a * 2; print_int(b); return 0; }") == [6]


class TestControlFlow:
    def test_if_else(self):
        src = """
        int classify(int x) {
            if (x < 0) return -1;
            else if (x == 0) return 0;
            else return 1;
        }
        int main() { print_int(classify(-5)); print_int(classify(0)); print_int(classify(9)); return 0; }
        """
        assert ints(src) == [-1, 0, 1]

    def test_while_loop(self):
        assert ints("int main() { int i = 0; int s = 0; while (i < 10) { s = s + i; i = i + 1; } print_int(s); return 0; }") == [45]

    def test_for_loop(self):
        assert ints("int main() { int s = 0; for (int i = 1; i <= 5; i = i + 1) s = s + i; print_int(s); return 0; }") == [15]

    def test_break_continue(self):
        src = """
        int main() {
            int s = 0;
            for (int i = 0; i < 100; i = i + 1) {
                if (i % 2 == 0) continue;
                if (i > 10) break;
                s = s + i;
            }
            print_int(s);   // 1+3+5+7+9 = 25
            return 0;
        }"""
        assert ints(src) == [25]

    def test_nested_loops(self):
        src = """
        int main() {
            int count = 0;
            for (int i = 0; i < 4; i = i + 1)
                for (int j = 0; j < i; j = j + 1)
                    count = count + 1;
            print_int(count);   // 0+1+2+3
            return 0;
        }"""
        assert ints(src) == [6]

    def test_short_circuit_and(self):
        src = """
        int side;
        int bump() { side = side + 1; return 1; }
        int main() {
            side = 0;
            if (0 && bump()) { }
            print_int(side);       // not evaluated
            if (1 && bump()) { }
            print_int(side);       // evaluated
            return 0;
        }"""
        assert ints(src) == [0, 1]

    def test_short_circuit_or(self):
        src = """
        int side;
        int bump() { side = side + 1; return 0; }
        int main() {
            side = 0;
            if (1 || bump()) { }
            print_int(side);
            if (0 || bump()) { } else { print_int(-1); }
            print_int(side);
            return 0;
        }"""
        assert ints(src) == [0, -1, 1]

    def test_logical_result_is_normalized(self):
        assert ints("int main() { print_int(5 && 7); print_int(0 || 9); print_int(0 || 0); return 0; }") == [1, 1, 0]


class TestFunctions:
    def test_recursion_factorial(self):
        src = """
        int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
        int main() { print_int(fact(10)); return 0; }
        """
        assert ints(src) == [3628800]

    def test_mutual_recursion(self):
        src = """
        int is_odd(int n);
        """  # forward declarations are not supported; use ordering instead
        src = """
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        int main() { print_int(is_even(10)); print_int(is_odd(7)); return 0; }
        """
        assert ints(src) == [1, 1]

    def test_eight_arguments(self):
        src = """
        int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
            return a + b + c + d + e + f + g + h;
        }
        int main() { print_int(sum8(1, 2, 3, 4, 5, 6, 7, 8)); return 0; }
        """
        assert ints(src) == [36]

    def test_mixed_int_float_args(self):
        src = """
        float mix(int a, float b, int c, float d) { return a + b * c - d; }
        int main() { print_float(mix(1, 2.0, 3, 0.5)); return 0; }
        """
        assert floats(src) == [6.5]

    def test_void_function(self):
        src = """
        int acc;
        void add(int v) { acc = acc + v; }
        int main() { acc = 0; add(3); add(4); print_int(acc); return 0; }
        """
        assert ints(src) == [7]

    def test_call_in_expression_with_live_temps(self):
        src = """
        int f(int x) { return x * 2; }
        int main() { print_int(1 + f(3) + f(f(2)) * 10); return 0; }
        """
        assert ints(src) == [1 + 6 + 80]

    def test_deep_expression_forces_spills(self):
        # 10 nested additions of call results exceeds the 7 int temporaries.
        src = """
        int one() { return 1; }
        int main() {
            print_int(((((((((one() + one()) + one()) + one()) + one())
                + one()) + one()) + one()) + one()) + one());
            return 0;
        }
        """
        assert ints(src) == [10]

    def test_wide_expression_spills_without_calls(self):
        terms = " + ".join(f"(a{i} * 2)" for i in range(10))
        decls = " ".join(f"int a{i} = {i};" for i in range(10))
        src = f"int main() {{ {decls} print_int({terms}); return 0; }}"
        assert ints(src) == [2 * sum(range(10))]


class TestFloats:
    def test_float_arith(self):
        assert floats("int main() { print_float(1.5 + 2.25 * 2.0); return 0; }") == [6.0]

    def test_float_division(self):
        assert floats("int main() { print_float(7.0 / 2.0); return 0; }") == [3.5]

    def test_promotion_in_mixed_arith(self):
        assert floats("int main() { print_float(1 + 0.5); print_float(3 / 2.0); return 0; }") == [1.5, 1.5]

    def test_casts(self):
        assert ints("int main() { print_int((int) 3.99); print_int((int) -3.99); return 0; }") == [3, -3]
        assert floats("int main() { print_float((float) 7); return 0; }") == [7.0]

    def test_sqrt_fabs_fmin_fmax(self):
        src = """
        int main() {
            print_float(sqrt(16.0));
            print_float(fabs(-2.5));
            print_float(fmin(1.0, 2.0));
            print_float(fmax(1.0, 2.0));
            return 0;
        }"""
        assert floats(src) == [4.0, 2.5, 1.0, 2.0]

    def test_abs_builtin(self):
        assert ints("int main() { print_int(abs(-9)); print_int(abs(9)); print_int(abs(0)); return 0; }") == [9, 9, 0]

    def test_float_compare(self):
        assert ints("int main() { print_int(1.5 < 2.5); print_int(2.5 <= 2.5); print_int(1.5 > 2.5); print_int(2.5 != 2.5); return 0; }") == [1, 1, 0, 0]

    def test_float_globals(self):
        src = """
        float pi = 3.25;
        float zero;
        int main() { print_float(pi); print_float(zero); return 0; }
        """
        assert floats(src) == [3.25, 0.0]

    def test_float_loop_accumulation(self):
        src = """
        int main() {
            float s = 0.0;
            for (int i = 0; i < 4; i = i + 1) s = s + 0.25;
            print_float(s);
            return 0;
        }"""
        assert floats(src) == [1.0]


class TestMemory:
    def test_global_array(self):
        src = """
        int tab[5] = {3, 1, 4, 1, 5};
        int main() {
            int s = 0;
            for (int i = 0; i < 5; i = i + 1) s = s + tab[i];
            print_int(s);
            return 0;
        }"""
        assert ints(src) == [14]

    def test_global_array_partial_init_zero_padded(self):
        src = """
        int tab[4] = {9};
        int main() { print_int(tab[0] + tab[1] + tab[2] + tab[3]); return 0; }
        """
        assert ints(src) == [9]

    def test_local_array(self):
        src = """
        int main() {
            int buf[8];
            for (int i = 0; i < 8; i = i + 1) buf[i] = i * i;
            print_int(buf[7]);
            return 0;
        }"""
        assert ints(src) == [49]

    def test_array_write_via_pointer(self):
        src = """
        int a[4];
        int main() {
            int* p = a;
            *p = 10;
            *(p + 2) = 30;
            p[3] = 40;
            print_int(a[0] + a[1] + a[2] + a[3]);
            return 0;
        }"""
        assert ints(src) == [80]

    def test_pointer_difference(self):
        src = """
        int a[8];
        int main() { int* p = &a[6]; int* q = &a[1]; print_int(p - q); return 0; }
        """
        assert ints(src) == [5]

    def test_addressof_local(self):
        src = """
        void set(int* p, int v) { *p = v; }
        int main() { int x = 0; set(&x, 77); print_int(x); return 0; }
        """
        assert ints(src) == [77]

    def test_pass_array_to_function(self):
        src = """
        int sum(int a[], int n) {
            int s = 0;
            for (int i = 0; i < n; i = i + 1) s = s + a[i];
            return s;
        }
        int main() {
            int v[6];
            for (int i = 0; i < 6; i = i + 1) v[i] = i + 1;
            print_int(sum(v, 6));
            return 0;
        }"""
        assert ints(src) == [21]

    def test_float_array(self):
        src = """
        float xs[3] = {0.5, 1.5, 2.0};
        int main() { print_float(xs[0] + xs[1] + xs[2]); return 0; }
        """
        assert floats(src) == [4.0]

    def test_sbrk_heap_allocation(self):
        src = """
        int main() {
            int* p = (int*) sbrk(8 * 10);
            for (int i = 0; i < 10; i = i + 1) p[i] = i;
            int s = 0;
            for (int i = 0; i < 10; i = i + 1) s = s + p[i];
            print_int(s);
            return 0;
        }"""
        assert ints(src) == [45]

    def test_pointer_to_pointer(self):
        src = """
        int main() {
            int x = 5;
            int* p = &x;
            int** q = &p;
            **q = 9;
            print_int(x);
            return 0;
        }"""
        assert ints(src) == [9]

    def test_atomic_builtins(self):
        src = """
        int c = 10;
        int main() {
            print_int(atomic_add(&c, 5));   // returns old value 10
            print_int(c);                   // 15
            print_int(atomic_swap(&c, 2));  // returns 15
            print_int(c);                   // 2
            return 0;
        }"""
        assert ints(src) == [10, 15, 15, 2]


class TestAlgorithms:
    def test_iterative_fib(self):
        src = """
        int fib(int n) {
            int a = 0; int b = 1;
            while (n > 0) { int t = a + b; a = b; b = t; n = n - 1; }
            return a;
        }
        int main() { print_int(fib(20)); return 0; }
        """
        assert ints(src) == [6765]

    def test_bubble_sort(self):
        src = """
        int a[6] = {5, 2, 9, 1, 7, 3};
        int main() {
            for (int i = 0; i < 6; i = i + 1)
                for (int j = 0; j < 5 - i; j = j + 1)
                    if (a[j] > a[j + 1]) {
                        int t = a[j]; a[j] = a[j + 1]; a[j + 1] = t;
                    }
            for (int i = 0; i < 6; i = i + 1) print_int(a[i]);
            return 0;
        }"""
        assert ints(src) == [1, 2, 3, 5, 7, 9]

    def test_gcd(self):
        src = """
        int gcd(int a, int b) { while (b != 0) { int t = a % b; a = b; b = t; } return a; }
        int main() { print_int(gcd(252, 105)); return 0; }
        """
        assert ints(src) == [21]

    def test_newton_sqrt(self):
        src = """
        int main() {
            float x = 2.0;
            float guess = 1.0;
            for (int i = 0; i < 20; i = i + 1)
                guess = 0.5 * (guess + x / guess);
            print_float(guess * guess);
            return 0;
        }"""
        out = floats(src)
        assert abs(out[0] - 2.0) < 1e-12

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=8))
    def test_sum_matches_python(self, values):
        init = ", ".join(str(v) for v in values)
        src = f"""
        int a[{len(values)}] = {{{init}}};
        int main() {{
            int s = 0;
            for (int i = 0; i < {len(values)}; i = i + 1) s = s + a[i];
            print_int(s);
            return 0;
        }}"""
        assert ints(src) == [sum(values)]
