"""On-disk compile-cache tests: cold/warm hits, corruption, invalidation."""

import pytest

import repro.lang.compiler as compiler
from repro.lang.compiler import cache_dir, compile_source

SRC = """
int main() {
    int acc = 0;
    for (int i = 0; i < 10; i = i + 1) acc = acc + i;
    print_int(acc);
    return 0;
}
"""


@pytest.fixture
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    return tmp_path / "cache"


def _entries(cache):
    return sorted(cache.glob("*.pkl")) if cache.exists() else []


def test_cold_compile_populates_cache(cache):
    compiled = compile_source(SRC, name="t")
    assert compiled.program.size_insns > 0
    assert len(_entries(cache)) == 1


def test_warm_hit_skips_the_pipeline(cache, monkeypatch):
    cold = compile_source(SRC, name="t")

    def boom(*a, **k):
        raise AssertionError("pipeline ran on a warm cache hit")

    monkeypatch.setattr(compiler, "parse", boom)
    warm = compile_source(SRC, name="t")
    assert warm.asm == cold.asm
    assert warm.program.encoded_text() == cold.program.encoded_text()


def test_corrupt_entry_recompiles(cache):
    compile_source(SRC, name="t")
    (entry,) = _entries(cache)
    entry.write_bytes(b"not a pickle")
    compiled = compile_source(SRC, name="t")
    assert compiled.program.size_insns > 0


def test_cache_false_bypasses(cache):
    compile_source(SRC, name="t", cache=False)
    assert _entries(cache) == []


def test_empty_env_disables_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "")
    assert cache_dir() is None
    compiled = compile_source(SRC, name="t")
    assert compiled.program.size_insns > 0


def test_default_cache_dir(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert str(cache_dir()) == ".repro_cache"


def test_fingerprint_change_invalidates(cache, monkeypatch):
    compile_source(SRC, name="t")
    monkeypatch.setattr(compiler, "_fingerprint", "0" * 64)
    compile_source(SRC, name="t")
    # A different toolchain fingerprint keys a different entry.
    assert len(_entries(cache)) == 2


def test_distinct_sources_distinct_entries(cache):
    compile_source(SRC, name="t")
    compile_source(SRC.replace("10", "11"), name="t")
    assert len(_entries(cache)) == 2
