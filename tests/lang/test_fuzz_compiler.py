"""Differential fuzzing of the Slang toolchain.

Hypothesis generates random expression trees and statement sequences; each
program runs through the full pipeline (lexer -> parser -> sema -> codegen ->
assembler -> functional interpreter) and the printed result is compared
against a reference evaluator implementing the same 64-bit two's-complement
semantics in Python.  Any divergence is a compiler, assembler or interpreter
bug.
"""

from hypothesis import given, settings, strategies as st

from repro._util import to_signed64, to_unsigned64
from repro.cpu.interp import run_functional
from repro.lang import compile_source

# ---------------------------------------------------------------- expressions

_VARS = ("a", "b", "c")


def _expr(depth):
    """Strategy producing (source_text, eval_fn) pairs."""
    leaf = st.one_of(
        st.integers(-100, 100).map(lambda v: (str(v), lambda env, v=v: v)),
        st.sampled_from(_VARS).map(lambda n: (n, lambda env, n=n: env[n])),
    )
    if depth <= 0:
        return leaf

    sub = _expr(depth - 1)

    def binop(symbol, fn):
        return st.tuples(sub, sub).map(
            lambda pair, symbol=symbol, fn=fn: (
                f"({pair[0][0]} {symbol} {pair[1][0]})",
                lambda env, pair=pair, fn=fn: fn(pair[0][1](env), pair[1][1](env)),
            )
        )

    def c_div(x, y):
        if y == 0:
            return -1
        q = abs(x) // abs(y)
        return to_signed64(-q if (x < 0) != (y < 0) else q)

    def c_rem(x, y):
        if y == 0:
            return x
        r = abs(x) % abs(y)
        return to_signed64(-r if x < 0 else r)

    shift = st.tuples(sub, st.integers(0, 12)).map(
        lambda pair: (
            f"({pair[0][0]} << {pair[1]})",
            lambda env, pair=pair: to_signed64(pair[0][1](env) << pair[1]),
        )
    )
    sra = st.tuples(sub, st.integers(0, 12)).map(
        lambda pair: (
            f"({pair[0][0]} >> {pair[1]})",
            lambda env, pair=pair: pair[0][1](env) >> pair[1],
        )
    )
    neg = sub.map(lambda p: (f"(-{p[0]})", lambda env, p=p: to_signed64(-p[1](env))))
    bnot = sub.map(lambda p: (f"(~{p[0]})", lambda env, p=p: to_signed64(~p[1](env))))
    lnot = sub.map(lambda p: (f"(!{p[0]})", lambda env, p=p: int(p[1](env) == 0)))

    return st.one_of(
        leaf,
        binop("+", lambda x, y: to_signed64(x + y)),
        binop("-", lambda x, y: to_signed64(x - y)),
        binop("*", lambda x, y: to_signed64(x * y)),
        binop("/", c_div),
        binop("%", c_rem),
        binop("&", lambda x, y: x & y),
        binop("|", lambda x, y: x | y),
        binop("^", lambda x, y: x ^ y),
        binop("<", lambda x, y: int(x < y)),
        binop("<=", lambda x, y: int(x <= y)),
        binop("==", lambda x, y: int(x == y)),
        binop("!=", lambda x, y: int(x != y)),
        binop("&&", lambda x, y: int(bool(x) and bool(y))),
        binop("||", lambda x, y: int(bool(x) or bool(y))),
        shift,
        sra,
        neg,
        bnot,
        lnot,
    )


@settings(max_examples=120, deadline=None)
@given(
    expr=_expr(3),
    a=st.integers(-1000, 1000),
    b=st.integers(-1000, 1000),
    c=st.integers(-1000, 1000),
)
def test_expression_differential(expr, a, b, c):
    text, evaluate = expr
    src = f"""
    int main() {{
        int a = {a}; int b = {b}; int c = {c};
        print_int({text});
        return 0;
    }}"""
    result = run_functional(compile_source(src).program, max_instructions=2_000_000)
    expected = to_signed64(evaluate({"a": a, "b": b, "c": c}))
    assert result.int_output == [expected], text


# ----------------------------------------------------------------- statements


@st.composite
def _program(draw):
    """A random straight-line + loop program over three variables, together
    with a Python model of its execution."""
    n_stmts = draw(st.integers(1, 8))
    lines = []
    ops = []
    for _ in range(n_stmts):
        kind = draw(st.sampled_from(["assign", "add", "loop", "cond"]))
        target = draw(st.sampled_from(_VARS))
        value = draw(st.integers(-50, 50))
        source = draw(st.sampled_from(_VARS))
        if kind == "assign":
            lines.append(f"{target} = {value};")
            ops.append(("assign", target, value))
        elif kind == "add":
            lines.append(f"{target} = {target} + {source};")
            ops.append(("add", target, source))
        elif kind == "loop":
            count = draw(st.integers(0, 6))
            lines.append(f"for (int i = 0; i < {count}; i = i + 1) {target} = {target} + {value};")
            ops.append(("loop", target, value, count))
        else:
            lines.append(f"if ({source} > 0) {target} = {target} - {value};")
            ops.append(("cond", target, source, value))
    return lines, ops


@settings(max_examples=60, deadline=None)
@given(prog=_program(), a=st.integers(-20, 20), b=st.integers(-20, 20), c=st.integers(-20, 20))
def test_statement_differential(prog, a, b, c):
    lines, ops = prog
    body = "\n        ".join(lines)
    src = f"""
    int main() {{
        int a = {a}; int b = {b}; int c = {c};
        {body}
        print_int(a); print_int(b); print_int(c);
        return 0;
    }}"""
    env = {"a": a, "b": b, "c": c}
    for op in ops:
        if op[0] == "assign":
            env[op[1]] = op[2]
        elif op[0] == "add":
            env[op[1]] = to_signed64(env[op[1]] + env[op[2]])
        elif op[0] == "loop":
            for _ in range(op[3]):
                env[op[1]] = to_signed64(env[op[1]] + op[2])
        else:
            if env[op[2]] > 0:
                env[op[1]] = to_signed64(env[op[1]] - op[3])
    result = run_functional(compile_source(src).program, max_instructions=2_000_000)
    assert result.int_output == [env["a"], env["b"], env["c"]]
