"""Slang semantic analysis tests."""

import pytest

from repro.lang import ast_nodes as A
from repro.lang.errors import TypeError_
from repro.lang.parser import parse
from repro.lang.sema import analyze
from repro.lang.types import FLOAT, INT, Ptr


def check(src):
    return analyze(parse(src))


def reject(src, pattern):
    with pytest.raises(TypeError_, match=pattern):
        check(src)


def test_minimal_ok():
    check("int main() { return 0; }")


def test_main_required():
    reject("int f() { return 0; }", "no 'main'")


def test_main_takes_no_params():
    reject("int main(int x) { return x; }", "no parameters")


def test_undefined_name():
    reject("int main() { return zz; }", "undefined name")


def test_redefinition_of_local():
    reject("int main() { int x; int x; }", "redefinition")


def test_shadowing_in_nested_block_ok():
    check("int main() { int x; { int x; x = 1; } return 0; }")


def test_global_function_name_clash():
    reject("int f;\nint f() { return 0; }\nint main() {}", "redefinition")


def test_int_to_float_promotion_inserted():
    unit = check("int main() { float x; x = 1 + 2.0; return 0; }")
    assign = unit.functions[0].body.body[1].expr
    assert isinstance(assign.value, A.Binary)
    assert isinstance(assign.value.left, A.Cast)
    assert assign.value.type is not None and assign.value.type.is_float


def test_float_to_int_requires_cast():
    reject("int main() { int x; x = 1.5; return 0; }", "cannot implicitly convert")
    check("int main() { int x; x = (int) 1.5; return 0; }")


def test_modulo_requires_ints():
    reject("int main() { float x; x = 1.0; return 2 % (int) x + (int)(x % 2.0); }", "needs int")


def test_pointer_arithmetic():
    check("int main() { int a[4]; int* p; p = a; p = p + 1; return p - a; }")
    reject("int main() { int* p; int* q; p = p + q; return 0; }", "pointer arithmetic")
    reject("int main() { float* p; int* q; return p - q; }", "pointer arithmetic")


def test_pointer_compare_same_type_ok():
    check("int main() { int a[2]; int* p; p = a; return p == a; }")
    reject("int main() { int a[2]; float f; return a == &f; }", "compare")


def test_pointer_null_literal():
    check("int main() { int* p; p = 0; if (p != 0) return 1; return 0; }")
    reject("int main() { int* p; p = 3; return 0; }", "convert")


def test_deref_requires_pointer():
    reject("int main() { int x; return *x; }", "dereference")


def test_addressof_requires_lvalue():
    reject("int main() { int* p; p = &(1 + 2); return 0; }", "lvalue")


def test_assign_to_rvalue_rejected():
    reject("int main() { 1 = 2; return 0; }", "lvalue")


def test_assign_to_array_rejected():
    reject("int main() { int a[2]; int b[2]; a = b; return 0; }", "array")


def test_index_requires_int():
    reject("int main() { int a[4]; return a[1.5]; }", "index must be int")


def test_index_non_pointer_rejected():
    reject("int main() { int x; return x[0]; }", "cannot index")


def test_call_arity_checked():
    reject("int f(int a) { return a; }\nint main() { return f(); }", "expects 1")
    reject("int f(int a) { return a; }\nint main() { return f(1, 2); }", "expects 1")


def test_call_undefined():
    reject("int main() { return zz(); }", "undefined function")


def test_call_arg_promotion():
    check("float f(float x) { return x; }\nint main() { return (int) f(2); }")


def test_return_type_checked():
    reject("void f() { return 1; }\nint main() { return 0; }", "void function")
    reject("int f() { return; }\nint main() { return 0; }", "must return")


def test_break_outside_loop():
    reject("int main() { break; }", "break outside")
    reject("int main() { continue; }", "continue outside")


def test_break_inside_loop_ok():
    check("int main() { while (1) { break; } return 0; }")


def test_condition_must_be_scalar():
    reject("float g;\nint main() { if (g) return 1; return 0; }", "condition")


def test_builtin_signatures():
    check("int main() { print_int(1); print_float(2.0); return 0; }")
    reject("int main() { print_int(1, 2); return 0; }", "expects 1")
    # int -> float promotion applies to builtins too
    check("int main() { print_float(2); return 0; }")


def test_table1_api_typechecks():
    check(
        """
        int lk; int bar; int sem;
        int main() {
            init_lock(&lk); lock(&lk); unlock(&lk);
            init_barrier(&bar, 8); barrier(&bar);
            init_sema(&sem, 1); sema_wait(&sem); sema_signal(&sem);
            return 0;
        }
        """
    )


def test_spawn_requires_function_name():
    check("void w(int t) { } int main() { spawn(w, 1); return 0; }")
    reject("int main() { spawn(3, 1); return 0; }", "function name")
    reject("void w(int a, int b) { } int main() { spawn(w, 1); return 0; }", "one int argument")


def test_literal_width_checked():
    reject("int main() { return 3000000000; }", "32 signed bits")


def test_frame_slots_assigned():
    unit = check("int f(int a, float b) { int c; float d[4]; return a; }\nint main() { return 0; }")
    fn = unit.functions[0]
    types = [str(t) for t, _ in fn.frame_slots]
    words = [w for _, w in fn.frame_slots]
    assert types == ["int", "float", "int", "float[4]"]
    assert words == [1, 1, 1, 4]


def test_too_many_params_rejected():
    params = ", ".join(f"int a{i}" for i in range(9))
    reject(f"int f({params}) {{ return 0; }}\nint main() {{ return 0; }}", "at most 8")
