"""Slang lexer tests."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import Token, TokenKind, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)[:-1]]


def texts(src):
    return [t.text for t in tokenize(src)[:-1]]


def test_empty_source_yields_eof():
    toks = tokenize("")
    assert len(toks) == 1 and toks[0].kind is TokenKind.EOF


def test_keywords_vs_identifiers():
    toks = tokenize("int intx for forx")
    assert [t.kind for t in toks[:-1]] == [
        TokenKind.KEYWORD,
        TokenKind.IDENT,
        TokenKind.KEYWORD,
        TokenKind.IDENT,
    ]


def test_integer_literals():
    toks = tokenize("0 42 0x1F")
    assert [t.value for t in toks[:-1]] == [0, 42, 31]


def test_float_literals():
    toks = tokenize("1.5 0.25 2e3 1.5e-2 .5")
    assert [t.kind for t in toks[:-1]] == [TokenKind.FLOAT] * 5
    assert [t.value for t in toks[:-1]] == [1.5, 0.25, 2000.0, 0.015, 0.5]


def test_integer_not_mistaken_for_float():
    toks = tokenize("3")
    assert toks[0].kind is TokenKind.INT


def test_char_literals():
    toks = tokenize("'a' '\\n' '\\0'")
    assert [t.value for t in toks[:-1]] == [97, 10, 0]


def test_unterminated_char_rejected():
    with pytest.raises(LexError):
        tokenize("'ab")


def test_operators_maximal_munch():
    assert texts("<<= == = <= < <<") == ["<<", "=", "==", "=", "<=", "<", "<<"]


def test_line_comments_stripped():
    assert texts("a // comment with int float\nb") == ["a", "b"]


def test_block_comments_stripped():
    assert texts("a /* multi\nline */ b") == ["a", "b"]


def test_unterminated_block_comment_rejected():
    with pytest.raises(LexError, match="unterminated"):
        tokenize("a /* never ends")


def test_positions_track_lines_and_columns():
    toks = tokenize("a\n  b")
    assert (toks[0].pos.line, toks[0].pos.col) == (1, 1)
    assert (toks[1].pos.line, toks[1].pos.col) == (2, 3)


def test_unexpected_character_rejected():
    with pytest.raises(LexError, match="unexpected"):
        tokenize("a $ b")


def test_empty_hex_rejected():
    with pytest.raises(LexError, match="hex"):
        tokenize("0x")
