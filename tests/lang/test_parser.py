"""Slang parser structural tests."""

import pytest

from repro.lang import ast_nodes as A
from repro.lang.errors import ParseError
from repro.lang.parser import parse
from repro.lang.types import FLOAT, INT, Array, Ptr


def parse_expr(src):
    unit = parse("int main() { " + src + "; }")
    stmt = unit.functions[0].body.body[0]
    assert isinstance(stmt, A.ExprStmt)
    return stmt.expr


def test_minimal_unit():
    unit = parse("int main() { return 0; }")
    assert len(unit.functions) == 1
    assert unit.functions[0].name == "main"


def test_globals_and_arrays():
    unit = parse("int n = 4;\nfloat xs[8];\nint tab[3] = {1, 2, 3};\nint main() {}\n")
    g0, g1, g2 = unit.globals
    assert g0.init == 4
    assert g1.var_type == Array(FLOAT, 8)
    assert g2.init == [1, 2, 3]


def test_negative_global_initializer():
    unit = parse("int n = -7;\nint main() {}")
    assert unit.globals[0].init == -7


def test_pointer_types():
    unit = parse("int f(int* p, float** q) { return 0; } int main() {}")
    p, q = unit.functions[0].params
    assert p.param_type == Ptr(INT)
    assert q.param_type == Ptr(Ptr(FLOAT))


def test_array_param_decays():
    unit = parse("int f(int a[]) { return 0; } int main() {}")
    assert unit.functions[0].params[0].param_type == Ptr(INT)


def test_precedence():
    expr = parse_expr("1 + 2 * 3")
    assert isinstance(expr, A.Binary) and expr.op == "+"
    assert isinstance(expr.right, A.Binary) and expr.right.op == "*"


def test_comparison_binds_looser_than_arith():
    expr = parse_expr("a + 1 < b * 2")
    assert expr.op == "<"


def test_logical_binds_loosest():
    expr = parse_expr("a < b && c < d || e")
    assert expr.op == "||"
    assert expr.left.op == "&&"


def test_assignment_is_right_associative():
    expr = parse_expr("a = b = 1")
    assert isinstance(expr, A.Assign)
    assert isinstance(expr.value, A.Assign)


def test_unary_chain():
    expr = parse_expr("- - x")
    assert isinstance(expr, A.Unary) and isinstance(expr.operand, A.Unary)


def test_deref_and_addressof():
    expr = parse_expr("*p = *q")
    assert isinstance(expr, A.Assign)
    assert isinstance(expr.target, A.Unary) and expr.target.op == "*"
    expr = parse_expr("p = &x")
    assert isinstance(expr.value, A.Unary) and expr.value.op == "&"


def test_cast_vs_parenthesis():
    cast = parse_expr("(int) x")
    assert isinstance(cast, A.Cast)
    paren = parse_expr("(x)")
    assert isinstance(paren, A.Name)


def test_pointer_cast():
    cast = parse_expr("(int*) p")
    assert isinstance(cast, A.Cast) and cast.target_type == Ptr(INT)


def test_cast_binds_to_unary():
    expr = parse_expr("(float) a + b")
    assert isinstance(expr, A.Binary) and expr.op == "+"
    assert isinstance(expr.left, A.Cast)


def test_index_chains():
    expr = parse_expr("m[i][j]")
    assert isinstance(expr, A.Index) and isinstance(expr.base, A.Index)


def test_call_args():
    expr = parse_expr("f(1, x + 2, g())")
    assert isinstance(expr, A.Call) and len(expr.args) == 3


def test_if_else_chain():
    unit = parse("int main() { if (a) x = 1; else if (b) x = 2; else x = 3; }")
    stmt = unit.functions[0].body.body[0]
    assert isinstance(stmt, A.If) and isinstance(stmt.orelse, A.If)


def test_for_with_decl_init():
    unit = parse("int main() { for (int i = 0; i < 4; i = i + 1) { } }")
    stmt = unit.functions[0].body.body[0]
    assert isinstance(stmt, A.For) and isinstance(stmt.init, A.VarDecl)


def test_for_with_empty_clauses():
    unit = parse("int main() { for (;;) break; }")
    stmt = unit.functions[0].body.body[0]
    assert stmt.init is None and stmt.cond is None and stmt.step is None


def test_while_single_stmt_wrapped():
    unit = parse("int main() { while (x) x = x - 1; }")
    stmt = unit.functions[0].body.body[0]
    assert isinstance(stmt.body, A.Block)


def test_local_array_decl():
    unit = parse("int main() { int buf[16]; }")
    decl = unit.functions[0].body.body[0]
    assert decl.var_type == Array(INT, 16)


def test_errors():
    with pytest.raises(ParseError):
        parse("int main() { return 0 }")  # missing ';'
    with pytest.raises(ParseError):
        parse("int main() { if x { } }")  # missing parens
    with pytest.raises(ParseError):
        parse("void x;\nint main() {}")  # void variable
    with pytest.raises(ParseError):
        parse("int a[0];\nint main() {}")  # zero-length array
    with pytest.raises(ParseError):
        parse("int main() { 1(2); }")  # calling a literal
    with pytest.raises(ParseError):
        parse("int main() {")  # unterminated block
    with pytest.raises(ParseError):
        parse("int g = x;\nint main() {}")  # non-constant global init
