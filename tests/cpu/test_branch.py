"""Branch predictor tests."""

import pytest

from repro.cpu.branch import (
    BimodalPredictor,
    GsharePredictor,
    StaticPredictor,
    make_predictor,
)


class TestStatic:
    def test_backward_taken_heuristic(self):
        p = StaticPredictor(backward_taken=True)
        assert p.predict(0x1000, target_offset=-16) is True
        assert p.predict(0x1000, target_offset=16) is False

    def test_always_not_taken_variant(self):
        p = StaticPredictor(backward_taken=False)
        assert p.predict(0x1000, target_offset=-16) is False

    def test_accuracy_accounting(self):
        p = StaticPredictor()
        predicted = p.predict(0x1000, -8)
        p.update(0x1000, taken=True, predicted=predicted)
        assert p.stats.lookups == 1 and p.stats.correct == 1


class TestBimodal:
    def test_learns_always_taken(self):
        p = BimodalPredictor(entries=64)
        pc = 0x2000
        for _ in range(4):
            pred = p.predict(pc)
            p.update(pc, taken=True, predicted=pred)
        assert p.predict(pc) is True

    def test_learns_always_not_taken(self):
        p = BimodalPredictor(entries=64)
        pc = 0x2000
        for _ in range(4):
            pred = p.predict(pc)
            p.update(pc, taken=False, predicted=pred)
        assert p.predict(pc) is False

    def test_counters_saturate(self):
        p = BimodalPredictor(entries=64)
        pc = 0x2000
        for _ in range(100):
            p.update(pc, taken=True, predicted=True)
        # One not-taken shouldn't flip a saturated counter.
        p.update(pc, taken=False, predicted=True)
        assert p.predict(pc) is True

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=100)


class TestGshare:
    def test_learns_history_correlated_pattern(self):
        """Alternating T/N/T/N is hard for bimodal but easy for gshare."""
        p = GsharePredictor(entries=256, history_bits=4)
        pc = 0x3000
        pattern = [True, False] * 200
        correct = 0
        for taken in pattern:
            pred = p.predict(pc)
            correct += pred == taken
            p.update(pc, taken, pred)
        assert correct / len(pattern) > 0.8

    def test_history_advances(self):
        p = GsharePredictor(entries=64, history_bits=4)
        before = p.history
        p.update(0x3000, taken=True, predicted=False)
        assert p.history != before or before == 0b1111


def test_factory():
    assert isinstance(make_predictor("static"), StaticPredictor)
    assert isinstance(make_predictor("bimodal"), BimodalPredictor)
    assert isinstance(make_predictor("gshare"), GsharePredictor)
    with pytest.raises(ValueError):
        make_predictor("neural")
