"""Predecode unit tests: encode -> decode -> predecode over every opcode.

For each opcode in the ISA this round-trips a representative instruction
through the binary encoding, checks the predecoded kind against the OPINFO
flags, and — for register-only opcodes — executes the specialized closure
against the funcsim oracle on the same architectural state.
"""

import pytest

from repro.cpu.arch import ArchState
from repro.cpu.funcsim import NEXT, execute
from repro.cpu.predecode import (
    K_AMO,
    K_BRANCH,
    K_ECALL,
    K_HALT,
    K_JUMP,
    K_LOAD,
    K_SIMPLE,
    K_STORE,
    predecode_instruction,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OPINFO, Format, Op
from repro.isa.program import TEXT_BASE

#: Representative operand fields per format (shift-safe imm, nonzero regs).
_FIELDS = {
    Format.R: dict(rd=5, rs1=6, rs2=7),
    Format.I: dict(rd=5, rs1=6, imm=3),
    Format.LOAD: dict(rd=5, rs1=6, imm=16),
    Format.STORE: dict(rs2=7, rs1=6, imm=16),
    Format.B: dict(rs1=6, rs2=7, imm=32),
    Format.J: dict(rd=1, imm=32),
    Format.JR: dict(rd=1, rs1=6, imm=16),
    Format.FR: dict(rd=5, rs1=6, rs2=7),
    Format.FR2: dict(rd=5, rs1=6),
    Format.FCMP: dict(rd=5, rs1=6, rs2=7),
    Format.FI: dict(rd=5, rs1=6),
    Format.IF: dict(rd=5, rs1=6),
    Format.AMO: dict(rd=5, rs2=7, rs1=6),
    Format.SYS: dict(),
    Format.LI: dict(rd=5, imm=12345),
}


def _representative(op: Op) -> Instruction:
    return Instruction(op=op, **_FIELDS[OPINFO[op].fmt])


def _fresh_state(pc: int) -> ArchState:
    state = ArchState(context_id=0, pc=pc)
    for i in range(1, 32):
        state.set_x(i, i * 1001 + 7)  # nonzero: divide/remainder-safe
        state.f[i] = float(i) + 0.5  # positive: sqrt-safe
    state.f[0] = 1.25
    return state


@pytest.mark.parametrize("op", list(Op), ids=lambda op: op.name)
def test_roundtrip_and_kind(op):
    insn = _representative(op)
    decoded = Instruction.decode(insn.encode())
    assert decoded == insn

    kind, run, ea, apply_ = predecode_instruction(decoded, TEXT_BASE)
    info = OPINFO[op]
    if info.is_amo:
        assert kind == K_AMO
    elif info.is_load:
        assert kind == K_LOAD
    elif info.is_store:
        assert kind == K_STORE
    elif op in (Op.JAL, Op.JALR):
        assert kind == K_JUMP
    elif info.is_branch:
        assert kind == K_BRANCH
    elif op is Op.ECALL:
        assert kind == K_ECALL
    elif op is Op.HALT:
        assert kind == K_HALT
    else:
        assert kind == K_SIMPLE

    if kind <= K_JUMP:
        assert callable(run) and ea is None and apply_ is None
    elif kind in (K_LOAD, K_STORE, K_AMO):
        assert run is None and callable(ea) and callable(apply_)
    else:
        assert run is None and ea is None and apply_ is None


@pytest.mark.parametrize("op", list(Op), ids=lambda op: op.name)
def test_closure_matches_oracle(op):
    """Register-only closures produce the oracle's exact state and next PC."""
    pc = TEXT_BASE + 8 * 4
    insn = _representative(op)
    kind, run, _, _ = predecode_instruction(insn, pc)
    if kind > K_JUMP:
        pytest.skip("memory/syscall/halt kinds have no run closure")

    oracle = _fresh_state(pc)
    mine = _fresh_state(pc)
    outcome = execute(oracle, insn)
    target = run(mine.x, mine.f)

    assert mine.x == oracle.x
    assert [v.hex() for v in mine.f] == [v.hex() for v in oracle.f]
    expected = None if outcome.next_pc is NEXT else outcome.next_pc
    assert target == expected


def test_rd_zero_alu_is_inert():
    insn = Instruction(op=Op.ADD, rd=0, rs1=6, rs2=7)
    _, run, _, _ = predecode_instruction(insn, TEXT_BASE)
    state = _fresh_state(TEXT_BASE)
    snapshot = list(state.x)
    assert run(state.x, state.f) is None
    assert state.x == snapshot
