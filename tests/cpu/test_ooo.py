"""Out-of-order core model tests: ILP, forwarding, MSHRs, prediction."""

import pytest

from repro.core import run_simulation
from repro.core.config import SimConfig, TargetConfig
from repro.lang import compile_source
from repro.workloads import make_workload

OOO = TargetConfig(core_model="ooo", num_cores=4)
INORDER = TargetConfig(core_model="inorder", num_cores=4)


def run(src_or_prog, target, scheme="cc", **kw):
    prog = compile_source(src_or_prog).program if isinstance(src_or_prog, str) else src_or_prog
    return run_simulation(prog, scheme=scheme, host_cores=4, target=target, **kw)


INDEPENDENT_OPS = """
int main() {
    int a = 1; int b = 2; int c = 3; int d = 4;
    int s = 0;
    for (int i = 0; i < 50; i = i + 1) {
        a = a * 3;
        b = b * 5;
        c = c * 7;
        d = d * 11;
    }
    s = a + b + c + d;
    print_int(s & 1023);
    return 0;
}
"""

DEPENDENT_CHAIN = """
int main() {
    int a = 1;
    for (int i = 0; i < 200; i = i + 1) {
        a = a * 3;     // serial multiply chain
    }
    print_int(a & 1023);
    return 0;
}
"""


class TestILP:
    def test_ooo_beats_inorder_on_parallel_work(self):
        fast = run(INDEPENDENT_OPS, OOO)
        slow = run(INDEPENDENT_OPS, INORDER)
        assert fast.int_output() == slow.int_output()
        assert fast.execution_cycles < slow.execution_cycles * 0.7

    def test_dependent_chain_limits_ooo_gain(self):
        """A serial dependence chain gains much less from OoO than
        independent work does."""
        ooo_par = run(INDEPENDENT_OPS, OOO).execution_cycles
        ino_par = run(INDEPENDENT_OPS, INORDER).execution_cycles
        ooo_ser = run(DEPENDENT_CHAIN, OOO).execution_cycles
        ino_ser = run(DEPENDENT_CHAIN, INORDER).execution_cycles
        gain_par = ino_par / ooo_par
        gain_ser = ino_ser / ooo_ser
        assert gain_par > gain_ser

    def test_functional_equivalence_across_models(self):
        for src in (INDEPENDENT_OPS, DEPENDENT_CHAIN):
            assert run(src, OOO).int_output() == run(src, INORDER).int_output()


class TestMemory:
    def test_store_to_load_forwarding_correctness(self):
        src = """
        int buf[8];
        int main() {
            int s = 0;
            for (int i = 0; i < 8; i = i + 1) {
                buf[i] = i * 7;
                s = s + buf[i];     // load immediately after store
            }
            print_int(s);
            return 0;
        }
        """
        r = run(src, OOO)
        assert r.int_output() == [7 * sum(range(8))]

    def test_mshr_overlap_reduces_miss_serialisation(self):
        # Strided walk over a large footprint: every access misses; OoO can
        # overlap several misses, the in-order core cannot.
        src = """
        int main() {
            int* p = (int*) sbrk(8 * 4096);
            int s = 0;
            for (int i = 0; i < 512; i = i + 8) p[i] = i;
            for (int i = 0; i < 512; i = i + 8) s = s + p[i];
            print_int(s);
            return 0;
        }
        """
        fast = run(src, OOO)
        slow = run(src, INORDER)
        assert fast.int_output() == slow.int_output()
        assert fast.execution_cycles < slow.execution_cycles

    def test_amo_is_atomic_and_serialised(self):
        src = """
        int c;
        int main() {
            for (int i = 0; i < 10; i = i + 1) atomic_add(&c, 2);
            print_int(c);
            return 0;
        }
        """
        assert run(src, OOO).int_output() == [20]


class TestBenchmarksUnderOoO:
    @pytest.mark.parametrize("name", ["fft", "lu", "water"])
    def test_benchmarks_verify(self, name):
        w = make_workload(name, scale="tiny")
        target = TargetConfig(core_model="ooo")
        r = run_simulation(w.program, scheme="cc", host_cores=4, target=target)
        assert w.verify(r.output)

    def test_benchmark_correct_under_slack(self):
        w = make_workload("fft", scale="tiny")
        target = TargetConfig(core_model="ooo")
        for scheme in ("s9", "su"):
            r = run_simulation(w.program, scheme=scheme, host_cores=4, target=target)
            assert w.verify(r.output), scheme

    def test_ooo_has_higher_ipc(self):
        w = make_workload("fft", scale="tiny")
        ooo = run_simulation(w.program, scheme="cc", host_cores=4,
                             target=TargetConfig(core_model="ooo"))
        ino = run_simulation(w.program, scheme="cc", host_cores=4,
                             target=TargetConfig(core_model="inorder"))
        assert ooo.execution_cycles < ino.execution_cycles


class TestPrediction:
    def test_mispredict_penalty_affects_timing(self):
        branchy = """
        int main() {
            int s = 0;
            int x = 12345;
            for (int i = 0; i < 300; i = i + 1) {
                x = (x * 1103515245 + 12345) % (1 << 31);
                if ((x >> 7) & 1) s = s + 1;   // data-dependent branch
                else s = s - 1;
            }
            print_int(s);
            return 0;
        }
        """
        cheap = run(branchy, TargetConfig(core_model="ooo", mispredict_penalty=1))
        costly = run(branchy, TargetConfig(core_model="ooo", mispredict_penalty=30))
        assert cheap.int_output() == costly.int_output()
        assert cheap.execution_cycles < costly.execution_cycles
