"""End-to-end functional interpreter tests on assembled programs."""

import pytest

from repro.cpu.interp import FunctionalInterpreter, InterpError, run_functional
from repro.isa import assemble


def run_src(src, **kw):
    return run_functional(assemble(src), **kw)


def test_sum_loop():
    result = run_src(
        """
        main:
            li a0, 10
            li a1, 0
        loop:
            add a1, a1, a0
            addi a0, a0, -1
            bnez a0, loop
            mv a0, a1
            li a7, 1       # PRINT_INT
            ecall
            li a0, 0
            li a7, 0       # EXIT
            ecall
        """
    )
    assert result.int_output == [55]
    assert result.exit_code == 0


def test_exit_code_propagates():
    result = run_src("main: li a0, 3\nli a7, 0\necall\n")
    assert result.exit_code == 3


def test_halt_without_exit_is_code_zero():
    assert run_src("main: halt\n").exit_code == 0


def test_fibonacci_via_function_calls():
    result = run_src(
        """
        # iterative fib(12) with a helper function
        main:
            li a0, 12
            call fib
            li a7, 1
            ecall
            halt
        fib:
            li t0, 0      # a
            li t1, 1      # b
        fib_loop:
            beqz a0, fib_done
            add t2, t0, t1
            mv t0, t1
            mv t1, t2
            addi a0, a0, -1
            j fib_loop
        fib_done:
            mv a0, t0
            ret
        """
    )
    assert result.int_output == [144]


def test_data_segment_and_memory():
    result = run_src(
        """
        .data
        arr: .word 3, 1, 4, 1, 5
        .text
        main:
            la a1, arr
            li a2, 5
            li a0, 0
        loop:
            ld t0, 0(a1)
            add a0, a0, t0
            addi a1, a1, 8
            addi a2, a2, -1
            bnez a2, loop
            li a7, 1
            ecall
            halt
        """
    )
    assert result.int_output == [14]


def test_float_pipeline():
    result = run_src(
        """
        .data
        vals: .double 2.0, 8.0
        .text
        main:
            la a0, vals
            fld f1, 0(a0)
            fld f2, 8(a0)
            fmul f3, f1, f2      # 16.0
            fsqrt f4, f3         # 4.0
            fmv fa0, f4
            li a7, 2             # PRINT_FLOAT
            ecall
            halt
        """
    )
    assert result.float_output == [4.0]


def test_print_char():
    result = run_src(
        """
        main:
            li a0, 72
            li a7, 3
            ecall
            li a0, 105
            li a7, 3
            ecall
            halt
        """
    )
    assert "".join(v for v in result.output if isinstance(v, str)) == "Hi"


def test_sbrk_allocates_monotonically():
    result = run_src(
        """
        main:
            li a0, 64
            li a7, 4
            ecall
            mv s0, a0
            li a0, 64
            li a7, 4
            ecall
            sub a0, a0, s0    # second break - first break
            li a7, 1
            ecall
            halt
        """
    )
    assert result.int_output == [64]


def test_thread_introspection_single_threaded():
    result = run_src(
        """
        main:
            li a7, 12       # THREAD_ID
            ecall
            li a7, 1
            ecall
            li a7, 13       # NUM_THREADS
            ecall
            li a7, 1
            ecall
            halt
        """
    )
    assert result.int_output == [0, 1]


def test_runaway_program_detected():
    with pytest.raises(InterpError, match="exceeded"):
        run_src("main: j main\n", max_instructions=1000)


def test_blocking_syscall_rejected_functionally():
    # Thread spawn/join genuinely needs the slack engine.
    with pytest.raises(InterpError, match="slack engine"):
        run_src("main: li a7, 11\necall\nhalt\n")


def test_single_thread_sync_supported():
    # Locks acquired/released by the only thread succeed immediately.
    result = run_src(
        """
        main:
            li a0, 4096
            li a7, 20       # LOCK_INIT
            ecall
            li a7, 21       # LOCK_ACQ
            ecall
            li a7, 22       # LOCK_REL
            ecall
            li a0, 7
            li a7, 1
            ecall
            halt
        """
    )
    assert result.int_output == [7]


def test_single_thread_deadlock_detected():
    # Re-acquiring a held lock with one thread can never succeed.
    with pytest.raises(InterpError, match="deadlock"):
        run_src(
            """
            main:
                li a0, 4096
                li a7, 20
                ecall
                li a7, 21
                ecall
                li a7, 21
                ecall
                halt
            """
        )


def test_unknown_syscall_rejected():
    with pytest.raises(InterpError, match="unknown syscall"):
        run_src("main: li a7, 99\necall\nhalt\n")


def test_pc_escape_detected():
    with pytest.raises(InterpError, match="outside text"):
        run_src("main: li t0, 0\njr t0\n")


def test_instruction_count():
    result = run_src("main: nop\nnop\nhalt\n")
    assert result.instructions == 3


def test_amo_program():
    result = run_src(
        """
        .data
        counter: .word 10
        .text
        main:
            la a1, counter
            li a2, 5
            amoadd a0, a2, (a1)   # a0 = 10, counter = 15
            li a7, 1
            ecall
            ld a0, 0(a1)
            li a7, 1
            ecall
            halt
        """
    )
    assert result.int_output == [10, 15]
