"""Functional-semantics tests for the SPISA executor."""

import math
import struct

import pytest
from hypothesis import given, strategies as st

from repro._util import to_signed64, to_unsigned64
from repro.cpu.arch import ArchState, TargetFault, TargetMemory
from repro.cpu.funcsim import NEXT, do_amo, do_load, do_store, effective_address, execute
from repro.isa import Instruction, Op

i64 = st.integers(-(1 << 63), (1 << 63) - 1)


def make_state(**regs):
    s = ArchState(pc=0x10000)
    for name, val in regs.items():
        s.set_x(int(name[1:]), val)
    return s


def run_op(op, rs1=0, rs2=0, imm=0, f1=0.0, f2=0.0):
    s = ArchState(pc=0x10000)
    s.set_x(1, rs1)
    s.set_x(2, rs2)
    s.f[1], s.f[2] = f1, f2
    execute(s, Instruction(op, rd=3, rs1=1, rs2=2, imm=imm))
    return s


class TestIntegerALU:
    def test_add_sub(self):
        assert run_op(Op.ADD, 5, 7).x[3] == 12
        assert run_op(Op.SUB, 5, 7).x[3] == -2

    def test_add_wraps_64_bits(self):
        assert run_op(Op.ADD, (1 << 63) - 1, 1).x[3] == -(1 << 63)

    def test_mul(self):
        assert run_op(Op.MUL, -3, 7).x[3] == -21

    def test_div_truncates_toward_zero(self):
        assert run_op(Op.DIV, 7, 2).x[3] == 3
        assert run_op(Op.DIV, -7, 2).x[3] == -3
        assert run_op(Op.DIV, 7, -2).x[3] == -3

    def test_div_by_zero_is_minus_one(self):
        assert run_op(Op.DIV, 42, 0).x[3] == -1

    def test_rem_sign_follows_dividend(self):
        assert run_op(Op.REM, 7, 2).x[3] == 1
        assert run_op(Op.REM, -7, 2).x[3] == -1
        assert run_op(Op.REM, 7, 0).x[3] == 7

    def test_logic(self):
        assert run_op(Op.AND, 0b1100, 0b1010).x[3] == 0b1000
        assert run_op(Op.OR, 0b1100, 0b1010).x[3] == 0b1110
        assert run_op(Op.XOR, 0b1100, 0b1010).x[3] == 0b0110

    def test_shifts(self):
        assert run_op(Op.SLL, 1, 8).x[3] == 256
        assert run_op(Op.SRL, -1, 60).x[3] == 15
        assert run_op(Op.SRA, -16, 2).x[3] == -4

    def test_shift_amount_masked_to_6_bits(self):
        assert run_op(Op.SLL, 1, 64).x[3] == 1
        assert run_op(Op.SLL, 1, 65).x[3] == 2

    def test_slt_signed_vs_unsigned(self):
        assert run_op(Op.SLT, -1, 0).x[3] == 1
        assert run_op(Op.SLTU, -1, 0).x[3] == 0

    def test_immediates(self):
        assert run_op(Op.ADDI, 10, imm=-3).x[3] == 7
        assert run_op(Op.SLTI, 1, imm=5).x[3] == 1
        assert run_op(Op.SRAI, -32, imm=3).x[3] == -4

    def test_lui(self):
        assert run_op(Op.LUI, imm=1).x[3] == 1 << 32
        assert run_op(Op.LUI, imm=-1).x[3] == to_signed64(0xFFFFFFFF00000000)

    def test_x0_never_written(self):
        s = ArchState()
        execute(s, Instruction(Op.ADDI, rd=0, rs1=0, imm=99))
        assert s.x[0] == 0

    @given(a=i64, b=i64)
    def test_add_matches_two_complement(self, a, b):
        assert run_op(Op.ADD, a, b).x[3] == to_signed64(a + b)

    @given(a=i64, b=i64)
    def test_sltu_matches_unsigned_compare(self, a, b):
        assert run_op(Op.SLTU, a, b).x[3] == int(to_unsigned64(a) < to_unsigned64(b))

    @given(a=i64, b=i64.filter(lambda v: v != 0))
    def test_div_rem_identity(self, a, b):
        q = run_op(Op.DIV, a, b).x[3]
        r = run_op(Op.REM, a, b).x[3]
        assert to_signed64(q * b + r) == a


class TestBranches:
    def test_taken_branch_is_pc_relative(self):
        s = make_state(x1=1, x2=1)
        s.pc = 0x10008
        out = execute(s, Instruction(Op.BEQ, rs1=1, rs2=2, imm=-8))
        assert out.taken and out.next_pc == 0x10000

    def test_untaken_branch_falls_through(self):
        s = make_state(x1=1, x2=2)
        out = execute(s, Instruction(Op.BEQ, rs1=1, rs2=2, imm=-8))
        assert not out.taken and out.next_pc == NEXT

    def test_unsigned_branches(self):
        s = make_state(x1=-1, x2=0)
        assert not execute(s, Instruction(Op.BLTU, rs1=1, rs2=2, imm=8)).taken
        assert execute(s, Instruction(Op.BGEU, rs1=1, rs2=2, imm=8)).taken

    def test_jal_links(self):
        s = ArchState(pc=0x10000)
        out = execute(s, Instruction(Op.JAL, rd=1, imm=0x100))
        assert out.next_pc == 0x10100
        assert s.x[1] == 0x10008

    def test_jalr_is_absolute(self):
        s = make_state(x5=0x20000)
        s.pc = 0x10000
        out = execute(s, Instruction(Op.JALR, rd=1, rs1=5, imm=8))
        assert out.next_pc == 0x20008
        assert s.x[1] == 0x10008


class TestFloat:
    def test_arith(self):
        assert run_op(Op.FADD, f1=1.5, f2=2.25).f[3] == 3.75
        assert run_op(Op.FMUL, f1=3.0, f2=-2.0).f[3] == -6.0
        assert run_op(Op.FDIV, f1=1.0, f2=4.0).f[3] == 0.25

    def test_fdiv_by_zero(self):
        assert math.isinf(run_op(Op.FDIV, f1=1.0, f2=0.0).f[3])
        assert math.isnan(run_op(Op.FDIV, f1=0.0, f2=0.0).f[3])

    def test_fsqrt(self):
        assert run_op(Op.FSQRT, f1=9.0).f[3] == 3.0
        assert math.isnan(run_op(Op.FSQRT, f1=-1.0).f[3])

    def test_unary(self):
        assert run_op(Op.FNEG, f1=2.0).f[3] == -2.0
        assert run_op(Op.FABS, f1=-2.0).f[3] == 2.0
        assert run_op(Op.FMV, f1=7.5).f[3] == 7.5

    def test_compares_write_int_reg(self):
        assert run_op(Op.FLT, f1=1.0, f2=2.0).x[3] == 1
        assert run_op(Op.FLE, f1=2.0, f2=2.0).x[3] == 1
        assert run_op(Op.FEQ, f1=2.0, f2=1.0).x[3] == 0

    def test_nan_compares_false(self):
        assert run_op(Op.FEQ, f1=math.nan, f2=math.nan).x[3] == 0
        assert run_op(Op.FLT, f1=math.nan, f2=1.0).x[3] == 0

    def test_conversions(self):
        assert run_op(Op.FCVT_D_L, rs1=-7).f[3] == -7.0
        assert run_op(Op.FCVT_L_D, f1=-7.9).x[3] == -7
        assert run_op(Op.FCVT_L_D, f1=7.9).x[3] == 7

    def test_fcvt_saturates(self):
        assert run_op(Op.FCVT_L_D, f1=1e300).x[3] == (1 << 63) - 1
        assert run_op(Op.FCVT_L_D, f1=-1e300).x[3] == -(1 << 63)
        assert run_op(Op.FCVT_L_D, f1=math.nan).x[3] == 0

    def test_bit_moves_roundtrip(self):
        bits = struct.unpack("<q", struct.pack("<d", 3.14159))[0]
        s = make_state(x1=bits)
        execute(s, Instruction(Op.FMV_D_X, rd=3, rs1=1))
        assert s.f[3] == 3.14159
        execute(s, Instruction(Op.FMV_X_D, rd=5, rs1=3))
        assert s.x[5] == bits

    @given(st.floats(allow_nan=False, allow_infinity=False, width=64))
    def test_fmv_bit_roundtrip_property(self, value):
        s = ArchState()
        s.f[1] = value
        execute(s, Instruction(Op.FMV_X_D, rd=5, rs1=1))
        execute(s, Instruction(Op.FMV_D_X, rd=2, rs1=5))
        assert s.f[2] == value or (math.isnan(s.f[2]) and math.isnan(value))


class TestMemoryOps:
    def test_load_store_word(self):
        mem = TargetMemory(1 << 16)
        s = make_state(x1=0x100, x2=-99)
        execute(s, Instruction(Op.SD, rs1=1, rs2=2, imm=8), mem)
        assert mem.load_word(0x108) == -99
        execute(s, Instruction(Op.LD, rd=3, rs1=1, imm=8), mem)
        assert s.x[3] == -99

    def test_float_load_store(self):
        mem = TargetMemory(1 << 16)
        s = make_state(x1=0x200)
        s.f[2] = 6.25
        execute(s, Instruction(Op.FSD, rs1=1, rs2=2), mem)
        execute(s, Instruction(Op.FLD, rd=4, rs1=1), mem)
        assert s.f[4] == 6.25

    def test_int_float_alias_same_bytes(self):
        mem = TargetMemory(1 << 16)
        mem.store_float(0x100, 1.0)
        assert mem.load_word(0x100) == struct.unpack("<q", struct.pack("<d", 1.0))[0]

    def test_effective_address(self):
        s = make_state(x1=0x1000)
        assert effective_address(s, Instruction(Op.LD, rd=2, rs1=1, imm=-16)) == 0xFF0

    def test_amoswap(self):
        mem = TargetMemory(1 << 16)
        mem.store_word(0x40, 5)
        s = make_state(x1=0x40, x2=9)
        do_amo(s, Instruction(Op.AMOSWAP, rd=3, rs1=1, rs2=2), mem, 0x40)
        assert s.x[3] == 5 and mem.load_word(0x40) == 9

    def test_amoadd(self):
        mem = TargetMemory(1 << 16)
        mem.store_word(0x40, 5)
        s = make_state(x1=0x40, x2=3)
        do_amo(s, Instruction(Op.AMOADD, rd=3, rs1=1, rs2=2), mem, 0x40)
        assert s.x[3] == 5 and mem.load_word(0x40) == 8

    def test_misaligned_access_faults(self):
        mem = TargetMemory(1 << 16)
        with pytest.raises(TargetFault, match="misaligned"):
            mem.load_word(0x101)

    def test_out_of_bounds_faults(self):
        mem = TargetMemory(1 << 16)
        with pytest.raises(TargetFault, match="out-of-bounds"):
            mem.load_word(1 << 16)
        with pytest.raises(TargetFault, match="out-of-bounds"):
            mem.load_word(-8)

    def test_mem_op_without_memory_rejected(self):
        with pytest.raises(ValueError, match="without a TargetMemory"):
            execute(make_state(x1=0), Instruction(Op.LD, rd=1, rs1=1))

    @given(addr_w=st.integers(0, 8191), value=i64)
    def test_word_roundtrip_property(self, addr_w, value):
        mem = TargetMemory(1 << 16)
        mem.store_word(addr_w * 8, value)
        assert mem.load_word(addr_w * 8) == value


class TestSystem:
    def test_ecall_flags_syscall(self):
        out = execute(ArchState(), Instruction(Op.ECALL))
        assert out.is_syscall

    def test_halt_sets_halted(self):
        s = ArchState()
        out = execute(s, Instruction(Op.HALT))
        assert out.is_halt and s.halted

    def test_nop_does_nothing(self):
        s = ArchState()
        before = list(s.x)
        out = execute(s, Instruction(Op.NOPOP))
        assert out.next_pc == NEXT and s.x == before
