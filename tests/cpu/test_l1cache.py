"""L1 cache model tests: geometry, LRU, MESI transitions, writebacks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.l1cache import MESI, AccessResult, L1Cache, L1Config


def small_cache(assoc=2, sets=4, block=64):
    return L1Cache(L1Config(size_bytes=assoc * sets * block, block_bytes=block, assoc=assoc))


def test_geometry():
    cache = L1Cache(L1Config(size_bytes=16 * 1024, block_bytes=64, assoc=4))
    assert cache.config.num_sets == 64


def test_cold_miss_then_hit():
    cache = small_cache()
    assert cache.access(0x1000, False) is AccessResult.MISS
    cache.fill(0x1000, MESI.EXCLUSIVE)
    assert cache.access(0x1000, False) is AccessResult.HIT


def test_block_granularity():
    cache = small_cache(block=64)
    cache.fill(0x1000, MESI.EXCLUSIVE)
    assert cache.access(0x1038, False) is AccessResult.HIT  # same 64B block
    assert cache.access(0x1040, False) is AccessResult.MISS  # next block


def test_write_to_shared_is_upgrade():
    cache = small_cache()
    cache.fill(0x2000, MESI.SHARED)
    assert cache.access(0x2000, True) is AccessResult.UPGRADE
    assert cache.access(0x2000, False) is AccessResult.HIT  # read still fine


def test_write_to_exclusive_silently_modifies():
    cache = small_cache()
    cache.fill(0x2000, MESI.EXCLUSIVE)
    assert cache.access(0x2000, True) is AccessResult.HIT
    assert cache.state_of(0x2000) is MESI.MODIFIED


def test_write_to_modified_hits():
    cache = small_cache()
    cache.fill(0x2000, MESI.MODIFIED)
    assert cache.access(0x2000, True) is AccessResult.HIT


def test_lru_eviction():
    cache = small_cache(assoc=2, sets=1)
    cache.fill(0x0000, MESI.EXCLUSIVE)
    cache.fill(0x1000, MESI.EXCLUSIVE)
    cache.access(0x0000, False)          # touch first: second becomes LRU
    victim = cache.fill(0x2000, MESI.EXCLUSIVE)
    assert victim is None                 # clean eviction: no writeback
    assert cache.access(0x1000, False) is AccessResult.MISS
    assert cache.access(0x0000, False) is AccessResult.HIT


def test_dirty_eviction_returns_writeback_address():
    cache = small_cache(assoc=1, sets=1)
    cache.fill(0x3000, MESI.MODIFIED)
    victim = cache.fill(0x7000, MESI.EXCLUSIVE)
    assert victim == 0x3000
    assert cache.stats.writebacks == 1


def test_invalidate():
    cache = small_cache()
    cache.fill(0x4000, MESI.SHARED)
    assert cache.invalidate(0x4000) is True
    assert cache.access(0x4000, False) is AccessResult.MISS
    assert cache.invalidate(0x4000) is False  # already gone


def test_downgrade_reports_dirtiness():
    cache = small_cache()
    cache.fill(0x5000, MESI.MODIFIED)
    assert cache.downgrade(0x5000) is True
    assert cache.state_of(0x5000) is MESI.SHARED
    cache.fill(0x5040, MESI.EXCLUSIVE)
    assert cache.downgrade(0x5040) is False
    assert cache.state_of(0x5040) is MESI.SHARED


def test_fill_invalid_rejected():
    with pytest.raises(ValueError):
        small_cache().fill(0, MESI.INVALID)


def test_stats_accumulate():
    cache = small_cache()
    cache.access(0, False)
    cache.fill(0, MESI.EXCLUSIVE)
    cache.access(0, False)
    assert cache.stats.accesses == 2
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert 0.0 < cache.stats.miss_rate < 1.0


def test_resident_blocks_roundtrip():
    cache = small_cache()
    cache.fill(0x1000, MESI.SHARED)
    cache.fill(0x2050, MESI.MODIFIED)
    resident = dict(cache.resident_blocks())
    assert resident[0x1000] is MESI.SHARED
    assert resident[0x2040] is MESI.MODIFIED  # block-aligned


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 255), st.booleans()), min_size=1, max_size=200))
def test_property_capacity_invariant(ops):
    """The cache never holds more valid lines than its capacity, and a fill
    always makes the next access to that block a hit."""
    cache = small_cache(assoc=2, sets=4)
    capacity = 8
    for block_index, is_write in ops:
        addr = block_index * 64
        result = cache.access(addr, is_write)
        if result is not AccessResult.HIT:
            state = MESI.MODIFIED if is_write else MESI.EXCLUSIVE
            cache.fill(addr, state)
            assert cache.access(addr, is_write) is AccessResult.HIT
        assert len(cache.resident_blocks()) <= capacity
