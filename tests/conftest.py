"""Shared pytest configuration for the test tree."""


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="Regenerate the golden determinism digests instead of comparing "
        "against them (tests/core/test_goldens.py).",
    )
