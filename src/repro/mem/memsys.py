"""Manager-side memory system: bus + directory + NUCA L2 + DRAM.

This is the "lower level cache hierarchy" box of the paper's Figure 1.  The
simulation manager calls :meth:`MemorySystem.service` for each GQ request (in
whatever order the active slack scheme dictates); the result carries the
response-ready timestamp for the requesting core's InQ plus any coherence
messages (invalidations / downgrades) for other cores' InQs.

The interconnect is split-transaction: the shared *address/request bus* is
the contended, order-tracked resource; data returns travel a dedicated
point-to-point return path with fixed latency (so out-of-order completions —
normal even in a violation-free system — are not miscounted as distortions).

Unloaded timing of a GETS/GETX that hits in the nearest L2 bank::

    request bus (1) + bank access (8) + data return (1) = 10 cycles

which is the paper's *critical latency* — the quantum used for Q10/L10 and
the bound for S9 in the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mem.directory import Directory, DirectoryOutcome, ReqKind
from repro.mem.dram import Dram
from repro.mem.interconnect import Bus
from repro.mem.l2nuca import L2Config, L2Nuca
from repro.violations.detect import ViolationCounters

__all__ = ["MemorySystem", "MemSysConfig", "ServiceResult"]


@dataclass(frozen=True)
class MemSysConfig:
    """Timing knobs for the shared hierarchy."""

    l2: L2Config = field(default_factory=L2Config)
    bus_transfer_cycles: int = 1
    dram_latency: int = 120
    dram_service_cycles: int = 4
    #: Directory lookup overhead (overlapped with the bank access).
    directory_cycles: int = 1
    #: Cache-to-cache forward latency (remote L1 probe + data return).
    cache_to_cache_cycles: int = 8
    #: Latency of an UPGRADE (no data transfer: directory + acks only).
    upgrade_cycles: int = 3


@dataclass
class ServiceResult:
    """Outcome of servicing one memory request."""

    #: Simulated time at which the response reaches the requesting core.
    ready_ts: int
    #: MESI state granted to the requester's L1 ("M"/"E"/"S"), None for PUTM.
    grant: str | None
    #: (victim_core, block_addr) pairs needing invalidation.
    invalidations: list[tuple[int, int]] = field(default_factory=list)
    #: (owner_core, block_addr) pairs needing M/E -> S downgrade.
    downgrades: list[tuple[int, int]] = field(default_factory=list)
    #: Simulated time at which coherence messages reach their targets.
    coherence_ts: int = 0
    l2_hit: bool = True


class MemorySystem:
    """Composite shared-hierarchy model owned by the simulation manager."""

    def __init__(
        self,
        config: MemSysConfig | None = None,
        num_cores: int = 8,
        counters: ViolationCounters | None = None,
        resource_prefix: str = "",
        dram_channel: int = 0,
    ) -> None:
        self.config = config or MemSysConfig()
        self.num_cores = num_cores
        # A fresh ViolationCounters is the no-op sink: standalone use (tests,
        # examples) gets a private counter set instead of Optional plumbing.
        self.counters = counters if counters is not None else ViolationCounters()
        counters = self.counters
        # When this system is one shard of a multi-domain memory side, the
        # prefix (e.g. "d2:") namespaces its order-tracked resources so
        # violations.by_resource attributes distortions to the right domain.
        # Empty for the monolithic system — resource keys are unchanged.
        self.resource_prefix = resource_prefix
        # Internal resources model *contention* only; out-of-order processing
        # detection happens here in service(), keyed on the request timestamp
        # (internal completion-time skew — NUCA hops, background writebacks —
        # is not a violation).
        self.bus = Bus(self.config.bus_transfer_cycles, name=resource_prefix + "bus")
        self.l2 = L2Nuca(self.config.l2, num_cores)
        self.dram = Dram(
            self.config.dram_latency,
            self.config.dram_service_cycles,
            channel=dram_channel,
        )
        self.directory = Directory(num_cores, counters)
        self.requests_serviced = 0
        self._order_ts: dict[str, int] = {}
        self._res_bus = resource_prefix + "bus"
        self._res_dram = resource_prefix + "dram"

    # ---------------------------------------------------------------- timing
    def critical_latency(self) -> int:
        """The paper's critical latency: minimum unloaded L2 access time."""
        best = min(
            self.l2.unloaded_latency(core, bank)
            for core in range(self.num_cores)
            for bank in range(self.config.l2.num_banks)
        )
        return 2 * self.config.bus_transfer_cycles + best

    def _check_order(self, resource: str, ts: int) -> None:
        """Flag a simulation-state violation (paper §3.2.1) when a request is
        serviced out of timestamp order on a shared resource."""
        last = self._order_ts.get(resource, 0)
        if ts < last:
            self.counters.record_simulation_state(resource)
        else:
            self._order_ts[resource] = ts

    # --------------------------------------------------------------- service
    def service(self, kind: ReqKind, addr: int, core: int, ts: int) -> ServiceResult:
        """Service one request that was *created* at simulated time *ts*.

        Must be called in the manager's chosen processing order; occupancy
        state advances in that order (simulation-time semantics, §3.2.1).
        """
        self.requests_serviced += 1
        cfg = self.config
        self._check_order(self._res_bus, ts)
        grant_ts = self.bus.occupy(ts)
        arrive = grant_ts + cfg.bus_transfer_cycles
        outcome = self.directory.handle(kind, addr, core, ts)

        if kind is ReqKind.PUTM:
            done, _ = self.l2.access(addr, core, arrive, is_writeback=True)
            return ServiceResult(ready_ts=done, grant=None)

        l2_hit = True
        if kind is ReqKind.UPGRADE and not outcome.upgrade_promoted:
            ready = arrive + cfg.upgrade_cycles
        elif outcome.cache_to_cache:
            # Data comes from the remote owner's L1; the L2 absorbs the copy
            # in the background (does not delay the response).
            ready = arrive + cfg.directory_cycles + cfg.cache_to_cache_cycles
            self.l2.access(addr, core, ready, is_writeback=True)
        else:
            self._check_order(f"{self.resource_prefix}l2bank[{self.l2.bank_of(addr)}]", ts)
            bank_ready, l2_hit = self.l2.access(addr, core, arrive)
            if l2_hit:
                ready = bank_ready
            else:
                self._check_order(self._res_dram, ts)
                ready = self.dram.access(bank_ready, addr)
        # Data return path: point-to-point, contention-free by design.
        ready_ts = ready + cfg.bus_transfer_cycles
        coherence_ts = arrive + cfg.directory_cycles
        return ServiceResult(
            ready_ts=ready_ts,
            grant=outcome.grant,
            invalidations=[(victim, addr) for victim in outcome.invalidate],
            downgrades=[(outcome.downgrade, addr)] if outcome.downgrade is not None else [],
            coherence_ts=coherence_ts,
            l2_hit=l2_hit,
        )
