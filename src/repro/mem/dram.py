"""Main-memory model: fixed access latency plus a bandwidth-limited port.

The port is an occupancy resource like the bus: requests serialise on it in
manager-processing order, so slack can reorder them (counted as
simulation-state distortion on resource ``dram``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.violations.detect import ViolationCounters

__all__ = ["Dram", "DramStats"]


@dataclass
class DramStats:
    accesses: int = 0
    queue_cycles: int = 0
    #: Row-buffer activations (open-row bookkeeping only; timing is fixed).
    row_activations: int = 0


class Dram:
    """Fixed-latency DRAM with a single service port."""

    #: Row-buffer granularity for activation accounting (4 KiB rows).
    ROW_SHIFT = 12

    def __init__(
        self,
        latency: int = 120,
        service_cycles: int = 4,
        counters: ViolationCounters | None = None,
        channel: int = 0,
    ) -> None:
        self.latency = latency
        self.service_cycles = service_cycles
        #: Channel index when the memory side is sharded into scheduling
        #: domains (one independently-ported channel per domain); 0 for the
        #: monolithic single-channel system.
        self.channel = channel
        self.free_at = 0
        self._last_ts = 0
        self._open_row: int | None = None
        self.counters = counters if counters is not None else ViolationCounters()
        self.stats = DramStats()

    def access(self, ts: int, addr: int = 0) -> int:
        """Access starting at simulated time *ts*; returns completion time.

        The latency model is deliberately flat; *addr* only feeds the open-row
        activation statistic.
        """
        if ts < self._last_ts:
            self.counters.record_simulation_state("dram")
        start = max(ts, self.free_at)
        self.free_at = start + self.service_cycles
        self.stats.accesses += 1
        self.stats.queue_cycles += start - ts
        row = addr >> self.ROW_SHIFT
        if row != self._open_row:
            self._open_row = row
            self.stats.row_activations += 1
        if ts > self._last_ts:
            self._last_ts = ts
        return start + self.latency
