"""Manager-owned shared memory hierarchy: directory MESI coherence, banked
NUCA L2, shared bus / crossbar interconnect and DRAM (paper Figure 1's
"Lower Level Cache Hierarchy / Memory" box)."""

from repro.mem.directory import Directory, DirectoryOutcome, DirState, ReqKind
from repro.mem.dram import Dram
from repro.mem.interconnect import Bus, Crossbar
from repro.mem.l2nuca import L2Config, L2Nuca
from repro.mem.memsys import MemorySystem, MemSysConfig, ServiceResult

__all__ = [
    "Directory",
    "DirectoryOutcome",
    "DirState",
    "ReqKind",
    "Dram",
    "Bus",
    "Crossbar",
    "L2Config",
    "L2Nuca",
    "MemorySystem",
    "MemSysConfig",
    "ServiceResult",
]
