"""On-chip interconnect models: shared bus and crossbar.

The manager simulates shared resources in the order it processes requests
(simulation-time order).  Each resource keeps a ``free_at`` occupancy
variable in *simulated* time; because requests can be processed out of
timestamp order under slack, a request may find the resource "busy" due to a
request from its simulated future — exactly the simulation-state distortion
of paper §3.2.1 / Figure 4.  Such reorderings are counted through the
optional :class:`~repro.violations.detect.ViolationCounters`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.violations.detect import ViolationCounters

__all__ = ["Bus", "Crossbar", "InterconnectStats"]


@dataclass
class InterconnectStats:
    transfers: int = 0
    busy_cycles: int = 0
    contention_cycles: int = 0


class Bus:
    """A single shared bus: one transfer at a time, fixed cycles/transfer."""

    def __init__(
        self,
        transfer_cycles: int = 1,
        counters: ViolationCounters | None = None,
        name: str = "bus",
    ) -> None:
        self.transfer_cycles = transfer_cycles
        self.free_at = 0
        self.counters = counters if counters is not None else ViolationCounters()
        self.name = name
        self.stats = InterconnectStats()
        self._last_grant_ts = 0

    def occupy(self, ts: int) -> int:
        """Request the bus at simulated time *ts*; returns the grant time."""
        if ts < self._last_grant_ts:
            # Processed out of simulated-time order: a request from the past
            # sees occupancy created by its future (Figure 4).
            self.counters.record_simulation_state(self.name)
        grant = max(ts, self.free_at)
        self.stats.transfers += 1
        self.stats.busy_cycles += self.transfer_cycles
        self.stats.contention_cycles += grant - ts
        self.free_at = grant + self.transfer_cycles
        self._last_grant_ts = ts if ts > self._last_grant_ts else self._last_grant_ts
        return grant

    def reset(self) -> None:
        self.free_at = 0
        self._last_grant_ts = 0
        self.stats = InterconnectStats()


class Crossbar:
    """Per-source-port crossbar: contention only among same-port transfers."""

    def __init__(
        self,
        ports: int,
        transfer_cycles: int = 1,
        counters: ViolationCounters | None = None,
        name: str = "xbar",
    ) -> None:
        if ports < 1:
            raise ValueError("crossbar needs at least one port")
        self.transfer_cycles = transfer_cycles
        self.free_at = [0] * ports
        self._last_grant_ts = [0] * ports
        self.counters = counters if counters is not None else ViolationCounters()
        self.name = name
        self.stats = InterconnectStats()

    def occupy(self, ts: int, port: int) -> int:
        """Request *port* at simulated time *ts*; returns the grant time."""
        if ts < self._last_grant_ts[port]:
            self.counters.record_simulation_state(f"{self.name}[{port}]")
        grant = max(ts, self.free_at[port])
        self.stats.transfers += 1
        self.stats.busy_cycles += self.transfer_cycles
        self.stats.contention_cycles += grant - ts
        self.free_at[port] = grant + self.transfer_cycles
        if ts > self._last_grant_ts[port]:
            self._last_grant_ts[port] = ts
        return grant
