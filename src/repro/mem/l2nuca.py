"""Banked NUCA L2 cache (manager-owned, shared by all cores).

The L2 is organised as ``num_banks`` independently-occupied banks with
non-uniform access latency: each core/bank pair has a hop distance on a
linear layout (paper §2 cites NUCA [7][11]).  Tags are tracked per bank with
set-associative LRU arrays; an L2 miss costs a DRAM round trip.

Banks are occupancy resources processed in manager order, so they exhibit
the same simulated-time distortions as the bus under slack (counted per
bank).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import log2i
from repro.violations.detect import ViolationCounters

__all__ = ["L2Nuca", "L2Config", "L2Stats", "domain_of_bank", "banks_of_domain"]


def domain_of_bank(bank: int, num_banks: int, num_domains: int) -> int:
    """Owning scheduling domain of *bank* under a contiguous-range partition.

    Domain d owns banks ``[d*num_banks//num_domains, (d+1)*num_banks//num_domains)``
    — the address→bank→domain map every memory-side shard agrees on
    (DESIGN.md §10).  Requires ``1 <= num_domains <= num_banks`` so every
    domain owns at least one bank.
    """
    if not 1 <= num_domains <= num_banks:
        raise ValueError(
            f"num_domains must be in [1, {num_banks}] (got {num_domains})"
        )
    return bank * num_domains // num_banks


def banks_of_domain(domain: int, num_banks: int, num_domains: int) -> range:
    """The contiguous bank range owned by *domain* (inverse of
    :func:`domain_of_bank`)."""
    if not 0 <= domain < num_domains:
        raise ValueError(f"domain {domain} out of range [0, {num_domains})")
    lo = -(-domain * num_banks // num_domains)  # ceil
    hi = -(-(domain + 1) * num_banks // num_domains)
    return range(lo, hi)


@dataclass(frozen=True)
class L2Config:
    """Geometry and timing of the shared L2."""

    size_bytes: int = 256 * 1024
    block_bytes: int = 64
    assoc: int = 8
    num_banks: int = 8
    #: Cycles for the bank access itself (the paper's critical latency is the
    #: unloaded L2 access = bus + bank_latency + bus back = 10 by default).
    bank_latency: int = 8
    #: Extra cycles per hop of core<->bank distance (NUCA non-uniformity).
    hop_cycles: int = 1
    #: Cycles a bank stays busy per request (occupancy / throughput).
    bank_occupancy: int = 2

    @property
    def sets_per_bank(self) -> int:
        return self.size_bytes // (self.block_bytes * self.assoc * self.num_banks)


@dataclass
class L2Stats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks_in: int = 0
    bank_conflict_cycles: int = 0
    hop_cycles: int = 0


class _BankArray:
    """Set-associative LRU tag array for one bank."""

    __slots__ = ("num_sets", "assoc", "sets", "tick")

    def __init__(self, num_sets: int, assoc: int) -> None:
        self.num_sets = num_sets
        self.assoc = assoc
        self.sets: list[dict[int, int]] = [dict() for _ in range(num_sets)]  # tag -> lru
        self.tick = 0

    def touch(self, set_index: int, tag: int) -> bool:
        """Access (allocate on miss); returns hit?"""
        self.tick += 1
        ways = self.sets[set_index]
        if tag in ways:
            ways[tag] = self.tick
            return True
        if len(ways) >= self.assoc:
            victim = min(ways, key=ways.get)  # type: ignore[arg-type]
            del ways[victim]
        ways[tag] = self.tick
        return False


class L2Nuca:
    """The shared lower-level cache hierarchy simulated by the manager."""

    def __init__(
        self,
        config: L2Config | None = None,
        num_cores: int = 8,
        counters: ViolationCounters | None = None,
    ) -> None:
        self.config = config or L2Config()
        cfg = self.config
        if cfg.sets_per_bank < 1:
            raise ValueError("L2 too small for its banking/associativity")
        self.num_cores = num_cores
        self._block_shift = log2i(cfg.block_bytes)
        self.banks = [_BankArray(cfg.sets_per_bank, cfg.assoc) for _ in range(cfg.num_banks)]
        self.bank_free_at = [0] * cfg.num_banks
        self._bank_last_ts = [0] * cfg.num_banks
        self.counters = counters if counters is not None else ViolationCounters()
        self.stats = L2Stats()
        self.bank_accesses = [0] * cfg.num_banks

    # ------------------------------------------------------------- geometry
    def bank_of(self, addr: int) -> int:
        return (addr >> self._block_shift) % self.config.num_banks

    def _set_tag(self, addr: int) -> tuple[int, int]:
        block = addr >> self._block_shift
        bank_local = block // self.config.num_banks
        return bank_local % self.config.sets_per_bank, bank_local // self.config.sets_per_bank

    def distance(self, core: int, bank: int) -> int:
        """Hop distance on a linear placement of cores over banks."""
        scale = max(1, self.config.num_banks) / max(1, self.num_cores)
        position = int(core * scale)
        return abs(position - bank)

    def unloaded_latency(self, core: int = 0, bank: int | None = None) -> int:
        """Latency of an uncontended hit (used to derive the critical latency)."""
        if bank is None:
            bank = int(core * max(1, self.config.num_banks) / max(1, self.num_cores))
        return self.config.bank_latency + self.config.hop_cycles * self.distance(core, bank)

    # --------------------------------------------------------------- access
    def access(self, addr: int, core: int, ts: int, *, is_writeback: bool = False) -> tuple[int, bool]:
        """Access the L2 at simulated time *ts* on behalf of *core*.

        Returns ``(data_ready_ts, hit)``; for writebacks the result time is
        when the bank absorbed the data.
        """
        cfg = self.config
        bank = self.bank_of(addr)
        if ts < self._bank_last_ts[bank]:
            self.counters.record_simulation_state(f"l2bank[{bank}]")
        start = max(ts, self.bank_free_at[bank])
        self.bank_free_at[bank] = start + cfg.bank_occupancy
        self.stats.bank_conflict_cycles += start - ts
        if ts > self._bank_last_ts[bank]:
            self._bank_last_ts[bank] = ts
        set_index, tag = self._set_tag(addr)
        hit = self.banks[bank].touch(set_index, tag)
        self.stats.accesses += 1
        self.bank_accesses[bank] += 1
        if is_writeback:
            self.stats.writebacks_in += 1
            return start + cfg.bank_occupancy, hit
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        hops = cfg.hop_cycles * self.distance(core, bank)
        self.stats.hop_cycles += hops
        latency = cfg.bank_latency + hops
        return start + latency, hit
