"""Directory-based MESI coherence (manager-owned).

Each block has a directory entry with presence bits and a dirty bit exactly
as in the paper's Figure 6.  The directory is consulted in manager-processing
order; under slack, requests can reach it out of simulated-time order, which
makes entry state transitions diverge from the cycle-by-cycle order — the
*simulated-system-state violation* of §3.2.2.  Those reorderings are counted
per block through :class:`~repro.violations.detect.ViolationCounters`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.violations.detect import ViolationCounters

__all__ = ["Directory", "DirState", "DirectoryOutcome", "ReqKind"]


class DirState(enum.Enum):
    INVALID = "I"
    SHARED = "S"
    EXCLUSIVE = "E"  # single owner, possibly dirty (dirty bit set)


class ReqKind(enum.Enum):
    """Coherence request types arriving at the directory."""

    GETS = "gets"        # read miss
    GETX = "getx"        # write miss
    UPGRADE = "upgrade"  # write hit on a SHARED copy
    PUTM = "putm"        # dirty eviction writeback


@dataclass
class DirectoryOutcome:
    """Directory decision for one request."""

    #: MESI state granted to the requester's L1 ("M"/"E"/"S"), or None for PUTM.
    grant: str | None
    #: Cores whose L1 copy must be invalidated.
    invalidate: list[int] = field(default_factory=list)
    #: Core whose M/E copy must be downgraded to S (remote read).
    downgrade: int | None = None
    #: Data must be forwarded from another core's cache (cache-to-cache).
    cache_to_cache: bool = False
    #: The upgrade raced with an invalidation and became a full GETX.
    upgrade_promoted: bool = False


class _Entry:
    __slots__ = ("state", "sharers", "owner", "last_ts")

    def __init__(self) -> None:
        self.state = DirState.INVALID
        self.sharers: set[int] = set()
        self.owner: int | None = None
        self.last_ts = 0


class Directory:
    """Full-map directory over cache blocks."""

    def __init__(self, num_cores: int, counters: ViolationCounters | None = None) -> None:
        self.num_cores = num_cores
        # Default no-op sink: standalone directories count into a private
        # ViolationCounters instead of guarding every record with None checks.
        self.counters = counters if counters is not None else ViolationCounters()
        self._entries: dict[int, _Entry] = {}
        self.requests = 0
        self.invalidations_sent = 0
        self.downgrades_sent = 0
        self.cache_to_cache_transfers = 0

    def _entry(self, addr: int) -> _Entry:
        entry = self._entries.get(addr)
        if entry is None:
            entry = _Entry()
            self._entries[addr] = entry
        return entry

    # ------------------------------------------------------------- requests
    def handle(self, kind: ReqKind, addr: int, core: int, ts: int) -> DirectoryOutcome:
        """Apply one coherence request; returns the protocol actions."""
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} out of range")
        entry = self._entry(addr)
        self.requests += 1
        if ts < entry.last_ts:
            self.counters.record_system_state("directory")
        if ts > entry.last_ts:
            entry.last_ts = ts
        if kind is ReqKind.GETS:
            return self._gets(entry, core)
        if kind is ReqKind.GETX:
            return self._getx(entry, core)
        if kind is ReqKind.UPGRADE:
            return self._upgrade(entry, core)
        if kind is ReqKind.PUTM:
            return self._putm(entry, core)
        raise AssertionError(kind)  # pragma: no cover

    def _gets(self, entry: _Entry, core: int) -> DirectoryOutcome:
        if entry.state is DirState.INVALID:
            entry.state = DirState.EXCLUSIVE
            entry.owner = core
            entry.sharers = {core}
            return DirectoryOutcome(grant="E")
        if entry.state is DirState.EXCLUSIVE:
            owner = entry.owner
            assert owner is not None
            if owner == core:
                return DirectoryOutcome(grant="E")
            entry.state = DirState.SHARED
            entry.sharers = {owner, core}
            entry.owner = None
            self.downgrades_sent += 1
            self.cache_to_cache_transfers += 1
            return DirectoryOutcome(grant="S", downgrade=owner, cache_to_cache=True)
        entry.sharers.add(core)
        return DirectoryOutcome(grant="S")

    def _getx(self, entry: _Entry, core: int) -> DirectoryOutcome:
        if entry.state is DirState.INVALID:
            entry.state = DirState.EXCLUSIVE
            entry.owner = core
            entry.sharers = {core}
            return DirectoryOutcome(grant="M")
        if entry.state is DirState.EXCLUSIVE:
            owner = entry.owner
            assert owner is not None
            entry.owner = core
            entry.sharers = {core}
            if owner == core:
                return DirectoryOutcome(grant="M")
            self.invalidations_sent += 1
            self.cache_to_cache_transfers += 1
            return DirectoryOutcome(grant="M", invalidate=[owner], cache_to_cache=True)
        victims = sorted(entry.sharers - {core})
        entry.state = DirState.EXCLUSIVE
        entry.owner = core
        entry.sharers = {core}
        self.invalidations_sent += len(victims)
        return DirectoryOutcome(grant="M", invalidate=victims)

    def _upgrade(self, entry: _Entry, core: int) -> DirectoryOutcome:
        if entry.state is DirState.SHARED and core in entry.sharers:
            victims = sorted(entry.sharers - {core})
            entry.state = DirState.EXCLUSIVE
            entry.owner = core
            entry.sharers = {core}
            self.invalidations_sent += len(victims)
            return DirectoryOutcome(grant="M", invalidate=victims)
        # Raced with a conflicting GETX: our copy is gone, fall back to GETX.
        outcome = self._getx(entry, core)
        outcome.upgrade_promoted = True
        return outcome

    def _putm(self, entry: _Entry, core: int) -> DirectoryOutcome:
        if entry.state is DirState.EXCLUSIVE and entry.owner == core:
            entry.state = DirState.INVALID
            entry.owner = None
            entry.sharers = set()
        # Otherwise: stale writeback from a core that already lost the block.
        return DirectoryOutcome(grant=None)

    # ------------------------------------------------------------ inspection
    def tracked_blocks(self) -> int:
        """Number of blocks with a directory entry (a domain shard's region
        footprint in the per-domain stats subtree)."""
        return len(self._entries)

    def presence_bits(self, addr: int) -> tuple[list[int], int]:
        """(presence bit vector, dirty bit) — the paper's Figure 6 view."""
        entry = self._entries.get(addr)
        bits = [0] * self.num_cores
        if entry is None:
            return bits, 0
        if entry.state is DirState.EXCLUSIVE and entry.owner is not None:
            bits[entry.owner] = 1
            return bits, 1
        for core in entry.sharers:
            bits[core] = 1
        return bits, 0

    def state_of(self, addr: int) -> DirState:
        entry = self._entries.get(addr)
        return entry.state if entry is not None else DirState.INVALID

    def sharers_of(self, addr: int) -> set[int]:
        entry = self._entries.get(addr)
        return set(entry.sharers) if entry is not None else set()
