"""Memory-side sharding into independently-clocked scheduling domains.

The monolithic :class:`~repro.mem.memsys.MemorySystem` serializes the whole
L2/directory/interconnect/DRAM side behind one manager — the scaling ceiling
the benchmarks show for barrier schemes.  This module partitions that side by
address range into N shards (DESIGN.md §10): contiguous L2 bank ranges, the
directory region covering the blocks that map to those banks, and one DRAM
channel per shard.  Every request is owned by exactly one shard
(``domain_of(addr)``), so shards never share mutable timing state and can be
serviced concurrently between window-edge exchanges.

Each shard is a *full-geometry* MemorySystem: it keeps the complete bank
array, set indexing and NUCA distance map of the monolithic system but only
ever sees the addresses it owns.  For any fixed address stream the shard's
timing/state trajectory is therefore identical to the monolithic system's
trajectory restricted to that stream — which is what makes the 1-domain
sharded configuration byte-identical to the monolithic manager, and lets
per-domain behaviour be compared against the monolith bank-by-bank.

Shards carry private :class:`ViolationCounters` (summed at report time), so
domain workers never contend on shared counter words and the totals are
deterministic regardless of servicing interleave.
"""

from __future__ import annotations

from repro.mem.l2nuca import banks_of_domain, domain_of_bank
from repro.mem.memsys import MemorySystem, MemSysConfig
from repro.violations.detect import ViolationCounters

__all__ = ["ShardedMemorySystem"]


class ShardedMemorySystem:
    """N address-range shards of the shared hierarchy, one per domain."""

    def __init__(
        self,
        config: MemSysConfig | None = None,
        num_cores: int = 8,
        num_domains: int = 1,
    ) -> None:
        self.config = config or MemSysConfig()
        num_banks = self.config.l2.num_banks
        if not 1 <= num_domains <= num_banks:
            raise ValueError(
                f"mem_domains must be in [1, {num_banks}] "
                f"(one L2 bank per domain minimum; got {num_domains})"
            )
        self.num_cores = num_cores
        self.num_domains = num_domains
        # The "d{k}:" resource prefix namespaces violations.by_resource per
        # domain — but only when actually sharded: at N=1 the keys must stay
        # identical to the monolithic system's so digests match byte-for-byte.
        self.shards = [
            MemorySystem(
                self.config,
                num_cores,
                counters=ViolationCounters(),
                resource_prefix=f"d{k}:" if num_domains > 1 else "",
                dram_channel=k,
            )
            for k in range(num_domains)
        ]
        self._num_banks = num_banks
        self._l2 = self.shards[0].l2  # geometry reference for bank_of

    # ------------------------------------------------------------- partition
    def domain_of(self, addr: int) -> int:
        """Owning domain of *addr* (via its L2 bank; contiguous bank ranges)."""
        return domain_of_bank(self._l2.bank_of(addr), self._num_banks, self.num_domains)

    def banks_of(self, domain: int) -> range:
        return banks_of_domain(domain, self._num_banks, self.num_domains)

    # ---------------------------------------------------------------- timing
    def critical_latency(self) -> int:
        """Same critical latency as the monolith (shards share its geometry);
        doubles as the cross-domain exchange quantum (DESIGN.md §10)."""
        return self.shards[0].critical_latency()

    # ------------------------------------------------------------ aggregation
    @property
    def requests_serviced(self) -> int:
        return sum(s.requests_serviced for s in self.shards)

    def bank_accesses(self) -> list[int]:
        """Element-wise sum of per-bank access counts (each shard only ever
        touches its own bank range, so this is a disjoint merge)."""
        total = [0] * self._num_banks
        for shard in self.shards:
            for bank, count in enumerate(shard.l2.bank_accesses):
                total[bank] += count
        return total

    def sum_stat(self, path: str) -> int:
        """Sum one ``component.field`` stat over shards, e.g. ``bus.transfers``
        or ``directory.invalidations_sent``."""
        component, field = path.split(".")
        total = 0
        for shard in self.shards:
            obj = getattr(shard, component)
            obj = getattr(obj, "stats", obj) if component != "directory" else obj
            total += getattr(obj, field)
        return total

    def merged_counters(self, engine: ViolationCounters) -> ViolationCounters:
        """Fold the shards' private violation counters into a report-time
        total alongside the engine's own (workload-state, cross-domain).

        by_resource merges engine-first then shards in domain order; at N=1
        that reproduces the monolithic dict exactly (the engine records no
        memory-side resources itself, and shard 0 records them in the same
        temporal order the single counters object would have).
        """
        merged = ViolationCounters(
            simulation_state=engine.simulation_state,
            system_state=engine.system_state,
            workload_state=engine.workload_state,
            fastforwards=engine.fastforwards,
            fastforward_cycles=engine.fastforward_cycles,
            cross_domain=engine.cross_domain,
            by_resource=dict(engine.by_resource),
        )
        for shard in self.shards:
            c = shard.counters
            merged.simulation_state += c.simulation_state
            merged.system_state += c.system_state
            merged.workload_state += c.workload_state
            merged.fastforwards += c.fastforwards
            merged.fastforward_cycles += c.fastforward_cycles
            merged.cross_domain += c.cross_domain
            for resource, count in c.by_resource.items():
                merged.by_resource[resource] = merged.by_resource.get(resource, 0) + count
        return merged
