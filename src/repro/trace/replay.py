"""Replay side: feed recorded commit streams back through the live engine.

:class:`ReplayCore` satisfies the CoreModel protocol (step / wait_state /
skip / block_step / deliver_response / …) by consuming a recorded
committed-op stream instead of fetching instructions.  Everything outside
the fetch/execute stage — L1 state machines, coherence traffic, slack
windows, violation tracking, synchronization, scheduling domains — runs
*live* in the surrounding engine, exactly as in a direct run.  The bar is
observational indistinguishability at the CoreThread seam: same per-turn
``BatchStats``, same OutQ events at the same local times, same wakes.
That is what makes replay stats digests byte-identical to direct runs
(tests/trace/test_roundtrip.py pins every scheme family).

:class:`ReplaySystem` re-enacts the system-emulation side from recorded,
resolved arguments: a real :class:`SyncEmulation` (contention and FIFO
hand-off depend only on who-called-when, which replay reproduces), the
workload thread table (spawn targets and tids are recorded, so the table
evolves identically), and the output stream (printed values are recorded
verbatim).  It installs as ``engine.system``, so the sync stats group,
``merged_output`` and the static-scheduling fallback all behave exactly
as they do for direct program runs.
"""

from __future__ import annotations

from typing import Callable

from repro.core.events import EvKind, Event
from repro.cpu.interfaces import WAIT_EXTERNAL, CorePhase
from repro.cpu.l1cache import MESI, AccessResult, L1Cache, L1Config
from repro.sysapi.sync import SyncEmulation
from repro.sysapi.syscalls import SYSCALL_COST_CYCLES, Sys
from repro.sysapi.system import SysAction, SysResult, SystemEmulation, _Thread
from repro.trace.format import (
    ACC_AMO, ACC_LOAD,
    OP_EXIT, OP_HALT, OP_JOIN, OP_MEM, OP_MULTI, OP_PRINT, OP_RUN,
    OP_SPAWN, OP_SYNC, OP_SYS, OP_THALT, OP_THINK, OP_TLOAD, OP_TSTORE,
    Trace, TraceError,
)
from repro.violations.detect import WordOrderTracker

__all__ = ["ReplayCore", "ReplaySystem", "rebuild_trace_cores"]

_GRANT_TO_MESI = {"M": MESI.MODIFIED, "E": MESI.EXCLUSIVE, "S": MESI.SHARED}


class ReplaySystem:
    """System-emulation re-enactment over recorded, resolved syscalls."""

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores
        self.sync = SyncEmulation()
        self.output: list[tuple[int, object]] = []
        self.threads: dict[int, _Thread] = {0: _Thread(tid=0, core=0)}
        self._core_to_tid: dict[int, int] = {0: 0}
        #: engine hook: activate_context(core, pc, arg, ts)
        self.activate_context: Callable[[int, int, int, int], None] | None = None
        self.spawned = 0

    # Inspection API shared with SystemEmulation (engine/result callers).
    def live_threads(self) -> int:
        return sum(1 for t in self.threads.values() if t.state == "running")

    def output_of(self, core: int) -> list:
        return [v for c, v in self.output if c == core]

    def merged_output(self) -> list:
        return [v for _, v in self.output]

    # ------------------------------------------------------------- re-enact
    def spawn(self, parent_core: int, child_core: int, tid: int, ts: int) -> SysResult:
        # The capture run's core/tid assignment is replayed verbatim (it is
        # deterministic in the direct run too: spawn claims the lowest idle
        # core in call order), so recorded join targets resolve exactly.
        if child_core in self._core_to_tid or tid in self.threads:
            raise TraceError(
                f"replay spawn of thread {tid} on busy core {child_core} — "
                f"the trace does not match this execution"
            )
        self.threads[tid] = _Thread(tid=tid, core=child_core)
        self._core_to_tid[child_core] = tid
        self.spawned += 1
        if self.activate_context is None:
            raise RuntimeError("ReplaySystem.activate_context is not bound")
        self.activate_context(child_core, 0, 0, ts)
        return SysResult(SysAction.PROCEED, cost=SYSCALL_COST_CYCLES * 4)

    def join(self, core: int, tid: int) -> SysResult:
        thread = self.threads.get(tid)
        if thread is None:
            raise TraceError(f"replay join on unrecorded thread {tid}")
        if thread.state == "exited":
            return SysResult(SysAction.PROCEED)
        thread.joiners.append(core)
        return SysResult(SysAction.BLOCK)

    def exit(self, core: int, ts: int) -> SysResult:
        tid = self._core_to_tid.get(core)
        if tid is None:
            raise TraceError(f"replay exit from core {core} with no workload thread")
        thread = self.threads[tid]
        thread.state = "exited"
        thread.exit_ts = ts
        wakes = [(joiner, ts + 2) for joiner in thread.joiners]
        thread.joiners = []
        del self._core_to_tid[core]
        return SysResult(SysAction.EXIT, wakes=wakes)

    def sync_call(self, num: int, addr: int, aux: int, core: int, ts: int) -> SysResult:
        sync = self.sync
        sysno = Sys(num)
        if sysno is Sys.LOCK_INIT:
            result = sync.lock_init(addr)
        elif sysno is Sys.LOCK_ACQ:
            result = sync.lock_acquire(addr, core, ts)
        elif sysno is Sys.LOCK_REL:
            result = sync.lock_release(addr, core, ts)
        elif sysno is Sys.BARRIER_INIT:
            result = sync.barrier_init(addr, aux)
        elif sysno is Sys.BARRIER_WAIT:
            result = sync.barrier_wait(addr, core, ts)
        elif sysno is Sys.SEMA_INIT:
            result = sync.sema_init(addr, aux)
        elif sysno is Sys.SEMA_WAIT:
            result = sync.sema_wait(addr, core, ts)
        elif sysno is Sys.SEMA_SIGNAL:
            result = sync.sema_signal(addr, core, ts)
        else:
            raise TraceError(f"unknown recorded sync op {num}")
        return SystemEmulation._from_sync(result)


class ReplayCore:
    """CoreModel over a recorded committed-op stream.

    Every timing decision mirrors :class:`repro.cpu.inorder.InOrderCore`
    case for case (the docstring there is the specification): latency-1
    commits, multi-cycle busy drains, L1 hit/miss issue and completion
    timing, blocking-syscall resume, spin accounting.  The only thing
    missing is architectural state — registers, memory image, predecode —
    which is exactly the cost replay avoids.
    """

    def __init__(
        self,
        core_id: int,
        ops: list[tuple],
        l1d: L1Cache,
        emit: Callable[[Event], None],
        system: ReplaySystem,
        *,
        word_tracker: WordOrderTracker | None = None,
        fastforward: bool = False,
    ) -> None:
        self.core_id = core_id
        self.l1d = l1d
        self.emit = emit
        self.system = system
        self.word_tracker = word_tracker
        self.fastforward = fastforward

        self.phase = CorePhase.IDLE
        self.committed = 0
        self.stall_cycles = 0
        self.pending_wakes: list[tuple[int, int]] = []

        self._ops = ops
        self._ip = 0
        self._run_left = 0
        self._busy_until = -1
        self._pending: tuple[int, int, int] | None = None  # (block, acc, addr)
        self._resp: Event | None = None
        self._pending_inval = False
        self._pending_down = False
        self._blocked = False
        self._release_ts: int | None = None

    # ------------------------------------------------------------ lifecycle
    def activate(self, pc: int, arg: int, ts: int) -> None:
        if self.phase not in (CorePhase.IDLE, CorePhase.HALTED):
            raise RuntimeError(f"replay core {self.core_id} activated while {self.phase}")
        if self._pending is not None or self._blocked:
            raise RuntimeError(f"replay core {self.core_id} reactivated with in-flight state")
        self._busy_until = -1
        self.phase = CorePhase.ACTIVE

    # ------------------------------------------------------------- delivery
    def deliver_response(self, event: Event) -> None:
        if self._pending is None:
            raise RuntimeError(f"replay core {self.core_id}: response {event} with nothing pending")
        self._resp = event

    def apply_invalidation(self, addr: int) -> None:
        if self._pending is not None and self.l1d.block_addr(addr) == self._pending[0]:
            self._pending_inval = True
        self.l1d.invalidate(addr)

    def apply_downgrade(self, addr: int) -> None:
        if self._pending is not None and self.l1d.block_addr(addr) == self._pending[0]:
            self._pending_down = True
        self.l1d.downgrade(addr)

    def release(self, release_ts: int) -> None:
        self._release_ts = release_ts

    @property
    def spinning(self) -> bool:
        return self._blocked

    def stall_hint(self, now: int) -> int | None:
        if self._blocked and self._release_ts is not None and self._release_ts > now:
            return self._release_ts
        if self._pending is None and now <= self._busy_until:
            return self._busy_until + 1
        return None

    # ---------------------------------------------------- batched stepping
    def wait_state(self, now: int) -> tuple[int, bool] | None:
        if self._blocked:
            release = self._release_ts
            if release is None:
                return WAIT_EXTERNAL, True
            if release > now:
                return release, True
            return None
        if self._pending is not None:
            if self._resp is not None:
                return None
            return WAIT_EXTERNAL, False
        if now <= self._busy_until:
            return self._busy_until + 1, False
        return None

    def skip(self, n: int) -> None:
        if self._blocked or self._pending is not None:
            self.stall_cycles += n

    def block_step(self, now: int, limit: int) -> int:
        """Consume up to *limit* cycles of a latency-1 run in one call.

        Observationally equivalent to the per-cycle path (each run cycle
        commits exactly one instruction with a one-cycle busy advance), and
        to InOrderCore's compiled-superblock consumption — the direct core
        may split the same run across block/single boundaries differently,
        but per-turn BatchStats and event moments are identical because
        both are capped by the same (budget, window edge, next-InQ) limit.
        """
        if self._pending is not None or self._blocked:
            return 0
        left = self._run_left
        if left == 0:
            ops = self._ops
            ip = self._ip
            if ip < len(ops) and ops[ip][0] == OP_RUN:
                left = ops[ip][1]
                self._ip = ip + 1
            else:
                return 0
        n = left if left <= limit else limit
        if n <= 0:
            self._run_left = left
            return 0
        self._run_left = left - n
        self._busy_until = now + n - 1
        self.committed += n
        return n

    # ----------------------------------------------------------------- step
    def step(self, now: int) -> tuple[int, bool]:
        if self.phase in (CorePhase.IDLE, CorePhase.HALTED):
            return 0, False
        if self._blocked:
            if self._release_ts is not None and now >= self._release_ts:
                # Finish the blocking syscall: resume costs this cycle.
                self._blocked = False
                self._release_ts = None
                self._busy_until = now
                self.phase = CorePhase.ACTIVE
                self.committed += 1
                return 1, True
            self.stall_cycles += 1
            return 0, True
        if self._pending is not None:
            if self._resp is not None:
                return self._complete_mem(now)
            self.stall_cycles += 1
            return 0, False
        if now <= self._busy_until:
            return 0, False
        return self._exec_next(now)

    def _exec_next(self, now: int) -> tuple[int, bool]:
        left = self._run_left
        if left:
            self._run_left = left - 1
            self._busy_until = now
            self.committed += 1
            return 1, True
        ops = self._ops
        ip = self._ip
        if ip >= len(ops):
            raise TraceError(
                f"replay core {self.core_id}: op stream exhausted without halt "
                f"(truncated or mismatched trace)"
            )
        op = ops[ip]
        self._ip = ip + 1
        code = op[0]
        if code == OP_RUN:
            self._run_left = op[1] - 1
            self._busy_until = now
            self.committed += 1
            return 1, True
        if code == OP_MEM:
            return self._exec_mem(op[1], op[2], op[3], now)
        if code == OP_MULTI:
            self._busy_until = now + op[1] - 1
            self.committed += 1
            return 1, True
        if code == OP_SYNC:
            return self._apply_sys(
                self.system.sync_call(op[1], op[2], op[3], self.core_id, now), now
            )
        if code == OP_PRINT:
            kind, value = op[1], op[2]
            self.system.output.append(
                (self.core_id, chr(value & 0x10FFFF) if kind == 2 else value)
            )
            self._busy_until = now + SYSCALL_COST_CYCLES - 1
            self.committed += 1
            return 1, True
        if code == OP_SYS:
            self._busy_until = now + SYSCALL_COST_CYCLES - 1
            self.committed += 1
            return 1, True
        if code == OP_SPAWN:
            return self._apply_sys(
                self.system.spawn(self.core_id, op[1], op[2], now), now
            )
        if code == OP_JOIN:
            return self._apply_sys(self.system.join(self.core_id, op[1]), now)
        if code == OP_EXIT:
            result = self.system.exit(self.core_id, now)
            if result.wakes:
                self.pending_wakes.extend(result.wakes)
            self.phase = CorePhase.HALTED
            self.committed += 1
            return 1, True
        if code == OP_HALT:
            self.phase = CorePhase.HALTED
            self.committed += 1
            return 1, True
        raise TraceError(
            f"replay core {self.core_id}: op {code} is not a program-flavor op"
        )

    def _apply_sys(self, result: SysResult, now: int) -> tuple[int, bool]:
        if result.wakes:
            self.pending_wakes.extend(result.wakes)
        if result.action is SysAction.BLOCK:
            # _release_ts deliberately not reset (mirrors InOrderCore: the
            # wake may already have arrived in the threaded engine).
            self._blocked = True
            self.phase = CorePhase.STALLED
            return 0, True
        self._busy_until = now + result.cost - 1
        self.committed += 1
        return 1, True

    # ------------------------------------------------------------- memory ops
    def _exec_mem(self, acc: int, latency: int, addr: int, now: int) -> tuple[int, bool]:
        is_write = acc != ACC_LOAD
        result = self.l1d.access(addr, is_write)
        if result is AccessResult.HIT:
            self._observe(acc, addr, now)
            hit = self.l1d.config.hit_latency
            self._busy_until = now + (hit if hit > latency else latency) - 1
            self.committed += 1
            return 1, True
        block = self.l1d.block_addr(addr)
        if result is AccessResult.UPGRADE:
            kind = EvKind.UPGRADE
        else:
            kind = EvKind.GETX if is_write else EvKind.GETS
        self.emit(Event(kind, block, self.core_id, now))
        self._pending = (block, acc, addr)
        self.phase = CorePhase.STALLED
        return 0, True

    def _complete_mem(self, now: int) -> tuple[int, bool]:
        pending = self._pending
        resp = self._resp
        assert pending is not None and resp is not None
        self._pending = None
        self._resp = None
        grant = _GRANT_TO_MESI.get(resp.grant or "")
        if grant is None:
            raise RuntimeError(f"replay core {self.core_id}: response without grant: {resp}")
        block, acc, addr = pending
        victim = self.l1d.fill(block, grant)
        if victim is not None:
            self.emit(Event(EvKind.PUTM, victim, self.core_id, now))
        if self._pending_inval:
            self.l1d.invalidate(block)
        elif self._pending_down:
            self.l1d.downgrade(block)
        self._pending_inval = self._pending_down = False
        self.phase = CorePhase.ACTIVE
        self._observe(acc, addr, now)
        self._busy_until = now + self.l1d.config.hit_latency - 1
        self.committed += 1
        return 1, True

    def _observe(self, acc: int, addr: int, now: int) -> None:
        """Violation-tracker touch mirroring ``_apply_mem_functional``.

        Same call order (AMO = load-then-store observation) and the same
        fastforward busy write — which, exactly like the direct core, the
        caller immediately overwrites with the hit/latency formula.  The
        observable effects are the tracker's counters and fastforward
        bookkeeping, which must match the direct run touch for touch.
        """
        tracker = self.word_tracker
        if tracker is None:
            return
        if acc == ACC_AMO:
            tracker.observe_load(addr, self.core_id, now)
            ff = tracker.observe_store(addr, self.core_id, now)
            if ff and self.fastforward:
                self._busy_until = now + ff
        elif acc == ACC_LOAD:
            tracker.observe_load(addr, self.core_id, now)
        else:
            ff = tracker.observe_store(addr, self.core_id, now)
            if ff and self.fastforward:
                self._busy_until = now + ff


def rebuild_trace_cores(trace: Trace) -> list:
    """Trace flavor: reconstruct literal TraceCores from the serialized
    scripts, so static scheduling and the process backend work unchanged."""
    from repro.workloads.synthetic import TraceCore

    kinds = {OP_THINK: "think", OP_TLOAD: "load", OP_TSTORE: "store", OP_THALT: "halt"}
    cores = []
    l1_configs = trace.header.get("l1_per_core") or []
    for core_id, ops in enumerate(trace.core_ops):
        script: list[tuple] = []
        for op in ops:
            kind = kinds.get(op[0])
            if kind is None:
                raise TraceError(
                    f"trace-flavor file holds a program-flavor op ({op[0]}) — corrupt header?"
                )
            script.append((kind,) if len(op) == 1 else (kind, op[1]))
        l1 = None
        if core_id < len(l1_configs):
            l1 = L1Cache(L1Config(**l1_configs[core_id]))
        cores.append(TraceCore(core_id, script, l1))
    return cores
