"""Capture side of the trace subsystem: commit-stream recorders.

One :class:`CoreRecorder` per core hangs off the timing core's optional
``tracer`` hook (``None`` by default — direct runs pay one attribute
check per commit site and nothing else).  The recorder collects the
*pacing-invariant* committed-op stream: latency-1 register commits are
coalesced into ``OP_RUN`` segments, memory ops record their effective
address and unit latency at issue (hit/miss is re-decided at replay),
and syscalls record their *resolved* arguments so no architectural state
is needed to re-enact them (DESIGN.md §11).

What makes the stream scheme-invariant: the simulation seed only jitters
modeled host costs, and scheme choice only re-times the same committed
instructions — neither changes which instructions commit, in what
per-core order, with which addresses.  (Double-capture equality under
different schemes/seeds is pinned by tests/trace/test_roundtrip.py.)
The one caveat is control flow derived from emulation results that
depend on cross-core interleaving — ``clock()`` values or concurrent
``sbrk`` returns; no registered workload does either.
"""

from __future__ import annotations

from repro.sysapi.syscalls import Sys
from repro.trace.format import (
    ACC_AMO, ACC_LOAD, ACC_STORE,
    OP_EXIT, OP_HALT, OP_JOIN, OP_MEM, OP_MULTI, OP_PRINT, OP_RUN,
    OP_SPAWN, OP_SYNC, OP_SYS, OP_THALT, OP_THINK, OP_TLOAD, OP_TSTORE,
)

__all__ = ["CoreRecorder", "TraceRecorder", "record_syscall", "serialize_trace_cores"]

_PLAIN_SYS = frozenset((Sys.SBRK, Sys.CLOCK, Sys.THREAD_ID, Sys.NUM_THREADS))
_SYNC_SYS = frozenset((
    Sys.LOCK_INIT, Sys.LOCK_ACQ, Sys.LOCK_REL,
    Sys.BARRIER_INIT, Sys.BARRIER_WAIT,
    Sys.SEMA_INIT, Sys.SEMA_WAIT, Sys.SEMA_SIGNAL,
))


class CoreRecorder:
    """Accumulates one core's committed-op stream in commit order."""

    __slots__ = ("ops", "_run")

    def __init__(self) -> None:
        self.ops: list[tuple] = []
        self._run = 0

    # Latency-1 register commits coalesce; anything else flushes the run.
    def run(self, latency: int) -> None:
        if latency == 1:
            self._run += 1
        else:
            if self._run:
                self.ops.append((OP_RUN, self._run))
                self._run = 0
            self.ops.append((OP_MULTI, latency))

    def run_n(self, n: int) -> None:
        """A compiled timing superblock: n latency-1 commits at once."""
        self._run += n

    def _flush(self) -> None:
        if self._run:
            self.ops.append((OP_RUN, self._run))
            self._run = 0

    def mem(self, acc: int, latency: int, addr: int) -> None:
        self._flush()
        self.ops.append((OP_MEM, acc, latency, addr))

    def emit(self, op: tuple) -> None:
        self._flush()
        self.ops.append(op)

    def halt(self) -> None:
        self._flush()
        self.ops.append((OP_HALT,))

    def finish(self) -> list[tuple]:
        self._flush()
        return self.ops


class TraceRecorder:
    """Per-run recorder set: one :class:`CoreRecorder` per target core."""

    def __init__(self, num_cores: int) -> None:
        self.cores = [CoreRecorder() for _ in range(num_cores)]

    def finish(self) -> list[list[tuple]]:
        return [rec.finish() for rec in self.cores]


def mem_acc(info) -> int:
    """Access class of a memory instruction (AMOs are read-modify-write)."""
    if info.is_amo:
        return ACC_AMO
    return ACC_STORE if info.is_store else ACC_LOAD


def record_syscall(rec: CoreRecorder, num: int, a0: int, a1: int, fa0: float,
                   system, state) -> None:
    """Record one resolved syscall after :class:`SystemEmulation` handled it.

    *a0/a1/fa0* are the pre-call argument registers; *state* is post-call,
    which is how spawn learns the assigned tid (and through the thread
    table, the claimed core).  Recording resolved values — the printed
    value, the spawn target, the sync object address — is what lets replay
    run with no registers and no memory image at all.
    """
    sys = Sys(num)
    if sys is Sys.EXIT:
        rec.emit((OP_EXIT,))
    elif sys is Sys.PRINT_INT:
        rec.emit((OP_PRINT, 0, a0))
    elif sys is Sys.PRINT_FLOAT:
        rec.emit((OP_PRINT, 1, fa0))
    elif sys is Sys.PRINT_CHAR:
        rec.emit((OP_PRINT, 2, a0 & 0x10FFFF))
    elif sys in _PLAIN_SYS:
        rec.emit((OP_SYS, int(num)))
    elif sys is Sys.THREAD_SPAWN:
        tid = state.x[10]  # post-call a0 = the new thread id
        rec.emit((OP_SPAWN, system.threads[tid].core, tid))
    elif sys is Sys.THREAD_JOIN:
        rec.emit((OP_JOIN, a0))
    elif sys in _SYNC_SYS:
        rec.emit((OP_SYNC, int(num), a0, a1))
    else:  # pragma: no cover - SystemEmulation already rejected it
        raise ValueError(f"unrecordable syscall {num}")


def serialize_trace_cores(models: list) -> tuple[list[list[tuple]], list[dict]]:
    """Trace flavor: a TraceCore's script *is* its committed-op stream."""
    streams: list[list[tuple]] = []
    l1_configs: list[dict] = []
    for model in models:
        ops: list[tuple] = []
        for op in model.script:
            kind = op[0]
            if kind == "think":
                ops.append((OP_THINK, int(op[1])))
            elif kind == "load":
                ops.append((OP_TLOAD, int(op[1])))
            elif kind == "store":
                ops.append((OP_TSTORE, int(op[1])))
            elif kind == "halt":
                ops.append((OP_THALT,))
            else:  # pragma: no cover - TraceCore.step would reject it too
                raise ValueError(f"unknown trace op {op!r}")
        streams.append(ops)
        cfg = model.l1.config
        l1_configs.append({
            "size_bytes": cfg.size_bytes, "block_bytes": cfg.block_bytes,
            "assoc": cfg.assoc, "hit_latency": cfg.hit_latency,
        })
    return streams, l1_configs
