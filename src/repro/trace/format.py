"""On-disk trace format: compact, struct-packed, digest-sealed.

A trace file is the scheme-invariant record of one workload execution at
the timing-core → memory seam: per core, the committed-operation stream
(compute runs, memory accesses with their effective addresses, resolved
syscalls) in commit order.  Nothing scheme- or pacing-dependent is stored
— hits/misses, coherence traffic, synchronization outcomes and violations
are re-enacted live at replay time under whatever scheme/memory config the
replay run configures (DESIGN.md §11).

Layout::

    magic "SLTR" | u16 version | u32 header_len | header JSON (utf-8)
    per core:  u32 core_id | u64 op_count | packed ops
    footer:    32-byte sha256 over every preceding byte

Each op packs as ``u8 opcode | u8 argc | argc × 8-byte args`` — args are
little-endian signed 64-bit integers except ``OP_PRINT``'s float payload,
which stores its IEEE-754 bits.  The footer seals the file: a flipped bit
anywhere is a hard :class:`TraceError`, never silent garbage.

Two flavors share the container:

* ``"program"`` — ISA workloads.  Captured from :class:`InOrderCore`
  commit hooks; replayed by :class:`repro.trace.replay.ReplayCore`.
* ``"trace"`` — scripted :class:`TraceCore` workloads.  The scripts are
  the trace; replay rebuilds literal TraceCores, so the static scheduler
  and the process backend keep working unchanged.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field

from repro._util import atomic_write_bytes
from repro.isa.program import Program

__all__ = [
    "TraceError", "Trace", "TRACE_VERSION",
    "OP_RUN", "OP_MULTI", "OP_MEM", "OP_SYS", "OP_PRINT", "OP_SPAWN",
    "OP_JOIN", "OP_EXIT", "OP_SYNC", "OP_HALT",
    "OP_THINK", "OP_TLOAD", "OP_TSTORE", "OP_THALT",
    "ACC_LOAD", "ACC_STORE", "ACC_AMO",
    "program_digest", "write_trace", "read_header", "read_trace", "trace_info",
]

MAGIC = b"SLTR"
TRACE_VERSION = 1

# ------------------------------------------------------------- op vocabulary
# Program flavor (ISA committed-op stream).
OP_RUN = 1     # (OP_RUN, n)                n coalesced latency-1 register commits
OP_MULTI = 2   # (OP_MULTI, lat)            one register commit, lat-1 busy cycles
OP_MEM = 3     # (OP_MEM, acc, lat, addr)   L1 access; acc below, lat = unit latency
OP_SYS = 4     # (OP_SYS, num)              resolved cost-only syscall (sbrk/clock/...)
OP_PRINT = 5   # (OP_PRINT, kind, value)    kind 0 int / 1 float / 2 char-codepoint
OP_SPAWN = 6   # (OP_SPAWN, child_core, tid)
OP_JOIN = 7    # (OP_JOIN, tid)
OP_EXIT = 8    # (OP_EXIT,)
OP_SYNC = 9    # (OP_SYNC, num, addr, aux)  Table-1 sync call, resolved arguments
OP_HALT = 10   # (OP_HALT,)                 halt instruction
# Trace flavor (TraceCore scripts, serialized verbatim).
OP_THINK = 11   # (OP_THINK, n)
OP_TLOAD = 12   # (OP_TLOAD, addr)
OP_TSTORE = 13  # (OP_TSTORE, addr)
OP_THALT = 14   # (OP_THALT,)

ACC_LOAD = 0
ACC_STORE = 1
ACC_AMO = 2

_OP_NAMES = {
    OP_RUN: "run", OP_MULTI: "multi", OP_MEM: "mem", OP_SYS: "sys",
    OP_PRINT: "print", OP_SPAWN: "spawn", OP_JOIN: "join", OP_EXIT: "exit",
    OP_SYNC: "sync", OP_HALT: "halt",
    OP_THINK: "think", OP_TLOAD: "load", OP_TSTORE: "store", OP_THALT: "halt",
}

_PACK_I64 = struct.Struct("<q")
_PACK_F64 = struct.Struct("<d")
_PACK_HEAD = struct.Struct("<BB")
_PACK_CORE = struct.Struct("<IQ")
_PACK_FILE = struct.Struct("<4sHI")


class TraceError(RuntimeError):
    """Corrupt, truncated, or mismatched trace file."""


@dataclass
class Trace:
    """A parsed trace: the header dict plus per-core op streams."""

    header: dict
    core_ops: list[list[tuple]] = field(default_factory=list)
    sha256: str = ""

    @property
    def flavor(self) -> str:
        return self.header["flavor"]

    @property
    def num_cores(self) -> int:
        return self.header["num_cores"]

    def op_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for ops in self.core_ops:
            for op in ops:
                name = _OP_NAMES[op[0]]
                counts[name] = counts.get(name, 0) + 1
        return counts


def program_digest(program: Program) -> str:
    """Content identity of a program image (text + data + entry).

    The validity key for captures: a replay against a program whose digest
    differs from the recorded one is refused outright — the recorded
    streams describe a different execution.
    """
    h = hashlib.sha256()
    h.update(program.name.encode())
    h.update(str(program.entry).encode())
    for word in program.encoded_text():
        h.update(word.to_bytes(8, "little"))
    h.update(program.data)
    return h.hexdigest()


# ------------------------------------------------------------------ writing
def _encode_ops(ops: list[tuple]) -> bytes:
    parts = []
    head = _PACK_HEAD.pack
    i64 = _PACK_I64.pack
    f64 = _PACK_F64.pack
    for op in ops:
        code = op[0]
        argc = len(op) - 1
        parts.append(head(code, argc))
        if code == OP_PRINT and op[1] == 1:
            # Float payloads travel as raw IEEE-754 bits (exact round trip).
            parts.append(i64(op[1]))
            parts.append(f64(op[2]))
        else:
            for arg in op[1:]:
                parts.append(i64(int(arg)))
    return b"".join(parts)


def write_trace(path: str, header: dict, core_ops: list[list[tuple]]) -> str:
    """Serialize and atomically write a trace; returns its sha256 hex."""
    header = dict(header)
    header["version"] = TRACE_VERSION
    header["num_cores"] = len(core_ops)
    counts: dict[str, int] = {}
    events = 0
    for ops in core_ops:
        for op in ops:
            name = _OP_NAMES[op[0]]
            counts[name] = counts.get(name, 0) + 1
            if op[0] in (OP_MEM, OP_TLOAD, OP_TSTORE):
                events += 1
    header["op_counts"] = dict(sorted(counts.items()))
    header["memory_events"] = events
    hjson = json.dumps(header, sort_keys=True).encode()
    parts = [_PACK_FILE.pack(MAGIC, TRACE_VERSION, len(hjson)), hjson]
    for core_id, ops in enumerate(core_ops):
        parts.append(_PACK_CORE.pack(core_id, len(ops)))
        parts.append(_encode_ops(ops))
    body = b"".join(parts)
    digest = hashlib.sha256(body).digest()
    atomic_write_bytes(path, body + digest)
    return digest.hex()


# ------------------------------------------------------------------ reading
def _decode_ops(buf: memoryview, offset: int, count: int) -> tuple[list[tuple], int]:
    ops: list[tuple] = []
    head = _PACK_HEAD.unpack_from
    i64 = _PACK_I64.unpack_from
    f64 = _PACK_F64.unpack_from
    for _ in range(count):
        code, argc = head(buf, offset)
        offset += 2
        if code == OP_PRINT and argc == 2 and i64(buf, offset)[0] == 1:
            value = f64(buf, offset + 8)[0]
            ops.append((OP_PRINT, 1, value))
            offset += 16
            continue
        args = tuple(i64(buf, offset + 8 * k)[0] for k in range(argc))
        offset += 8 * argc
        ops.append((code, *args))
    return ops, offset


def read_header(path: str) -> dict:
    """Parse just the header JSON of a trace file — no op streams, no seal.

    The cheap candidate test for store discovery (:func:`repro.trace.store.
    find_trace`): reading only ``magic | version | header_len | header``
    costs a few hundred bytes however large the capture is.  Because the
    footer is NOT verified here, a caller must never trust the op streams
    on the strength of this read — :func:`read_trace` (which replay uses)
    still performs the full integrity check.
    """
    try:
        with open(path, "rb") as fh:
            head = fh.read(_PACK_FILE.size)
            if len(head) < _PACK_FILE.size:
                raise TraceError(f"trace {path!r} is truncated ({len(head)} bytes)")
            magic, version, hlen = _PACK_FILE.unpack(head)
            if magic != MAGIC:
                raise TraceError(f"{path!r} is not a trace file (bad magic {magic!r})")
            if version != TRACE_VERSION:
                raise TraceError(
                    f"trace {path!r} is format v{version}; this build reads "
                    f"v{TRACE_VERSION}"
                )
            hjson = fh.read(hlen)
    except OSError as exc:
        raise TraceError(f"cannot read trace {path!r}: {exc}") from None
    if len(hjson) < hlen:
        raise TraceError(f"trace {path!r} is truncated inside its header")
    try:
        return json.loads(hjson.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceError(f"trace {path!r} has a corrupt header: {exc}") from None


def read_trace(path: str) -> Trace:
    """Parse and verify a trace file (sha256 footer, magic, version)."""
    try:
        raw = open(path, "rb").read()
    except OSError as exc:
        raise TraceError(f"cannot read trace {path!r}: {exc}") from None
    if len(raw) < _PACK_FILE.size + 32:
        raise TraceError(f"trace {path!r} is truncated ({len(raw)} bytes)")
    body, footer = raw[:-32], raw[-32:]
    digest = hashlib.sha256(body).digest()
    if footer != digest:
        raise TraceError(
            f"trace {path!r} failed its integrity check "
            f"(recorded {footer.hex()[:16]}…, computed {digest.hex()[:16]}…)"
        )
    magic, version, hlen = _PACK_FILE.unpack_from(body, 0)
    if magic != MAGIC:
        raise TraceError(f"{path!r} is not a trace file (bad magic {magic!r})")
    if version != TRACE_VERSION:
        raise TraceError(
            f"trace {path!r} is format v{version}; this build reads v{TRACE_VERSION}"
        )
    offset = _PACK_FILE.size
    header = json.loads(body[offset:offset + hlen].decode())
    offset += hlen
    view = memoryview(body)
    core_ops: list[list[tuple]] = []
    for expect in range(header["num_cores"]):
        core_id, count = _PACK_CORE.unpack_from(view, offset)
        offset += _PACK_CORE.size
        if core_id != expect:
            raise TraceError(f"trace {path!r}: core section {core_id} out of order")
        ops, offset = _decode_ops(view, offset, count)
        core_ops.append(ops)
    if offset != len(body):
        raise TraceError(f"trace {path!r}: {len(body) - offset} trailing bytes")
    return Trace(header=header, core_ops=core_ops, sha256=digest.hex())


def trace_info(path: str) -> str:
    """Human-readable summary for the ``trace info`` CLI."""
    trace = read_trace(path)
    hdr = trace.header
    lines = [
        f"trace: {path}",
        f"  flavor:          {hdr['flavor']}",
        f"  format version:  {hdr['version']}",
        f"  cores:           {hdr['num_cores']}",
        f"  program digest:  {hdr.get('program_digest') or '-'}",
    ]
    source = hdr.get("source")
    if source:
        desc = ", ".join(f"{k}={v}" for k, v in sorted(source.items()))
        lines.append(f"  source:          {desc}")
    l1 = hdr.get("l1")
    if l1:
        lines.append(
            f"  captured L1:     {l1['size_bytes']}B / {l1['assoc']}-way "
            f"/ {l1['block_bytes']}B blocks / hit {l1['hit_latency']}c"
        )
    total = sum(hdr.get("op_counts", {}).values())
    lines.append(f"  memory events:   {hdr.get('memory_events', 0)}")
    lines.append(f"  ops:             {total}")
    for name, count in sorted(hdr.get("op_counts", {}).items()):
        lines.append(f"    {name:<12s} {count}")
    lines.append(f"  sha256:          {trace.sha256}")
    return "\n".join(lines)
