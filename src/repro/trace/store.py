"""Content-keyed trace store inside the ``.repro_cache/`` directory.

Traces live alongside the compile cache (the directory layout is documented
in DESIGN.md §6) under ``<cache>/traces/<key>.trace``, keyed by a SHA-256
over the capture's validity tuple: the program's content digest, the
workload-configuration description, and the workload seed.  The simulation
scheme is deliberately *not* part of the key — the recorded stream is
scheme-invariant, which is the whole point: one functional capture serves
every (scheme, window, memory-config) replay of the same execution.

``REPRO_CACHE_DIR`` overrides the root exactly as for compiled programs;
the empty string disables the store (``trace_store_path`` returns ``None``
and sweep callers fall back to direct execution).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.lang.compiler import cache_dir

__all__ = ["trace_key", "trace_store_path"]


def trace_key(program_digest: str, source: dict | None, seed: int) -> str:
    """Validity key of one functional execution: (program, workload, seed)."""
    h = hashlib.sha256()
    h.update(program_digest.encode())
    h.update(b"\x00")
    h.update(json.dumps(source or {}, sort_keys=True).encode())
    h.update(b"\x00")
    h.update(str(seed).encode())
    return h.hexdigest()


def trace_store_path(key: str) -> Path | None:
    """Where the trace for *key* lives (directory created), or ``None``
    when on-disk caching is disabled via ``REPRO_CACHE_DIR=""``."""
    root = cache_dir()
    if root is None:
        return None
    traces = root / "traces"
    traces.mkdir(parents=True, exist_ok=True)
    return traces / f"{key}.trace"
