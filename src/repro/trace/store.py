"""Content-keyed trace store inside the ``.repro_cache/`` directory.

Traces live alongside the compile cache (the directory layout is documented
in DESIGN.md §12) under ``<cache>/traces/<key>.trace``, keyed by a SHA-256
over the capture's validity tuple: the program's content digest, the
workload-configuration description, and the workload seed.  The simulation
scheme is deliberately *not* part of the key — the recorded stream is
scheme-invariant, which is the whole point: one functional capture serves
every (scheme, window, memory-config) replay of the same execution.

:func:`find_trace` is the job layer's discovery path (DESIGN.md §12): a
result-store miss asks whether *any* stored capture matches the job's
program digest and workload config, whatever seed it was captured under
(the stream is sim-seed-invariant), and replays it instead of re-executing
the functional frontend.

``REPRO_CACHE_DIR`` overrides the root exactly as for compiled programs;
the empty string disables the store (``trace_store_path`` returns ``None``
and sweep callers fall back to direct execution).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro._util import canonical_json, sha256_hex
from repro.lang.compiler import cache_dir

__all__ = ["find_trace", "trace_key", "trace_store_path", "traces_dir"]


def trace_key(program_digest: str, source: dict | None, seed: int) -> str:
    """Validity key of one functional execution: (program, workload, seed)."""
    return sha256_hex(program_digest, canonical_json(source or {}), str(seed))


def traces_dir(create: bool = False) -> Path | None:
    """The trace section of the cache root, or ``None`` when disabled."""
    root = cache_dir()
    if root is None:
        return None
    traces = root / "traces"
    if create:
        traces.mkdir(parents=True, exist_ok=True)
    return traces


def trace_store_path(key: str) -> Path | None:
    """Where the trace for *key* lives (directory created), or ``None``
    when on-disk caching is disabled via ``REPRO_CACHE_DIR=""``."""
    traces = traces_dir(create=True)
    return traces / f"{key}.trace" if traces is not None else None


def find_trace(program_digest: str, source: dict | None) -> Path | None:
    """Any stored capture matching (program digest, workload config).

    Seed-agnostic on purpose: the committed-op stream is invariant under the
    simulation seed (DESIGN.md §11), so a capture taken under one sweep's
    base seed replays every derived-seed point of any later job.  Headers
    are read without unpacking op streams (cheap); the full integrity check
    happens when the replay run reads the file — a corrupt match is
    rejected there, never trusted here.
    """
    from repro.trace.format import TraceError, read_header

    traces = traces_dir()
    if traces is None or not traces.is_dir():
        return None
    want = canonical_json(source or {})
    for path in sorted(traces.glob("*.trace")):
        try:
            header = read_header(str(path))
        except TraceError:
            continue  # corrupt/truncated entry: not a candidate
        if header.get("program_digest") != program_digest:
            continue
        raw = header.get("source")
        try:
            recorded = json.loads(raw) if isinstance(raw, str) else raw
        except json.JSONDecodeError:
            continue
        if canonical_json(recorded or {}) == want:
            return path
    return None
