"""Trace capture + replay (DESIGN.md §11).

Record the scheme-invariant committed-op stream of one workload execution
once (:mod:`repro.trace.capture`, hooked at the timing-core → memory seam),
then re-simulate it under any scheme / slack window / memory configuration
without re-executing the functional cores (:mod:`repro.trace.replay`).
The on-disk format lives in :mod:`repro.trace.format`; sweep-facing
content-keyed storage in :mod:`repro.trace.store`.
"""

from repro.trace.format import Trace, TraceError, program_digest, read_trace, trace_info, write_trace

__all__ = [
    "Trace", "TraceError", "program_digest", "read_trace", "trace_info",
    "write_trace",
]
