"""Small shared utilities: deterministic RNG streams, bit manipulation,
crash-safe file output, canonical content digests.

Everything in the simulator that needs randomness derives it from a
:class:`SeedSequenceFactory` so that a single ``SimConfig.seed`` makes the
whole run reproducible (see DESIGN.md, "Determinism").

:func:`atomic_write_bytes` / :func:`atomic_write_text` are the one
write-a-file-safely primitive shared by every artifact producer — the
compile cache, ``--stats-out`` dumps, sweep JSON documents and manifests,
checkpoints, and bench reports.  A reader can never observe a truncated
file: data lands in a same-directory tempfile first and is published with
an atomic ``os.replace``.

:func:`canonical_json` / :func:`sha256_hex` / :func:`output_digest` are the
one content-identity vocabulary shared by every cache key in the system —
job keys (DESIGN.md §12), trace-store keys (§11), per-point sweep seeds and
output fingerprints all derive from them, so two subsystems can never
fingerprint the same value differently.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time

import numpy as np

__all__ = [
    "Backoff",
    "SeedStream",
    "atomic_write_bytes",
    "atomic_write_text",
    "canonical_json",
    "output_digest",
    "retry_with_backoff",
    "sha256_hex",
    "sign_extend",
    "to_signed64",
    "to_unsigned64",
    "is_pow2",
    "log2i",
    "align_up",
    "align_down",
]

_MASK64 = (1 << 64) - 1


def canonical_json(obj) -> str:
    """The one canonical JSON rendering used for digests: sorted keys, no
    whitespace.  Any structure digested through :func:`sha256_hex` must go
    through here first so that key order and formatting can never leak into
    a cache key."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def sha256_hex(*parts: "str | bytes") -> str:
    """SHA-256 hex digest over *parts* joined by NUL separators.

    The NUL join makes the digest injective over the part boundaries
    (``("ab", "c")`` and ``("a", "bc")`` hash differently).  Strings are
    UTF-8 encoded; anything else must be rendered first (use
    :func:`canonical_json` for structures).
    """
    h = hashlib.sha256()
    for i, part in enumerate(parts):
        if i:
            h.update(b"\x00")
        h.update(part if isinstance(part, bytes) else str(part).encode())
    return h.hexdigest()


def output_digest(output: list) -> str:
    """Exact fingerprint of a workload output stream (floats via hex).

    ``float.hex()`` round-trips every bit, so two streams digest equal iff
    they are value-identical — the fingerprint sweeps, job records and the
    numpy-oracle checks all compare.
    """
    h = hashlib.sha256()
    for v in output:
        h.update(v.hex().encode() if isinstance(v, float) else repr(v).encode())
        h.update(b";")
    return h.hexdigest()


def atomic_write_bytes(path: "os.PathLike[str] | str", data: bytes) -> None:
    """Write *data* to *path* atomically (same-dir tempfile + ``os.replace``).

    Either the old content or the complete new content is visible — never a
    torn intermediate, even if the process is killed mid-write.  Parent
    directories are created as needed.
    """
    path = os.fspath(path)
    parent = os.path.dirname(path) or "."
    os.makedirs(parent, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=parent, prefix=os.path.basename(path), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: "os.PathLike[str] | str", text: str, encoding: str = "utf-8") -> None:
    """Atomic counterpart of ``Path.write_text`` (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode(encoding))


class Backoff:
    """A jittered exponential backoff schedule.

    The one retry-pacing vocabulary shared by every recovery loop in the
    system — the sweep runner's ``BrokenProcessPool`` recovery, the serve
    supervisor's crashed-worker requeues, and client reconnects all draw
    their delays from here, so retry behaviour is tuned (and tested) in one
    place.

    ``next()`` yields ``base * 2**attempt`` capped at *cap*, multiplied by a
    jitter factor drawn uniformly from ``[1-jitter, 1+jitter]``.  The jitter
    source is a seeded :class:`numpy.random.Generator` when *seed* is given
    (deterministic — the property tests replay exact schedules) and an
    OS-seeded one otherwise (crash recovery in production wants decorrelated
    retries, not synchronized stampedes).
    """

    def __init__(
        self,
        base: float = 0.5,
        cap: float = 8.0,
        jitter: float = 0.25,
        seed: "int | None" = None,
    ) -> None:
        self.base = float(base)
        self.cap = float(cap)
        self.jitter = float(jitter)
        self.attempt = 0
        self._rng = np.random.default_rng(seed)

    def peek(self) -> float:
        """The un-jittered delay the next ``next()`` call scales."""
        return min(self.base * (2.0 ** self.attempt), self.cap)

    def next(self) -> float:
        """Advance the schedule and return the next (jittered) delay."""
        delay = self.peek()
        self.attempt += 1
        if self.jitter:
            delay *= 1.0 + self.jitter * float(self._rng.uniform(-1.0, 1.0))
        return delay

    def reset(self) -> None:
        """Restart the schedule (call after a successful attempt)."""
        self.attempt = 0

    def sleep(self) -> float:
        """``time.sleep(self.next())``; returns the delay slept."""
        delay = self.next()
        time.sleep(delay)
        return delay


def retry_with_backoff(
    fn,
    *,
    retries: int = 3,
    retry_on: "type[BaseException] | tuple" = Exception,
    backoff: "Backoff | None" = None,
    on_retry=None,
):
    """Call ``fn()`` up to ``1 + retries`` times, sleeping a :class:`Backoff`
    delay between attempts.

    Only exceptions matching *retry_on* are retried; anything else (and the
    final matching failure) propagates.  *on_retry*, when given, is called as
    ``on_retry(attempt, exc, delay)`` before each sleep — loggers and tests
    hook observation there rather than monkeypatching ``time.sleep``.
    """
    backoff = backoff if backoff is not None else Backoff()
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on as exc:
            attempt += 1
            if attempt > retries:
                raise
            delay = backoff.next()
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            time.sleep(delay)


class SeedStream:
    """A named tree of deterministic RNG streams.

    Each distinct ``name`` yields an independent, reproducible
    :class:`numpy.random.Generator`.  Asking twice for the same name returns
    generators with identical state histories, which keeps component seeding
    stable even if components are constructed in a different order.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def generator(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the stream called *name*."""
        root = np.random.SeedSequence(self.seed)
        child = root.spawn(1)[0]
        # Mix the name into the entropy deterministically.
        digest = np.frombuffer(name.encode("utf-8").ljust(8, b"\0"), dtype=np.uint8)
        entropy = [self.seed, int(digest.sum()), len(name)] + [int(b) for b in name.encode("utf-8")]
        return np.random.Generator(np.random.PCG64(np.random.SeedSequence(entropy)))

    def child(self, name: str, index: int = 0) -> "SeedStream":
        """Derive a sub-stream for a component instance."""
        g = self.generator(f"{name}/{index}")
        return SeedStream(int(g.integers(0, 2**31 - 1)))


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low *bits* of *value* as a two's-complement integer."""
    mask = (1 << bits) - 1
    value &= mask
    sign = 1 << (bits - 1)
    return value - (1 << bits) if value & sign else value


def to_signed64(value: int) -> int:
    """Wrap an arbitrary Python int into signed 64-bit two's complement."""
    value &= _MASK64
    return value - (1 << 64) if value >> 63 else value


def to_unsigned64(value: int) -> int:
    """Reinterpret a (possibly negative) int as its unsigned 64-bit pattern."""
    return value & _MASK64


def is_pow2(n: int) -> bool:
    """True if *n* is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2i(n: int) -> int:
    """Integer log2 of a power of two; raises ``ValueError`` otherwise."""
    if not is_pow2(n):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to the next multiple of *alignment* (a power of two)."""
    if not is_pow2(alignment):
        raise ValueError(f"alignment {alignment} is not a power of two")
    return (value + alignment - 1) & ~(alignment - 1)


def align_down(value: int, alignment: int) -> int:
    """Round *value* down to a multiple of *alignment* (a power of two)."""
    if not is_pow2(alignment):
        raise ValueError(f"alignment {alignment} is not a power of two")
    return value & ~(alignment - 1)
