"""Small shared utilities: deterministic RNG streams, bit manipulation.

Everything in the simulator that needs randomness derives it from a
:class:`SeedSequenceFactory` so that a single ``SimConfig.seed`` makes the
whole run reproducible (see DESIGN.md, "Determinism").
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SeedStream",
    "sign_extend",
    "to_signed64",
    "to_unsigned64",
    "is_pow2",
    "log2i",
    "align_up",
    "align_down",
]

_MASK64 = (1 << 64) - 1


class SeedStream:
    """A named tree of deterministic RNG streams.

    Each distinct ``name`` yields an independent, reproducible
    :class:`numpy.random.Generator`.  Asking twice for the same name returns
    generators with identical state histories, which keeps component seeding
    stable even if components are constructed in a different order.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def generator(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the stream called *name*."""
        root = np.random.SeedSequence(self.seed)
        child = root.spawn(1)[0]
        # Mix the name into the entropy deterministically.
        digest = np.frombuffer(name.encode("utf-8").ljust(8, b"\0"), dtype=np.uint8)
        entropy = [self.seed, int(digest.sum()), len(name)] + [int(b) for b in name.encode("utf-8")]
        return np.random.Generator(np.random.PCG64(np.random.SeedSequence(entropy)))

    def child(self, name: str, index: int = 0) -> "SeedStream":
        """Derive a sub-stream for a component instance."""
        g = self.generator(f"{name}/{index}")
        return SeedStream(int(g.integers(0, 2**31 - 1)))


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low *bits* of *value* as a two's-complement integer."""
    mask = (1 << bits) - 1
    value &= mask
    sign = 1 << (bits - 1)
    return value - (1 << bits) if value & sign else value


def to_signed64(value: int) -> int:
    """Wrap an arbitrary Python int into signed 64-bit two's complement."""
    value &= _MASK64
    return value - (1 << 64) if value >> 63 else value


def to_unsigned64(value: int) -> int:
    """Reinterpret a (possibly negative) int as its unsigned 64-bit pattern."""
    return value & _MASK64


def is_pow2(n: int) -> bool:
    """True if *n* is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2i(n: int) -> int:
    """Integer log2 of a power of two; raises ``ValueError`` otherwise."""
    if not is_pow2(n):
        raise ValueError(f"{n} is not a positive power of two")
    return n.bit_length() - 1


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to the next multiple of *alignment* (a power of two)."""
    if not is_pow2(alignment):
        raise ValueError(f"alignment {alignment} is not a power of two")
    return (value + alignment - 1) & ~(alignment - 1)


def align_down(value: int, alignment: int) -> int:
    """Round *value* down to a multiple of *alignment* (a power of two)."""
    if not is_pow2(alignment):
        raise ValueError(f"alignment {alignment} is not a power of two")
    return value & ~(alignment - 1)
