"""Seeded, config-driven fault injection (DESIGN.md §8).

A :class:`FaultPlan` is parsed from a compact spec string::

    "overrun_window:core=2,at=500,extra=256;corrupt_dir:at=800"

and installed into a :class:`~repro.core.engine.SequentialEngine` at
construction time.  Every fault perturbs the run at one of the simulator's
well-defined seams; none of them touches the per-cycle simulate path — the
hooks are closures wrapped around seam callables (``model.emit``,
``CoreThread.deliver``, ``CostModel.core_batch_cost``, the engine's
``_turn_budget``) or queue subclasses substituted before the first event
flows, so an engine built without ``SimConfig.fault_plan`` is bit-identical
to one built before this package existed.

Fault kinds (see :data:`FAULT_KINDS`):

``delay_inq``
    Shift a matching InQ event's timestamp by ``delta`` cycles at delivery.
    Models a coherence message or response observed late (the de-facto
    behaviour wide slack windows permit — paper §3.2).
``dup_inq``
    Deliver a duplicate copy of a matching invalidate/downgrade (fresh seq,
    optionally ``delta`` cycles later).  Coherence messages must be
    idempotent at the L1; duplicating a *response* is rejected at parse time
    (a core matches responses against its single outstanding request).
``reorder_outq``
    Swap a matching OutQ event ahead of the entry queued before it, i.e.
    the GQ observes the core's requests out of arrival order.
``delay_gq``
    Shift a matching event's timestamp by ``delta`` at the GQ boundary —
    the manager services it late and the directory's ``last_ts`` runs ahead
    of younger legitimate requests (a system-state violation generator).
``stall_core``
    Add a one-shot ``host_delay`` host-time surcharge to the target core's
    next batch — a modeled host preemption mid-quantum.  Other cores run
    ahead in host time while the victim holds its target clock still.
``corrupt_dir``
    Clear one presence bit: remove a sharer (seeded pick, or ``core``) from
    a directory entry (seeded pick among populated entries, or ``addr``).
    The victim's L1 keeps a copy the directory no longer tracks — the
    classic silent-corruption hazard the MESI invariants must tolerate
    (stale writebacks, promoted upgrades) without crashing.
``overrun_window``
    Force the target core to run ``extra`` cycles past its slack-window
    edge (``max_local_time`` is raised mid-grant, exactly as if the window
    check had been missed).  Under a conservative scheme this manufactures
    the timestamp reorderings the violation detectors exist to count.

Triggers: event-seam faults arm against the first ``count`` matching events
with ``ts >= at``; time-triggered faults fire at the first manager step with
``global_time >= at``.  All randomness (victim picks) derives from one
``random.Random(seed)``, so a (plan, seed) pair replays identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.events import EvKind, Event

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan", "parse_fault_plan"]

#: Fault kind -> the spec fields it honours (beyond ``kind``).  Parsing
#: rejects anything else, so a typo'd spec fails loudly instead of silently
#: injecting nothing.
FAULT_KINDS: dict[str, tuple[str, ...]] = {
    "delay_inq": ("core", "at", "count", "delta", "events"),
    "dup_inq": ("core", "at", "count", "delta", "events"),
    "reorder_outq": ("core", "at", "count"),
    "delay_gq": ("core", "at", "count", "delta", "addr"),
    "stall_core": ("core", "at", "count", "host_delay"),
    "corrupt_dir": ("core", "at", "addr"),
    "overrun_window": ("core", "at", "count", "extra"),
}

#: Spec fields parsed as something other than int.
_FLOAT_FIELDS = frozenset({"host_delay"})
_STR_FIELDS = frozenset({"events"})

#: InQ event kinds by spec name (``events=invalidate+downgrade``).
_EVENT_NAMES = {
    "gets": EvKind.GETS,
    "getx": EvKind.GETX,
    "upgrade": EvKind.UPGRADE,
    "putm": EvKind.PUTM,
    "response": EvKind.RESPONSE,
    "invalidate": EvKind.INVALIDATE,
    "downgrade": EvKind.DOWNGRADE,
}

#: Kinds a dup_inq may duplicate: coherence messages are idempotent at the
#: L1; a duplicated RESPONSE would answer a request that no longer exists.
_DUP_SAFE = frozenset({EvKind.INVALIDATE, EvKind.DOWNGRADE})


@dataclass(frozen=True)
class FaultSpec:
    """One fault: a kind plus its trigger and magnitude parameters."""

    kind: str
    #: Target core (seam faults); -1 = any core (delay_gq, corrupt_dir pick).
    core: int = 0
    #: Trigger: event faults match events with ``ts >= at``; timed faults
    #: fire at the first manager step with ``global_time >= at``.
    at: int = 0
    #: How many matching occurrences to perturb.
    count: int = 1
    #: Timestamp shift in target cycles (delay faults).
    delta: int = 0
    #: Cycles to run past the window edge (overrun_window).
    extra: int = 0
    #: Host-time surcharge (stall_core).
    host_delay: float = 0.0
    #: Directory block address (corrupt_dir); -1 = seeded pick.
    addr: int = -1
    #: ``+``-separated event-kind filter ("" = the kind's default set).
    events: str = ""

    def event_kinds(self) -> frozenset[EvKind]:
        if not self.events:
            if self.kind == "dup_inq":
                return _DUP_SAFE
            return frozenset(_EVENT_NAMES.values())
        kinds = set()
        for name in self.events.split("+"):
            if name not in _EVENT_NAMES:
                raise ValueError(
                    f"unknown event kind {name!r} in fault spec "
                    f"(expected one of {sorted(_EVENT_NAMES)})"
                )
            kinds.add(_EVENT_NAMES[name])
        return frozenset(kinds)


def parse_fault_plan(spec: str, *, seed: int = 0) -> "FaultPlan":
    """Parse ``"kind:k=v,k=v;kind2:..."`` into a :class:`FaultPlan`.

    Raises ``ValueError`` on unknown kinds/fields so misconfigured plans
    fail at engine construction, never mid-run.
    """
    specs: list[FaultSpec] = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, _, rest = chunk.partition(":")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} (expected one of {sorted(FAULT_KINDS)})"
            )
        allowed = FAULT_KINDS[kind]
        fields: dict[str, object] = {}
        for pair in rest.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, eq, value = pair.partition("=")
            key = key.strip()
            if not eq or key not in allowed:
                raise ValueError(
                    f"fault {kind!r} does not accept {pair!r} "
                    f"(allowed fields: {', '.join(allowed)})"
                )
            if key in _STR_FIELDS:
                fields[key] = value.strip()
            elif key in _FLOAT_FIELDS:
                fields[key] = float(value)
            else:
                fields[key] = int(value, 0)
        if kind in ("delay_gq", "corrupt_dir") and "core" not in fields:
            fields["core"] = -1  # any core / seeded victim pick
        fs = FaultSpec(kind=kind, **fields)  # type: ignore[arg-type]
        if kind == "dup_inq" and not fs.event_kinds() <= _DUP_SAFE:
            raise ValueError(
                "dup_inq may only duplicate invalidate/downgrade messages "
                "(a response answers exactly one outstanding request)"
            )
        fs.event_kinds()  # validate the filter eagerly for every kind
        specs.append(fs)
    if not specs:
        raise ValueError(f"fault plan {spec!r} contains no faults")
    return FaultPlan(specs, seed=seed)


@dataclass
class _Armed:
    """Mutable per-spec trigger state (specs themselves stay frozen)."""

    spec: FaultSpec
    remaining: int = 0


class FaultPlan:
    """A parsed set of :class:`FaultSpec` plus the injection machinery.

    ``install(engine)`` wires every spec into its seam; ``fired`` collects
    one record dict per injection for tests and the CLI report.  A plan
    instance belongs to exactly one engine (its trigger state is consumed).
    """

    def __init__(self, specs: list[FaultSpec], *, seed: int = 0) -> None:
        self.specs = list(specs)
        self.seed = seed
        self._rng = random.Random(seed)
        #: One dict per injected fault, in injection order.
        self.fired: list[dict] = []
        #: Timed faults still waiting for their global-time trigger.
        self._timed: list[_Armed] = []
        self._installed = False

    # -------------------------------------------------------------- recording
    def _record(self, kind: str, **info: object) -> None:
        entry: dict[str, object] = {"kind": kind}
        entry.update(info)
        self.fired.append(entry)

    def summary(self) -> str:
        lines = [f"fault plan: {len(self.specs)} spec(s), {len(self.fired)} injected"]
        for entry in self.fired:
            detail = ", ".join(f"{k}={v}" for k, v in entry.items() if k != "kind")
            lines.append(f"  {entry['kind']}: {detail}")
        return "\n".join(lines)

    # ------------------------------------------------------------ installation
    def install(self, engine) -> None:
        """Wire every spec into *engine* (once, at construction time)."""
        if self._installed:
            raise RuntimeError("a FaultPlan instance installs into one engine only")
        self._installed = True
        for spec in self.specs:
            if spec.kind in ("delay_inq", "dup_inq"):
                self._install_inq(engine, spec)
            elif spec.kind == "reorder_outq":
                self._install_reorder(engine, spec)
            elif spec.kind == "delay_gq":
                self._install_gq(engine, spec)
            elif spec.kind == "stall_core":
                self._install_stall(engine, spec)
            elif spec.kind == "overrun_window":
                self._install_overrun(engine, spec)
            elif spec.kind == "corrupt_dir":
                self._timed.append(_Armed(spec))
            else:  # pragma: no cover - parse_fault_plan rejects unknown kinds
                raise AssertionError(spec.kind)

    def needs_tick(self) -> bool:
        """True while any time-triggered fault is pending (engine hoist)."""
        return bool(self._timed)

    def _core(self, engine, spec: FaultSpec):
        if not 0 <= spec.core < len(engine.cores):
            raise ValueError(
                f"fault {spec.kind!r} targets core {spec.core}, but the "
                f"target has {len(engine.cores)} cores"
            )
        return engine.cores[spec.core]

    def _install_inq(self, engine, spec: FaultSpec) -> None:
        """Wrap the target core's InQ delivery seam (manager -> core)."""
        ct = self._core(engine, spec)
        inner = ct.deliver
        armed = _Armed(spec, remaining=spec.count)
        kinds = spec.event_kinds()
        duplicate = spec.kind == "dup_inq"

        def deliver(event: Event) -> None:
            if armed.remaining > 0 and event.ts >= spec.at and event.kind in kinds:
                armed.remaining -= 1
                if duplicate:
                    inner(event)
                    dup = Event(event.kind, event.addr, event.core,
                                event.ts + spec.delta, grant=event.grant,
                                req_seq=event.req_seq)
                    inner(dup)
                    self._record("dup_inq", core=spec.core,
                                 event=event.kind.label, ts=event.ts,
                                 dup_ts=dup.ts, seq=event.seq, dup_seq=dup.seq)
                else:
                    orig = event.ts
                    event.ts += spec.delta
                    inner(event)
                    self._record("delay_inq", core=spec.core,
                                 event=event.kind.label, ts=orig,
                                 new_ts=event.ts, seq=event.seq)
                return
            inner(event)

        ct.deliver = deliver  # type: ignore[method-assign]

    def _install_reorder(self, engine, spec: FaultSpec) -> None:
        """Swap a matching OutQ push ahead of the entry queued before it."""
        ct = self._core(engine, spec)
        inner = ct.model.emit
        q = ct.outq._q
        armed = _Armed(spec, remaining=spec.count)

        def emit(event: Event) -> None:
            # Only a push that finds the queue non-empty can reorder; a miss
            # does not consume the count, so the fault waits for a turn that
            # emits back-to-back events (e.g. PUTM writeback + refill miss).
            if armed.remaining > 0 and event.ts >= spec.at and q:
                armed.remaining -= 1
                tail = q.pop()
                q.append(event)
                q.append(tail)
                self._record("reorder_outq", core=spec.core, ts=event.ts,
                             moved_ahead=event.seq, now_behind=tail.seq)
                return
            inner(event)

        ct.model.emit = emit

    def _install_gq(self, engine, spec: FaultSpec) -> None:
        """Substitute a timestamp-shifting GlobalQueue before any event flows."""
        from repro.core.queues import GlobalQueue

        plan = self
        armed = _Armed(spec, remaining=spec.count)

        class _DelayGQ(GlobalQueue):
            __slots__ = ()

            def push(self, event: Event) -> None:
                if (
                    armed.remaining > 0
                    and event.ts >= spec.at
                    and (spec.core < 0 or event.core == spec.core)
                    and (spec.addr < 0 or event.addr == spec.addr)
                ):
                    armed.remaining -= 1
                    orig = event.ts
                    event.ts += spec.delta
                    plan._record("delay_gq", core=event.core,
                                 event=event.kind.label, ts=orig,
                                 new_ts=event.ts, seq=event.seq)
                GlobalQueue.push(self, event)

        if len(engine.manager.gq):
            raise RuntimeError("delay_gq must install before any GQ traffic")
        engine.manager.gq = _DelayGQ()

    def _install_stall(self, engine, spec: FaultSpec) -> None:
        """One-shot host-preemption surcharge on the target core's batches."""
        costmodel = engine.costmodel
        inner = costmodel.core_batch_cost
        armed = _Armed(spec, remaining=spec.count)

        def core_batch_cost(core_id: int, stats, *, suspended: bool) -> float:
            cost = inner(core_id, stats, suspended=suspended)
            if (
                armed.remaining > 0
                and core_id == spec.core
                and engine.manager.global_time >= spec.at
            ):
                armed.remaining -= 1
                self._record("stall_core", core=core_id,
                             global_time=engine.manager.global_time,
                             host_delay=spec.host_delay)
                cost += spec.host_delay
            return cost

        costmodel.core_batch_cost = core_batch_cost  # type: ignore[method-assign]

    def _install_overrun(self, engine, spec: FaultSpec) -> None:
        """Raise the window edge mid-grant: the core overruns its slack."""
        self._core(engine, spec)  # validate the core id eagerly
        inner = engine._turn_budget
        armed = _Armed(spec, remaining=spec.count)

        def turn_budget(ct) -> int:
            budget = inner(ct)
            if (
                armed.remaining > 0
                and ct.core_id == spec.core
                and engine.manager.global_time >= spec.at
            ):
                armed.remaining -= 1
                ct.max_local_time += spec.extra
                self._record("overrun_window", core=spec.core,
                             local=ct.local_time,
                             new_max_local=ct.max_local_time, extra=spec.extra)
                budget += spec.extra
            return budget

        engine._turn_budget = turn_budget  # type: ignore[method-assign]

    # ------------------------------------------------------------ timed faults
    def on_manager_step(self, engine, global_time: int) -> None:
        """Fire pending time-triggered faults (called from the manager branch;
        the engine only calls this at all while :meth:`needs_tick` is True)."""
        if not self._timed:
            return
        for armed in list(self._timed):
            if global_time < armed.spec.at:
                continue
            if armed.spec.kind == "corrupt_dir":
                if self._corrupt_dir(engine, armed.spec, global_time):
                    self._timed.remove(armed)
            else:  # pragma: no cover - install() routes every timed kind
                raise AssertionError(armed.spec.kind)

    def _corrupt_dir(self, engine, spec: FaultSpec, global_time: int) -> bool:
        """Clear one presence bit; returns False to retry (no entry yet)."""
        from repro.mem.directory import DirState

        directory = engine.memsys.directory
        if spec.addr >= 0:
            entry = directory._entries.get(spec.addr)
            if entry is None or not entry.sharers:
                return False
            addr = spec.addr
        else:
            candidates = sorted(
                a for a, e in directory._entries.items() if e.sharers
            )
            if not candidates:
                return False
            addr = self._rng.choice(candidates)
            entry = directory._entries[addr]
        sharers = sorted(entry.sharers)
        victim = spec.core if spec.core in entry.sharers else self._rng.choice(sharers)
        entry.sharers.discard(victim)
        if entry.owner == victim:
            entry.owner = None
        if not entry.sharers:
            entry.state = DirState.INVALID
            entry.owner = None
        self._record("corrupt_dir", addr=addr, victim=victim,
                     global_time=global_time, state=entry.state.name,
                     remaining_sharers=len(entry.sharers))
        return True
