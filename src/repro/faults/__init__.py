"""Fault injection for the slack engine (DESIGN.md §8).

The violation taxonomy (paper §3.2) and the engine's invariants are only
trustworthy if they are exercised: this package perturbs a run at the
simulator's well-defined seams — OutQ/InQ/GQ event boundaries, the host
schedule, directory state, the slack-window protocol — under a seeded,
config-driven :class:`FaultPlan`, so tests can assert that the detectors
fire and the engine degrades cleanly instead of silently or catastrophically.
"""

from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec, parse_fault_plan

__all__ = ["FAULT_KINDS", "FaultPlan", "FaultSpec", "parse_fault_plan"]
