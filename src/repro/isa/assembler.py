"""Two-pass SPISA assembler.

The assembler turns textual assembly into a :class:`repro.isa.program.Program`
image.  It supports:

* labels (``name:``), in both ``.text`` and ``.data`` segments;
* directives ``.text``, ``.data``, ``.global``, ``.word``, ``.double``,
  ``.space``, ``.align``;
* the full concrete instruction set plus the pseudo-instructions listed in
  :data:`PSEUDO_DOC` (``li``, ``la``, ``mv``, ``j``, ``call``, ``ret`` ...);
* ABI register names (``zero ra sp gp tp t0-t6 s0-s11 a0-a7``, ``f0-f31``
  with ``ft/fs/fa`` aliases);
* ``#`` and ``;`` comments, and ``label + offset`` immediate expressions.

Branch and ``jal`` immediates are encoded PC-relative in bytes
(``imm = target - pc``); ``jalr`` is absolute ``rs1 + imm``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro._util import align_up
from repro.isa.instruction import INSTRUCTION_BYTES, Instruction
from repro.isa.opcodes import MNEMONICS, OPINFO, Format, Op
from repro.isa.program import Program, TEXT_BASE, DATA_BASE

__all__ = ["assemble", "AssemblerError", "REGISTER_NAMES", "FREGISTER_NAMES"]


class AssemblerError(ValueError):
    """Assembly failure with source location attached."""

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


def _build_register_names() -> dict[str, int]:
    names: dict[str, int] = {}
    for i in range(32):
        names[f"x{i}"] = i
    abi = (
        ["zero", "ra", "sp", "gp", "tp"]
        + [f"t{i}" for i in range(3)]          # t0-t2 -> x5-x7
        + ["s0", "s1"]                          # x8, x9
        + [f"a{i}" for i in range(8)]           # a0-a7 -> x10-x17
        + [f"s{i}" for i in range(2, 12)]       # s2-s11 -> x18-x27
        + [f"t{i}" for i in range(3, 7)]        # t3-t6 -> x28-x31
    )
    for i, name in enumerate(abi):
        names[name] = i
    names["fp"] = 8  # frame pointer alias for s0
    return names


def _build_fregister_names() -> dict[str, int]:
    names: dict[str, int] = {}
    for i in range(32):
        names[f"f{i}"] = i
    abi = (
        [f"ft{i}" for i in range(8)]            # f0-f7
        + ["fs0", "fs1"]                        # f8, f9
        + [f"fa{i}" for i in range(8)]          # f10-f17
        + [f"fs{i}" for i in range(2, 12)]      # f18-f27
        + [f"ft{i}" for i in range(8, 12)]      # f28-f31
    )
    for i, name in enumerate(abi):
        names[name] = i
    return names


#: Integer register name -> index (ABI + xN forms).
REGISTER_NAMES = _build_register_names()
#: Float register name -> index (ABI + fN forms).
FREGISTER_NAMES = _build_fregister_names()

#: Documentation of supported pseudo-instructions (name -> expansion sketch).
PSEUDO_DOC = {
    "nop": "addi x0, x0, 0",
    "li rd, imm": "addi rd, zero, imm (imm must fit signed 32 bits)",
    "la rd, label": "addi rd, zero, &label",
    "mv rd, rs": "addi rd, rs, 0",
    "not rd, rs": "xori rd, rs, -1",
    "neg rd, rs": "sub rd, zero, rs",
    "seqz rd, rs": "sltu rd, rs, 1  (via sltiu-less form: sltiu == slti unsigned)",
    "snez rd, rs": "sltu rd, zero, rs",
    "j label": "jal zero, label",
    "jr rs": "jalr zero, rs, 0",
    "call label": "jal ra, label",
    "ret": "jalr zero, ra, 0",
    "beqz rs, label": "beq rs, zero, label",
    "bnez rs, label": "bne rs, zero, label",
    "bltz rs, label": "blt rs, zero, label",
    "bgez rs, label": "bge rs, zero, label",
    "bgtz rs, label": "blt zero, rs, label",
    "blez rs, label": "bge zero, rs, label",
    "bgt rs, rt, label": "blt rt, rs, label",
    "ble rs, rt, label": "bge rt, rs, label",
    "bgtu/bleu": "unsigned forms of the above",
}


@dataclass
class _Slot:
    """One concrete instruction awaiting symbol resolution."""

    mnemonic: str
    operands: list[str]
    line: int
    addr: int = 0


@dataclass
class _DataItem:
    kind: str          # "word" | "double" | "space"
    values: list       # ints / floats / [nbytes]
    line: int
    addr: int = 0


_MEMOP_RE = re.compile(r"^(?P<imm>[^()]*)\((?P<reg>[A-Za-z_][\w.]*|x\d+|f\d+)\)$")
_LABEL_EXPR_RE = re.compile(r"^(?P<label>[A-Za-z_.][\w.]*)\s*(?P<off>[+-]\s*\d+)?$")


def _tokenize_operands(rest: str) -> list[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [tok.strip() for tok in rest.split(",")]


def _parse_int(text: str, line: int) -> int:
    text = text.strip().replace(" ", "")
    try:
        return int(text, 0)
    except ValueError as exc:
        raise AssemblerError(f"bad integer literal {text!r}", line) from exc


class _Assembler:
    def __init__(self, source: str) -> None:
        self.source = source
        self.slots: list[_Slot] = []
        self.data_items: list[_DataItem] = []
        self.symbols: dict[str, int] = {}
        self.globals: set[str] = set()
        self._pending_labels: list[tuple[str, int]] = []
        self._segment = "text"

    # ------------------------------------------------------------- pass 1
    def parse(self) -> None:
        for lineno, raw in enumerate(self.source.splitlines(), start=1):
            line = raw.split("#", 1)[0].split(";", 1)[0].strip()
            if not line:
                continue
            # Possibly several "label:" prefixes on one line.
            while True:
                m = re.match(r"^([A-Za-z_.][\w.]*)\s*:\s*", line)
                if not m:
                    break
                self._pending_labels.append((m.group(1), lineno))
                line = line[m.end():]
            if not line:
                continue
            if line.startswith("."):
                self._directive(line, lineno)
            else:
                self._instruction(line, lineno)
        if self._pending_labels:
            # Trailing labels bind to the end of the current segment.
            self._bind_labels(end=True)

    def _bind_labels(self, *, end: bool = False) -> None:
        """Attach pending labels to the next emitted item index."""
        for name, lineno in self._pending_labels:
            if name in self._label_targets:
                raise AssemblerError(f"duplicate label {name!r}", lineno)
            if self._segment == "text":
                self._label_targets[name] = ("text", len(self.slots))
            else:
                self._label_targets[name] = ("data", len(self.data_items))
        self._pending_labels = []

    @property
    def _label_targets(self) -> dict[str, tuple[str, int]]:
        if not hasattr(self, "_targets"):
            self._targets: dict[str, tuple[str, int]] = {}
        return self._targets

    def _directive(self, line: str, lineno: int) -> None:
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".text":
            self._segment = "text"
        elif name == ".data":
            self._segment = "data"
        elif name == ".global":
            self.globals.add(rest.strip())
        elif name == ".word":
            self._bind_to_data(lineno)
            values = [_parse_int(v, lineno) for v in _tokenize_operands(rest)]
            if not values:
                raise AssemblerError(".word needs at least one value", lineno)
            self.data_items.append(_DataItem("word", values, lineno))
        elif name in (".double", ".float"):
            self._bind_to_data(lineno)
            try:
                values = [float(v) for v in _tokenize_operands(rest)]
            except ValueError as exc:
                raise AssemblerError(f"bad float literal in {rest!r}", lineno) from exc
            if not values:
                raise AssemblerError(f"{name} needs at least one value", lineno)
            self.data_items.append(_DataItem("double", values, lineno))
        elif name == ".space":
            self._bind_to_data(lineno)
            nbytes = _parse_int(rest, lineno)
            if nbytes <= 0:
                raise AssemblerError(".space needs a positive byte count", lineno)
            self.data_items.append(_DataItem("space", [align_up(nbytes, 8)], lineno))
        elif name == ".align":
            pass  # data is always 8-byte aligned in this image format
        else:
            raise AssemblerError(f"unknown directive {name!r}", lineno)

    def _bind_to_data(self, lineno: int) -> None:
        if self._segment != "data":
            raise AssemblerError("data directive outside .data segment", lineno)
        self._bind_labels()

    def _instruction(self, line: str, lineno: int) -> None:
        if self._segment != "text":
            raise AssemblerError("instruction outside .text segment", lineno)
        self._bind_labels()
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _tokenize_operands(parts[1]) if len(parts) > 1 else []
        for expanded in self._expand_pseudo(mnemonic, operands, lineno):
            self.slots.append(_Slot(expanded[0], expanded[1], lineno))

    # -------------------------------------------------- pseudo expansion
    def _expand_pseudo(
        self, m: str, ops: list[str], lineno: int
    ) -> list[tuple[str, list[str]]]:
        def need(n: int) -> None:
            if len(ops) != n:
                raise AssemblerError(f"{m} expects {n} operand(s), got {len(ops)}", lineno)

        if m == "nop":
            need(0)
            return [("nopop", [])]
        if m == "li":
            need(2)
            return [("addi", [ops[0], "zero", ops[1]])]
        if m == "la":
            need(2)
            return [("addi", [ops[0], "zero", ops[1]])]
        if m == "mv":
            need(2)
            return [("addi", [ops[0], ops[1], "0"])]
        if m == "not":
            need(2)
            return [("xori", [ops[0], ops[1], "-1"])]
        if m == "neg":
            need(2)
            return [("sub", [ops[0], "zero", ops[1]])]
        if m == "seqz":
            need(2)
            return [("slti", [ops[0], ops[1], "1"]), ("andi", [ops[0], ops[0], "1"])]
        if m == "snez":
            need(2)
            return [("sltu", [ops[0], "zero", ops[1]])]
        if m == "j":
            need(1)
            return [("jal", ["zero", ops[0]])]
        if m == "jr":
            need(1)
            return [("jalr", ["zero", ops[0], "0"])]
        if m == "call":
            need(1)
            return [("jal", ["ra", ops[0]])]
        if m == "ret":
            need(0)
            return [("jalr", ["zero", "ra", "0"])]
        if m in ("beqz", "bnez", "bltz", "bgez"):
            need(2)
            base = {"beqz": "beq", "bnez": "bne", "bltz": "blt", "bgez": "bge"}[m]
            return [(base, [ops[0], "zero", ops[1]])]
        if m == "bgtz":
            need(2)
            return [("blt", ["zero", ops[0], ops[1]])]
        if m == "blez":
            need(2)
            return [("bge", ["zero", ops[0], ops[1]])]
        if m in ("bgt", "ble", "bgtu", "bleu"):
            need(3)
            base = {"bgt": "blt", "ble": "bge", "bgtu": "bltu", "bleu": "bgeu"}[m]
            return [(base, [ops[1], ops[0], ops[2]])]
        if m not in MNEMONICS:
            raise AssemblerError(f"unknown mnemonic {m!r}", lineno)
        return [(m, ops)]

    # ------------------------------------------------------------- pass 2
    def layout(self) -> None:
        for i, slot in enumerate(self.slots):
            slot.addr = TEXT_BASE + i * INSTRUCTION_BYTES
        addr = DATA_BASE
        for item in self.data_items:
            item.addr = addr
            if item.kind == "space":
                addr += item.values[0]
            else:
                addr += 8 * len(item.values)
        for name, (seg, index) in self._label_targets.items():
            if seg == "text":
                if index >= len(self.slots):
                    self.symbols[name] = TEXT_BASE + index * INSTRUCTION_BYTES
                else:
                    self.symbols[name] = self.slots[index].addr
            else:
                if index >= len(self.data_items):
                    self.symbols[name] = addr
                else:
                    self.symbols[name] = self.data_items[index].addr

    # ------------------------------------------------------- resolution
    def _reg(self, tok: str, lineno: int) -> int:
        reg = REGISTER_NAMES.get(tok.lower())
        if reg is None:
            raise AssemblerError(f"unknown integer register {tok!r}", lineno)
        return reg

    def _freg(self, tok: str, lineno: int) -> int:
        reg = FREGISTER_NAMES.get(tok.lower())
        if reg is None:
            raise AssemblerError(f"unknown float register {tok!r}", lineno)
        return reg

    def _imm(self, tok: str, lineno: int, *, pc: int | None = None) -> int:
        """Resolve an immediate: integer literal or label[+off].

        If *pc* is given the result is PC-relative (branch encoding).
        """
        tok = tok.strip()
        try:
            value = int(tok, 0)
            return value if pc is None else value
        except ValueError:
            pass
        m = _LABEL_EXPR_RE.match(tok)
        if not m or m.group("label") not in self.symbols:
            raise AssemblerError(f"unresolved symbol or bad immediate {tok!r}", lineno)
        value = self.symbols[m.group("label")]
        if m.group("off"):
            value += int(m.group("off").replace(" ", ""))
        if pc is not None:
            value -= pc
        return value

    def encode(self) -> list[Instruction]:
        out: list[Instruction] = []
        for slot in self.slots:
            out.append(self._encode_slot(slot))
        return out

    def _encode_slot(self, slot: _Slot) -> Instruction:
        op = MNEMONICS[slot.mnemonic]
        info = OPINFO[op]
        ops = slot.operands
        line = slot.line

        def need(n: int) -> None:
            if len(ops) != n:
                raise AssemblerError(
                    f"{slot.mnemonic} expects {n} operand(s), got {len(ops)}", line
                )

        fmt = info.fmt
        if fmt is Format.R:
            need(3)
            return Instruction(op, self._reg(ops[0], line), self._reg(ops[1], line), self._reg(ops[2], line))
        if fmt is Format.I:
            need(3)
            return Instruction(op, self._reg(ops[0], line), self._reg(ops[1], line), 0, self._imm(ops[2], line))
        if fmt is Format.LI:
            need(2)
            return Instruction(op, self._reg(ops[0], line), 0, 0, self._imm(ops[1], line))
        if fmt in (Format.LOAD, Format.STORE):
            need(2)
            m = _MEMOP_RE.match(ops[1])
            if not m:
                raise AssemblerError(f"bad memory operand {ops[1]!r}", line)
            base = self._reg(m.group("reg"), line)
            imm = self._imm(m.group("imm") or "0", line)
            if fmt is Format.LOAD:
                target = self._freg if op is Op.FLD else self._reg
                return Instruction(op, target(ops[0], line), base, 0, imm)
            source = self._freg if op is Op.FSD else self._reg
            return Instruction(op, 0, base, source(ops[0], line), imm)
        if fmt is Format.AMO:
            need(3)
            m = _MEMOP_RE.match(ops[2]) or _MEMOP_RE.match(f"0{ops[2]}")
            if not m:
                raise AssemblerError(f"bad AMO address operand {ops[2]!r}", line)
            return Instruction(
                op,
                self._reg(ops[0], line),
                self._reg(m.group("reg"), line),
                self._reg(ops[1], line),
                self._imm(m.group("imm") or "0", line),
            )
        if fmt is Format.B:
            need(3)
            return Instruction(
                op,
                0,
                self._reg(ops[0], line),
                self._reg(ops[1], line),
                self._imm(ops[2], line, pc=slot.addr),
            )
        if fmt is Format.J:
            need(2)
            return Instruction(op, self._reg(ops[0], line), 0, 0, self._imm(ops[1], line, pc=slot.addr))
        if fmt is Format.JR:
            need(3)
            return Instruction(op, self._reg(ops[0], line), self._reg(ops[1], line), 0, self._imm(ops[2], line))
        if fmt is Format.FR:
            need(3)
            return Instruction(op, self._freg(ops[0], line), self._freg(ops[1], line), self._freg(ops[2], line))
        if fmt is Format.FR2:
            need(2)
            return Instruction(op, self._freg(ops[0], line), self._freg(ops[1], line))
        if fmt is Format.FCMP:
            need(3)
            return Instruction(op, self._reg(ops[0], line), self._freg(ops[1], line), self._freg(ops[2], line))
        if fmt is Format.FI:
            need(2)
            return Instruction(op, self._freg(ops[0], line), self._reg(ops[1], line))
        if fmt is Format.IF:
            need(2)
            return Instruction(op, self._reg(ops[0], line), self._freg(ops[1], line))
        if fmt is Format.SYS:
            need(0)
            return Instruction(op)
        raise AssemblerError(f"unhandled format {fmt} for {slot.mnemonic}", line)

    def data_bytes(self) -> bytes:
        import struct

        chunks: list[bytes] = []
        for item in self.data_items:
            if item.kind == "word":
                for v in item.values:
                    chunks.append(struct.pack("<Q", v & ((1 << 64) - 1)))
            elif item.kind == "double":
                for v in item.values:
                    chunks.append(struct.pack("<d", v))
            else:  # space
                chunks.append(bytes(item.values[0]))
        return b"".join(chunks)


def assemble(source: str, *, name: str = "<asm>") -> Program:
    """Assemble *source* into a :class:`~repro.isa.program.Program`."""
    asm = _Assembler(source)
    asm.parse()
    asm.layout()
    text = asm.encode()
    data = asm.data_bytes()
    entry = asm.symbols.get("main", TEXT_BASE)
    return Program(
        name=name,
        text=tuple(text),
        data=data,
        symbols=dict(asm.symbols),
        entry=entry,
        exported=frozenset(asm.globals),
    )
