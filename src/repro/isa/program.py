"""Program image: the output of the assembler / compiler toolchain.

A :class:`Program` is an immutable record of the text segment (decoded
instructions), the raw data segment, the symbol table and the entry point.
The standard memory layout mirrors a simple user-level process image::

    TEXT_BASE   0x0001_0000   instructions, one per 8-byte word
    DATA_BASE   0x0040_0000   .data, then the heap (grows up via sbrk)
    stacks      top of target memory, one region per workload thread

The loader (:mod:`repro.sysapi.loader`) materialises this image into a
:class:`repro.cpu.arch.TargetMemory`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import INSTRUCTION_BYTES, Instruction

__all__ = ["Program", "TEXT_BASE", "DATA_BASE"]

#: Base address of the text segment.
TEXT_BASE = 0x0001_0000
#: Base address of the data segment (and heap start, after .data).
DATA_BASE = 0x0040_0000


@dataclass(frozen=True)
class Program:
    """An assembled/compiled SPISA program image."""

    name: str
    text: tuple[Instruction, ...]
    data: bytes
    symbols: dict[str, int] = field(default_factory=dict)
    entry: int = TEXT_BASE
    exported: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if self.entry % INSTRUCTION_BYTES:
            raise ValueError(f"entry point {self.entry:#x} is not word aligned")
        if len(self.data) % 8:
            raise ValueError("data segment must be a multiple of 8 bytes")

    def __getstate__(self):
        # predecode_program memoises its closure tables on the instance
        # (``_predecoded``); closures don't pickle and are cheap to re-derive,
        # so checkpoints carry only the declared fields.
        state = dict(self.__dict__)
        state.pop("_predecoded", None)
        state.pop("_timing_blocks", None)
        return state

    @property
    def text_end(self) -> int:
        """First address past the text segment."""
        return TEXT_BASE + len(self.text) * INSTRUCTION_BYTES

    @property
    def data_end(self) -> int:
        """First address past the static data segment (heap start)."""
        return DATA_BASE + len(self.data)

    @property
    def size_insns(self) -> int:
        return len(self.text)

    def instruction_at(self, addr: int) -> Instruction:
        """Return the instruction at text address *addr*."""
        index, rem = divmod(addr - TEXT_BASE, INSTRUCTION_BYTES)
        if rem or not 0 <= index < len(self.text):
            raise IndexError(f"{addr:#x} is not a valid text address of {self.name}")
        return self.text[index]

    def address_of(self, symbol: str) -> int:
        """Resolve *symbol* from the symbol table."""
        try:
            return self.symbols[symbol]
        except KeyError:
            raise KeyError(f"no symbol {symbol!r} in program {self.name}") from None

    def encoded_text(self) -> list[int]:
        """Text segment as encoded 64-bit words (for memory-resident images)."""
        return [insn.encode() for insn in self.text]

    def listing(self) -> str:
        """Human-readable disassembly listing with addresses and symbols."""
        from repro.isa.disassembler import format_instruction

        by_addr: dict[int, list[str]] = {}
        for name, addr in self.symbols.items():
            by_addr.setdefault(addr, []).append(name)
        lines: list[str] = [f"# program {self.name}: {len(self.text)} insns, {len(self.data)} data bytes"]
        for i, insn in enumerate(self.text):
            addr = TEXT_BASE + i * INSTRUCTION_BYTES
            for label in sorted(by_addr.get(addr, ())):
                lines.append(f"{label}:")
            lines.append(f"  {addr:#010x}  {format_instruction(insn)}")
        return "\n".join(lines)
