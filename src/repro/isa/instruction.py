"""SPISA instruction representation and fixed-width binary encoding.

An :class:`Instruction` is a frozen record of ``(op, rd, rs1, rs2, imm)``.
The binary encoding packs it into a single 64-bit word::

    [63:56] opcode   (8 bits)
    [55:50] rd       (6 bits)
    [49:44] rs1      (6 bits)
    [43:38] rs2      (6 bits)
    [37:32] reserved (must be zero)
    [31:0]  imm      (signed 32-bit two's complement)

Encoding and decoding round-trip exactly (property-tested in
``tests/isa/test_encoding.py``), which is what lets program images be stored
as flat ``uint64`` arrays in target memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import sign_extend
from repro.isa.opcodes import OPINFO, Format, Op, OpInfo, Unit

__all__ = ["Instruction", "EncodingError", "INSTRUCTION_BYTES"]

#: Instructions occupy one 8-byte word in target memory.
INSTRUCTION_BYTES = 8

_IMM_MIN = -(1 << 31)
_IMM_MAX = (1 << 31) - 1


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded/decoded."""


@dataclass(frozen=True)
class Instruction:
    """One decoded SPISA instruction.

    ``rd``/``rs1``/``rs2`` index the integer or float register file depending
    on the opcode's format (see :class:`repro.isa.opcodes.Format`).
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    #: Static metadata for this instruction's opcode, resolved once at
    #: construction — the timing cores read it on every fetch, so the
    #: per-access ``OPINFO[...]`` dict lookup is hoisted out of the hot path.
    info: OpInfo = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "info", OPINFO[self.op])

    @property
    def unit(self) -> Unit:
        return self.info.unit

    @property
    def latency(self) -> int:
        return self.info.latency

    @property
    def is_mem(self) -> bool:
        return self.info.is_load or self.info.is_store

    def validate(self) -> None:
        """Raise :class:`EncodingError` if any field is out of range."""
        for name, reg in (("rd", self.rd), ("rs1", self.rs1), ("rs2", self.rs2)):
            if not 0 <= reg < 64:
                raise EncodingError(f"{name}={reg} out of range for {self.op.name}")
        if not _IMM_MIN <= self.imm <= _IMM_MAX:
            raise EncodingError(
                f"imm={self.imm} does not fit in signed 32 bits for {self.op.name}"
            )

    def encode(self) -> int:
        """Pack into a 64-bit word (unsigned Python int)."""
        self.validate()
        return (
            (int(self.op) << 56)
            | (self.rd << 50)
            | (self.rs1 << 44)
            | (self.rs2 << 38)
            | (self.imm & 0xFFFFFFFF)
        )

    @classmethod
    def decode(cls, word: int) -> "Instruction":
        """Unpack a 64-bit word; raises :class:`EncodingError` on bad opcodes."""
        if not 0 <= word < (1 << 64):
            raise EncodingError(f"word {word:#x} is not a 64-bit value")
        opcode = (word >> 56) & 0xFF
        try:
            op = Op(opcode)
        except ValueError as exc:
            raise EncodingError(f"unknown opcode {opcode:#04x}") from exc
        if (word >> 32) & 0x3F:
            raise EncodingError(f"reserved bits set in {word:#018x}")
        return cls(
            op=op,
            rd=(word >> 50) & 0x3F,
            rs1=(word >> 44) & 0x3F,
            rs2=(word >> 38) & 0x3F,
            imm=sign_extend(word & 0xFFFFFFFF, 32),
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        from repro.isa.disassembler import format_instruction

        return format_instruction(self)


def _nop() -> Instruction:
    return Instruction(Op.NOPOP)


#: Canonical no-op instruction.
NOP = _nop()
