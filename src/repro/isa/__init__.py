"""SPISA: the SlackSim reproduction's from-scratch 64-bit RISC ISA.

This subpackage replaces SimpleScalar/PISA (DESIGN.md §2): opcode metadata,
instruction encoding, a two-pass assembler, a disassembler and the program
image format consumed by the loader.
"""

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.disassembler import disassemble_word, format_instruction
from repro.isa.instruction import INSTRUCTION_BYTES, EncodingError, Instruction
from repro.isa.opcodes import MNEMONICS, OPINFO, Format, Op, OpInfo, Unit
from repro.isa.program import DATA_BASE, TEXT_BASE, Program

__all__ = [
    "AssemblerError",
    "assemble",
    "disassemble_word",
    "format_instruction",
    "INSTRUCTION_BYTES",
    "EncodingError",
    "Instruction",
    "MNEMONICS",
    "OPINFO",
    "Format",
    "Op",
    "OpInfo",
    "Unit",
    "DATA_BASE",
    "TEXT_BASE",
    "Program",
]
