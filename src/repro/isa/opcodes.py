"""SPISA opcode definitions.

SPISA ("SlackSim PISA") is the from-scratch 64-bit RISC instruction set that
replaces SimpleScalar's PISA in this reproduction (DESIGN.md §2).  It is a
load/store architecture with:

* 32 integer registers ``x0..x31`` (``x0`` hardwired to zero),
* 32 double-precision float registers ``f0..f31``,
* byte-addressed memory with aligned 8-byte word accesses,
* fixed-width 64-bit instruction encoding (see :mod:`repro.isa.instruction`).

Every opcode carries static metadata: its operand *format*, the functional
*unit* that executes it, and its execution *latency* in target cycles.  The
core models (:mod:`repro.cpu`) read all their timing from this table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Op", "Format", "Unit", "OpInfo", "OPINFO", "MNEMONICS"]


class Format(enum.Enum):
    """Operand formats (assembly syntax / field usage)."""

    R = "r"        # op rd, rs1, rs2
    I = "i"        # op rd, rs1, imm
    LOAD = "load"  # op rd, imm(rs1)
    STORE = "store"  # op rs2, imm(rs1)
    B = "b"        # op rs1, rs2, label
    J = "j"        # op rd, label
    JR = "jr"      # op rd, rs1, imm
    FR = "fr"      # op fd, fs1, fs2     (float regs)
    FR2 = "fr2"    # op fd, fs1          (unary float)
    FCMP = "fcmp"  # op rd, fs1, fs2     (float compare -> int reg)
    FI = "fi"      # op fd, rs1          (int -> float conversions / moves)
    IF = "if"      # op rd, fs1          (float -> int conversions / moves)
    AMO = "amo"    # op rd, rs2, (rs1)   (atomic read-modify-write)
    SYS = "sys"    # op                  (no operands)
    LI = "li"      # op rd, imm          (immediate materialisation)


class Unit(enum.Enum):
    """Functional-unit class; OoO issue ports are per-unit."""

    IALU = "ialu"
    IMUL = "imul"
    IDIV = "idiv"
    BRANCH = "branch"
    MEM = "mem"
    FADD = "fadd"
    FMUL = "fmul"
    FDIV = "fdiv"
    SYS = "sys"


class Op(enum.IntEnum):
    """SPISA opcodes.  Values are the 8-bit encoding field."""

    # Integer register-register.
    ADD = 0x01
    SUB = 0x02
    MUL = 0x03
    DIV = 0x04
    REM = 0x05
    AND = 0x06
    OR = 0x07
    XOR = 0x08
    SLL = 0x09
    SRL = 0x0A
    SRA = 0x0B
    SLT = 0x0C
    SLTU = 0x0D

    # Integer register-immediate.
    ADDI = 0x10
    ANDI = 0x11
    ORI = 0x12
    XORI = 0x13
    SLLI = 0x14
    SRLI = 0x15
    SRAI = 0x16
    SLTI = 0x17
    LUI = 0x18

    # Memory.
    LD = 0x20
    SD = 0x21
    FLD = 0x22
    FSD = 0x23
    AMOSWAP = 0x24
    AMOADD = 0x25

    # Control flow.
    BEQ = 0x30
    BNE = 0x31
    BLT = 0x32
    BGE = 0x33
    BLTU = 0x34
    BGEU = 0x35
    JAL = 0x36
    JALR = 0x37

    # Floating point.
    FADD = 0x40
    FSUB = 0x41
    FMUL = 0x42
    FDIV = 0x43
    FMIN = 0x44
    FMAX = 0x45
    FSQRT = 0x46
    FNEG = 0x47
    FABS = 0x48
    FMV = 0x49      # fd <- fs1
    FEQ = 0x4A
    FLT = 0x4B
    FLE = 0x4C
    FCVT_D_L = 0x4D  # fd <- (double) rs1
    FCVT_L_D = 0x4E  # rd <- (long, trunc) fs1
    FMV_D_X = 0x4F   # fd <- bits(rs1)
    FMV_X_D = 0x50   # rd <- bits(fs1)
    FSIN = 0x51      # fd <- sin(fs1)
    FCOS = 0x52      # fd <- cos(fs1)

    # System.
    ECALL = 0x60
    HALT = 0x61
    NOPOP = 0x62


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    op: "Op"
    mnemonic: str
    fmt: Format
    unit: Unit
    latency: int
    writes_int: bool = False
    writes_float: bool = False
    reads_int: tuple[str, ...] = ()    # subset of ("rs1", "rs2")
    reads_float: tuple[str, ...] = ()  # subset of ("rs1", "rs2")
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_amo: bool = False


def _info(op, mnem, fmt, unit, lat, **kw) -> OpInfo:
    return OpInfo(op, mnem, fmt, unit, lat, **kw)


_R = dict(writes_int=True, reads_int=("rs1", "rs2"))
_I = dict(writes_int=True, reads_int=("rs1",))
_B = dict(reads_int=("rs1", "rs2"), is_branch=True)
_F = dict(writes_float=True, reads_float=("rs1", "rs2"))
_F1 = dict(writes_float=True, reads_float=("rs1",))
_FC = dict(writes_int=True, reads_float=("rs1", "rs2"))

OPINFO: dict[Op, OpInfo] = {
    i.op: i
    for i in [
        _info(Op.ADD, "add", Format.R, Unit.IALU, 1, **_R),
        _info(Op.SUB, "sub", Format.R, Unit.IALU, 1, **_R),
        _info(Op.MUL, "mul", Format.R, Unit.IMUL, 3, **_R),
        _info(Op.DIV, "div", Format.R, Unit.IDIV, 12, **_R),
        _info(Op.REM, "rem", Format.R, Unit.IDIV, 12, **_R),
        _info(Op.AND, "and", Format.R, Unit.IALU, 1, **_R),
        _info(Op.OR, "or", Format.R, Unit.IALU, 1, **_R),
        _info(Op.XOR, "xor", Format.R, Unit.IALU, 1, **_R),
        _info(Op.SLL, "sll", Format.R, Unit.IALU, 1, **_R),
        _info(Op.SRL, "srl", Format.R, Unit.IALU, 1, **_R),
        _info(Op.SRA, "sra", Format.R, Unit.IALU, 1, **_R),
        _info(Op.SLT, "slt", Format.R, Unit.IALU, 1, **_R),
        _info(Op.SLTU, "sltu", Format.R, Unit.IALU, 1, **_R),
        _info(Op.ADDI, "addi", Format.I, Unit.IALU, 1, **_I),
        _info(Op.ANDI, "andi", Format.I, Unit.IALU, 1, **_I),
        _info(Op.ORI, "ori", Format.I, Unit.IALU, 1, **_I),
        _info(Op.XORI, "xori", Format.I, Unit.IALU, 1, **_I),
        _info(Op.SLLI, "slli", Format.I, Unit.IALU, 1, **_I),
        _info(Op.SRLI, "srli", Format.I, Unit.IALU, 1, **_I),
        _info(Op.SRAI, "srai", Format.I, Unit.IALU, 1, **_I),
        _info(Op.SLTI, "slti", Format.I, Unit.IALU, 1, **_I),
        _info(Op.LUI, "lui", Format.LI, Unit.IALU, 1, writes_int=True),
        _info(Op.LD, "ld", Format.LOAD, Unit.MEM, 1, writes_int=True, reads_int=("rs1",), is_load=True),
        _info(Op.SD, "sd", Format.STORE, Unit.MEM, 1, reads_int=("rs1", "rs2"), is_store=True),
        _info(Op.FLD, "fld", Format.LOAD, Unit.MEM, 1, writes_float=True, reads_int=("rs1",), is_load=True),
        _info(Op.FSD, "fsd", Format.STORE, Unit.MEM, 1, reads_int=("rs1",), reads_float=("rs2",), is_store=True),
        _info(Op.AMOSWAP, "amoswap", Format.AMO, Unit.MEM, 1, writes_int=True, reads_int=("rs1", "rs2"), is_load=True, is_store=True, is_amo=True),
        _info(Op.AMOADD, "amoadd", Format.AMO, Unit.MEM, 1, writes_int=True, reads_int=("rs1", "rs2"), is_load=True, is_store=True, is_amo=True),
        _info(Op.BEQ, "beq", Format.B, Unit.BRANCH, 1, **_B),
        _info(Op.BNE, "bne", Format.B, Unit.BRANCH, 1, **_B),
        _info(Op.BLT, "blt", Format.B, Unit.BRANCH, 1, **_B),
        _info(Op.BGE, "bge", Format.B, Unit.BRANCH, 1, **_B),
        _info(Op.BLTU, "bltu", Format.B, Unit.BRANCH, 1, **_B),
        _info(Op.BGEU, "bgeu", Format.B, Unit.BRANCH, 1, **_B),
        _info(Op.JAL, "jal", Format.J, Unit.BRANCH, 1, writes_int=True, is_branch=True),
        _info(Op.JALR, "jalr", Format.JR, Unit.BRANCH, 1, writes_int=True, reads_int=("rs1",), is_branch=True),
        _info(Op.FADD, "fadd", Format.FR, Unit.FADD, 3, **_F),
        _info(Op.FSUB, "fsub", Format.FR, Unit.FADD, 3, **_F),
        _info(Op.FMUL, "fmul", Format.FR, Unit.FMUL, 4, **_F),
        _info(Op.FDIV, "fdiv", Format.FR, Unit.FDIV, 12, **_F),
        _info(Op.FMIN, "fmin", Format.FR, Unit.FADD, 3, **_F),
        _info(Op.FMAX, "fmax", Format.FR, Unit.FADD, 3, **_F),
        _info(Op.FSQRT, "fsqrt", Format.FR2, Unit.FDIV, 16, **_F1),
        _info(Op.FNEG, "fneg", Format.FR2, Unit.FADD, 1, **_F1),
        _info(Op.FABS, "fabs", Format.FR2, Unit.FADD, 1, **_F1),
        _info(Op.FMV, "fmv", Format.FR2, Unit.FADD, 1, **_F1),
        _info(Op.FSIN, "fsin", Format.FR2, Unit.FDIV, 20, **_F1),
        _info(Op.FCOS, "fcos", Format.FR2, Unit.FDIV, 20, **_F1),
        _info(Op.FEQ, "feq", Format.FCMP, Unit.FADD, 3, **_FC),
        _info(Op.FLT, "flt", Format.FCMP, Unit.FADD, 3, **_FC),
        _info(Op.FLE, "fle", Format.FCMP, Unit.FADD, 3, **_FC),
        _info(Op.FCVT_D_L, "fcvt.d.l", Format.FI, Unit.FADD, 3, writes_float=True, reads_int=("rs1",)),
        _info(Op.FCVT_L_D, "fcvt.l.d", Format.IF, Unit.FADD, 3, writes_int=True, reads_float=("rs1",)),
        _info(Op.FMV_D_X, "fmv.d.x", Format.FI, Unit.FADD, 1, writes_float=True, reads_int=("rs1",)),
        _info(Op.FMV_X_D, "fmv.x.d", Format.IF, Unit.FADD, 1, writes_int=True, reads_float=("rs1",)),
        _info(Op.ECALL, "ecall", Format.SYS, Unit.SYS, 1),
        _info(Op.HALT, "halt", Format.SYS, Unit.SYS, 1),
        _info(Op.NOPOP, "nopop", Format.SYS, Unit.IALU, 1),
    ]
}

#: Map mnemonic -> Op for the assembler.
MNEMONICS: dict[str, Op] = {info.mnemonic: op for op, info in OPINFO.items()}

# Sanity: metadata covers every opcode exactly once.
assert len(OPINFO) == len(Op), "every Op must have OpInfo"
