"""SPISA disassembler: decoded instructions back to canonical assembly text.

``format_instruction`` emits the same syntax the assembler accepts, so for
every instruction ``i``: ``assemble(format_instruction(i))`` re-encodes to
``i`` (modulo label-relative immediates, which are printed numerically).
This round-trip is property-tested in ``tests/isa/test_encoding.py``.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import OPINFO, Format, Op

__all__ = ["format_instruction", "disassemble_word"]

_INT_REG = (
    ["zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1"]
    + [f"a{i}" for i in range(8)]
    + [f"s{i}" for i in range(2, 12)]
    + [f"t{i}" for i in range(3, 7)]
)
_F_REG = [f"f{i}" for i in range(32)]


def _x(i: int) -> str:
    return _INT_REG[i] if 0 <= i < 32 else f"x{i}"


def _f(i: int) -> str:
    return _F_REG[i] if 0 <= i < 32 else f"f{i}"


def format_instruction(insn: Instruction) -> str:
    """Render *insn* as canonical assembly text."""
    info = OPINFO[insn.op]
    m = info.mnemonic
    fmt = info.fmt
    if fmt is Format.R:
        return f"{m} {_x(insn.rd)}, {_x(insn.rs1)}, {_x(insn.rs2)}"
    if fmt is Format.I:
        return f"{m} {_x(insn.rd)}, {_x(insn.rs1)}, {insn.imm}"
    if fmt is Format.LI:
        return f"{m} {_x(insn.rd)}, {insn.imm}"
    if fmt is Format.LOAD:
        dst = _f(insn.rd) if insn.op is Op.FLD else _x(insn.rd)
        return f"{m} {dst}, {insn.imm}({_x(insn.rs1)})"
    if fmt is Format.STORE:
        src = _f(insn.rs2) if insn.op is Op.FSD else _x(insn.rs2)
        return f"{m} {src}, {insn.imm}({_x(insn.rs1)})"
    if fmt is Format.AMO:
        suffix = f"{insn.imm}({_x(insn.rs1)})" if insn.imm else f"({_x(insn.rs1)})"
        return f"{m} {_x(insn.rd)}, {_x(insn.rs2)}, {suffix}"
    if fmt is Format.B:
        return f"{m} {_x(insn.rs1)}, {_x(insn.rs2)}, {insn.imm}"
    if fmt is Format.J:
        return f"{m} {_x(insn.rd)}, {insn.imm}"
    if fmt is Format.JR:
        return f"{m} {_x(insn.rd)}, {_x(insn.rs1)}, {insn.imm}"
    if fmt is Format.FR:
        return f"{m} {_f(insn.rd)}, {_f(insn.rs1)}, {_f(insn.rs2)}"
    if fmt is Format.FR2:
        return f"{m} {_f(insn.rd)}, {_f(insn.rs1)}"
    if fmt is Format.FCMP:
        return f"{m} {_x(insn.rd)}, {_f(insn.rs1)}, {_f(insn.rs2)}"
    if fmt is Format.FI:
        return f"{m} {_f(insn.rd)}, {_x(insn.rs1)}"
    if fmt is Format.IF:
        return f"{m} {_x(insn.rd)}, {_f(insn.rs1)}"
    if fmt is Format.SYS:
        return m
    raise AssertionError(f"unhandled format {fmt}")


def disassemble_word(word: int) -> str:
    """Decode and format a raw 64-bit instruction word."""
    return format_instruction(Instruction.decode(word))
