"""Statistics and reporting: the hierarchical stats registry every layer
reports into, metrics (harmonic mean, relative error) and ASCII table
rendering used by every experiment harness."""

from repro.stats.metrics import geometric_mean, harmonic_mean, percent, relative_error
from repro.stats.registry import (
    Distribution,
    Formula,
    Scalar,
    Stat,
    StatError,
    StatsGroup,
    StatsRegistry,
    Vector,
    diff_dumps,
    load_dump,
    render_dump,
)
from repro.stats.tables import Table

__all__ = [
    "Distribution",
    "Formula",
    "Scalar",
    "Stat",
    "StatError",
    "StatsGroup",
    "StatsRegistry",
    "Table",
    "Vector",
    "diff_dumps",
    "geometric_mean",
    "harmonic_mean",
    "load_dump",
    "percent",
    "relative_error",
    "render_dump",
]
