"""Statistics and reporting: metrics (harmonic mean, relative error) and
ASCII table rendering used by every experiment harness."""

from repro.stats.metrics import geometric_mean, harmonic_mean, percent, relative_error
from repro.stats.tables import Table

__all__ = ["geometric_mean", "harmonic_mean", "percent", "relative_error", "Table"]
