"""Statistical helpers for the evaluation harness."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["harmonic_mean", "relative_error", "geometric_mean", "percent"]


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean (the paper's Figure 8(e) aggregates speedups this way)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("harmonic mean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("harmonic mean requires positive values")
    return len(vals) / sum(1.0 / v for v in vals)


def geometric_mean(values: Sequence[float]) -> float:
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / reference (Table 3's error metric)."""
    if reference == 0:
        raise ValueError("relative error against a zero reference")
    return abs(measured - reference) / abs(reference)


def percent(value: float, digits: int = 2) -> str:
    """Render a ratio as a percentage string."""
    return f"{value * 100:.{digits}f}%"
