"""Machine-readable performance records (``BENCH_engine.json``).

The perf-regression harness works in two halves:

1. the infrastructure benchmarks (``benchmarks/bench_infrastructure.py``)
   call :func:`record` after each timed run, accumulating one entry per
   benchmark — wall seconds plus a throughput figure (cycles/sec for engine
   benches, instructions/sec for the compiler) — and :func:`write` dumps the
   batch to ``BENCH_engine.json`` at session end;
2. ``benchmarks/check_regression.py`` compares that file against the pinned
   baselines (``benchmarks/BASELINES.json``) and exits non-zero on a >20%
   throughput regression — the CI bench-smoke gate.

Entries are plain dicts so the file diffs cleanly and other tools (plots,
dashboards) can consume it without importing the simulator.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from typing import Any

__all__ = ["PerfRecorder", "load"]


class PerfRecorder:
    """Accumulates benchmark entries and writes one JSON report."""

    def __init__(self, scale: str) -> None:
        self.scale = scale
        self.entries: dict[str, dict[str, Any]] = {}

    def record(
        self,
        name: str,
        *,
        seconds: float,
        work: float | None = None,
        work_unit: str = "",
        extra: dict[str, Any] | None = None,
    ) -> None:
        """Record one benchmark: *seconds* is the representative wall time
        (use the mean of the measured rounds), *work* the amount of work per
        call (target cycles, instructions, ...), so ``work / seconds`` is the
        throughput the regression gate tracks."""
        entry: dict[str, Any] = {"seconds": seconds}
        if work is not None:
            entry["work"] = work
            entry["work_unit"] = work_unit
            entry["throughput"] = work / seconds if seconds > 0 else 0.0
        if extra:
            entry.update(extra)
        self.entries[name] = entry

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        payload = {
            "scale": self.scale,
            "python": sys.version.split()[0],
            "machine": platform.machine(),
            "benchmarks": self.entries,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path


def load(path: str | Path) -> dict[str, Any]:
    return json.loads(Path(path).read_text())
