"""Machine-readable performance records (``BENCH_engine.json``).

The perf-regression harness works in two halves:

1. the infrastructure benchmarks (``benchmarks/bench_infrastructure.py``)
   call :func:`record` after each timed run, accumulating one entry per
   benchmark — wall seconds plus a throughput figure (cycles/sec for engine
   benches, instructions/sec for the compiler) — and :func:`write` dumps the
   batch to ``BENCH_engine.json`` at session end;
2. ``benchmarks/check_regression.py`` compares that file against the pinned
   baselines (``benchmarks/BASELINES.json``) and exits non-zero on a >20%
   throughput regression — the CI bench-smoke gate.

Entries are plain dicts so the file diffs cleanly and other tools (plots,
dashboards) can consume it without importing the simulator.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable

__all__ = ["PerfRecorder", "host_calibration", "load"]


def host_calibration(runs: int = 5) -> float:
    """Wall seconds for a fixed allocation-and-arithmetic Python workload
    (best of *runs*).  Both halves of the harness use this as the host-speed
    yardstick: the recorder stamps every benchmark entry with the calibration
    measured next to it, and the regression gate rescales pinned throughputs
    by the baseline-to-here calibration ratio before thresholding."""
    best = float("inf")
    for _ in range(runs):
        t0 = time.perf_counter()
        acc = 0
        d = {}
        for i in range(200_000):
            acc += (i * 3) ^ (i >> 2)
            if i & 1023 == 0:
                d[i] = acc
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


class PerfRecorder:
    """Accumulates benchmark entries and writes one JSON report."""

    def __init__(self, scale: str, calibrate: Callable[[], float] = host_calibration) -> None:
        self.scale = scale
        self.entries: dict[str, dict[str, Any]] = {}
        self._calibrate = calibrate

    def record(
        self,
        name: str,
        *,
        seconds: float,
        work: float | None = None,
        work_unit: str = "",
        extra: dict[str, Any] | None = None,
    ) -> None:
        """Record one benchmark: *seconds* is the representative wall time
        (use the mean of the measured rounds), *work* the amount of work per
        call (target cycles, instructions, ...), so ``work / seconds`` is the
        throughput the regression gate tracks.

        Each entry also carries its own ``calibration_seconds`` — the host
        yardstick measured *next to* this benchmark rather than once per
        session, so the gate can normalize each figure against the host
        speed in effect when it was taken (CI machines drift mid-session
        under noisy neighbours)."""
        entry: dict[str, Any] = {"seconds": seconds, "calibration_seconds": self._calibrate()}
        if work is not None:
            entry["work"] = work
            entry["work_unit"] = work_unit
            entry["throughput"] = work / seconds if seconds > 0 else 0.0
        if extra:
            entry.update(extra)
        self.entries[name] = entry

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        payload = {
            "scale": self.scale,
            "python": sys.version.split()[0],
            "machine": platform.machine(),
            "benchmarks": self.entries,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path


def load(path: str | Path) -> dict[str, Any]:
    return json.loads(Path(path).read_text())
