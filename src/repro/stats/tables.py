"""ASCII table rendering for the experiment harnesses.

Every table/figure reproduction prints through :class:`Table`, so bench
output has one consistent, diffable format.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["Table"]


class Table:
    """A simple left-aligned ASCII table with a title."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: list[list[str]] = []

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([self._fmt(c) for c in cells])

    @staticmethod
    def _fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), len(sep))]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
