"""Hierarchical statistics registry: one instrumentation layer for the stack.

Every instrumented layer — engine and host model, core threads and schemes,
the timing cores with their L1s, the manager-side memory system, the
violation counters — registers its statistics into one tree of groups,
addressed by dotted paths (``core3.l1d.misses``, ``manager.gq.max_depth``,
``scheme.slack_cycles.count``).  This is the gem5-style stats discipline
parti-gem5 and ScaleSimulator lean on: compare synchronization schemes
apples-to-apples by dumping *one* deterministic document per run instead of
hand-copying ad-hoc attributes.

Design constraints (DESIGN.md §7):

* **Zero hot-path cost.**  Components keep their plain counter attributes
  (``stats.accesses += 1``); the registry binds *sources* — zero-argument
  callables resolved only at dump time.  The simulate loop never pays a
  registry call.  The one exception is :class:`Distribution`, whose ``add``
  is O(1) integer bucketing and is only called at batch granularity.
* **Determinism.**  ``dump()`` is a flat ``{path: value}`` dict in sorted
  path order; ``dump_json``/``dump_csv`` render with sorted keys; floats
  digest via ``float.hex`` so :meth:`StatsRegistry.stats_digest` is
  byte-identical across stepping modes, dispatch modes and sweep job
  counts (pinned by the golden tests).
* **Typed kinds.**  :class:`Scalar` (a number, direct or sourced),
  :class:`Vector` (per-core / per-bank / per-resource expansion),
  :class:`Distribution` (log2-bucketed histogram with count/sum/min/max)
  and :class:`Formula` (derived value evaluated at dump time; excluded
  from the digest by default because it is redundant with its operands).

Per-interval snapshotting: :meth:`StatsRegistry.snapshot` records a full
dump under a label (the engine calls it every ``--stats-interval N`` target
cycles), giving a time series of slack behaviour without touching the
per-cycle path.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "Distribution",
    "Formula",
    "Scalar",
    "Stat",
    "StatError",
    "StatsGroup",
    "StatsRegistry",
    "Vector",
    "canonical_value",
    "diff_dumps",
    "load_dump",
    "render_dump",
]

#: Characters allowed in one path component (brackets admit resource names
#: like ``l2bank[3]``; ``*`` admits scheme names like ``s9*``; ``:`` admits
#: domain-prefixed resources like ``d0:bus``).
_COMPONENT_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-[]*:")


class StatError(ValueError):
    """Bad path, duplicate registration, or malformed dump."""


def _check_component(name: str) -> str:
    if not name or not set(name) <= _COMPONENT_OK:
        raise StatError(f"bad stat path component {name!r}")
    return name


def canonical_value(value: Any) -> str:
    """Bit-exact canonical rendering for digests (floats via ``hex``)."""
    if isinstance(value, bool):
        return repr(int(value))
    if isinstance(value, float):
        return float(value).hex()
    return repr(value)


# --------------------------------------------------------------------- kinds
class Stat:
    """Base class: one named statistic contributing dump entries."""

    kind = "stat"
    __slots__ = ("path", "desc", "digest")

    def __init__(self, path: str, desc: str = "", digest: bool = True) -> None:
        self.path = path
        self.desc = desc
        self.digest = digest

    def entries(self) -> Iterator[tuple[str, Any]]:
        """Yield ``(dotted_path, value)`` pairs, deterministically ordered."""
        raise NotImplementedError


class Scalar(Stat):
    """A single number: either a direct value (``set``/``add``) or a bound
    zero-argument *source* resolved at dump time."""

    kind = "scalar"
    __slots__ = ("_value", "_source")

    def __init__(
        self,
        path: str,
        *,
        source: Callable[[], Any] | None = None,
        value: Any = 0,
        desc: str = "",
        digest: bool = True,
    ) -> None:
        super().__init__(path, desc, digest)
        self._source = source
        self._value = value

    @property
    def value(self) -> Any:
        return self._source() if self._source is not None else self._value

    def set(self, value: Any) -> None:
        if self._source is not None:
            raise StatError(f"{self.path}: cannot set a sourced scalar")
        self._value = value

    def add(self, delta: Any = 1) -> None:
        if self._source is not None:
            raise StatError(f"{self.path}: cannot add to a sourced scalar")
        self._value += delta

    def entries(self) -> Iterator[tuple[str, Any]]:
        yield self.path, self.value


class Formula(Stat):
    """A derived value computed at dump time from other components' state.

    Excluded from the digest by default: formulas are redundant with their
    operands and float division is the one place a representation change
    could perturb bytes without a behavioural change.
    """

    kind = "formula"
    __slots__ = ("_fn",)

    def __init__(
        self,
        path: str,
        fn: Callable[[], Any],
        *,
        desc: str = "",
        digest: bool = False,
    ) -> None:
        super().__init__(path, desc, digest)
        self._fn = fn

    @property
    def value(self) -> Any:
        try:
            return self._fn()
        except ZeroDivisionError:
            return 0.0

    def entries(self) -> Iterator[tuple[str, Any]]:
        yield self.path, self.value


class Vector(Stat):
    """Per-index expansion: the source yields a sequence or mapping and each
    element dumps as ``path.<index>`` / ``path.<key>`` (keys sorted)."""

    kind = "vector"
    __slots__ = ("_source",)

    def __init__(
        self,
        path: str,
        source: Callable[[], Sequence[Any] | Mapping[str, Any]],
        *,
        desc: str = "",
        digest: bool = True,
    ) -> None:
        super().__init__(path, desc, digest)
        self._source = source

    def entries(self) -> Iterator[tuple[str, Any]]:
        data = self._source()
        if isinstance(data, Mapping):
            items: Iterable[tuple[str, Any]] = sorted(
                (str(k), v) for k, v in data.items()
            )
        else:
            items = ((str(i), v) for i, v in enumerate(data))
        for key, value in items:
            yield f"{self.path}.{_check_component(key)}", value


class Distribution(Stat):
    """Log2-bucketed histogram of non-negative integer samples.

    ``add`` is O(1): one ``bit_length`` bucket increment plus running
    count/sum/min/max — cheap enough for batch-granularity sampling (never
    per simulated cycle).  Bucket ``k`` counts samples with
    ``bit_length() == k``, i.e. values in ``[2**(k-1), 2**k)`` (bucket 0 is
    exactly the zero samples).
    """

    kind = "distribution"
    _MAX_BUCKET = 64
    __slots__ = ("count", "total", "_min", "_max", "buckets")

    def __init__(self, path: str, *, desc: str = "", digest: bool = True) -> None:
        super().__init__(path, desc, digest)
        self.count = 0
        self.total = 0
        self._min = 0
        self._max = 0
        self.buckets = [0] * (self._MAX_BUCKET + 1)

    def add(self, value: int) -> None:
        if value < 0:
            raise StatError(f"{self.path}: negative sample {value}")
        if self.count == 0 or value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self.count += 1
        self.total += value
        bucket = value.bit_length()
        self.buckets[bucket if bucket < self._MAX_BUCKET else self._MAX_BUCKET] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def entries(self) -> Iterator[tuple[str, Any]]:
        yield f"{self.path}.count", self.count
        yield f"{self.path}.sum", self.total
        yield f"{self.path}.min", self._min
        yield f"{self.path}.max", self._max
        for k, n in enumerate(self.buckets):
            if n:
                yield f"{self.path}.bucket{k}", n


# --------------------------------------------------------------------- tree
class StatsGroup:
    """One node of the tree; fabricates stats under its dotted prefix."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: "StatsRegistry", prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix

    @property
    def path(self) -> str:
        return self._prefix

    def _child_path(self, name: str) -> str:
        for component in name.split("."):
            _check_component(component)
        return f"{self._prefix}.{name}" if self._prefix else name

    def group(self, name: str) -> "StatsGroup":
        return StatsGroup(self._registry, self._child_path(name))

    def scalar(self, name: str, **kwargs) -> Scalar:
        return self._registry._register(Scalar(self._child_path(name), **kwargs))

    def formula(self, name: str, fn: Callable[[], Any], **kwargs) -> Formula:
        return self._registry._register(Formula(self._child_path(name), fn, **kwargs))

    def vector(self, name: str, source, **kwargs) -> Vector:
        return self._registry._register(Vector(self._child_path(name), source, **kwargs))

    def distribution(self, name: str, **kwargs) -> Distribution:
        return self._registry._register(Distribution(self._child_path(name), **kwargs))


class StatsRegistry(StatsGroup):
    """The root group plus dump/digest/snapshot machinery."""

    __slots__ = ("_stats", "snapshots")

    def __init__(self) -> None:
        super().__init__(self, "")
        self._stats: dict[str, Stat] = {}
        self.snapshots: list[dict] = []

    # -------------------------------------------------------- registration
    def _register(self, stat: Stat) -> Stat:
        if stat.path in self._stats:
            raise StatError(f"duplicate stat path {stat.path!r}")
        self._stats[stat.path] = stat
        return stat

    def get(self, path: str) -> Stat:
        try:
            return self._stats[path]
        except KeyError:
            raise StatError(f"unknown stat path {path!r}") from None

    def stats(self) -> list[Stat]:
        """All registered stats in sorted path order."""
        return [self._stats[p] for p in sorted(self._stats)]

    # --------------------------------------------------------------- dumps
    def dump(self) -> dict[str, Any]:
        """Flat ``{dotted_path: value}`` in sorted path order."""
        out: dict[str, Any] = {}
        for stat in self._stats.values():
            for path, value in stat.entries():
                out[path] = value
        return dict(sorted(out.items()))

    def stats_digest(self) -> str:
        """SHA-256 over the canonical rendering of all digest-marked stats.

        Byte-identical across stepping modes, dispatch modes and sweep job
        counts; host-scheduler implementation details and derived formulas
        register with ``digest=False`` and are excluded.
        """
        lines = []
        for stat in self._stats.values():
            if not stat.digest:
                continue
            for path, value in stat.entries():
                lines.append(f"{path}={canonical_value(value)}\n")
        h = hashlib.sha256()
        for line in sorted(lines):
            h.update(line.encode())
        return h.hexdigest()

    def snapshot(self, label: Any) -> dict:
        """Record the current dump under *label* (e.g. the global time)."""
        snap = {"label": label, "stats": self.dump()}
        self.snapshots.append(snap)
        return snap

    def dump_json(self, *, meta: Mapping[str, Any] | None = None) -> str:
        doc = {
            "meta": dict(meta or {}),
            "digest": self.stats_digest(),
            "stats": self.dump(),
            "snapshots": self.snapshots,
        }
        return json.dumps(doc, indent=2, sort_keys=True) + "\n"

    def dump_csv(self) -> str:
        return dump_to_csv(self.dump())


# ----------------------------------------------------------------- documents
def dump_to_csv(stats: Mapping[str, Any]) -> str:
    """``stat,value`` lines in sorted path order (floats via ``repr``)."""
    lines = ["stat,value"]
    for path in sorted(stats):
        value = stats[path]
        lines.append(f"{path},{repr(value) if isinstance(value, float) else value}")
    return "\n".join(lines) + "\n"


def load_dump(path: str) -> dict[str, Any]:
    """Read a stats document (or bare flat dict) from a JSON file."""
    return load_dump_with_digest(path)[0]


def load_dump_with_digest(path: str) -> tuple[dict[str, Any], str | None]:
    """Read a stats document plus its recorded digest, if any.

    Bare flat dicts (no document wrapper) carry no digest and return
    ``None`` — callers comparing digests must treat that as "unknown", not
    "equal".
    """
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise StatError(f"{path}: expected a JSON object")
    stats = doc.get("stats", doc)
    if not isinstance(stats, dict):
        raise StatError(f"{path}: malformed stats document")
    digest = doc.get("digest") if stats is not doc else None
    if digest is not None and not isinstance(digest, str):
        raise StatError(f"{path}: malformed digest field")
    return stats, digest


def diff_dumps(a: Mapping[str, Any], b: Mapping[str, Any]) -> list[str]:
    """Human-readable difference lines between two flat dumps (empty if
    identical).  Values compare canonically, so float diffs are bit-exact."""
    lines = []
    for path in sorted(set(a) | set(b)):
        if path not in a:
            lines.append(f"+ {path} = {b[path]}")
        elif path not in b:
            lines.append(f"- {path} = {a[path]}")
        elif canonical_value(a[path]) != canonical_value(b[path]):
            lines.append(f"~ {path}: {a[path]} -> {b[path]}")
    return lines


def render_dump(stats: Mapping[str, Any], *, title: str = "stats") -> str:
    """ASCII table of a flat dump (sorted paths)."""
    from repro.stats.tables import Table

    table = Table(title, ["stat", "value"])
    for path in sorted(stats):
        table.add_row(path, stats[path])
    return table.render()
