"""Virtual host CMP substrate (DESIGN.md §2): the calibrated cost model and
the deterministic H-core schedule whose makespan stands in for wall-clock
simulation time."""

from repro.host.costmodel import HOST_UNIT_SECONDS, CostModel
from repro.host.hostmodel import HostModel, HostReport

__all__ = ["HOST_UNIT_SECONDS", "CostModel", "HostModel", "HostReport"]
