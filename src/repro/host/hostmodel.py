"""Virtual host CMP: a deterministic multiprocessor schedule builder.

Simulation threads (N core threads + 1 manager) are scheduled greedily onto
``num_cores`` identical host cores: each step runs on the host core that can
start it earliest (earliest-available, lowest index on ties), like an OS
spreading runnable threads.  The *makespan* of the resulting schedule is the
modeled simulation time; speedups in Figure 8 are ratios of makespans.

The scheduler is incremental: instead of scanning all H cores per step, it
keeps a min-heap of busy cores keyed by free-up time plus a min-heap of idle
core indices, giving O(log H) per step while producing *exactly* the same
core choice as the original scan (earliest start, lowest index on ties),
including for non-monotonic ready times — entries are validated lazily
against the ``free_at`` ground truth and re-filed when stale.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

__all__ = ["HostModel", "HostReport"]


@dataclass
class HostReport:
    makespan: float
    busy: float
    num_cores: int

    @property
    def utilization(self) -> float:
        return self.busy / (self.makespan * self.num_cores) if self.makespan > 0 else 0.0


class HostModel:
    """Greedy earliest-start scheduler over H host cores."""

    def __init__(self, num_cores: int) -> None:
        if num_cores < 1:
            raise ValueError("host needs at least one core")
        self.num_cores = num_cores
        self.free_at = [0.0] * num_cores
        self.busy = 0.0
        self.steps = 0
        self._makespan = 0.0
        # Invariant: every core appears in at least one heap; stale entries
        # (free_at changed since filing) are dropped/re-filed on pop.
        self._idle: list[int] = list(range(num_cores))  # free_at <= some past ready
        self._busy_heap: list[tuple[float, int]] = []   # (free_at when filed, idx)
        # For small hosts (every config in the paper: 1-8 cores) a linear
        # scan beats the heaps on constants; both produce the identical
        # earliest-start, lowest-index-on-ties schedule.
        if num_cores <= 16:
            self.run = self._run_linear  # type: ignore[method-assign]

    def _run_linear(self, ready: float, cost: float) -> float:
        free_at = self.free_at
        chosen = -1
        for c, t in enumerate(free_at):
            if t <= ready:
                chosen = c
                start = ready
                break
        if chosen < 0:
            start = min(free_at)
            chosen = free_at.index(start)
        end = start + cost
        free_at[chosen] = end
        if end > self._makespan:
            self._makespan = end
        self.busy += cost
        self.steps += 1
        return end

    def run(self, ready: float, cost: float) -> float:
        """Schedule a step that becomes ready at *ready* and costs *cost*;
        returns its completion time."""
        free_at = self.free_at
        busy_heap = self._busy_heap
        idle = self._idle
        # Release cores that have freed up by *ready*.
        while busy_heap and busy_heap[0][0] <= ready:
            t, c = heapq.heappop(busy_heap)
            if free_at[c] == t:
                heapq.heappush(idle, c)
        # Prefer the lowest-index core that can start at *ready*; entries
        # whose free time moved past *ready* (possible when ready times are
        # not monotonic) go back to the busy heap.
        chosen = -1
        start = ready
        while idle:
            c = heapq.heappop(idle)
            if free_at[c] <= ready:
                chosen = c
                break
            heapq.heappush(busy_heap, (free_at[c], c))
        if chosen < 0:
            # All cores busy past *ready*: earliest free-up wins, index
            # breaks ties ((t, c) heap order matches the original scan).
            while True:
                t, c = heapq.heappop(busy_heap)
                if free_at[c] == t:
                    chosen = c
                    start = t
                    break
        end = start + cost
        free_at[chosen] = end
        heapq.heappush(busy_heap, (end, chosen))
        if end > self._makespan:
            self._makespan = end
        self.busy += cost
        self.steps += 1
        return end

    def makespan(self) -> float:
        return self._makespan

    def report(self) -> HostReport:
        return HostReport(makespan=self.makespan(), busy=self.busy, num_cores=self.num_cores)
