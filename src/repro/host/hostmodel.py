"""Virtual host CMP: a deterministic multiprocessor schedule builder.

Simulation threads (N core threads + 1 manager) are scheduled greedily onto
``num_cores`` identical host cores: each step runs on the host core that can
start it earliest (earliest-available, lowest index on ties), like an OS
spreading runnable threads.  The *makespan* of the resulting schedule is the
modeled simulation time; speedups in Figure 8 are ratios of makespans.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HostModel", "HostReport"]


@dataclass
class HostReport:
    makespan: float
    busy: float
    num_cores: int

    @property
    def utilization(self) -> float:
        return self.busy / (self.makespan * self.num_cores) if self.makespan > 0 else 0.0


class HostModel:
    """Greedy earliest-start scheduler over H host cores."""

    def __init__(self, num_cores: int) -> None:
        if num_cores < 1:
            raise ValueError("host needs at least one core")
        self.num_cores = num_cores
        self.free_at = [0.0] * num_cores
        self.busy = 0.0
        self.steps = 0

    def run(self, ready: float, cost: float) -> float:
        """Schedule a step that becomes ready at *ready* and costs *cost*;
        returns its completion time."""
        best = 0
        best_start = None
        for c in range(self.num_cores):
            start = self.free_at[c] if self.free_at[c] > ready else ready
            if best_start is None or start < best_start:
                best = c
                best_start = start
        assert best_start is not None
        end = best_start + cost
        self.free_at[best] = end
        self.busy += cost
        self.steps += 1
        return end

    def makespan(self) -> float:
        return max(self.free_at)

    def report(self) -> HostReport:
        return HostReport(makespan=self.makespan(), busy=self.busy, num_cores=self.num_cores)
