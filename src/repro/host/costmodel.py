"""Host cost model: how much host work one simulation-thread step costs.

This is the calibrated substitute for measuring wall-clock time on the
paper's dual quad-core Xeon (DESIGN.md §2): pure-Python execution under the
GIL cannot exhibit parallel speedup, so host time is *modeled*.  Costs are
deliberately simple — linear in simulated cycles and events, with seeded
lognormal jitter that models instruction-mix variance across threads (the
load imbalance that makes barrier-heavy schemes slow).

Unit convention: 1 host-time unit ~ the work to simulate one target cycle of
one core.  :data:`HOST_UNIT_SECONDS` converts modeled units to "seconds" for
KIPS-style reporting (Table 2); it was fixed once so the baseline lands in
the paper's 110-130 KIPS range and is never tuned per scheme.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import HostConfig
from repro.core.corethread import BatchStats

__all__ = ["CostModel", "HOST_UNIT_SECONDS"]

#: Modeled host-time unit, in seconds (for KIPS conversion only).
HOST_UNIT_SECONDS = 1.1e-6


class CostModel:
    """Deterministic, seeded cost generator."""

    def __init__(self, config: HostConfig, seed: int, num_cores: int) -> None:
        self.config = config
        self._core_rng = [
            np.random.Generator(np.random.PCG64(np.random.SeedSequence([seed, 1000 + i])))
            for i in range(num_cores)
        ]
        self._mgr_rng = np.random.Generator(np.random.PCG64(np.random.SeedSequence([seed, 999])))

    def _jitter(self, rng: np.random.Generator) -> float:
        sigma = self.config.jitter_sigma
        if sigma <= 0:
            return 1.0
        # Mean-1 lognormal multiplier.
        return float(rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))

    def core_batch_cost(self, core_id: int, stats: BatchStats, *, suspended: bool) -> float:
        """Host work for one core-thread batch."""
        cfg = self.config
        cost = (
            stats.active_cycles * cfg.cycle_cost
            + stats.idle_cycles * cfg.idle_cycle_cost
            + (stats.events_out + stats.events_in) * cfg.event_cost
        )
        cost *= self._jitter(self._core_rng[core_id])
        if suspended:
            cost += cfg.suspend_cost
        # Every scheduled step costs at least something (loop overhead).
        return max(cost, 0.05)

    def manager_step_cost(self, drained: int, processed: int) -> float:
        """Host work for one manager polling pass."""
        cfg = self.config
        if drained == 0 and processed == 0:
            return cfg.manager_poll_cost
        cost = cfg.manager_poll_cost + processed * cfg.manager_request_cost + 0.2 * drained
        return cost * self._jitter(self._mgr_rng)

    @property
    def wake_cost(self) -> float:
        return self.config.wake_cost
