"""Host cost model: how much host work one simulation-thread step costs.

This is the calibrated substitute for measuring wall-clock time on the
paper's dual quad-core Xeon (DESIGN.md §2): pure-Python execution under the
GIL cannot exhibit parallel speedup, so host time is *modeled*.  Costs are
deliberately simple — linear in simulated cycles and events, with seeded
lognormal jitter that models instruction-mix variance across threads (the
load imbalance that makes barrier-heavy schemes slow).

Unit convention: 1 host-time unit ~ the work to simulate one target cycle of
one core.  :data:`HOST_UNIT_SECONDS` converts modeled units to "seconds" for
KIPS-style reporting (Table 2); it was fixed once so the baseline lands in
the paper's 110-130 KIPS range and is never tuned per scheme.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import HostConfig
from repro.core.corethread import BatchStats

__all__ = ["CostModel", "HOST_UNIT_SECONDS"]

#: Modeled host-time unit, in seconds (for KIPS conversion only).
HOST_UNIT_SECONDS = 1.1e-6

#: Jitter draws are produced in vectorized blocks: one numpy call per
#: _JITTER_BLOCK turns instead of per turn (the single-draw call dominated
#: the engine's wall-clock profile).  The stream of values is a function of
#: the seed alone, so determinism is unaffected.
_JITTER_BLOCK = 512


class _JitterStream:
    """Seeded stream of mean-1 lognormal multipliers, drawn in blocks."""

    __slots__ = ("_rng", "_mean", "_sigma", "_buf", "_i")

    def __init__(self, rng: np.random.Generator, mean: float, sigma: float) -> None:
        self._rng = rng
        self._mean = mean
        self._sigma = sigma
        self._buf: list[float] = []
        self._i = 0

    def next(self) -> float:
        i = self._i
        buf = self._buf
        if i >= len(buf):
            buf = self._buf = self._rng.lognormal(
                mean=self._mean, sigma=self._sigma, size=_JITTER_BLOCK
            ).tolist()
            i = 0
        self._i = i + 1
        return buf[i]


class CostModel:
    """Deterministic, seeded cost generator.

    Batch-aware by construction: a core turn's cost is linear in the cycles
    and events it covered — *except* wait stretches the core thread jumped
    over in one ``skip`` call.  Those cost O(1) host work per stretch plus a
    token per-cycle charge for clock bookkeeping, because the simulator never
    executed them: this is where run-ahead batching earns modeled-host speed
    (a core stalled 200 cycles on a memory grant costs a couple of units, not
    200×idle).  One jitter draw is made per core turn and per non-idle manager
    step; idle manager polls are deliberately jitter-free (a constant), which
    is what lets the engine elide provably-idle manager steps while charging
    bit-identical host time.
    """

    def __init__(self, config: HostConfig, seed: int, num_cores: int) -> None:
        self.config = config
        sigma = config.jitter_sigma
        mean = -0.5 * sigma * sigma
        self._core_jit = [
            _JitterStream(
                np.random.Generator(np.random.PCG64(np.random.SeedSequence([seed, 1000 + i]))),
                mean,
                sigma,
            )
            for i in range(num_cores)
        ]
        self._mgr_jit = _JitterStream(
            np.random.Generator(np.random.PCG64(np.random.SeedSequence([seed, 999]))),
            mean,
            sigma,
        )
        # Hot-path constants hoisted out of the per-turn call.
        self._cycle_cost = config.cycle_cost
        self._idle_cost = config.idle_cycle_cost
        self._event_cost = config.event_cost
        self._suspend_cost = config.suspend_cost
        self._skip_cost = config.skip_cycle_cost
        self._stretch_cost = config.skip_stretch_cost
        self._poll_cost = config.manager_poll_cost
        self._request_cost = config.manager_request_cost
        self._has_jitter = config.jitter_sigma > 0

    def core_batch_cost(self, core_id: int, stats: BatchStats, *, suspended: bool) -> float:
        """Host work for one core-thread batch."""
        cost = (
            stats.active_cycles * self._cycle_cost
            + stats.idle_cycles * self._idle_cost
            + stats.skipped_cycles * self._skip_cost
            + stats.skip_stretches * self._stretch_cost
            + (stats.events_out + stats.events_in) * self._event_cost
        )
        if self._has_jitter:
            cost *= self._core_jit[core_id].next()
        if suspended:
            cost += self._suspend_cost
        # Every scheduled step costs at least something (loop overhead).
        return max(cost, 0.05)

    def manager_step_cost(self, drained: int, processed: int) -> float:
        """Host work for one manager polling pass.

        The idle-poll cost is a jitter-free constant: the engine relies on
        this to skip idle manager steps without perturbing the RNG stream or
        the modeled timeline.
        """
        if drained == 0 and processed == 0:
            return self._poll_cost
        cost = self._poll_cost + processed * self._request_cost + 0.2 * drained
        if self._has_jitter:
            cost *= self._mgr_jit.next()
        return cost

    @property
    def wake_cost(self) -> float:
        return self.config.wake_cost

    @property
    def wake_fanout_cost(self) -> float:
        return self.config.wake_fanout_cost
