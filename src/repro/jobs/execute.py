"""The memoized execution pipeline: job in, sealed record out.

``execute(spec, store)`` is the one path every entry point shares
(DESIGN.md §12).  The decision tree on each call:

1. **Store hit** — a sealed record for the job key exists: return it
   without simulating (unless ``refresh=True``, which forces a run).
2. **Miss + capture available** — the trace store holds a capture whose
   program digest and workload config match (ROADMAP item 4): replay it
   under the job's scheme/window/memory config.  Replay is dump-identical
   to direct execution (DESIGN.md §11), so the record is byte-for-byte the
   one a direct run would have produced.
3. **Miss, no capture** — run the engine directly.

Either way the run is verified against the workload's numpy oracle, packed
into a record (metrics, per-core summaries, flat stats, stats digest, the
rendered stats document, output fingerprint, provenance) and published to
the store atomically.

``execute_functional`` is the bench-shaped sibling: it always runs (wall
time is the product) but records the functional outcome in the same store,
so repeated benches double as determinism checks — a stored record that
disagrees with a fresh run is surfaced as drift.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import repro
from repro._util import output_digest
from repro.jobs.spec import JobSpec, digest_payload, job_key, spec_program
from repro.jobs.store import ResultStore

__all__ = ["JobOutcome", "execute", "execute_functional", "record_summary"]


@dataclass
class JobOutcome:
    """What one ``execute`` call produced."""

    key: str
    record: dict
    #: True when the record came straight from the store (nothing ran).
    hit: bool
    #: The live engine/functional result — ``None`` on a hit.
    result: object = None
    #: True when a store miss was served by trace replay instead of a
    #: direct run (observationally identical; recorded as provenance).
    replayed: bool = False
    #: Functional-record drift against a previously stored record
    #: (``execute_functional`` only): list of human-readable mismatches.
    drift: list = field(default_factory=list)


def _resolve_trace(spec: JobSpec, program_digest: str, trace) -> "str | None":
    """Which capture (if any) should serve this miss.

    ``trace=None`` forbids replay, a path string forces that file, and
    ``"auto"`` consults the trace store for a capture matching the job's
    program digest and workload config — seed-agnostic, because the
    committed-op stream is invariant under the simulation seed.
    """
    if trace is None:
        return None
    if trace != "auto":
        return str(trace)
    if spec.core_model != "inorder":
        return None  # the capture seam lives at the inorder commit sites
    if spec.sim_config().fault_plan:
        return None  # a faulted run diverges from any clean recording
    from repro.trace.store import find_trace

    path = find_trace(
        program_digest, {"workload": spec.workload, "scale": spec.scale}
    )
    return str(path) if path is not None else None


def _run_spec(spec: JobSpec, workload, trace_path: "str | None", *, fallback: bool = True):
    """Run the engine for *spec*, replaying *trace_path* when given.

    With ``fallback`` (the auto-discovery case) a replay that fails
    validity (stale capture, core-count mismatch, stream exhaustion) falls
    back to a fresh direct run — a bad capture must never fail a job that
    direct execution would complete.  An *explicitly requested* capture
    propagates its error instead: the caller asked for that file.
    """
    from repro.core.engine import EngineError, SequentialEngine
    from repro.trace.format import TraceError

    sim = spec.sim_config()
    if trace_path is not None:
        try:
            result = SequentialEngine(
                workload.program,
                target=spec.target_config(),
                host=spec.host_config(),
                sim=replace(sim, trace_mode="replay", trace_path=trace_path),
            ).run()
            return result, True
        except (EngineError, TraceError):
            if not fallback:
                raise
            # invalid/stale auto-discovered capture: fall through to direct
    result = SequentialEngine(
        workload.program,
        target=spec.target_config(),
        host=spec.host_config(),
        sim=replace(sim, trace_mode="off", trace_path=None, trace_source=None),
    ).run()
    return result, False


def _timing_record(
    spec: JobSpec,
    payload: dict,
    result,
    *,
    replayed: bool,
    trace_path: "str | None",
    wall_time: float,
) -> dict:
    stats = result.stats
    return {
        "spec": payload,
        "completed": result.completed,
        "metrics": {
            "execution_cycles": stats["target.execution_cycles"],
            "global_time": stats["target.global_time"],
            "instructions": stats["target.instructions"],
            "host_time": stats["host.makespan"],
            "host_utilization": result.host_utilization,
            "kips": result.kips,
            "violations": (
                stats["violations.simulation_state"]
                + stats["violations.system_state"]
                + stats["violations.workload_state"]
            ),
            "workload_violations": stats["violations.workload_state"],
            "output_len": len(result.output),
        },
        "cores": [
            {
                "core": c.core_id,
                "committed": c.committed,
                "cycles": c.cycles,
                "l1_accesses": c.l1_accesses,
                "l1_misses": c.l1_misses,
            }
            for c in result.cores
        ],
        "output_sha256": output_digest(result.output),
        "stats": stats,
        "stats_digest": result.stats_sha256,
        "stats_dump": result.dump_json(),
        "provenance": {
            "repro_version": repro.__version__,
            "engine": "replay" if replayed else "direct",
            "trace_path": trace_path if replayed else None,
            "wall_time_s": wall_time,
            "created_unix": time.time(),
        },
    }


def execute(
    spec: JobSpec,
    store: "ResultStore | None" = None,
    *,
    trace="auto",
    refresh: bool = False,
) -> JobOutcome:
    """Resolve *spec* to a result record: store hit, replay, or direct run.

    *store* defaults to the shared on-disk store (``None`` there means
    caching is disabled and every call runs).  *trace* is ``"auto"``
    (consult the trace store), ``None`` (never replay) or an explicit
    capture path.  ``refresh=True`` skips the store read — the job runs
    and its record is rewritten (explicit ``--replay-trace`` runs use
    this, so asking to exercise replay really exercises it).
    """
    if spec.mode != "timing":
        raise ValueError(f"execute() runs timing jobs; got mode={spec.mode!r}")
    workload = spec_program(spec)
    from repro.trace.format import program_digest as _pd

    pdigest = _pd(workload.program)
    key = job_key(spec, program_digest=pdigest)
    if store is not None and not refresh:
        record = store.load(key)
        if record is not None:
            return JobOutcome(key=key, record=record, hit=True)

    trace_path = _resolve_trace(spec, pdigest, trace)
    t0 = time.perf_counter()
    result, replayed = _run_spec(spec, workload, trace_path, fallback=trace == "auto")
    wall_time = time.perf_counter() - t0
    problems = workload.mismatches(result.output)
    if problems:
        raise AssertionError(
            f"{spec.workload} mis-executed under {spec.scheme}: "
            + "; ".join(problems)
        )
    record = _timing_record(
        spec,
        digest_payload(spec, pdigest),
        result,
        replayed=replayed,
        trace_path=trace_path,
        wall_time=wall_time,
    )
    if store is not None:
        store.put(key, record)
        record = store.load(key) or record  # hand back the sealed form
    return JobOutcome(
        key=key, record=record, hit=False, result=result, replayed=replayed
    )


def execute_functional(
    spec: JobSpec,
    store: "ResultStore | None" = None,
    *,
    dispatch: str = "predecoded",
) -> JobOutcome:
    """Run *spec* functionally (no timing model), recording the outcome.

    Always runs — the caller is measuring wall time — but routes identity
    and persistence through the same store as timing jobs.  If a stored
    record disagrees with the fresh run on any deterministic field, the
    mismatches come back in ``outcome.drift`` (a determinism bug surfaced,
    not silently overwritten).
    """
    if spec.mode != "functional":
        raise ValueError(
            f"execute_functional() runs functional jobs; got mode={spec.mode!r}"
        )
    from repro.cpu.interp import run_functional
    from repro.trace.format import program_digest as _pd

    workload = spec_program(spec)
    pdigest = _pd(workload.program)
    key = job_key(spec, program_digest=pdigest)
    prior = store.load(key) if store is not None else None

    t0 = time.perf_counter()
    result = run_functional(workload.program, dispatch=dispatch)
    wall_time = time.perf_counter() - t0

    record = {
        "spec": digest_payload(spec, pdigest),
        "completed": result.exit_code in (0, None),
        "metrics": {
            "instructions": result.instructions,
            "exit_code": result.exit_code,
            "output_len": len(result.output),
        },
        "output_sha256": output_digest(result.output),
        "stats": {},
        "stats_digest": "",
        "provenance": {
            "repro_version": repro.__version__,
            "engine": "functional",
            "dispatch": dispatch,
            "wall_time_s": wall_time,
            "kips": result.instructions / wall_time / 1000.0 if wall_time else 0.0,
            "created_unix": time.time(),
        },
    }
    drift = []
    if prior is not None:
        for field_path in ("metrics", "output_sha256"):
            if prior.get(field_path) != record[field_path]:
                drift.append(
                    f"{field_path}: stored {prior.get(field_path)!r} "
                    f"!= fresh {record[field_path]!r}"
                )
    if store is not None:
        store.put(key, record)
        record = store.load(key) or record
    return JobOutcome(
        key=key,
        record=record,
        hit=prior is not None,
        result=result,
        drift=drift,
    )


def record_summary(record: dict) -> str:
    """The one-line run summary, reconstructed from a stored record.

    Field-for-field the format of :meth:`SimulationResult.summary`, so a
    served `run` prints the same line a fresh one would.
    """
    m, stats = record["metrics"], record["stats"]
    violations = (
        f"violations: simulation={stats.get('violations.simulation_state', 0)} "
        f"system={stats.get('violations.system_state', 0)} "
        f"workload={stats.get('violations.workload_state', 0)} "
        f"fastforwards={stats.get('violations.fastforwards', 0)}"
    )
    cross = stats.get("violations.cross_domain", 0)
    if cross:
        violations += f" cross_domain={cross}"
    spec = record["spec"]
    return (
        f"[{spec['sim']['scheme']} H={spec['host']['num_cores']}] "
        f"T_target={m['execution_cycles']} cyc, instr={m['instructions']}, "
        f"T_host={m['host_time']:.0f} u ({m['kips']:.1f} KIPS), "
        f"util={m['host_utilization']:.2f}, {violations}"
    )
