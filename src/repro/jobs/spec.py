"""Canonical job identity: :class:`JobSpec` and its content-addressed key.

A simulation in this system is a pure function of (program, configuration,
seed) — DESIGN.md §12.  ``JobSpec`` names one such evaluation; ``job_key``
renders its identity as a SHA-256 over a canonical-JSON payload that
incorporates

* the **program content digest** (text + data + entry of the compiled
  workload image) — editing a workload's source changes the key;
* the **toolchain fingerprint** (the bytes of every compiler/assembler
  module, :func:`repro.lang.compiler.toolchain_fingerprint`) — editing any
  stage of the toolchain changes the key;
* every **digest-relevant** configuration field: the full target/host
  models and the :class:`SimConfig` fields that can influence simulated
  behaviour (scheme, seed, windows, domains, faults, …);
* the job-layer format version (bump ``JOB_FORMAT`` to orphan every record).

**Digest-excluded fields** are execution mechanics proven observationally
equivalent elsewhere in the test suite: ``stepping``/``scheduling``/
``dispatch`` (digest-identical by the differential matrices, DESIGN.md
§6/§9), the trace mode (replay is dump-identical to direct execution,
§11), ``backend`` at one memory domain (byte-identical to the monolithic
manager by construction, §10), the wall-clock watchdog, the serve layer's
progress heartbeat (observation only, §13), and output paths.
Changing any of them must NOT change the key — a replayed run and a direct
run of the same job are the *same job* and share one stored record.
``backend`` at N>1 domains stays in the key: the dump's value lines
legitimately differ there and the process backend restricts what can run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace

from repro._util import canonical_json, sha256_hex
from repro.core.config import HostConfig, SimConfig, TargetConfig

__all__ = [
    "JOB_FORMAT",
    "JobSpec",
    "digest_payload",
    "job_key",
    "spec_from_dict",
    "spec_program",
    "spec_to_dict",
]

#: Job-layer format version: part of every key, so bumping it invalidates
#: every stored result record at once (mirrors the compile cache's
#: ``_CACHE_FORMAT``).
JOB_FORMAT = 1

#: SimConfig fields that participate in the job key.  Everything else on
#: SimConfig is execution mechanics (see the module docstring).
DIGEST_SIM_FIELDS = (
    "scheme",
    "seed",
    "max_cycles",
    "max_instructions",
    "detect_violations",
    "fastforward",
    "batch_cycles",
    "turn_cycles",
    "wait_chunk",
    "stats_interval",
    "fault_plan",
    "checkpoint_interval",
    "mem_domains",
)


@dataclass(frozen=True)
class JobSpec:
    """One canonical simulation (or functional-execution) job.

    ``workload``/``scale``/``workload_args`` name the program;
    ``scheme``/``seed``/``host_cores``/``core_model``/``fastforward`` are
    the common knobs every entry point exposes; ``sim`` optionally carries
    a full :class:`SimConfig` for the long tail (windows, domains, faults).
    The top-level fields are authoritative: :meth:`sim_config` overlays
    them onto ``sim``, so a spec can never disagree with itself.

    ``mode`` is ``"timing"`` for engine runs and ``"functional"`` for
    pure functional-simulator executions (the ``bench`` entry point).
    """

    workload: str
    scale: str
    scheme: str = "cc"
    seed: int = 1
    host_cores: int = 8
    core_model: str = "inorder"
    fastforward: bool = False
    mode: str = "timing"
    #: Extra ``make_workload`` overrides as a sorted (name, value) tuple —
    #: hashable, picklable, canonically ordered (e.g. ``(("nthreads", 1),)``
    #: for the functional bench).
    workload_args: tuple = ()
    #: Optional full SimConfig for fields beyond the common knobs.
    sim: SimConfig | None = None

    @classmethod
    def build(
        cls,
        workload: str,
        scale: str,
        *,
        scheme: str = "cc",
        seed: int = 1,
        host_cores: int = 8,
        core_model: str = "inorder",
        fastforward: bool = False,
        mode: str = "timing",
        workload_args: dict | None = None,
        **sim_overrides,
    ) -> "JobSpec":
        """Construct a spec; ``sim_overrides`` become SimConfig fields."""
        sim = (
            SimConfig(
                scheme=scheme, seed=seed, fastforward=fastforward, **sim_overrides
            )
            if sim_overrides
            else None
        )
        return cls(
            workload=workload,
            scale=scale,
            scheme=scheme,
            seed=seed,
            host_cores=host_cores,
            core_model=core_model,
            fastforward=fastforward,
            mode=mode,
            workload_args=tuple(sorted((workload_args or {}).items())),
            sim=sim,
        )

    def sim_config(self) -> SimConfig:
        """The run's SimConfig with the top-level fields overlaid."""
        base = self.sim if self.sim is not None else SimConfig()
        return replace(
            base, scheme=self.scheme, seed=self.seed, fastforward=self.fastforward
        )

    def target_config(self) -> TargetConfig:
        return TargetConfig(core_model=self.core_model)

    def host_config(self) -> HostConfig:
        return HostConfig(num_cores=self.host_cores)


def spec_to_dict(spec: JobSpec) -> dict:
    """*spec* as a JSON-pure dict (the serve submission wire format).

    Round-trips exactly through :func:`spec_from_dict`: same JobSpec, same
    job key — a job submitted over the wire is the same job its worker
    executes.
    """
    d = {
        "workload": spec.workload,
        "scale": spec.scale,
        "scheme": spec.scheme,
        "seed": spec.seed,
        "host_cores": spec.host_cores,
        "core_model": spec.core_model,
        "fastforward": spec.fastforward,
        "mode": spec.mode,
        "workload_args": [list(pair) for pair in spec.workload_args],
    }
    if spec.sim is not None:
        d["sim"] = asdict(spec.sim)
    return d


def spec_from_dict(d: dict) -> JobSpec:
    """Rebuild a :class:`JobSpec` from its :func:`spec_to_dict` rendering.

    Tolerates missing optional fields (defaults apply) and unknown ``sim``
    keys (dropped — a newer client talking to an older daemon degrades to
    the fields both sides know rather than erroring).
    """
    sim = d.get("sim")
    sim_cfg = None
    if sim:
        known = {f.name for f in fields(SimConfig)}
        sim_cfg = SimConfig(**{k: v for k, v in sim.items() if k in known})
    return JobSpec(
        workload=d["workload"],
        scale=d["scale"],
        scheme=d.get("scheme", "cc"),
        seed=int(d.get("seed", 1)),
        host_cores=int(d.get("host_cores", 8)),
        core_model=d.get("core_model", "inorder"),
        fastforward=bool(d.get("fastforward", False)),
        mode=d.get("mode", "timing"),
        workload_args=tuple(
            sorted((k, v) for k, v in (d.get("workload_args") or []))
        ),
        sim=sim_cfg,
    )


def spec_program(spec: JobSpec):
    """Build *spec*'s workload (compile cached on disk) and return it."""
    from repro.workloads.registry import make_workload

    return make_workload(spec.workload, scale=spec.scale, **dict(spec.workload_args))


def digest_payload(spec: JobSpec, program_digest: str) -> dict:
    """The canonical-JSON payload whose SHA-256 is the job key.

    Stored verbatim in every result record (provenance: a record explains
    its own identity), so the payload must stay JSON-pure and stable.
    """
    from repro.lang.compiler import toolchain_fingerprint

    payload = {
        "format": JOB_FORMAT,
        "mode": spec.mode,
        "workload": {
            "name": spec.workload,
            "scale": spec.scale,
            "args": dict(spec.workload_args),
        },
        "program_digest": program_digest,
        "toolchain": toolchain_fingerprint(),
    }
    if spec.mode == "functional":
        # Functional executions depend on the program alone: no timing
        # model, no host, no scheme.  (dispatch is digest-excluded — the
        # predecoded and oracle layers are bit-identical by construction.)
        return payload
    sim = spec.sim_config()
    sim_fields = {name: getattr(sim, name) for name in DIGEST_SIM_FIELDS}
    if sim.mem_domains > 1:
        sim_fields["backend"] = sim.backend
    payload["target"] = asdict(spec.target_config())
    payload["host"] = asdict(spec.host_config())
    payload["sim"] = sim_fields
    return payload


def job_key(spec: JobSpec, program_digest: str | None = None) -> str:
    """The content-addressed identity of *spec* (see the module docstring).

    *program_digest* is computed from the compiled workload image when not
    supplied — callers that already hold the program pass it to skip the
    (cached) compile.
    """
    if program_digest is None:
        from repro.trace.format import program_digest as _pd

        program_digest = _pd(spec_program(spec).program)
    return sha256_hex(canonical_json(digest_payload(spec, program_digest)))
