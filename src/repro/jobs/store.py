"""Persistent, digest-sealed result store: ``.repro_cache/results/``.

One JSON file per :func:`repro.jobs.spec.job_key`, holding everything a
repeated request needs without re-simulating (DESIGN.md §12): the flat
stats dump and its digest, the rendered ``--stats-out`` document, the
output fingerprint, the derived point metrics, per-core summaries, and
provenance (trace key used, wall time, repro version).

**Sealing.**  Every record carries ``record_sha256`` — a SHA-256 over the
canonical-JSON rendering of the record *without* that field.  ``load``
recomputes it; any mismatch (torn write survived somehow, bit rot, a hand
edit) demotes the record to a miss, never to silent garbage.  The same
check backs ``repro cache gc``.

**Quarantine.**  A *corrupt* entry (unparseable bytes, a failed seal, an
embedded key that disagrees with its filename) is not merely ignored: it
is atomically renamed to ``<key>.corrupt`` so the evidence survives for
inspection while the key becomes a clean miss that the next run rewrites.
A *stale* entry (an older ``format``) is a plain miss — an old format is
not damage.  Every load outcome is counted in the module-level
:data:`TELEMETRY` (hits / misses / corrupt / quarantined), and
``repro cache verify`` (:meth:`ResultStore.verify`) scans the whole store
and reports per-key integrity without waiting for a lookup to stumble on
the damage.

**Concurrency.**  Writes go through :func:`repro._util.atomic_write_text`
(same-directory tempfile + ``os.replace``) — the compile cache's pattern.
Two processes computing the same key race benignly: both runs are
deterministic, both records seal valid, last writer wins, and readers only
ever observe a complete record (``tests/jobs/test_store.py`` pins this).

``REPRO_CACHE_DIR`` overrides the cache root exactly as for compiled
programs; the empty string disables the store (``ResultStore.default()``
returns ``None`` and execution layers fall back to always running).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro._util import atomic_write_text, canonical_json, sha256_hex
from repro.lang.compiler import cache_dir

__all__ = ["RESULT_FORMAT", "TELEMETRY", "ResultStore", "results_dir", "seal_record"]

#: Store format version: recorded in every file; a mismatch is a miss.
RESULT_FORMAT = 1

_SEAL_FIELD = "record_sha256"

#: Process-wide load-outcome counters, folded by every :class:`ResultStore`
#: instance (``ResultStore.default()`` constructs a fresh handle per call,
#: so per-instance counters would be invisible).  The serve daemon surfaces
#: these in ``/api/status``; tests read them to assert that corruption was
#: *observed*, not silently skipped.
TELEMETRY = {"hits": 0, "misses": 0, "stale": 0, "corrupt": 0, "quarantined": 0}


def results_dir(create: bool = False) -> Path | None:
    """The result section of the cache root, or ``None`` when disabled."""
    root = cache_dir()
    if root is None:
        return None
    results = root / "results"
    if create:
        results.mkdir(parents=True, exist_ok=True)
    return results


def seal_record(record: dict) -> str:
    """The record's integrity digest (over everything but the seal field)."""
    body = {k: v for k, v in record.items() if k != _SEAL_FIELD}
    return sha256_hex(canonical_json(body))


class ResultStore:
    """Content-addressed store of finished job records."""

    def __init__(self, root: "Path | str") -> None:
        self.root = Path(root)

    @classmethod
    def default(cls) -> "ResultStore | None":
        """The store under the shared cache root, or ``None`` when on-disk
        caching is disabled (``REPRO_CACHE_DIR=""``)."""
        root = results_dir()
        return cls(root) if root is not None else None

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> dict | None:
        """The sealed record for *key*, or ``None`` (absent/corrupt/stale).

        A record only counts when it parses, its format matches, its
        embedded key matches the filename, and its seal verifies.  A stale
        format is a plain miss; a *corrupt* entry (torn bytes, failed seal,
        key mismatch) is additionally quarantined to ``<key>.corrupt`` so
        the next lookup finds a clean miss and the evidence survives.
        Either way the caller sees ``None`` and the job simply re-runs —
        damage is telemetry (:data:`TELEMETRY`), never an exception.
        """
        record, status = self._read(key)
        if status == "ok":
            TELEMETRY["hits"] += 1
            return record
        TELEMETRY["misses"] += 1
        if status == "stale":
            TELEMETRY["stale"] += 1
        elif status == "corrupt":
            TELEMETRY["corrupt"] += 1
            self.quarantine(key)
        return None

    def _read(self, key: str) -> "tuple[dict | None, str]":
        """Parse + classify *key*'s file: (record-or-None, status) where
        status is ``"ok" | "absent" | "stale" | "corrupt"``."""
        path = self.path(key)
        try:
            with open(path) as fh:
                record = json.load(fh)
        except FileNotFoundError:
            return None, "absent"
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None, "corrupt"
        status = self.classify(record, key=key)
        return (record if status == "ok" else None), status

    @staticmethod
    def classify(record: object, key: str | None = None) -> str:
        """Integrity class of a parsed record: ``"ok" | "stale" | "corrupt"``.

        A non-current ``format`` is *stale* (an old layout, not damage);
        everything else that fails — wrong shape, filename/key mismatch,
        broken seal — is *corrupt*.
        """
        if not isinstance(record, dict):
            return "corrupt"
        if record.get("format") != RESULT_FORMAT:
            return "stale"
        if key is not None and record.get("job_key") != key:
            return "corrupt"
        seal = record.get(_SEAL_FIELD)
        if isinstance(seal, str) and seal == seal_record(record):
            return "ok"
        return "corrupt"

    @staticmethod
    def validate(record: object, key: str | None = None) -> bool:
        """Structural + seal validity of a parsed record."""
        return ResultStore.classify(record, key=key) == "ok"

    def quarantine(self, key: str) -> "Path | None":
        """Move *key*'s entry aside to ``<key>.corrupt`` (atomic rename).

        Returns the quarantine path, or ``None`` when the entry vanished
        first (two readers racing on the same damaged file quarantine it
        once — ``os.replace`` makes the second rename a no-op failure).
        """
        src = self.path(key)
        dst = src.with_suffix(".corrupt")
        try:
            os.replace(src, dst)
        except OSError:
            return None
        TELEMETRY["quarantined"] += 1
        return dst

    def verify(self) -> dict:
        """Scan every entry and report store integrity (``cache verify``).

        Corrupt entries are quarantined as a side effect — a verify pass
        leaves the store with only loadable or stale entries on disk.
        Returns ``{"checked", "ok": [...], "stale": [...], "corrupt":
        [...], "quarantined": [...]}`` where *quarantined* lists the
        ``.corrupt`` files present after the scan (earlier casualties
        included).
        """
        ok: list[str] = []
        stale: list[str] = []
        corrupt: list[str] = []
        for key in self.keys():
            _, status = self._read(key)
            if status == "ok":
                ok.append(key)
            elif status == "stale":
                stale.append(key)
            elif status == "corrupt":
                corrupt.append(key)
                self.quarantine(key)
        quarantined = (
            sorted(p.name for p in self.root.glob("*.corrupt"))
            if self.root.is_dir()
            else []
        )
        return {
            "checked": len(ok) + len(stale) + len(corrupt),
            "ok": ok,
            "stale": stale,
            "corrupt": corrupt,
            "quarantined": quarantined,
        }

    def put(self, key: str, record: dict) -> Path:
        """Seal and atomically publish *record* under *key*.

        The record is normalised through JSON before sealing so that the
        sealed bytes and the re-loaded value can never disagree (e.g.
        tuples vs lists) — what you store is exactly what ``load`` hands
        back.
        """
        record = json.loads(json.dumps(record))
        record["format"] = RESULT_FORMAT
        record["job_key"] = key
        record[_SEAL_FIELD] = seal_record(record)
        path = self.path(key)
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, json.dumps(record, indent=2, sort_keys=True) + "\n")
        return path

    # ---------------------------------------------------------- management
    def keys(self) -> list[str]:
        """All stored keys (filename-derived; no validity check)."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def entries(self) -> "list[tuple[str, dict | None]]":
        """(key, record-or-None) for every file, invalid records as None.

        A management scan, not a lookup: reads classify but never
        quarantine or count toward :data:`TELEMETRY` (``gc --dry-run``
        must observe without mutating).
        """
        return [(key, self._read(key)[0]) for key in self.keys()]

    def gc(self, *, toolchain: str | None = None, dry_run: bool = False) -> list[str]:
        """Drop invalid records, plus valid ones recorded under a different
        toolchain fingerprint when *toolchain* is given (they can never be
        hit again — their keys embed the old fingerprint).  Returns the
        dropped keys."""
        dropped = []
        for key, record in self.entries():
            stale = record is None or (
                toolchain is not None
                and record.get("spec", {}).get("toolchain") != toolchain
            )
            if not stale:
                continue
            dropped.append(key)
            if not dry_run:
                self.path(key).unlink(missing_ok=True)
        return dropped

    def clear(self) -> int:
        """Remove every record; returns the number removed."""
        removed = 0
        for key in self.keys():
            self.path(key).unlink(missing_ok=True)
            removed += 1
        return removed
