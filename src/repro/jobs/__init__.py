"""Content-addressed job execution layer (DESIGN.md §12).

Every entry point — ``run``, ``sweep``, the figure/table experiment
modules, ``bench`` — resolves its work through one canonical identity
(:class:`JobSpec` / :func:`job_key`), one persistent memo
(:class:`ResultStore` under ``.repro_cache/results/``), and one execution
pipeline (:func:`execute`: store hit → trace replay → direct run).  A
repeated request is a store lookup, not a re-simulation; the future
``repro serve`` daemon (ROADMAP item 1) is a network front-end over
exactly these three calls.
"""

from repro.jobs.execute import (
    JobOutcome,
    execute,
    execute_functional,
    record_summary,
)
from repro.jobs.spec import JOB_FORMAT, JobSpec, digest_payload, job_key, spec_program
from repro.jobs.store import RESULT_FORMAT, ResultStore, results_dir, seal_record

__all__ = [
    "JOB_FORMAT",
    "JobOutcome",
    "JobSpec",
    "RESULT_FORMAT",
    "ResultStore",
    "digest_payload",
    "execute",
    "execute_functional",
    "job_key",
    "record_summary",
    "results_dir",
    "seal_record",
    "spec_program",
]
