"""Event types flowing through the OutQ / InQ / GQ queues (paper Figure 1).

Core threads emit *requests* (L1 miss service: GETS/GETX/UPGRADE, and PUTM
writebacks) into their OutQ.  The manager drains OutQs into the GQ,
services requests against the shared memory system, and pushes *responses*
(data + granted MESI state) and *coherence messages* (invalidate/downgrade)
into core InQs.  "In each entry, a timestamp records the time ... an event
initiates and should take effect."

Hot-path layout: :class:`EvKind` is an :class:`~enum.IntEnum` so kinds can
index flat dispatch tables (:data:`REQUEST_KINDS` is such a table), and
:class:`Event` is a ``__slots__`` dataclass — millions of events are created
per run, so per-instance dict overhead is worth eliminating.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.mem.directory import ReqKind

__all__ = ["EvKind", "Event", "REQUEST_KINDS", "new_seq"]


class EvKind(enum.IntEnum):
    # Core -> manager (OutQ / GQ).  Request kinds come first so
    # ``kind <= _LAST_REQUEST`` and table indexing stay trivial.
    GETS = 0
    GETX = 1
    UPGRADE = 2
    PUTM = 3
    # Manager -> core (InQ).
    RESPONSE = 4
    INVALIDATE = 5
    DOWNGRADE = 6

    @property
    def label(self) -> str:
        return self.name.lower()


_LAST_REQUEST = EvKind.PUTM

#: OutQ kinds and their directory request mapping, indexed by ``int(kind)``
#: (``None`` for the manager->core kinds).
REQUEST_KINDS: tuple[ReqKind | None, ...] = (
    ReqKind.GETS,
    ReqKind.GETX,
    ReqKind.UPGRADE,
    ReqKind.PUTM,
    None,
    None,
    None,
)

_seq_counter = itertools.count()


def new_seq() -> int:
    """Monotonic sequence number used as a deterministic tie-breaker."""
    return next(_seq_counter)


def seq_position() -> int:
    """The next value :func:`new_seq` will hand out (without consuming it).

    ``itertools.count`` exposes its position only through ``repr`` —
    ``count(42)`` — which is stable, documented behaviour; parsing it avoids
    burning a sequence number just to observe the counter.  Checkpoints
    record this so a restored process replays the exact seq stream (seqs are
    heap tie-breakers, so absolute values must line up across processes).
    """
    text = repr(_seq_counter)
    return int(text[text.index("(") + 1 : -1])


def seq_advance_to(position: int) -> None:
    """Fast-forward the global seq counter to at least *position*.

    Used by checkpoint restore.  Never rewinds: in-process restores may have
    already consumed seqs past the checkpoint, and monotonicity is the only
    property the tie-break depends on.
    """
    global _seq_counter
    if position > seq_position():
        _seq_counter = itertools.count(position)


@dataclass(slots=True)
class Event:
    """One queue entry.

    ``ts`` is the simulated time the event initiates (requests: the issuing
    core's local time) or should take effect (responses: data-ready time;
    coherence messages: directory processing time).
    """

    kind: EvKind
    addr: int
    core: int
    ts: int
    seq: int = field(default_factory=new_seq)
    #: For RESPONSE: the MESI state granted to the requester's L1.
    grant: str | None = None
    #: For RESPONSE: the seq of the request this answers.
    req_seq: int | None = None
    #: GQ bookkeeping: set once the manager has serviced this entry (the GQ
    #: keeps the same event in both its FIFO and its timestamp heap).
    consumed: bool = field(default=False, compare=False, repr=False)

    @property
    def is_request(self) -> bool:
        return self.kind <= _LAST_REQUEST

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind.label} core={self.core} addr={self.addr:#x} ts={self.ts} seq={self.seq}>"
