"""Event types flowing through the OutQ / InQ / GQ queues (paper Figure 1).

Core threads emit *requests* (L1 miss service: GETS/GETX/UPGRADE, and PUTM
writebacks) into their OutQ.  The manager drains OutQs into the GQ,
services requests against the shared memory system, and pushes *responses*
(data + granted MESI state) and *coherence messages* (invalidate/downgrade)
into core InQs.  "In each entry, a timestamp records the time ... an event
initiates and should take effect."
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.mem.directory import ReqKind

__all__ = ["EvKind", "Event", "REQUEST_KINDS", "new_seq"]


class EvKind(enum.Enum):
    # Core -> manager (OutQ / GQ).
    GETS = "gets"
    GETX = "getx"
    UPGRADE = "upgrade"
    PUTM = "putm"
    # Manager -> core (InQ).
    RESPONSE = "response"
    INVALIDATE = "invalidate"
    DOWNGRADE = "downgrade"


#: OutQ kinds and their directory request mapping.
REQUEST_KINDS: dict[EvKind, ReqKind] = {
    EvKind.GETS: ReqKind.GETS,
    EvKind.GETX: ReqKind.GETX,
    EvKind.UPGRADE: ReqKind.UPGRADE,
    EvKind.PUTM: ReqKind.PUTM,
}

_seq_counter = itertools.count()


def new_seq() -> int:
    """Monotonic sequence number used as a deterministic tie-breaker."""
    return next(_seq_counter)


@dataclass
class Event:
    """One queue entry.

    ``ts`` is the simulated time the event initiates (requests: the issuing
    core's local time) or should take effect (responses: data-ready time;
    coherence messages: directory processing time).
    """

    kind: EvKind
    addr: int
    core: int
    ts: int
    seq: int = field(default_factory=new_seq)
    #: For RESPONSE: the MESI state granted to the requester's L1.
    grant: str | None = None
    #: For RESPONSE: the seq of the request this answers.
    req_seq: int | None = None

    @property
    def is_request(self) -> bool:
        return self.kind in REQUEST_KINDS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind.value} core={self.core} addr={self.addr:#x} ts={self.ts} seq={self.seq}>"
