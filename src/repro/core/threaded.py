"""Threaded engine: the paper's actual Pthreads structure.

One real :class:`threading.Thread` per target core plus one manager thread,
communicating through the same CoreThread/Manager objects as the sequential
engine, paced by the same ``local``/``max_local``/``global`` protocol with a
condition variable standing in for the paper's futex sleep/wake.

**What this engine is for** (DESIGN.md §2): CPython's GIL serialises the
threads, so *wall-clock speedup is not expected* — that is exactly the
repro gate this project works around with the virtual host.  The threaded
engine exists to prove the concurrent algorithm itself: no lost events, no
deadlock, functional outputs equal to the sequential engine's, and the clock
invariant holding under genuine preemption.  Timing results are
nondeterministic and reported as real wall-clock.

Concurrency protocol:

* per-core InQs are wrapped in a lock (manager pushes, core pops);
* OutQ is single-producer/single-consumer lock-free (atomic ``popleft``);
* the system-emulation layer (Table 1 API, spawn/join, heap, output) is
  serialised by one *emulation lock* — the paper emulates these "outside the
  simulator", which is what makes this sound;
* ``local_time``/``max_local_time`` are plain ints (atomic loads/stores
  under the GIL); window sleeps use a shared Condition.
"""

from __future__ import annotations

import sys
import threading
import time
import traceback

from repro.core.corethread import CoreState
from repro.core.engine import EngineError, SequentialEngine
from repro.core.events import Event
from repro.core.queues import InQ
from repro.core.results import SimulationResult
from repro.host.costmodel import HOST_UNIT_SECONDS

__all__ = ["SimulationHungError", "ThreadedEngine"]


class SimulationHungError(EngineError):
    """The threaded run made no simulation progress for the watchdog window.

    Structured for post-mortems: carries the clock protocol's state at the
    moment of the abort (global time plus every core's ``local`` /
    ``max_local`` window position) and a per-thread Python stack dump, so a
    hang is attributable — a core asleep on its window edge, a manager stuck
    in GQ service, a lost wake — without re-running under a debugger.
    """

    def __init__(
        self,
        timeout: float,
        global_time: int,
        core_clocks: list[dict],
        stacks: str,
    ) -> None:
        self.timeout = timeout
        self.global_time = global_time
        #: One entry per core: core, state, local, max_local, inq, outq.
        self.core_clocks = core_clocks
        #: Formatted ``sys._current_frames()`` dump of the engine's threads.
        self.stacks = stacks
        lines = [
            f"threaded run made no progress for {timeout:.1f}s "
            f"(global_time={global_time}):"
        ]
        for entry in core_clocks:
            lines.append(
                "  core {core}: state={state} local={local} "
                "max_local={max_local} inq={inq} outq={outq}".format(**entry)
            )
        lines.append("thread stacks at abort:")
        lines.append(stacks)
        super().__init__("\n".join(lines))


class _LockedInQ:
    """Thread-safe wrapper over an InQ (manager producer, core consumer)."""

    def __init__(self, inner: InQ) -> None:
        self._inner = inner
        self._lock = threading.Lock()

    def push(self, event: Event) -> None:
        with self._lock:
            self._inner.push(event)

    def pop_due(self, now: int):
        with self._lock:
            return self._inner.pop_due(now)

    def peek_ts(self):
        with self._lock:
            return self._inner.peek_ts()

    def __len__(self) -> int:
        with self._lock:
            return len(self._inner)


class ThreadedEngine(SequentialEngine):
    """Run the simulation on real Python threads (Pthreads analogue)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._window_cond = threading.Condition()
        self._emu_lock = threading.RLock()
        self._stop = threading.Event()
        self._error: BaseException | None = None
        # Thread-safe InQs.
        for ct in self.cores:
            ct.inq = _LockedInQ(ct.inq)  # type: ignore[assignment]
        # Serialise the emulation layer (syscalls can run concurrently).
        if self.system is not None:
            inner_syscall = self.system.syscall

            def locked_syscall(core, state, ts, _inner=inner_syscall):
                with self._emu_lock:
                    return _inner(core, state, ts)

            self.system.syscall = locked_syscall  # type: ignore[method-assign]

    # ------------------------------------------------------------ activation
    def _activate_context(self, core: int, pc: int, arg: int, ts: int) -> None:
        super()._activate_context(core, pc, arg, ts)
        with self._window_cond:
            self._window_cond.notify_all()

    # --------------------------------------------------------------- threads
    def _core_thread_body(self, idx: int) -> None:
        ct = self.cores[idx]
        try:
            while not self._stop.is_set():
                if ct.state != CoreState.ACTIVE:
                    with self._window_cond:
                        self._window_cond.wait(timeout=0.005)
                    continue
                if ct.local_time >= ct.max_local_time:
                    # Window edge: sleep until the manager slides the window.
                    with self._window_cond:
                        if ct.local_time >= ct.max_local_time:
                            self._window_cond.wait(timeout=0.005)
                    continue
                # Turn budget: the window remainder, capped so the thread
                # re-checks the stop flag regularly (su's window is infinite).
                budget = ct.max_local_time - ct.local_time
                if budget > 4096:
                    budget = 4096
                if self.sim.batch_cycles and self.sim.batch_cycles < budget:
                    budget = self.sim.batch_cycles
                stats = ct.run(budget)
                if stats.wakes:
                    with self._emu_lock:
                        for core_id, release_ts in stats.wakes:
                            self.cores[core_id].model.release(release_ts)
                with self._emu_lock:
                    self.total_committed += stats.committed
        except BaseException as exc:  # pragma: no cover - surfaced in run()
            self._error = exc
            self._stop.set()

    def _manager_thread_body(self) -> None:
        try:
            while not self._stop.is_set():
                result = self.manager.step()
                if result.raised:
                    with self._window_cond:
                        self._window_cond.notify_all()
                if self._all_done():
                    self._stop.set()
                    with self._window_cond:
                        self._window_cond.notify_all()
                    return
                if result.work == 0:
                    time.sleep(0)  # yield the GIL while polling
        except BaseException as exc:  # pragma: no cover
            self._error = exc
            self._stop.set()

    # -------------------------------------------------------------- watchdog
    def _progress_marker(self) -> tuple:
        """A value that changes iff the simulation advanced.

        Global time alone is not enough — a run-ahead core makes real
        progress while global time waits on a straggler — so local clocks
        and the commit counter are folded in.
        """
        return (
            self.manager.global_time,
            self.total_committed,
            sum(ct.local_time for ct in self.cores),
        )

    def _dump_stacks(self, threads: list[threading.Thread]) -> str:
        """Format the Python stack of every engine thread still alive."""
        frames = sys._current_frames()
        lines: list[str] = []
        for t in threads:
            frame = frames.get(t.ident) if t.ident is not None else None
            lines.append(f"--- {t.name} ({'alive' if t.is_alive() else 'dead'}) ---")
            if frame is None:
                lines.append("  (no frame)")
            else:
                lines.extend(
                    "  " + ln
                    for entry in traceback.format_stack(frame)
                    for ln in entry.rstrip().splitlines()
                )
        return "\n".join(lines)

    def _hung_error(self, timeout: float, threads: list[threading.Thread]) -> SimulationHungError:
        core_clocks = [
            {
                "core": ct.core_id,
                "state": ct.state.value if hasattr(ct.state, "value") else str(ct.state),
                "local": ct.local_time,
                "max_local": ct.max_local_time,
                "inq": len(ct.inq),
                "outq": len(ct.outq),
            }
            for ct in self.cores
        ]
        return SimulationHungError(
            timeout, self.manager.global_time, core_clocks, self._dump_stacks(threads)
        )

    # ------------------------------------------------------------------- run
    def run(self, timeout: float | None = None) -> SimulationResult:
        """Run to completion on real threads; returns a SimulationResult
        whose host_time is measured wall-clock (GIL-bound, nondeterministic).

        *timeout* is the **watchdog window** (default: the run's
        ``SimConfig.host_timeout``): the run aborts with
        :class:`SimulationHungError` only after that many seconds with *no
        simulation progress* — total wall time is unbounded while clocks
        advance, so slow machines don't kill healthy long runs.
        """
        if timeout is None:
            timeout = self.sim.host_timeout
        threads = [
            threading.Thread(target=self._core_thread_body, args=(i,), name=f"core-{i}", daemon=True)
            for i in range(len(self.cores))
        ]
        manager = threading.Thread(target=self._manager_thread_body, name="manager", daemon=True)
        start = time.perf_counter()
        for t in threads:
            t.start()
        manager.start()
        # Progress-based watchdog: poll in short joins; reset the deadline
        # whenever any clock moved, abort (with stacks) when none did for a
        # full window.
        poll = min(0.2, timeout / 4) if timeout > 0 else 0.2
        last_marker = self._progress_marker()
        deadline = time.perf_counter() + timeout
        while True:
            manager.join(poll)
            if not manager.is_alive():
                break
            marker = self._progress_marker()
            if marker != last_marker:
                last_marker = marker
                deadline = time.perf_counter() + timeout
            elif time.perf_counter() >= deadline:
                error = self._hung_error(timeout, [manager, *threads])
                self._stop.set()
                with self._window_cond:
                    self._window_cond.notify_all()
                raise error
        for t in threads:
            t.join(5.0)
        if self._error is not None:
            raise self._error
        wall = time.perf_counter() - start
        self.manager.finalize()
        self.manager.check_invariants()
        result = self._build_result(completed=True)
        # Report measured wall time in host units for comparability.
        result.host_time = wall / HOST_UNIT_SECONDS
        result.host_busy = result.host_time
        return result
