"""Threaded engine: the paper's actual Pthreads structure.

One real :class:`threading.Thread` per target core plus one manager thread,
communicating through the same CoreThread/Manager objects as the sequential
engine, paced by the same ``local``/``max_local``/``global`` protocol with a
condition variable standing in for the paper's futex sleep/wake.

**What this engine is for** (DESIGN.md §2): CPython's GIL serialises the
threads, so *wall-clock speedup is not expected* — that is exactly the
repro gate this project works around with the virtual host.  The threaded
engine exists to prove the concurrent algorithm itself: no lost events, no
deadlock, functional outputs equal to the sequential engine's, and the clock
invariant holding under genuine preemption.  Timing results are
nondeterministic and reported as real wall-clock.

Concurrency protocol:

* per-core InQs are wrapped in a lock (manager pushes, core pops);
* OutQ is single-producer/single-consumer lock-free (atomic ``popleft``);
* the system-emulation layer (Table 1 API, spawn/join, heap, output) is
  serialised by one *emulation lock* — the paper emulates these "outside the
  simulator", which is what makes this sound;
* ``local_time``/``max_local_time`` are plain ints (atomic loads/stores
  under the GIL); window sleeps use a shared Condition.
"""

from __future__ import annotations

import threading
import time

from repro.core.corethread import CoreState
from repro.core.engine import EngineError, SequentialEngine
from repro.core.events import Event
from repro.core.queues import InQ
from repro.core.results import SimulationResult
from repro.host.costmodel import HOST_UNIT_SECONDS

__all__ = ["ThreadedEngine"]


class _LockedInQ:
    """Thread-safe wrapper over an InQ (manager producer, core consumer)."""

    def __init__(self, inner: InQ) -> None:
        self._inner = inner
        self._lock = threading.Lock()

    def push(self, event: Event) -> None:
        with self._lock:
            self._inner.push(event)

    def pop_due(self, now: int):
        with self._lock:
            return self._inner.pop_due(now)

    def peek_ts(self):
        with self._lock:
            return self._inner.peek_ts()

    def __len__(self) -> int:
        with self._lock:
            return len(self._inner)


class ThreadedEngine(SequentialEngine):
    """Run the simulation on real Python threads (Pthreads analogue)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._window_cond = threading.Condition()
        self._emu_lock = threading.RLock()
        self._stop = threading.Event()
        self._error: BaseException | None = None
        # Thread-safe InQs.
        for ct in self.cores:
            ct.inq = _LockedInQ(ct.inq)  # type: ignore[assignment]
        # Serialise the emulation layer (syscalls can run concurrently).
        if self.system is not None:
            inner_syscall = self.system.syscall

            def locked_syscall(core, state, ts, _inner=inner_syscall):
                with self._emu_lock:
                    return _inner(core, state, ts)

            self.system.syscall = locked_syscall  # type: ignore[method-assign]

    # ------------------------------------------------------------ activation
    def _activate_context(self, core: int, pc: int, arg: int, ts: int) -> None:
        super()._activate_context(core, pc, arg, ts)
        with self._window_cond:
            self._window_cond.notify_all()

    # --------------------------------------------------------------- threads
    def _core_thread_body(self, idx: int) -> None:
        ct = self.cores[idx]
        try:
            while not self._stop.is_set():
                if ct.state != CoreState.ACTIVE:
                    with self._window_cond:
                        self._window_cond.wait(timeout=0.005)
                    continue
                if ct.local_time >= ct.max_local_time:
                    # Window edge: sleep until the manager slides the window.
                    with self._window_cond:
                        if ct.local_time >= ct.max_local_time:
                            self._window_cond.wait(timeout=0.005)
                    continue
                # Turn budget: the window remainder, capped so the thread
                # re-checks the stop flag regularly (su's window is infinite).
                budget = ct.max_local_time - ct.local_time
                if budget > 4096:
                    budget = 4096
                if self.sim.batch_cycles and self.sim.batch_cycles < budget:
                    budget = self.sim.batch_cycles
                stats = ct.run(budget)
                if stats.wakes:
                    with self._emu_lock:
                        for core_id, release_ts in stats.wakes:
                            self.cores[core_id].model.release(release_ts)
                with self._emu_lock:
                    self.total_committed += stats.committed
        except BaseException as exc:  # pragma: no cover - surfaced in run()
            self._error = exc
            self._stop.set()

    def _manager_thread_body(self) -> None:
        try:
            while not self._stop.is_set():
                result = self.manager.step()
                if result.raised:
                    with self._window_cond:
                        self._window_cond.notify_all()
                if self._all_done():
                    self._stop.set()
                    with self._window_cond:
                        self._window_cond.notify_all()
                    return
                if result.work == 0:
                    time.sleep(0)  # yield the GIL while polling
        except BaseException as exc:  # pragma: no cover
            self._error = exc
            self._stop.set()

    # ------------------------------------------------------------------- run
    def run(self, timeout: float = 120.0) -> SimulationResult:
        """Run to completion on real threads; returns a SimulationResult
        whose host_time is measured wall-clock (GIL-bound, nondeterministic)."""
        threads = [
            threading.Thread(target=self._core_thread_body, args=(i,), name=f"core-{i}", daemon=True)
            for i in range(len(self.cores))
        ]
        manager = threading.Thread(target=self._manager_thread_body, name="manager", daemon=True)
        start = time.perf_counter()
        for t in threads:
            t.start()
        manager.start()
        manager.join(timeout)
        if manager.is_alive():
            self._stop.set()
            raise EngineError(f"threaded run exceeded {timeout}s (deadlock or overload)")
        for t in threads:
            t.join(5.0)
        if self._error is not None:
            raise self._error
        wall = time.perf_counter() - start
        self.manager.check_invariants()
        result = self._build_result(completed=True)
        # Report measured wall time in host units for comparability.
        result.host_time = wall / HOST_UNIT_SECONDS
        result.host_busy = result.host_time
        return result
