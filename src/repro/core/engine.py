"""Deterministic sequential engine: SlackSim on the virtual host.

This engine runs the exact thread structure of the paper — N core threads
plus one simulation manager thread — as coroutine-style batches interleaved
by a deterministic virtual-host schedule (DESIGN.md §2, "virtual host"
substitution).  Each batch's host cost comes from the calibrated
:class:`~repro.host.costmodel.CostModel`; batches are ordered by a priority
queue of host-ready times, so a single seed fixes both the modeled host
timeline *and* the target-side event interleaving.  That one coherent model
yields Figure 8 (speedups from host makespans) and Table 3 (errors from
target cycle counts) without real parallel hardware.

Thread-state protocol per core thread:

* runnable: in the host queue; runs batches of up to ``batch_cycles``;
* suspended: hit its window edge (``local == max_local``); leaves the queue
  and pays a suspend cost; the manager re-queues it (plus wake cost) when
  the scheme raises its window — this is exactly the futex sleep/wake cost
  structure that makes cycle-by-cycle synchronization expensive on a real
  host;
* done: its workload thread exited.
"""

from __future__ import annotations

import heapq
import itertools
import json

from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.core.corethread import CoreState, CoreThread
from repro.core.domains import BACKENDS, DomainManager
from repro.core.manager import SimulationManager
from repro.core.results import CoreResult, SimulationResult
from repro.core.schedule import split_batches, static_unsupported_reason
from repro.core.schemes import INFINITY, Lookahead, parse_scheme
from repro.cpu.arch import ArchState
from repro.cpu.interfaces import WAIT_EXTERNAL
from repro.cpu.l1cache import L1Cache
from repro.host.costmodel import CostModel
from repro.host.hostmodel import HostModel
from repro.isa.program import Program
from repro.mem.domains import ShardedMemorySystem
from repro.mem.memsys import MemorySystem
from repro.stats.registry import Distribution, StatsRegistry
from repro.sysapi.loader import load_program
from repro.sysapi.system import SystemEmulation
from repro.violations.detect import ViolationCounters, WordOrderTracker

__all__ = ["SequentialEngine", "EngineError", "run_simulation"]


class EngineError(RuntimeError):
    """The engine detected deadlock, runaway simulation or misconfiguration."""


class SequentialEngine:
    """Build and run one simulation of *program* under one scheme."""

    def __init__(
        self,
        program: Program | None,
        *,
        target: TargetConfig | None = None,
        host: HostConfig | None = None,
        sim: SimConfig | None = None,
        trace_cores: list | None = None,
    ) -> None:
        self.target = target or TargetConfig()
        self.host_cfg = host or HostConfig()
        self.sim = sim or SimConfig()
        self.scheme = parse_scheme(self.sim.scheme)
        if self.sim.scheduling not in ("dynamic", "static"):
            raise EngineError(f"unknown scheduling mode {self.sim.scheduling!r}")
        # Trace subsystem (DESIGN.md §11).  Resolved before the domain gates
        # so a trace-flavor replay presents as trace_cores to the process
        # backend, exactly like a direct trace-workload run.
        self._capture = None          # TraceRecorder while capturing a program run
        self._capture_streams = None  # pre-serialized streams (trace-flavor capture)
        self._capture_header = None   # non-None while a capture is armed
        self._replay_ops = None       # program-flavor replay: per-core op streams
        trace_mode = self.sim.trace_mode
        if trace_mode not in ("off", "capture", "replay"):
            raise EngineError(f"unknown trace_mode {trace_mode!r}")
        if trace_mode != "off":
            from repro.trace import capture as _tcapture
            from repro.trace import format as _tformat

            if not self.sim.trace_path:
                raise EngineError(f"trace_mode={trace_mode!r} requires trace_path")
        if trace_mode == "capture":
            for reason, bad in (
                ("fault injection perturbs the committed stream",
                 self.sim.fault_plan),
                ("a checkpointed capture could restore into a half-written stream",
                 self.sim.checkpoint_interval),
                ("a max_instructions cut records a partial execution",
                 self.sim.max_instructions),
            ):
                if bad:
                    raise EngineError(f"trace capture refused: {reason}")
            source = (
                json.loads(self.sim.trace_source) if self.sim.trace_source else None
            )
            if trace_cores is not None:
                streams, l1_configs = _tcapture.serialize_trace_cores(trace_cores)
                self._capture_streams = streams
                # Deliberately no scheme and no sim seed in the header: the
                # stream is invariant to both, so re-capturing the same
                # execution under any scheme/seed yields a byte-identical
                # file (tests/trace pins this).
                self._capture_header = {
                    "flavor": "trace",
                    "source": source, "l1_per_core": l1_configs,
                }
            else:
                if program is None:
                    raise EngineError("either a program or trace_cores is required")
                if self.target.core_model != "inorder":
                    raise EngineError(
                        "trace capture requires the inorder core model "
                        "(the capture seam lives at its commit sites)"
                    )
                if self.target.model_icache:
                    raise EngineError(
                        "trace capture records the D-side seam only; "
                        "disable model_icache"
                    )
                l1c = self.target.l1
                self._capture = _tcapture.TraceRecorder(self.target.num_cores)
                self._capture_header = {
                    "flavor": "program",
                    "program_digest": _tformat.program_digest(program),
                    "source": source,
                    "l1": {
                        "size_bytes": l1c.size_bytes, "block_bytes": l1c.block_bytes,
                        "assoc": l1c.assoc, "hit_latency": l1c.hit_latency,
                    },
                }
        elif trace_mode == "replay":
            trace = _tformat.read_trace(self.sim.trace_path)
            if trace.num_cores != self.target.num_cores:
                raise EngineError(
                    f"trace was captured on {trace.num_cores} cores; "
                    f"this target has {self.target.num_cores}"
                )
            if trace.flavor == "trace":
                if trace_cores is not None:
                    raise EngineError(
                        "replaying a trace-flavor file replaces trace_cores; "
                        "pass one or the other"
                    )
                from repro.trace.replay import rebuild_trace_cores

                trace_cores = rebuild_trace_cores(trace)
                program = None
            else:
                if trace_cores is not None:
                    raise EngineError(
                        "a program-flavor trace cannot replay into trace cores"
                    )
                if program is not None:
                    # The validity key: replaying against a program whose
                    # digest differs from the recorded one is refused outright.
                    digest = _tformat.program_digest(program)
                    recorded = trace.header.get("program_digest")
                    if digest != recorded:
                        raise EngineError(
                            f"stale trace {self.sim.trace_path!r}: recorded "
                            f"program digest {str(recorded)[:16]}… does not match "
                            f"this program ({digest[:16]}…) — re-capture"
                        )
                self._replay_ops = trace.core_ops
        self.counters = ViolationCounters()
        self.tracker = (
            WordOrderTracker(self.counters, self.sim.fastforward)
            if self.sim.detect_violations
            else None
        )
        # Scheduling domains (DESIGN.md §10): any non-default backend or
        # domain count routes through the sharded memory side + the
        # DomainManager; the default path keeps the monolithic manager with
        # zero new branches on its hot loop.
        self._domained = self.sim.mem_domains > 1 or self.sim.backend != "sequential"
        if self._domained:
            if self.sim.backend not in BACKENDS:
                raise EngineError(
                    f"unknown backend {self.sim.backend!r} "
                    f"(choose from {sorted(BACKENDS)})"
                )
            if self.sim.fault_plan:
                raise EngineError(
                    "fault injection is unsupported with scheduling domains "
                    "(fault hooks splice into the monolithic manager's GQ)"
                )
            if self.sim.backend == "process":
                if trace_cores is None:
                    raise EngineError(
                        "the process backend supports trace workloads only "
                        "(system emulation state cannot be pickle-cut per domain)"
                    )
                if self.sim.checkpoint_interval:
                    raise EngineError(
                        "checkpointing is unsupported on the process backend "
                        "(shard state lives in the worker processes mid-run)"
                    )
                if self.sim.stats_interval:
                    raise EngineError(
                        "stats snapshots are unsupported on the process backend "
                        "(shard state lives in the worker processes mid-run)"
                    )
            try:
                self.memsys = ShardedMemorySystem(
                    self.target.memsys, self.target.num_cores, self.sim.mem_domains
                )
            except ValueError as exc:
                raise EngineError(str(exc)) from None
        else:
            self.memsys = MemorySystem(self.target.memsys, self.target.num_cores, self.counters)
        # Window floor only exists for real multi-domain runs; hoisted so
        # _turn_budget's single-domain path is branch-identical to the seed.
        self._domain_floor = self._domained and self.sim.mem_domains > 1
        self.hostmodel = HostModel(self.host_cfg.num_cores)
        self.costmodel = CostModel(self.host_cfg, self.sim.seed, self.target.num_cores)
        self.system: SystemEmulation | None = None
        self._pending_activations: list[int] = []
        self._grant_needs_oldest = isinstance(self.scheme, Lookahead)
        # Combined turn_cycles/batch_cycles cap (0 in config = uncapped).
        cap = self.sim.turn_cycles if self.sim.turn_cycles else INFINITY
        if self.sim.batch_cycles and self.sim.batch_cycles < cap:
            cap = self.sim.batch_cycles
        self._turn_cap = cap
        self._active_cores = 0
        self.total_committed = 0
        self.engine_steps = 0
        # Host-loop mechanics counters (digest=False in the registry: they
        # describe how the engine scheduled the work, not the simulated
        # target, mirroring the goldens' exclusion of engine_steps).
        self.manager_steps = 0
        self.manager_polls = 0
        self.suspends = 0
        self.wakes_delivered = 0
        self.parks = 0
        #: Barrier windows executed as bulk-synchronous supersteps, and which
        #: scheduler the last run() actually used ("static" only when the
        #: support gate passed).  Both digest=False: scheduling is host-side.
        self.static_windows = 0
        self.scheduling_used = "dynamic"
        self._completed = False
        self._next_snapshot = self.sim.stats_interval or 0
        self._next_checkpoint = self.sim.checkpoint_interval or 0
        if self.sim.checkpoint_interval:
            if not self.sim.checkpoint_path:
                raise EngineError("checkpoint_interval set without checkpoint_path")
            if self.sim.fault_plan:
                raise EngineError(
                    "checkpointing a fault-injected run is unsupported "
                    "(fault hooks are closures and would not survive restore)"
                )
        #: Optional probe(host_time, global_time, locals) called after every
        #: manager step — used by the Figure 2 scheme-anatomy experiment.
        self.probe = None

        if trace_cores is not None:
            self.image = None
            self.cores = [CoreThread(i, model) for i, model in enumerate(trace_cores)]
            for ct in self.cores:
                ct.model.emit = ct.outq.push  # type: ignore[attr-defined]
        elif self._replay_ops is not None:
            # Program-flavor replay: ReplayCores feed the recorded committed
            # streams through the live engine/scheme/memory stack; the
            # ReplaySystem re-enacts sync/threads/output from recorded,
            # resolved arguments.  No image, no registers, no predecode.
            from repro.trace.replay import ReplayCore, ReplaySystem

            self.image = None
            self.system = ReplaySystem(self.target.num_cores)
            self.system.activate_context = self._activate_context
            self.cores = []
            for i in range(self.target.num_cores):
                ct = CoreThread(i, None)
                ct.model = ReplayCore(
                    i, self._replay_ops[i], L1Cache(self.target.l1),
                    ct.outq.push, self.system,
                    word_tracker=self.tracker,
                    fastforward=self.sim.fastforward,
                )
                self.cores.append(ct)
        else:
            if program is None:
                raise EngineError("either a program or trace_cores is required")
            self.image = load_program(
                program,
                num_contexts=self.target.num_cores,
                memory_bytes=self.target.memory_bytes,
                stack_bytes=self.target.stack_bytes,
            )
            self.system = SystemEmulation(self.image, self.target.num_cores)
            self.system.activate_context = self._activate_context
            self.cores = []
            for i in range(self.target.num_cores):
                ct = CoreThread(i, None)
                model = self._build_core_model(i, program, ct)
                model.bind_context(ArchState(context_id=i))
                ct.model = model
                self.cores.append(ct)
        if self._domained:
            self.manager = DomainManager(
                self.cores,
                self.memsys,
                self.scheme,
                self.counters,
                backend=self.sim.backend,
                host_timeout=self.sim.host_timeout,
            )
        else:
            self.manager = SimulationManager(self.cores, self.memsys, self.scheme)
        # Fault injection (DESIGN.md §8): hooks install only when a plan is
        # configured, so the default engine carries zero fault-path overhead.
        self.faults = None
        if self.sim.fault_plan:
            from repro.faults import parse_fault_plan

            self.faults = parse_fault_plan(self.sim.fault_plan, seed=self.sim.seed)
            self.faults.install(self)
        # The slack histogram is the registry's one direct-write stat, fed
        # from the run loop; the registry itself is built lazily (first
        # access) so engine construction stays off the simulate fast path.
        self._registry: StatsRegistry | None = None
        self._slack_dist = Distribution(
            "scheme.slack_cycles",
            desc="local_time - global_time sampled after every core turn",
        )

        if trace_cores is not None:
            for ct in self.cores:
                self._start_core(ct, pc=0, arg=0, ts=0)
        elif self._replay_ops is not None:
            # Replay starts like a program run: core 0 only; the recorded
            # spawn ops activate the rest at their recorded commit points.
            self._start_core(self.cores[0], pc=0, arg=0, ts=0)
        else:
            assert self.image is not None
            self._init_registers(0, tid=0)
            self._start_core(self.cores[0], pc=self.image.program.entry, arg=0, ts=0)

    def _build_core_model(self, core_id: int, program: Program, ct: CoreThread):
        """Instantiate the configured core model (inorder | ooo)."""
        assert self.image is not None and self.system is not None
        common = dict(
            l1i=L1Cache(self.target.l1) if self.target.model_icache else None,
            word_tracker=self.tracker,
            fastforward=self.sim.fastforward,
            dispatch=self.sim.dispatch,
        )
        if self.target.core_model == "inorder":
            from repro.cpu.inorder import InOrderCore

            return InOrderCore(
                core_id, program, self.image.memory, L1Cache(self.target.l1),
                ct.outq.push, self.system,
                tracer=(
                    self._capture.cores[core_id]
                    if self._capture is not None
                    else None
                ),
                **common,
            )
        if self.target.core_model == "ooo":
            from repro.cpu.ooo import OoOCore

            return OoOCore(
                core_id, program, self.image.memory, L1Cache(self.target.l1),
                ct.outq.push, self.system,
                width=self.target.ooo_width,
                rob_size=self.target.ooo_rob,
                predictor=self.target.branch_predictor,
                mispredict_penalty=self.target.mispredict_penalty,
                **common,
            )
        raise EngineError(f"unknown core model {self.target.core_model!r}")

    # ------------------------------------------------------------- pickling
    def __getstate__(self):
        """Checkpoint hook (:mod:`repro.core.checkpoint`).

        The registry is a web of dump-time lambdas over the components — it
        is dropped and lazily rebuilt on first access after restore (the
        direct-write ``_slack_dist`` travels and is simply re-registered).
        The probe is an experiment-side observer, not simulation state.
        """
        state = dict(self.__dict__)
        state["_registry"] = None
        state["probe"] = None
        return state

    # -------------------------------------------------------------- registry
    @property
    def registry(self) -> StatsRegistry:
        """The run's hierarchical stats registry, built on first access.

        Lazy so the ~150 stat registrations (and their dump-time lambdas)
        are never paid by callers that only need the simulation outcome —
        the perf benches construct thousands of engines per session.
        """
        if self._registry is None:
            self._registry = self._build_registry()
        return self._registry

    def _execution_cycles(self) -> int:
        """Target execution time (last thread exit, or global time if cut)."""
        ran = [ct for ct in self.cores if ct.ever_active]
        if self._completed and ran:
            return max(ct.final_time for ct in ran)
        return self.manager.global_time

    def _build_registry(self) -> StatsRegistry:
        """Wire every instrumented layer into one hierarchical registry.

        All stats except ``scheme.slack_cycles`` are lazy *sources* over the
        components' plain counters, so registration costs nothing on the
        simulate path; values resolve at dump time.  Host-loop mechanics
        (engine scheduling, modeled host makespan) register with
        ``digest=False``: they are not simulated-target behaviour and the
        threaded engine replaces host time with wall clock.
        """
        reg = StatsRegistry()

        sim = reg.group("sim")
        sim.scalar("scheme", source=lambda: self.scheme.name)
        sim.scalar("seed", source=lambda: self.sim.seed)
        sim.scalar("target_cores", source=lambda: self.target.num_cores)
        sim.scalar("host_cores", source=lambda: self.host_cfg.num_cores)
        sim.scalar("completed", source=lambda: int(self._completed))
        # Backend/domain-count are host-side execution choices: digest=False
        # is what makes a threaded 1-domain run byte-identical (by digest) to
        # the monolithic manager, the correctness bar of DESIGN.md §10.
        sim.scalar("backend", source=lambda: self.sim.backend, digest=False)
        sim.scalar("mem_domains", source=lambda: self.sim.mem_domains, digest=False)

        engine = reg.group("engine")
        for name in (
            "engine_steps", "manager_steps", "manager_polls",
            "suspends", "wakes_delivered", "parks", "total_committed",
        ):
            engine.scalar(
                name if name != "engine_steps" else "steps",
                source=(lambda n=name: getattr(self, n)),
                digest=False,
            )
        # One slack sample lands per core turn, so the histogram count IS
        # the turn count — no separate hot-loop counter needed.
        engine.scalar(
            "core_turns", source=lambda: self._slack_dist.count, digest=False
        )
        engine.scalar("scheduling", source=lambda: self.scheduling_used, digest=False)
        engine.scalar("static_windows", source=lambda: self.static_windows, digest=False)

        host = reg.group("host")
        host.scalar("makespan", source=self.hostmodel.makespan, digest=False)
        host.scalar("busy", source=lambda: self.hostmodel.busy, digest=False)
        host.scalar("steps", source=lambda: self.hostmodel.steps, digest=False)
        host.formula(
            "utilization",
            lambda: self.hostmodel.busy
            / (self.hostmodel.makespan() * self.host_cfg.num_cores),
        )

        scheme = reg.group("scheme")
        scheme.scalar("slack", source=lambda: self.scheme.slack)
        scheme.scalar("gq_policy", source=lambda: self.scheme.gq_policy)
        scheme.scalar(
            "window_stalls",
            source=lambda: sum(ct.window_edge_hits for ct in self.cores),
        )
        reg._register(self._slack_dist)  # created eagerly, fed by the run loop

        manager = reg.group("manager")
        manager.scalar("requests", source=lambda: self.manager.requests_processed)
        manager.scalar("barriers", source=lambda: self.manager.barriers_completed)
        manager.scalar("windows_raised", source=lambda: self.manager.windows_raised)
        manager.scalar("events_drained", source=lambda: self.manager.events_drained)
        manager.scalar("gq.max_depth", source=lambda: self.manager.gq_max_depth)

        target = reg.group("target")
        target.scalar("execution_cycles", source=self._execution_cycles)
        target.scalar("global_time", source=lambda: self.manager.global_time)
        target.scalar("instructions", source=lambda: self.total_committed)

        for ct in self.cores:
            core = reg.group(f"core{ct.core_id}")
            for name, attr in (
                ("committed", "total_committed"),
                ("cycles", "total_cycles"),
                ("window_edge_hits", "window_edge_hits"),
                ("final_time", "final_time"),
            ):
                core.scalar(name, source=(lambda c=ct, a=attr: getattr(c, a)))
            core.formula(
                "ipc", lambda c=ct: c.total_committed / c.total_cycles
            )
            model = ct.model
            if hasattr(model, "stall_cycles"):
                core.scalar(
                    "stall_cycles", source=(lambda m=model: m.stall_cycles)
                )
            for cache_name in ("l1d", "l1i"):
                cache = getattr(model, cache_name, None)
                if cache is None:
                    continue
                grp = core.group(cache_name)
                for field in (
                    "accesses", "hits", "misses", "upgrades",
                    "invalidations_received", "downgrades_received",
                    "writebacks",
                ):
                    grp.scalar(
                        field, source=(lambda s=cache.stats, f=field: getattr(s, f))
                    )
                grp.formula("miss_rate", lambda s=cache.stats: s.misses / s.accesses)
            predictor = getattr(model, "predictor", None)
            if predictor is not None and hasattr(predictor, "stats"):
                grp = core.group("branch")
                grp.scalar("lookups", source=lambda s=predictor.stats: s.lookups)
                grp.scalar("correct", source=lambda s=predictor.stats: s.correct)
                grp.formula("accuracy", lambda s=predictor.stats: s.correct / s.lookups)

        mem = reg.group("mem")
        mem.scalar("requests_serviced", source=lambda: self.memsys.requests_serviced)
        bus = mem.group("bus")
        l2 = mem.group("l2")
        dram = mem.group("dram")
        directory = mem.group("directory")
        bus_fields = ("transfers", "busy_cycles", "contention_cycles")
        l2_fields = (
            "accesses", "hits", "misses", "writebacks_in",
            "bank_conflict_cycles", "hop_cycles",
        )
        dram_fields = ("accesses", "queue_cycles", "row_activations")
        dir_fields = (
            "requests", "invalidations_sent", "downgrades_sent",
            "cache_to_cache_transfers",
        )
        if not self._domained:
            for field in bus_fields:
                bus.scalar(field, source=(lambda f=field: getattr(self.memsys.bus.stats, f)))
            for field in l2_fields:
                l2.scalar(field, source=(lambda f=field: getattr(self.memsys.l2.stats, f)))
            l2.vector("bank_accesses", lambda: self.memsys.l2.bank_accesses)
            l2.formula(
                "miss_rate",
                lambda: self.memsys.l2.stats.misses / self.memsys.l2.stats.accesses,
            )
            for field in dram_fields:
                dram.scalar(field, source=(lambda f=field: getattr(self.memsys.dram.stats, f)))
            for field in dir_fields:
                directory.scalar(
                    field, source=(lambda f=field: getattr(self.memsys.directory, f))
                )
        else:
            # Sharded memory side: same stat names, values summed over the
            # shards (an identity at one domain — the digest-equality bar).
            shards = self.memsys.shards
            for field in bus_fields:
                bus.scalar(
                    field,
                    source=(lambda f=field: sum(getattr(s.bus.stats, f) for s in shards)),
                )
            for field in l2_fields:
                l2.scalar(
                    field,
                    source=(lambda f=field: sum(getattr(s.l2.stats, f) for s in shards)),
                )
            l2.vector("bank_accesses", self.memsys.bank_accesses)
            l2.formula(
                "miss_rate",
                lambda: sum(s.l2.stats.misses for s in shards)
                / sum(s.l2.stats.accesses for s in shards),
            )
            for field in dram_fields:
                dram.scalar(
                    field,
                    source=(lambda f=field: sum(getattr(s.dram.stats, f) for s in shards)),
                )
            for field in dir_fields:
                directory.scalar(
                    field,
                    source=(lambda f=field: sum(getattr(s.directory, f) for s in shards)),
                )
            if self.sim.mem_domains > 1:
                # Per-domain subtree: only under real sharding, so single-
                # domain dumps stay structurally identical to the monolith.
                dgrp = mem.group("domains")
                dgrp.scalar("count", source=lambda: self.memsys.num_domains)
                dgrp.scalar(
                    "exchange_quantum", source=lambda: self.manager.exchange_quantum
                )
                dgrp.scalar("exchanges", source=lambda: self.manager.exchanges)
                for k in range(self.memsys.num_domains):
                    grp = dgrp.group(f"d{k}")
                    grp.scalar(
                        "requests_serviced",
                        source=(lambda i=k: self.memsys.shards[i].requests_serviced),
                    )
                    grp.scalar(
                        "l2_accesses",
                        source=(lambda i=k: self.memsys.shards[i].l2.stats.accesses),
                    )
                    grp.scalar(
                        "dram_accesses",
                        source=(lambda i=k: self.memsys.shards[i].dram.stats.accesses),
                    )
                    grp.scalar(
                        "directory_blocks",
                        source=(lambda i=k: self.memsys.shards[i].directory.tracked_blocks()),
                    )
                    grp.scalar(
                        "clock", source=(lambda i=k: self.manager.domains[i].clock)
                    )

        if self.faults is not None:
            faults = reg.group("faults")
            faults.scalar("specs", source=lambda: len(self.faults.specs))
            faults.scalar("injected", source=lambda: len(self.faults.fired))

        violations = reg.group("violations")
        if not self._domained:
            for field in (
                "simulation_state", "system_state", "workload_state",
                "fastforwards", "fastforward_cycles",
            ):
                violations.scalar(
                    field, source=(lambda f=field: getattr(self.counters, f))
                )
            violations.vector("by_resource", lambda: self.counters.by_resource)
        else:
            # Shards count into private (race-free) counters; totals fold the
            # engine's own counters with every shard's at dump time.
            shards = self.memsys.shards
            for field in (
                "simulation_state", "system_state", "workload_state",
                "fastforwards", "fastforward_cycles",
            ):
                violations.scalar(
                    field,
                    source=(
                        lambda f=field: getattr(self.counters, f)
                        + sum(getattr(s.counters, f) for s in shards)
                    ),
                )
            violations.vector(
                "by_resource",
                lambda: self.memsys.merged_counters(self.counters).by_resource,
            )
            if self.sim.mem_domains > 1:
                # Registered only under real sharding (always zero elsewhere)
                # so single-domain digests match the monolithic manager's.
                violations.scalar(
                    "cross_domain", source=lambda: self.counters.cross_domain
                )

        if self.system is not None:
            sync = reg.group("sync")
            stats = self.system.sync.stats
            for field in (
                "lock_acquires", "lock_contended", "barrier_episodes",
                "sema_waits", "sema_blocked",
            ):
                sync.scalar(field, source=(lambda s=stats, f=field: getattr(s, f)))
        return reg

    # ------------------------------------------------------------ activation
    def _init_registers(self, core: int, tid: int) -> None:
        assert self.image is not None
        state = self.cores[core].model.state
        state.set_x(2, self.image.stack_top(core))   # sp
        state.set_x(4, tid)                          # tp
        state.set_x(1, self.image.thread_exit_pc)    # ra -> exit stub

    def _start_core(self, ct: CoreThread, pc: int, arg: int, ts: int) -> None:
        ct.activate(pc, arg, ts)
        ct.max_local_time = max(self.manager.current_max_local(), ts)

    def _activate_context(self, core: int, pc: int, arg: int, ts: int) -> None:
        """SystemEmulation spawn hook: start a workload thread on *core*."""
        assert self.system is not None
        if self.image is not None:
            # Replay cores carry no architectural state to initialize.
            tid = next(
                t.tid for t in self.system.threads.values() if t.core == core and t.state == "running"
            )
            self._init_registers(core, tid)
        self._start_core(self.cores[core], pc, arg, ts)
        self._active_cores += 1
        self._pending_activations.append(core)

    # ------------------------------------------------------------------- run
    def _all_done(self) -> bool:
        return all(ct.state != CoreState.ACTIVE for ct in self.cores)

    def _turn_budget(self, ct: CoreThread) -> int:
        """Target cycles this core may run in one engine turn.

        The scheme's grant (quantum/window/lookahead remainder) clamped by
        the core's own window edge, the optional ``batch_cycles`` cap, and
        the ``max_cycles`` safety net (the budget may exceed it by one so
        the runaway guard still fires).
        """
        local = ct.local_time
        manager = self.manager
        if self._domain_floor:
            # Multi-domain runs floor every window at the exchange quantum
            # (DomainManager.current_max_local); sizing the turn off the raw
            # scheme grant would slice the floored window into scheme-sized
            # crumbs and pay per-turn overhead for each.
            budget = manager.current_max_local() - local
            if budget < 0:
                budget = 0
        elif self._grant_needs_oldest:
            budget = self.scheme.grant(manager.global_time, local, manager.gq.oldest_ts())
        else:
            # Inlined default Scheme.grant: max(0, max_local(global) - local).
            budget = self.scheme.max_local(manager.global_time) - local
            if budget < 0:
                budget = 0
        window = ct.max_local_time - local
        if window < budget:
            budget = window
        if self._turn_cap < budget:
            budget = self._turn_cap
        net = self.sim.max_cycles + 1 - local
        if net < budget:
            budget = net
        return budget if budget > 0 else 1

    @property
    def static_fallback_reason(self) -> str | None:
        """Why this run uses the dynamic loop despite ``scheduling="static"``.

        ``None`` means static engages.  Evaluated at run() time, not
        construction, because the probe (and, on restore, faults) attach to
        a built engine.
        """
        if self.sim.scheduling != "static":
            return "dynamic scheduling configured"
        if not all(hasattr(ct.model, "wait_state") for ct in self.cores):
            return "a core model lacks the batched wait_state protocol"
        return static_unsupported_reason(
            self.scheme,
            has_system=self.system is not None,
            has_probe=self.probe is not None,
            has_faults=self.faults is not None,
            max_instructions=self.sim.max_instructions,
        )

    def run(self) -> SimulationResult:
        if self.sim.heartbeat_path is None:
            return self._run()
        # Progress heartbeats (DESIGN.md §13): a sampler thread publishes
        # the live progress marker so an out-of-process supervisor can tell
        # "slow but advancing" from "hung".  The loop itself is untouched.
        from repro.serve.heartbeat import HeartbeatWriter, engine_progress

        writer = HeartbeatWriter(
            self.sim.heartbeat_path,
            lambda: engine_progress(self),
            interval=self.sim.heartbeat_interval,
        ).start()
        try:
            return self._run()
        finally:
            writer.stop()

    def _run(self) -> SimulationResult:
        sim = self.sim
        # A restored engine carries the loop-local snapshot its checkpoint
        # recorded (see _write_checkpoint); a fresh engine has none.
        resume = self.__dict__.pop("_resume", None)
        # A checkpoint commits its run to a scheduler: the two loops place
        # their boundaries differently, so a snapshot only resumes under the
        # scheduler that wrote it.
        if resume is not None:
            use_static = "static_release" in resume
        else:
            use_static = self.static_fallback_reason is None
        if use_static:
            return self._run_static(resume)
        self.scheduling_used = "dynamic"
        heap: list[tuple[float, int, int]] = []  # (ready, seq, idx); idx -1 = manager
        seq = itertools.count(0 if resume is None else resume["seq_next"])
        nxt = seq.__next__
        cores = self.cores
        manager = self.manager
        costmodel = self.costmodel
        hostrun = self.hostmodel.run
        heappush, heappop = heapq.heappush, heapq.heappop
        # Hot-loop hoists: none of these can change mid-run.
        probe = self.probe
        # Time-triggered faults ride the manager branch; None when the plan
        # has no pending timed faults (or no plan at all), so the common case
        # pays one identity check per manager step and nothing per turn.
        fault_tick = (
            self.faults.on_manager_step
            if self.faults is not None and self.faults.needs_tick()
            else None
        )
        suspend_cost = self.host_cfg.suspend_cost
        wake_cost = costmodel.wake_cost
        fanout_cost = costmodel.wake_fanout_cost
        turn_budget = self._turn_budget
        core_batch_cost = costmodel.core_batch_cost
        manager_step_cost = costmodel.manager_step_cost
        if resume is None:
            suspended = [False] * len(cores)
        else:
            suspended = list(resume["suspended"])
        # Parked: blocked on external input with an empty InQ — the core
        # cannot progress until the manager delivers (or a peer releases a
        # blocking syscall), so it is not rescheduled until then.  This is
        # the InQ-empty block of a real implementation; without it, an
        # unbounded-slack core pays a polling turn per response round-trip.
        parked = [False] * len(cores) if resume is None else list(resume["parked"])
        # Host time at which each core thread's last scheduled step finishes.
        # A wake (window raise, delivery, release) is produced at the *waker's*
        # completion time, which can precede the wakee's — a turn's target
        # effects are visible at pop time, but its host cost is still being
        # paid.  One pthread cannot run on two host cores at once, so every
        # push for a core clamps to the core's own availability.
        next_free = [0.0] * len(cores) if resume is None else list(resume["next_free"])
        batched = [hasattr(ct.model, "wait_state") for ct in cores]
        # Parking is only deadlock-free when the blocked core's own clock is
        # not needed for its wake to be produced.  A memory response needs
        # the manager to service the GQ — gated on global time under the
        # conservative policies, so only "immediate" schemes may park on it.
        # A spin wait (lock/barrier) needs *another core* to run, which
        # window-bounded schemes won't allow while this core pins global
        # time, so only unbounded slack may park on it.
        park_pending = self.scheme.gq_policy == "immediate"
        park_spin = self.scheme.slack >= INFINITY
        # Under a barrier policy the manager provably does nothing until every
        # active core has reached the barrier (or a core has OutQ traffic to
        # drain): a manager step before that returns (0, 0, []) and charges
        # the jitter-free poll cost — exactly what elision charges.  So core
        # turns only mark the manager dirty on events/wakes/state changes or
        # when their suspension completes the barrier, which removes ~2/3 of
        # the Python-level manager steps under cc/qN at identical results.
        # Adaptive quantum is excluded: its adapt() hook reads global time,
        # which even a does-nothing manager step advances, so for it idle
        # steps are not side-effect-free.
        barrier_policy = (
            self.scheme.gq_policy == "barrier"
            and getattr(self.scheme, "adapt", None) is None
        )
        n_susp = 0 if resume is None else resume["n_susp"]
        single = sim.stepping == "single"
        wait_chunk = sim.wait_chunk
        snap_interval = sim.stats_interval
        cp_interval = sim.checkpoint_interval
        # Engine counters and the slack histogram live in hoisted locals for
        # the duration of the loop (a per-turn ``self.x += 1`` or a
        # ``Distribution.add`` call costs real throughput at cc turn rates);
        # ``sync_stats`` folds them back before any registry dump.
        manager_steps = self.manager_steps
        manager_polls = self.manager_polls
        suspends = self.suspends
        wakes_delivered = self.wakes_delivered
        parks = self.parks
        slack_dist = self._slack_dist
        slack_buckets = slack_dist.buckets  # shared list, updated in place
        s_count = 0
        s_total = 0
        s_min = 1 << 63
        s_max = -1

        def sync_stats() -> None:
            nonlocal s_count, s_total, s_min, s_max
            self.manager_steps = manager_steps
            self.manager_polls = manager_polls
            self.suspends = suspends
            self.wakes_delivered = wakes_delivered
            self.parks = parks
            if s_count:
                if slack_dist.count == 0 or s_min < slack_dist._min:
                    slack_dist._min = s_min
                if s_max > slack_dist._max:
                    slack_dist._max = s_max
                slack_dist.count += s_count
                slack_dist.total += s_total
                s_count = 0
                s_total = 0
                s_min = 1 << 63
                s_max = -1
        if resume is None:
            heappush(heap, (0.0, nxt(), -1))
            active_cores = 0
            for ct in cores:
                if ct.state == CoreState.ACTIVE:
                    active_cores += 1
                    heappush(heap, (0.0, nxt(), ct.core_id))
            self._active_cores = active_cores
        else:
            # The snapshot was taken at a manager-step boundary: the saved
            # list is the complete live heap (manager re-push included) in
            # valid heap order, and _active_cores travelled with the pickle.
            heap.extend(resume["heap"])

        # Manager elision: a manager step with no new core work since the
        # previous step provably drains/processes/raises nothing, so the
        # Python call is skipped and only its (identical, jitter-free) poll
        # cost is charged.  Disabled while a probe wants per-step samples.
        mgr_dirty = True if resume is None else resume["mgr_dirty"]
        poll_cost = self.host_cfg.manager_poll_cost
        mgr_idle_streak = 0 if resume is None else resume["mgr_idle_streak"]
        completed = True
        max_steps = 200_000_000

        while self._active_cores:
            if not heap:
                raise EngineError("host queue empty with active cores — engine bug")
            self.engine_steps += 1
            if self.engine_steps > max_steps:
                raise EngineError("engine step limit exceeded (runaway simulation)")
            ready, _, idx = heappop(heap)

            if idx == -1:
                if not mgr_dirty and probe is None:
                    # Consecutive idle polls: keep polling while the manager
                    # is provably the next host event.  Nothing can mark it
                    # dirty before the next heap entry runs, so this inner
                    # loop is step-for-step identical to re-queueing every
                    # poll through the heap — minus the heap churn, which
                    # dominated the cc profile.  Strict < preserves the tie
                    # break (a re-pushed poll has a larger seq and loses).
                    done_t = hostrun(ready, poll_cost)
                    mgr_idle_streak += 1
                    manager_polls += 1
                    while heap and done_t < heap[0][0]:
                        done_t = hostrun(done_t, poll_cost)
                        mgr_idle_streak += 1
                        manager_polls += 1
                        if mgr_idle_streak > 100_000:
                            break
                    if mgr_idle_streak > 100_000:
                        self._diagnose_deadlock(suspended, parked)
                    heappush(heap, (done_t, nxt(), -1))
                    continue
                result = manager.step()
                mgr_dirty = False
                manager_steps += 1
                if fault_tick is not None:
                    fault_tick(self, manager.global_time)
                if snap_interval and manager.global_time >= self._next_snapshot:
                    sync_stats()
                    self.registry.snapshot(manager.global_time)
                    self._next_snapshot = (
                        manager.global_time // snap_interval + 1
                    ) * snap_interval
                cost = manager_step_cost(result.drained, result.processed)
                done_t = hostrun(ready, cost)
                # Wakes leave the manager serially (futex hand-off): the
                # k-th thread woken by this step starts k-1 fanout delays
                # later.  This is what a barrier reopening all N cores pays
                # that a slack raise (typically one core) does not.
                woken = 0
                for cid in result.raised:
                    if suspended[cid]:
                        suspended[cid] = False
                        n_susp -= 1
                        wake_t = done_t + wake_cost + woken * fanout_cost
                        woken += 1
                        heappush(heap, (max(wake_t, next_free[cid]), nxt(), cid))
                for cid, ct in enumerate(cores):
                    if parked[cid] and ct.inq:
                        parked[cid] = False
                        wake_t = done_t + wake_cost + woken * fanout_cost
                        woken += 1
                        heappush(heap, (max(wake_t, next_free[cid]), nxt(), cid))
                wakes_delivered += woken
                self._drain_activations(heap, nxt, done_t, next_free)
                if result.work == 0 and not result.raised:
                    mgr_idle_streak += 1
                    if mgr_idle_streak > 100_000:
                        self._diagnose_deadlock(suspended, parked)
                else:
                    mgr_idle_streak = 0
                if probe is not None:
                    probe(
                        done_t,
                        manager.global_time,
                        [
                            c.local_time if c.state == CoreState.ACTIVE else -1
                            for c in cores
                        ],
                    )
                heappush(heap, (done_t, nxt(), -1))
                if cp_interval and manager.global_time >= self._next_checkpoint:
                    # The manager step's effects (wakes, costs, its own
                    # re-push) are all applied: the loop state is exactly a
                    # top-of-loop state, which is what restore re-enters.
                    sync_stats()
                    self._write_checkpoint(
                        heap, nxt(), suspended, parked, next_free,
                        n_susp, mgr_dirty, mgr_idle_streak,
                    )
                    self._next_checkpoint = (
                        manager.global_time // cp_interval + 1
                    ) * cp_interval
                continue

            ct = cores[idx]
            if ct.state != CoreState.ACTIVE:
                continue
            if ct.local_time >= ct.max_local_time:
                # Re-read the shared clocks before paying the suspend/wake
                # round trip (free: two word reads in the real thing).
                if not manager.refresh_window(ct):
                    suspended[idx] = True
                    n_susp += 1
                    suspends += 1
                    if barrier_policy and n_susp >= self._active_cores:
                        mgr_dirty = True
                        mgr_idle_streak = 0
                    next_free[idx] = hostrun(ready, suspend_cost)
                    continue
            budget = turn_budget(ct)
            if batched[idx]:
                stats = ct.step_many(budget, wait_chunk=wait_chunk, single=single)
            else:
                # Models without the batching protocol keep the legacy
                # per-cycle loop at seed-era chunking (identical either mode).
                stats = ct.run(min(budget, 8))
            # Inline Distribution.add on hoisted locals: ``slack`` is bounded
            # by max_cycles, far below the 2**64 top bucket, so the raw
            # ``bit_length`` index is always in range.
            slack = ct.local_time - manager.global_time
            slack_buckets[slack.bit_length()] += 1
            s_count += 1
            s_total += slack
            if slack < s_min:
                s_min = slack
            if slack > s_max:
                s_max = slack
            if (
                not barrier_policy
                or ct.outq._q
                or stats.wakes
                or ct.state != CoreState.ACTIVE
            ):
                mgr_dirty = True
                mgr_idle_streak = 0
            for core_id, release_ts in stats.wakes:
                cores[core_id].model.release(release_ts)
            park = False
            if (
                ct.state == CoreState.ACTIVE
                and not stats.hit_window_edge
                and batched[idx]
                and (park_pending or park_spin)
            ):
                ws = ct.model.wait_state(ct.local_time)
                if ws is not None and ws[0] >= WAIT_EXTERNAL and not len(ct.inq):
                    spinning = getattr(ct.model, "spinning", False)
                    park = park_spin if spinning else park_pending
            cost = core_batch_cost(idx, stats, suspended=stats.hit_window_edge or park)
            done_t = hostrun(ready, cost)
            next_free[idx] = done_t
            woken = 0
            for core_id, _ in stats.wakes:
                if parked[core_id]:
                    parked[core_id] = False
                    wake_t = done_t + wake_cost + woken * fanout_cost
                    woken += 1
                    heappush(heap, (max(wake_t, next_free[core_id]), nxt(), core_id))
            wakes_delivered += woken
            self._drain_activations(heap, nxt, done_t, next_free)
            self.total_committed += stats.committed
            if ct.state != CoreState.ACTIVE:
                self._active_cores -= 1
            if ct.local_time > sim.max_cycles:
                raise EngineError(
                    f"core {idx} exceeded max_cycles={sim.max_cycles} "
                    f"(scheme {self.scheme.name}; workload hung?)"
                )
            if sim.max_instructions and self.total_committed >= sim.max_instructions:
                completed = False
                break
            if ct.state == CoreState.ACTIVE:
                if stats.hit_window_edge:
                    if manager.refresh_window(ct):
                        # The shared clocks already moved (this core may
                        # itself hold the minimum): no suspend round trip.
                        heappush(heap, (done_t, nxt(), idx))
                    else:
                        suspended[idx] = True
                        n_susp += 1
                        suspends += 1
                        if barrier_policy and n_susp >= self._active_cores:
                            mgr_dirty = True
                            mgr_idle_streak = 0
                elif park:
                    parked[idx] = True
                    parks += 1
                else:
                    heappush(heap, (done_t, nxt(), idx))

        sync_stats()
        self.manager.finalize()
        self.manager.check_invariants()
        return self._build_result(completed)

    def _run_static(self, resume: dict | None) -> SimulationResult:
        """Bulk-synchronous superstep loop (DESIGN.md §9).

        One barrier window per iteration: every active core runs its whole
        window as a planned batch sequence (core-id order), then the manager
        takes exactly one step — the barrier — at the window edge.  All the
        dynamic loop's per-turn machinery (host priority queue, manager
        polls, suspend bookkeeping, wake clamping) is gone; what remains is
        the part that is digest-visible, in an order the GQ tie-break makes
        equivalent to the dynamic interleaving (``static_fallback_reason``
        gates the cases where that proof holds).

        Host-time accounting is the same cost model without the polls: core
        k's window starts at ``release + k*fanout`` (the serial futex
        hand-off of the barrier reopening), its turns chain through
        ``HostModel.run``, and the manager's barrier step starts at the
        window makespan.  Per-core jitter streams stay aligned with the
        dynamic loop (one draw per turn) so a mid-run checkpoint restores
        bit-exactly.
        """
        sim = self.sim
        self.scheduling_used = "static"
        cores = self.cores
        manager = self.manager
        costmodel = self.costmodel
        hostrun = self.hostmodel.run
        manager_step_cost = costmodel.manager_step_cost
        wake_cost = costmodel.wake_cost
        fanout_cost = costmodel.wake_fanout_cost
        # Inlined CostModel.core_batch_cost (bit-identical formula): at cc
        # turn rates the two method calls per turn (cost + jitter draw) are
        # a measurable slice of the whole loop.  The constants and per-core
        # jitter streams are the same hoists the method itself uses.
        cycle_c = costmodel._cycle_cost
        idle_c = costmodel._idle_cost
        skip_c = costmodel._skip_cost
        stretch_c = costmodel._stretch_cost
        event_c = costmodel._event_cost
        suspend_c = costmodel._suspend_cost
        has_jitter = costmodel._has_jitter
        core_jits = costmodel._core_jit
        turn_cap = self._turn_cap
        max_cycles = sim.max_cycles
        wait_chunk = sim.wait_chunk
        single = sim.stepping == "single"
        snap_interval = sim.stats_interval
        cp_interval = sim.checkpoint_interval
        active = CoreState.ACTIVE
        engine_steps = self.engine_steps
        manager_steps = self.manager_steps
        suspends = self.suspends
        wakes_delivered = self.wakes_delivered
        slack_dist = self._slack_dist
        slack_buckets = slack_dist.buckets
        s_count = 0
        s_total = 0
        s_min = 1 << 63
        s_max = -1

        def sync_stats() -> None:
            nonlocal s_count, s_total, s_min, s_max
            self.engine_steps = engine_steps
            self.manager_steps = manager_steps
            self.suspends = suspends
            self.wakes_delivered = wakes_delivered
            if s_count:
                if slack_dist.count == 0 or s_min < slack_dist._min:
                    slack_dist._min = s_min
                if s_max > slack_dist._max:
                    slack_dist._max = s_max
                slack_dist.count += s_count
                slack_dist.total += s_total
                s_count = 0
                s_total = 0
                s_min = 1 << 63
                s_max = -1

        if resume is None:
            self._active_cores = sum(1 for ct in cores if ct.state == active)
            # First window: the dynamic loop queues every core at host time
            # zero with no wake hand-off (nobody woke them).
            release = 0.0
            fan = 0.0
        else:
            release = resume["static_release"]
            fan = fanout_cost
        max_steps = 200_000_000

        while self._active_cores:
            gtime = manager.global_time
            window_end = release
            k = 0
            for ct in cores:
                if ct.state != active:
                    continue
                t = release + k * fan
                k += 1
                edge = ct.max_local_time
                cid = ct.core_id
                step_many = ct.step_many
                jit_next = core_jits[cid].next
                plan = split_batches(ct.local_time, edge, turn_cap, max_cycles)
                bi = 0
                nplan = len(plan)
                while ct.local_time < edge:
                    if bi >= nplan:
                        # Consumption deviated from the plan (the core
                        # yielded early on an external wait): re-cut the
                        # remainder from live local time — exactly the
                        # dynamic loop's per-turn budget recomputation.
                        plan = split_batches(ct.local_time, edge, turn_cap, max_cycles)
                        bi = 0
                        nplan = len(plan)
                    budget = plan[bi]
                    stats = step_many(budget, wait_chunk=wait_chunk, single=single)
                    engine_steps += 1
                    slack = ct.local_time - gtime
                    slack_buckets[slack.bit_length()] += 1
                    s_count += 1
                    s_total += slack
                    if slack < s_min:
                        s_min = slack
                    if slack > s_max:
                        s_max = slack
                    cost = (
                        stats.active_cycles * cycle_c
                        + stats.idle_cycles * idle_c
                        + stats.skipped_cycles * skip_c
                        + stats.skip_stretches * stretch_c
                        + (stats.events_out + stats.events_in) * event_c
                    )
                    if has_jitter:
                        cost *= jit_next()
                    if stats.hit_window_edge:
                        cost += suspend_c
                    t = hostrun(t, cost if cost > 0.05 else 0.05)
                    self.total_committed += stats.committed
                    if stats.wakes:  # impossible without sysapi; kept for parity
                        for core_id, release_ts in stats.wakes:
                            cores[core_id].model.release(release_ts)
                    if ct.state != active:
                        self._active_cores -= 1
                        break
                    if ct.local_time > max_cycles:
                        raise EngineError(
                            f"core {cid} exceeded max_cycles={max_cycles} "
                            f"(scheme {self.scheme.name}; workload hung?)"
                        )
                    if stats.hit_window_edge:
                        suspends += 1
                        break
                    bi = bi + 1 if stats.cycles == budget else nplan
                if window_end < t:
                    window_end = t
            if not self._active_cores:
                # Last core halted mid-window: the dynamic loop exits without
                # a final manager step too (its queue only holds the manager).
                break
            if engine_steps > max_steps:
                raise EngineError("engine step limit exceeded (runaway simulation)")
            result = manager.step()
            manager_steps += 1
            self.static_windows += 1
            if snap_interval and manager.global_time >= self._next_snapshot:
                sync_stats()
                self.registry.snapshot(manager.global_time)
                self._next_snapshot = (
                    manager.global_time // snap_interval + 1
                ) * snap_interval
            m_done = hostrun(window_end, manager_step_cost(result.drained, result.processed))
            wakes_delivered += len(result.raised)
            if not result.raised:
                # A barrier over all-at-edge active cores always raises; not
                # raising means no window can ever reopen.
                sync_stats()
                self._diagnose_deadlock(
                    [ct.state == active for ct in cores], [False] * len(cores)
                )
            release = m_done + wake_cost
            fan = fanout_cost
            if cp_interval and manager.global_time >= self._next_checkpoint:
                sync_stats()
                self._write_static_checkpoint(release)
                self._next_checkpoint = (
                    manager.global_time // cp_interval + 1
                ) * cp_interval

        sync_stats()
        self.manager.finalize()
        self.manager.check_invariants()
        return self._build_result(True)

    def _write_static_checkpoint(self, release: float) -> None:
        """Static-scheduler checkpoint: always at a window boundary.

        The barrier step's effects (raises, global-time advance) are applied
        and ``release`` is the host time the next window's first core starts
        at — exactly the superstep loop's top-of-iteration state.  The
        ``static_release`` key doubles as the scheduler marker ``run()``
        dispatches on after restore.
        """
        from repro.core.checkpoint import save_checkpoint

        self._resume = {"static_release": release}
        try:
            assert self.sim.checkpoint_path is not None
            save_checkpoint(self, self.sim.checkpoint_path)
        finally:
            del self._resume

    def _write_checkpoint(
        self,
        heap: list,
        seq_next: int,
        suspended: list[bool],
        parked: list[bool],
        next_free: list[float],
        n_susp: int,
        mgr_dirty: bool,
        mgr_idle_streak: int,
    ) -> None:
        """Stash the run loop's hoisted locals and pickle the whole engine.

        ``seq_next`` is a freshly drawn heap tie-break value: consuming one
        is free (only the *relative* order of seqs matters, and both the
        continuing and the restored run proceed from the same position), and
        it is exactly the counter state a restored ``run()`` must resume
        from.  The payload rides inside the engine pickle; ``run()`` pops it.
        """
        from repro.core.checkpoint import save_checkpoint

        self._resume = {
            "heap": list(heap),
            "seq_next": seq_next,
            "suspended": list(suspended),
            "parked": list(parked),
            "next_free": list(next_free),
            "n_susp": n_susp,
            "mgr_dirty": mgr_dirty,
            "mgr_idle_streak": mgr_idle_streak,
        }
        try:
            assert self.sim.checkpoint_path is not None
            save_checkpoint(self, self.sim.checkpoint_path)
        finally:
            del self._resume

    def _drain_activations(self, heap, nxt, ready: float, next_free: list[float]) -> None:
        while self._pending_activations:
            core = self._pending_activations.pop()
            start = max(ready + self.costmodel.wake_cost, next_free[core])
            heapq.heappush(heap, (start, nxt(), core))

    def _diagnose_deadlock(self, suspended: list[bool], parked: list[bool]) -> None:
        lines = [f"engine deadlock under scheme {self.scheme.name}:"]
        lines.append(f"  global_time={self.manager.global_time}")
        for ct in self.cores:
            lines.append(
                f"  core {ct.core_id}: state={ct.state} local={ct.local_time} "
                f"max={ct.max_local_time} suspended={suspended[ct.core_id]} "
                f"parked={parked[ct.core_id]} "
                f"phase={ct.model.phase if ct.model else '?'} inq={len(ct.inq)} outq={len(ct.outq)}"
            )
        lines.append(f"  gq={len(self.manager.gq)}")
        raise EngineError("\n".join(lines))

    def _write_capture(self) -> None:
        """Seal and atomically write the armed capture (once, on completion)."""
        from repro.trace.format import write_trace

        streams = (
            self._capture.finish()
            if self._capture is not None
            else self._capture_streams
        )
        assert self.sim.trace_path is not None and streams is not None
        write_trace(self.sim.trace_path, self._capture_header, streams)
        self._capture_header = None

    # ---------------------------------------------------------------- result
    def _build_result(self, completed: bool) -> SimulationResult:
        """Thin view over the stats registry.

        The summary fields read the same component attributes the registry's
        sources are bound to (``tests/core/test_stats_integration.py`` pins
        the agreement); the full dump and digest materialise lazily via
        ``registry_factory`` on first ``result.stats`` access, so runs whose
        caller never inspects stats — the perf benches — pay nothing.
        """
        self._completed = completed
        if completed and self._capture_header is not None:
            self._write_capture()
        core_results = []
        for ct in self.cores:
            if not ct.ever_active:
                continue
            l1d = getattr(ct.model, "l1d", None)
            core_results.append(
                CoreResult(
                    core_id=ct.core_id,
                    committed=ct.total_committed,
                    cycles=ct.total_cycles,
                    final_time=ct.final_time or ct.local_time,
                    l1_accesses=l1d.stats.accesses if l1d is not None else 0,
                    l1_misses=l1d.stats.misses if l1d is not None else 0,
                )
            )
        sync = self.system.sync.stats if self.system is not None else None
        violations = (
            self.memsys.merged_counters(self.counters)
            if self._domained
            else self.counters
        )
        return SimulationResult(
            scheme=self.scheme.name,
            host_cores=self.host_cfg.num_cores,
            seed=self.sim.seed,
            completed=completed,
            execution_cycles=self._execution_cycles(),
            global_time=self.manager.global_time,
            instructions=self.total_committed,
            host_time=self.hostmodel.makespan(),
            host_busy=self.hostmodel.busy,
            cores=core_results,
            violations=violations,
            output=self.system.merged_output() if self.system else [],
            requests=self.manager.requests_processed,
            barriers=self.manager.barriers_completed,
            lock_acquires=sync.lock_acquires if sync is not None else 0,
            lock_contended=sync.lock_contended if sync is not None else 0,
            engine_steps=self.engine_steps,
            registry_factory=lambda: self.registry,
        )


def run_simulation(
    program: Program | None,
    *,
    scheme: str = "cc",
    host_cores: int = 8,
    seed: int = 1,
    target: TargetConfig | None = None,
    sim: SimConfig | None = None,
    host: HostConfig | None = None,
    trace_cores: list | None = None,
    **sim_overrides,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`SequentialEngine`."""
    if sim is None:
        sim = SimConfig(scheme=scheme, seed=seed, **sim_overrides)
    if host is None:
        host = HostConfig(num_cores=host_cores)
    engine = SequentialEngine(program, target=target, host=host, sim=sim, trace_cores=trace_cores)
    return engine.run()
