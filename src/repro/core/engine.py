"""Deterministic sequential engine: SlackSim on the virtual host.

This engine runs the exact thread structure of the paper — N core threads
plus one simulation manager thread — as coroutine-style batches interleaved
by a deterministic virtual-host schedule (DESIGN.md §2, "virtual host"
substitution).  Each batch's host cost comes from the calibrated
:class:`~repro.host.costmodel.CostModel`; batches are ordered by a priority
queue of host-ready times, so a single seed fixes both the modeled host
timeline *and* the target-side event interleaving.  That one coherent model
yields Figure 8 (speedups from host makespans) and Table 3 (errors from
target cycle counts) without real parallel hardware.

Thread-state protocol per core thread:

* runnable: in the host queue; runs batches of up to ``batch_cycles``;
* suspended: hit its window edge (``local == max_local``); leaves the queue
  and pays a suspend cost; the manager re-queues it (plus wake cost) when
  the scheme raises its window — this is exactly the futex sleep/wake cost
  structure that makes cycle-by-cycle synchronization expensive on a real
  host;
* done: its workload thread exited.
"""

from __future__ import annotations

import heapq
import itertools

from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.core.corethread import CoreState, CoreThread
from repro.core.manager import SimulationManager
from repro.core.results import CoreResult, SimulationResult
from repro.core.schemes import parse_scheme
from repro.cpu.arch import ArchState
from repro.cpu.l1cache import L1Cache
from repro.host.costmodel import CostModel
from repro.host.hostmodel import HostModel
from repro.isa.program import Program
from repro.mem.memsys import MemorySystem
from repro.sysapi.loader import load_program
from repro.sysapi.system import SystemEmulation
from repro.violations.detect import ViolationCounters, WordOrderTracker

__all__ = ["SequentialEngine", "EngineError", "run_simulation"]


class EngineError(RuntimeError):
    """The engine detected deadlock, runaway simulation or misconfiguration."""


class SequentialEngine:
    """Build and run one simulation of *program* under one scheme."""

    def __init__(
        self,
        program: Program | None,
        *,
        target: TargetConfig | None = None,
        host: HostConfig | None = None,
        sim: SimConfig | None = None,
        trace_cores: list | None = None,
    ) -> None:
        self.target = target or TargetConfig()
        self.host_cfg = host or HostConfig()
        self.sim = sim or SimConfig()
        self.scheme = parse_scheme(self.sim.scheme)
        self.counters = ViolationCounters()
        self.tracker = (
            WordOrderTracker(self.counters, self.sim.fastforward)
            if self.sim.detect_violations
            else None
        )
        self.memsys = MemorySystem(self.target.memsys, self.target.num_cores, self.counters)
        self.hostmodel = HostModel(self.host_cfg.num_cores)
        self.costmodel = CostModel(self.host_cfg, self.sim.seed, self.target.num_cores)
        self.system: SystemEmulation | None = None
        self._pending_activations: list[int] = []
        self.total_committed = 0
        self.engine_steps = 0
        #: Optional probe(host_time, global_time, locals) called after every
        #: manager step — used by the Figure 2 scheme-anatomy experiment.
        self.probe = None

        if trace_cores is not None:
            self.image = None
            self.cores = [CoreThread(i, model) for i, model in enumerate(trace_cores)]
            for ct in self.cores:
                ct.model.emit = ct.outq.push  # type: ignore[attr-defined]
        else:
            if program is None:
                raise EngineError("either a program or trace_cores is required")
            self.image = load_program(
                program,
                num_contexts=self.target.num_cores,
                memory_bytes=self.target.memory_bytes,
                stack_bytes=self.target.stack_bytes,
            )
            self.system = SystemEmulation(self.image, self.target.num_cores)
            self.system.activate_context = self._activate_context
            self.cores = []
            for i in range(self.target.num_cores):
                ct = CoreThread(i, None)
                model = self._build_core_model(i, program, ct)
                model.bind_context(ArchState(context_id=i))
                ct.model = model
                self.cores.append(ct)
        self.manager = SimulationManager(self.cores, self.memsys, self.scheme)

        if trace_cores is not None:
            for ct in self.cores:
                self._start_core(ct, pc=0, arg=0, ts=0)
        else:
            assert self.image is not None
            self._init_registers(0, tid=0)
            self._start_core(self.cores[0], pc=self.image.program.entry, arg=0, ts=0)

    def _build_core_model(self, core_id: int, program: Program, ct: CoreThread):
        """Instantiate the configured core model (inorder | ooo)."""
        assert self.image is not None and self.system is not None
        common = dict(
            l1i=L1Cache(self.target.l1) if self.target.model_icache else None,
            word_tracker=self.tracker,
            fastforward=self.sim.fastforward,
        )
        if self.target.core_model == "inorder":
            from repro.cpu.inorder import InOrderCore

            return InOrderCore(
                core_id, program, self.image.memory, L1Cache(self.target.l1),
                ct.outq.push, self.system, **common,
            )
        if self.target.core_model == "ooo":
            from repro.cpu.ooo import OoOCore

            return OoOCore(
                core_id, program, self.image.memory, L1Cache(self.target.l1),
                ct.outq.push, self.system,
                width=self.target.ooo_width,
                rob_size=self.target.ooo_rob,
                predictor=self.target.branch_predictor,
                mispredict_penalty=self.target.mispredict_penalty,
                **common,
            )
        raise EngineError(f"unknown core model {self.target.core_model!r}")

    # ------------------------------------------------------------ activation
    def _init_registers(self, core: int, tid: int) -> None:
        assert self.image is not None
        state = self.cores[core].model.state
        state.set_x(2, self.image.stack_top(core))   # sp
        state.set_x(4, tid)                          # tp
        state.set_x(1, self.image.thread_exit_pc)    # ra -> exit stub

    def _start_core(self, ct: CoreThread, pc: int, arg: int, ts: int) -> None:
        ct.activate(pc, arg, ts)
        ct.max_local_time = max(self.manager.current_max_local(), ts)

    def _activate_context(self, core: int, pc: int, arg: int, ts: int) -> None:
        """SystemEmulation spawn hook: start a workload thread on *core*."""
        assert self.system is not None
        tid = next(
            t.tid for t in self.system.threads.values() if t.core == core and t.state == "running"
        )
        self._init_registers(core, tid)
        self._start_core(self.cores[core], pc, arg, ts)
        self._pending_activations.append(core)

    # ------------------------------------------------------------------- run
    def _all_done(self) -> bool:
        return all(ct.state != CoreState.ACTIVE for ct in self.cores)

    def run(self) -> SimulationResult:
        sim = self.sim
        heap: list[tuple[float, int, int]] = []  # (ready, seq, idx); idx -1 = manager
        seq = itertools.count()
        suspended = [False] * len(self.cores)
        heapq.heappush(heap, (0.0, next(seq), -1))
        for ct in self.cores:
            if ct.state == CoreState.ACTIVE:
                heapq.heappush(heap, (0.0, next(seq), ct.core_id))

        mgr_idle_streak = 0
        completed = True
        max_steps = 200_000_000

        while not self._all_done():
            if not heap:
                raise EngineError("host queue empty with active cores — engine bug")
            self.engine_steps += 1
            if self.engine_steps > max_steps:
                raise EngineError("engine step limit exceeded (runaway simulation)")
            ready, _, idx = heapq.heappop(heap)

            if idx == -1:
                result = self.manager.step()
                cost = self.costmodel.manager_step_cost(result.drained, result.processed)
                done_t = self.hostmodel.run(ready, cost)
                for cid in result.raised:
                    if suspended[cid]:
                        suspended[cid] = False
                        heapq.heappush(heap, (done_t + self.costmodel.wake_cost, next(seq), cid))
                self._drain_activations(heap, seq, done_t)
                if result.work == 0 and not result.raised:
                    mgr_idle_streak += 1
                    if mgr_idle_streak > 100_000:
                        self._diagnose_deadlock(suspended)
                else:
                    mgr_idle_streak = 0
                if self.probe is not None:
                    self.probe(
                        done_t,
                        self.manager.global_time,
                        [
                            c.local_time if c.state == CoreState.ACTIVE else -1
                            for c in self.cores
                        ],
                    )
                heapq.heappush(heap, (done_t, next(seq), -1))
                continue

            ct = self.cores[idx]
            if ct.state != CoreState.ACTIVE:
                continue
            if ct.local_time >= ct.max_local_time:
                suspended[idx] = True
                self.hostmodel.run(ready, self.host_cfg.suspend_cost)
                continue
            stats = ct.run(sim.batch_cycles)
            mgr_idle_streak = 0
            for core_id, release_ts in stats.wakes:
                self.cores[core_id].model.release(release_ts)
            cost = self.costmodel.core_batch_cost(idx, stats, suspended=stats.hit_window_edge)
            done_t = self.hostmodel.run(ready, cost)
            self._drain_activations(heap, seq, done_t)
            self.total_committed += stats.committed
            if ct.local_time > sim.max_cycles:
                raise EngineError(
                    f"core {idx} exceeded max_cycles={sim.max_cycles} "
                    f"(scheme {self.scheme.name}; workload hung?)"
                )
            if sim.max_instructions and self.total_committed >= sim.max_instructions:
                completed = False
                break
            if ct.state == CoreState.ACTIVE:
                if stats.hit_window_edge:
                    suspended[idx] = True
                else:
                    heapq.heappush(heap, (done_t, next(seq), idx))

        self.manager.check_invariants()
        return self._build_result(completed)

    def _drain_activations(self, heap, seq, ready: float) -> None:
        while self._pending_activations:
            core = self._pending_activations.pop()
            heapq.heappush(heap, (ready + self.costmodel.wake_cost, next(seq), core))

    def _diagnose_deadlock(self, suspended: list[bool]) -> None:
        lines = [f"engine deadlock under scheme {self.scheme.name}:"]
        lines.append(f"  global_time={self.manager.global_time}")
        for ct in self.cores:
            lines.append(
                f"  core {ct.core_id}: state={ct.state} local={ct.local_time} "
                f"max={ct.max_local_time} suspended={suspended[ct.core_id]} "
                f"phase={ct.model.phase if ct.model else '?'} inq={len(ct.inq)} outq={len(ct.outq)}"
            )
        lines.append(f"  gq={len(self.manager.gq)}")
        raise EngineError("\n".join(lines))

    # ---------------------------------------------------------------- result
    def _build_result(self, completed: bool) -> SimulationResult:
        ran = [ct for ct in self.cores if ct.ever_active]
        if completed and ran:
            execution = max(ct.final_time for ct in ran)
        else:
            execution = self.manager.global_time
        core_results = []
        for ct in ran:
            l1 = getattr(ct.model, "l1d", None)
            core_results.append(
                CoreResult(
                    core_id=ct.core_id,
                    committed=ct.total_committed,
                    cycles=ct.total_cycles,
                    final_time=ct.final_time or ct.local_time,
                    l1_accesses=l1.stats.accesses if l1 else 0,
                    l1_misses=l1.stats.misses if l1 else 0,
                )
            )
        sync_stats = self.system.sync.stats if self.system else None
        return SimulationResult(
            scheme=self.scheme.name,
            host_cores=self.host_cfg.num_cores,
            seed=self.sim.seed,
            completed=completed,
            execution_cycles=execution,
            global_time=self.manager.global_time,
            instructions=self.total_committed,
            host_time=self.hostmodel.makespan(),
            host_busy=self.hostmodel.busy,
            cores=core_results,
            violations=self.counters,
            output=self.system.merged_output() if self.system else [],
            requests=self.manager.requests_processed,
            barriers=self.manager.barriers_completed,
            lock_acquires=sync_stats.lock_acquires if sync_stats else 0,
            lock_contended=sync_stats.lock_contended if sync_stats else 0,
            engine_steps=self.engine_steps,
        )


def run_simulation(
    program: Program | None,
    *,
    scheme: str = "cc",
    host_cores: int = 8,
    seed: int = 1,
    target: TargetConfig | None = None,
    sim: SimConfig | None = None,
    host: HostConfig | None = None,
    trace_cores: list | None = None,
    **sim_overrides,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`SequentialEngine`."""
    if sim is None:
        sim = SimConfig(scheme=scheme, seed=seed, **sim_overrides)
    if host is None:
        host = HostConfig(num_cores=host_cores)
    engine = SequentialEngine(program, target=target, host=host, sim=sim, trace_cores=trace_cores)
    return engine.run()
