"""Core thread: the clock protocol around one core model (paper Figure 1).

A core thread owns its core model, the InQ/OutQ pair and the two shared
pacing variables (``local_time`` / ``max_local_time``).  It "can advance its
own simulation and local time for as long as its local time is less than
its max local time" and suspends when the window edge is reached; the
manager raises ``max_local_time`` per the active slack scheme.

The same class serves the deterministic sequential engine (stepped in
batches) and the threaded engine (stepped from a real Python thread).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import EvKind, Event
from repro.core.queues import InQ, OutQ
from repro.cpu.interfaces import CorePhase

__all__ = ["CoreThread", "BatchStats", "CoreState"]


class CoreState:
    IDLE = "idle"
    ACTIVE = "active"
    DONE = "done"


@dataclass
class BatchStats:
    """What happened during one engine-scheduled batch of target cycles."""

    cycles: int = 0
    active_cycles: int = 0
    idle_cycles: int = 0
    committed: int = 0
    events_out: int = 0
    events_in: int = 0
    wakes: list[tuple[int, int]] = field(default_factory=list)
    hit_window_edge: bool = False


class CoreThread:
    """One simulated target core plus its queue/clock protocol."""

    def __init__(self, core_id: int, model) -> None:
        self.core_id = core_id
        self.model = model
        self.inq = InQ()
        self.outq = OutQ()
        self.local_time = 0
        self.max_local_time = 0
        self.state = CoreState.IDLE
        self.total_committed = 0
        self.total_cycles = 0
        self.final_time = 0
        self.ever_active = False

    # ------------------------------------------------------------- lifecycle
    def activate(self, pc: int, arg: int, ts: int) -> None:
        """A workload thread was assigned (main at t=0, or spawn at ts)."""
        self.model.activate(pc, arg, ts)
        self.local_time = ts
        self.state = CoreState.ACTIVE
        self.ever_active = True

    # -------------------------------------------------------------- delivery
    def deliver(self, event: Event) -> None:
        self.inq.push(event)

    def _route_due_events(self, stats: BatchStats) -> None:
        while True:
            event = self.inq.pop_due(self.local_time)
            if event is None:
                return
            stats.events_in += 1
            if event.kind is EvKind.RESPONSE:
                self.model.deliver_response(event)
            elif event.kind is EvKind.INVALIDATE:
                self.model.apply_invalidation(event.addr)
            elif event.kind is EvKind.DOWNGRADE:
                self.model.apply_downgrade(event.addr)
            else:  # pragma: no cover
                raise AssertionError(f"unexpected InQ event {event}")

    # ------------------------------------------------------------------ run
    def run(self, budget: int) -> BatchStats:
        """Advance up to *budget* target cycles within the slack window.

        Clock invariant enforced each cycle::

            global <= local_time <= max_local_time

        (the global bound is checked by the manager, which owns global time).
        """
        stats = BatchStats()
        model = self.model
        out_before = len(self.outq)
        while (
            self.state == CoreState.ACTIVE
            and stats.cycles < budget
            and self.local_time < self.max_local_time
        ):
            self._route_due_events(stats)
            committed, active = model.step(self.local_time)
            stats.committed += committed
            if active:
                stats.active_cycles += 1
            else:
                stats.idle_cycles += 1
            stats.cycles += 1
            self.local_time += 1
            if model.pending_wakes:
                stats.wakes.extend(model.pending_wakes)
                model.pending_wakes.clear()
            if model.phase is CorePhase.HALTED:
                self.state = CoreState.DONE
                self.final_time = self.local_time
                break
            # Skip-ahead: a stall with a known resume time burns idle cycles
            # in one jump (identical event behaviour, fewer Python steps).
            hint = model.stall_hint(self.local_time)
            if hint is not None and hint > self.local_time:
                limit = min(self.max_local_time, self.local_time + (budget - stats.cycles))
                next_in = self.inq.peek_ts()
                if next_in is not None:
                    limit = min(limit, next_in)
                jump = min(hint, limit)
                if jump > self.local_time:
                    skipped = jump - self.local_time
                    stats.cycles += skipped
                    # Spin-wait cycles are full-cost (the core simulates the
                    # wait loop); frozen-pipeline stalls are cheap.
                    if getattr(model, "spinning", False):
                        stats.active_cycles += skipped
                    else:
                        stats.idle_cycles += skipped
                    self.local_time = jump
        stats.events_out = len(self.outq) - out_before
        stats.hit_window_edge = (
            self.state == CoreState.ACTIVE and self.local_time >= self.max_local_time
        )
        self.total_committed += stats.committed
        self.total_cycles += stats.cycles
        return stats
