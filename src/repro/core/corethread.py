"""Core thread: the clock protocol around one core model (paper Figure 1).

A core thread owns its core model, the InQ/OutQ pair and the two shared
pacing variables (``local_time`` / ``max_local_time``).  It "can advance its
own simulation and local time for as long as its local time is less than
its max local time" and suspends when the window edge is reached; the
manager raises ``max_local_time`` per the active slack scheme.

The same class serves the deterministic sequential engine (stepped in
batches) and the threaded engine (stepped from a real Python thread).

Batched stepping (DESIGN.md §5): models that implement the optional
``wait_state``/``skip`` protocol let :meth:`CoreThread.step_many` advance
whole wait stretches — frozen-pipeline latencies, spin waits, external
stalls — in one jump per stretch instead of one Python-level ``step`` call
per cycle.  The jump is exact by construction (the model promises
``skip(n)`` ≡ n wait ``step``\\ s), so a budget of thousands of cycles costs
a handful of Python iterations.  ``single=True`` runs the identical control
flow but advances each stretch with per-cycle ``step`` calls — the oracle
the golden determinism tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import EvKind, Event
from repro.core.queues import InQ, OutQ
from repro.cpu.interfaces import WAIT_EXTERNAL, CorePhase

__all__ = ["CoreThread", "BatchStats", "CoreState"]


class CoreState:
    IDLE = "idle"
    ACTIVE = "active"
    DONE = "done"


@dataclass(slots=True)
class BatchStats:
    """What happened during one engine-scheduled batch of target cycles."""

    cycles: int = 0
    active_cycles: int = 0
    idle_cycles: int = 0
    #: Cycles advanced in one jump over a wait stretch (and how many such
    #: stretches) — the host simulates these in O(1) bookkeeping per stretch,
    #: not per cycle, which is where run-ahead batching earns its speed.
    skipped_cycles: int = 0
    skip_stretches: int = 0
    committed: int = 0
    events_out: int = 0
    events_in: int = 0
    wakes: list[tuple[int, int]] = field(default_factory=list)
    hit_window_edge: bool = False

    def reset(self) -> None:
        """Zero all fields so one instance can be reused turn after turn
        (a fresh allocation per turn showed up in the engine profile)."""
        self.cycles = 0
        self.active_cycles = 0
        self.idle_cycles = 0
        self.skipped_cycles = 0
        self.skip_stretches = 0
        self.committed = 0
        self.events_out = 0
        self.events_in = 0
        self.wakes.clear()
        self.hit_window_edge = False


class CoreThread:
    """One simulated target core plus its queue/clock protocol."""

    def __init__(self, core_id: int, model) -> None:
        self.core_id = core_id
        self.model = model
        self.inq = InQ()
        self.outq = OutQ()
        self.local_time = 0
        self.max_local_time = 0
        self.state = CoreState.IDLE
        self.total_committed = 0
        self.total_cycles = 0
        self.final_time = 0
        self.ever_active = False
        # Cumulative batch accounting (registry source).  Both stepping
        # modes fill the same BatchStats fields turn for turn, so this is
        # bit-identical across batched/single stepping by construction.
        # Kept deliberately minimal: the fold runs once per engine turn,
        # and the turn loop is the simulator's hot path.
        self.window_edge_hits = 0
        # Per-thread scratch stats, reset at the start of every batch; the
        # engine consumes the fields before the next batch runs.
        self._stats = BatchStats()

    # ------------------------------------------------------------- lifecycle
    def activate(self, pc: int, arg: int, ts: int) -> None:
        """A workload thread was assigned (main at t=0, or spawn at ts)."""
        self.model.activate(pc, arg, ts)
        self.local_time = ts
        self.state = CoreState.ACTIVE
        self.ever_active = True

    # -------------------------------------------------------------- delivery
    def deliver(self, event: Event) -> None:
        self.inq.push(event)

    def _route_due_events(self, stats: BatchStats) -> None:
        while True:
            event = self.inq.pop_due(self.local_time)
            if event is None:
                return
            stats.events_in += 1
            if event.kind is EvKind.RESPONSE:
                self.model.deliver_response(event)
            elif event.kind is EvKind.INVALIDATE:
                self.model.apply_invalidation(event.addr)
            elif event.kind is EvKind.DOWNGRADE:
                self.model.apply_downgrade(event.addr)
            else:  # pragma: no cover
                raise AssertionError(f"unexpected InQ event {event}")

    # ------------------------------------------------------------------ run
    def run(self, budget: int) -> BatchStats:
        """Advance up to *budget* target cycles within the slack window.

        Dispatches to the batched fast path when the model supports the
        ``wait_state`` protocol, else to the legacy per-cycle loop.

        Clock invariant enforced each cycle::

            global <= local_time <= max_local_time

        (the global bound is checked by the manager, which owns global time).
        """
        if hasattr(self.model, "wait_state"):
            return self.step_many(budget)
        return self._run_percycle(budget)

    def step_many(
        self,
        budget: int,
        *,
        wait_chunk: int = 8,
        single: bool = False,
    ) -> BatchStats:
        """Advance up to *budget* cycles, jumping over wait stretches.

        ``wait_chunk`` bounds how many cycles the core burns waiting on
        *external* input (a manager response) before yielding the turn — the
        manager must get host time to produce the wake, so an unbounded
        budget (su's window) must not spin here forever.  ``single=True``
        keeps the exact same turn structure but advances wait stretches with
        per-cycle ``step`` calls (the equivalence oracle).
        """
        stats = self._stats
        stats.reset()
        model = self.model
        inq = self.inq
        # Direct InQ heap access when the queue is unwrapped (sequential
        # engine): the per-cycle "anything due?" probe is two C-level checks
        # instead of a method call.  The threaded engine wraps the InQ in a
        # locked facade without ``_heap``; it keeps the method-call path.
        inq_heap = getattr(inq, "_heap", None)
        outq_q = self.outq._q
        out_before = len(outq_q)
        wait_rem = wait_chunk
        # Timing-superblock fast path (in-order predecoded cores): a block
        # replaces a run of per-cycle steps with one compiled call.  Cycle
        # totals, commit counts and event moments are identical by
        # construction, so ``single=True`` (the per-cycle oracle) disables
        # it without changing any observable.
        block_step = None if single else getattr(model, "block_step", None)
        while (
            self.state == CoreState.ACTIVE
            and stats.cycles < budget
            and self.local_time < self.max_local_time
        ):
            if inq_heap is not None:
                if inq_heap and inq_heap[0][0] <= self.local_time:
                    self._route_due_events(stats)
            else:
                self._route_due_events(stats)
            ws = model.wait_state(self.local_time)
            if ws is None:
                if block_step is not None:
                    # Cap the block at the first cycle the outside world
                    # could touch: budget, window edge, next queued event.
                    limit = min(
                        self.max_local_time,
                        self.local_time + (budget - stats.cycles),
                    )
                    if inq_heap is not None:
                        if inq_heap and inq_heap[0][0] < limit:
                            limit = inq_heap[0][0]
                    else:
                        next_in = inq.peek_ts()
                        if next_in is not None and next_in < limit:
                            limit = next_in
                    n = block_step(self.local_time, limit - self.local_time)
                    if n:
                        stats.committed += n
                        stats.active_cycles += n
                        stats.cycles += n
                        self.local_time += n
                        continue
                # The model wants a real step: it may commit, emit events,
                # block, or halt this cycle.
                committed, active = model.step(self.local_time)
                stats.committed += committed
                if active:
                    stats.active_cycles += 1
                else:
                    stats.idle_cycles += 1
                stats.cycles += 1
                self.local_time += 1
                if model.pending_wakes:
                    stats.wakes.extend(model.pending_wakes)
                    model.pending_wakes.clear()
                if model.phase is CorePhase.HALTED:
                    self.state = CoreState.DONE
                    self.final_time = self.local_time
                    break
                continue
            resume, active = ws
            limit = min(self.max_local_time, self.local_time + (budget - stats.cycles))
            if inq_heap is not None:
                next_in = inq_heap[0][0] if inq_heap else None
            else:
                next_in = inq.peek_ts()
            if next_in is not None and next_in < limit:
                limit = next_in
            blind = resume >= WAIT_EXTERNAL and next_in is None
            if blind:
                # External wait with nothing queued: burn blind, up to the
                # chunk allowance, then yield so the manager gets host time
                # to produce the wake.  If the wake lands in host time only
                # after the core has already burned past its timestamp, the
                # core observes it late — the de-facto slack wide windows
                # permit (the source of the violations Figure 7 counts).
                target = min(self.local_time + wait_rem, limit)
            elif resume >= WAIT_EXTERNAL:
                # External wait but the wake is already queued: the wait is
                # de-facto timed — run straight to the event's timestamp (or
                # the window edge) in one jump.
                target = limit
            else:
                # Timed waits resume at a model-known cycle; queued events
                # due before then are delivered at their exact timestamp.
                target = min(resume, limit)
            n = target - self.local_time
            if n <= 0:
                # Only reachable when the external-wait allowance is spent:
                # yield the turn so the manager can deliver the wake.
                break
            if single:
                now = self.local_time
                for i in range(n):
                    model.step(now + i)
            else:
                model.skip(n)
            stats.cycles += n
            stats.skipped_cycles += n
            stats.skip_stretches += 1
            self.local_time = target
            if blind:
                wait_rem -= n
                if wait_rem <= 0:
                    # Allowance spent and still nothing queued: yield the
                    # turn so the manager gets host time to produce the wake.
                    break
        stats.events_out = len(outq_q) - out_before
        stats.hit_window_edge = (
            self.state == CoreState.ACTIVE and self.local_time >= self.max_local_time
        )
        self.total_committed += stats.committed
        self.total_cycles += stats.cycles
        if stats.hit_window_edge:
            self.window_edge_hits += 1
        return stats

    def _run_percycle(self, budget: int) -> BatchStats:
        """Per-cycle loop for models without ``wait_state`` (OoO, ad-hoc
        test models): one ``step`` per cycle plus ``stall_hint`` skip-ahead."""
        stats = self._stats
        stats.reset()
        model = self.model
        out_before = len(self.outq)
        while (
            self.state == CoreState.ACTIVE
            and stats.cycles < budget
            and self.local_time < self.max_local_time
        ):
            self._route_due_events(stats)
            committed, active = model.step(self.local_time)
            stats.committed += committed
            if active:
                stats.active_cycles += 1
            else:
                stats.idle_cycles += 1
            stats.cycles += 1
            self.local_time += 1
            if model.pending_wakes:
                stats.wakes.extend(model.pending_wakes)
                model.pending_wakes.clear()
            if model.phase is CorePhase.HALTED:
                self.state = CoreState.DONE
                self.final_time = self.local_time
                break
            # Skip-ahead: a stall with a known resume time burns idle cycles
            # in one jump (identical event behaviour, fewer Python steps).
            hint = model.stall_hint(self.local_time)
            if hint is not None and hint > self.local_time:
                limit = min(self.max_local_time, self.local_time + (budget - stats.cycles))
                next_in = self.inq.peek_ts()
                if next_in is not None:
                    limit = min(limit, next_in)
                jump = min(hint, limit)
                if jump > self.local_time:
                    skipped = jump - self.local_time
                    stats.cycles += skipped
                    # Spin-wait cycles are full-cost (the core simulates the
                    # wait loop); frozen-pipeline stalls are cheap.
                    if getattr(model, "spinning", False):
                        stats.active_cycles += skipped
                    else:
                        stats.idle_cycles += skipped
                    self.local_time = jump
        stats.events_out = len(self.outq) - out_before
        stats.hit_window_edge = (
            self.state == CoreState.ACTIVE and self.local_time >= self.max_local_time
        )
        self.total_committed += stats.committed
        self.total_cycles += stats.cycles
        if stats.hit_window_edge:
            self.window_edge_hits += 1
        return stats
