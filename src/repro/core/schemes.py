"""Slack simulation schemes (paper §3.1).

A scheme answers two questions for the simulation manager:

1. **How far may each core thread run?** — ``max_local(global_time)`` gives
   the window upper bound ("Global Time <= Local Time <= Max Local Time").
2. **When may a GQ request be serviced?** — the ``gq_policy``:

   * ``immediate``: service requests in arrival order as soon as the manager
     sees them (bounded / unbounded slack);
   * ``barrier``: service only when every active core has exhausted its
     window, i.e. at the quantum barrier (cycle-by-cycle, quantum-based);
   * ``oldest``: service strictly in timestamp order and only once global
     time has reached a request's timestamp (lookahead, oldest-first bounded
     slack) — conservative, violation-free when slack <= critical latency.

Scheme strings: ``cc``, ``q10``, ``l10``, ``s9``, ``s9*``, ``s100``, ``su``
(any integer parameter is accepted).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = [
    "Scheme",
    "CycleByCycle",
    "QuantumBased",
    "AdaptiveQuantum",
    "Lookahead",
    "BoundedSlack",
    "OldestFirstBoundedSlack",
    "UnboundedSlack",
    "parse_scheme",
    "INFINITY",
]

#: Effectively-unbounded max local time.
INFINITY = 1 << 62


@dataclass(frozen=True)
class Scheme:
    """Base class: immutable policy descriptor."""

    name: str
    #: "immediate" | "barrier" | "oldest"
    gq_policy: str
    #: Window size in cycles (INFINITY for unbounded).
    slack: int
    #: True if the scheme guarantees timestamp-order request processing.
    conservative: bool

    def max_local(self, global_time: int) -> int:
        """Upper bound on every core's local time given the current global."""
        raise NotImplementedError

    def grant(self, global_time: int, local_time: int, oldest_ts: int | None = None) -> int:
        """Safe batch size: how many cycles a core at *local_time* may run
        before the next synchronization point under this scheme.

        This is the window remainder ``max_local(global) - local`` — 1 for
        cycle-by-cycle, the quantum remainder for qN, the slack-window
        remainder for sN/sN*, the lookahead bound for lN (which needs the
        oldest unprocessed GQ timestamp) and INFINITY for su.  A core exactly
        at its window edge gets 0 (it must suspend).
        """
        return max(0, self.max_local(global_time) - local_time)

    def describe(self) -> str:
        return f"{self.name} (policy={self.gq_policy}, slack={self.slack if self.slack < INFINITY else 'inf'})"


class CycleByCycle(Scheme):
    """0 slack: all threads synchronize after every simulated cycle (the
    accuracy gold standard, Figure 2a)."""

    def __init__(self) -> None:
        super().__init__(name="cc", gq_policy="barrier", slack=1, conservative=True)

    def max_local(self, global_time: int) -> int:
        return global_time + 1


class QuantumBased(Scheme):
    """Barrier every *quantum* cycles (WWT-II style, Figure 2b)."""

    def __init__(self, quantum: int) -> None:
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        super().__init__(name=f"q{quantum}", gq_policy="barrier", slack=quantum, conservative=True)
        object.__setattr__(self, "quantum", quantum)

    def max_local(self, global_time: int) -> int:
        q: int = self.quantum  # type: ignore[attr-defined]
        return (global_time // q + 1) * q


class AdaptiveQuantum(Scheme):
    """Extension (paper §5, after Falcón et al. [8]): a barrier quantum that
    adapts to inter-core traffic.  When few requests cross a quantum the
    barrier interval doubles (less synchronization); when traffic is dense it
    halves back toward the minimum.  Not conservative: the quantum may grow
    past the critical latency, delaying event visibility — the adaptive
    trade-off the related work reports ("dramatic speedup with less than 5%
    error").

    Spec string: ``aqMIN-MAX`` (e.g. ``aq10-160``).
    """

    def __init__(self, min_quantum: int, max_quantum: int) -> None:
        if not 1 <= min_quantum <= max_quantum:
            raise ValueError("need 1 <= min_quantum <= max_quantum")
        super().__init__(
            name=f"aq{min_quantum}-{max_quantum}",
            gq_policy="barrier",
            slack=max_quantum,
            conservative=False,
        )
        object.__setattr__(self, "min_quantum", min_quantum)
        object.__setattr__(self, "max_quantum", max_quantum)
        object.__setattr__(self, "current_quantum", min_quantum)
        # The barrier point must be an *absolute* boundary: if it were
        # global-relative it would slide with every global-time update and
        # the barrier would never complete (requests would starve).
        object.__setattr__(self, "next_boundary", min_quantum)
        #: Requests per quantum cycle above which the quantum shrinks /
        #: below which it grows (hysteresis band).
        object.__setattr__(self, "dense_rate", 0.10)
        object.__setattr__(self, "sparse_rate", 0.02)

    def max_local(self, global_time: int) -> int:
        return self.next_boundary  # type: ignore[attr-defined]

    def adapt(self, requests: int, quantum_cycles: int) -> None:
        """Manager feedback hook, called at each barrier: pick the next
        quantum from the observed request rate, then move the boundary."""
        if quantum_cycles <= 0:
            quantum_cycles = self.current_quantum  # type: ignore[attr-defined]
        rate = requests / quantum_cycles
        q: int = self.current_quantum  # type: ignore[attr-defined]
        if rate > self.dense_rate:  # type: ignore[attr-defined]
            q = max(self.min_quantum, q // 2)  # type: ignore[attr-defined]
        elif rate < self.sparse_rate:  # type: ignore[attr-defined]
            q = min(self.max_quantum, q * 2)  # type: ignore[attr-defined]
        object.__setattr__(self, "current_quantum", q)
        object.__setattr__(self, "next_boundary", self.next_boundary + q)  # type: ignore[attr-defined]


class Lookahead(Scheme):
    """Chandy-Misra-style conservative lookahead (Figure order §3.1): cores
    may run up to the oldest unprocessed event plus the lookahead; requests
    are processed in timestamp order when global time reaches them."""

    def __init__(self, lookahead: int) -> None:
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        super().__init__(name=f"l{lookahead}", gq_policy="oldest", slack=lookahead, conservative=True)
        object.__setattr__(self, "lookahead", lookahead)

    def max_local(self, global_time: int, oldest_pending_ts: int | None = None) -> int:
        la: int = self.lookahead  # type: ignore[attr-defined]
        base = global_time if oldest_pending_ts is None else min(global_time, oldest_pending_ts)
        return base + la

    def grant(self, global_time: int, local_time: int, oldest_ts: int | None = None) -> int:
        return max(0, self.max_local(global_time, oldest_ts) - local_time)


class BoundedSlack(Scheme):
    """The paper's proposal (Figure 2c): sliding window [Tg, Tg+S] with no
    barriers; requests serviced immediately in arrival order."""

    def __init__(self, slack: int) -> None:
        if slack < 1:
            raise ValueError("slack must be >= 1")
        super().__init__(name=f"s{slack}", gq_policy="immediate", slack=slack, conservative=False)

    def max_local(self, global_time: int) -> int:
        return global_time + self.slack


class OldestFirstBoundedSlack(Scheme):
    """Bounded slack + timestamp-ordered request processing at global time
    (the paper's S*; conservative when slack < critical latency)."""

    def __init__(self, slack: int) -> None:
        if slack < 1:
            raise ValueError("slack must be >= 1")
        super().__init__(name=f"s{slack}*", gq_policy="oldest", slack=slack, conservative=True)

    def max_local(self, global_time: int) -> int:
        return global_time + self.slack


class UnboundedSlack(Scheme):
    """No synchronization at all (Figure 2d): the extreme case."""

    def __init__(self) -> None:
        super().__init__(name="su", gq_policy="immediate", slack=INFINITY, conservative=False)

    def max_local(self, global_time: int) -> int:
        return INFINITY

    def grant(self, global_time: int, local_time: int, oldest_ts: int | None = None) -> int:
        return INFINITY


_SCHEME_RE = re.compile(r"^(cc|su|aq(\d+)-(\d+)|q(\d+)|l(\d+)|s(\d+)(\*)?)$")


def parse_scheme(spec: str | Scheme) -> Scheme:
    """Parse a scheme spec string (``cc``/``qN``/``lN``/``sN``/``sN*``/``su``)."""
    if isinstance(spec, Scheme):
        return spec
    m = _SCHEME_RE.match(spec.strip().lower())
    if not m:
        raise ValueError(
            f"bad scheme {spec!r}: expected cc, qN, aqMIN-MAX, lN, sN, sN* or su"
        )
    if m.group(1) == "cc":
        return CycleByCycle()
    if m.group(1) == "su":
        return UnboundedSlack()
    if m.group(2):
        return AdaptiveQuantum(int(m.group(2)), int(m.group(3)))
    if m.group(4):
        return QuantumBased(int(m.group(4)))
    if m.group(5):
        return Lookahead(int(m.group(5)))
    slack = int(m.group(6))
    return OldestFirstBoundedSlack(slack) if m.group(7) else BoundedSlack(slack)
