"""Event queues: per-core OutQ / InQ and the manager's global GQ.

The GQ "consolidates all the local thread OutQ requests in a single queue,
which allows the thread manager to efficiently manage and schedule all the
GQ events" (paper §2.2).  It supports the two processing disciplines the
schemes need: FIFO arrival order (bounded/unbounded slack) and oldest-first
by timestamp with a release bound (cycle-by-cycle / quantum / lookahead /
oldest-first bounded).
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.core.events import Event

__all__ = ["OutQ", "InQ", "GlobalQueue"]


class OutQ:
    """A core thread's outgoing request queue (core -> manager)."""

    __slots__ = ("_q",)

    def __init__(self) -> None:
        self._q: deque[Event] = deque()

    def push(self, event: Event) -> None:
        self._q.append(event)

    def drain(self) -> list[Event]:
        """Remove and return all entries (manager side).

        Implemented with atomic ``popleft`` so a concurrent producer (the
        threaded engine's core thread) can never lose an event.
        """
        items: list[Event] = []
        q = self._q
        while True:
            try:
                items.append(q.popleft())
            except IndexError:
                return items

    def __bool__(self) -> bool:
        return bool(self._q)

    def __len__(self) -> int:
        return len(self._q)


class InQ:
    """A core thread's incoming queue (manager -> core), ordered by ts.

    The core "enquires its InQ in every cycle" and consumes entries whose
    timestamp has been reached.  Entries from the simulated past (possible
    under slack) are consumed immediately — a time distortion, not an error.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, Event]] = []

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.ts, event.seq, event))

    def pop_due(self, now: int) -> Event | None:
        """Pop the earliest entry with ``ts <= now``, else None."""
        if self._heap and self._heap[0][0] <= now:
            return heapq.heappop(self._heap)[2]
        return None

    def peek_ts(self) -> int | None:
        """Timestamp of the earliest entry (for stall skip-ahead)."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)


class GlobalQueue:
    """The manager's consolidated request queue.

    Timestamp-order pops break same-``ts`` ties by ``(core, seq)`` rather
    than bare creation order: two requests stamped with the same target
    cycle are serviced in core-id order no matter which core thread the
    host happened to run first.  Creation order is a *host* artifact — it
    differs between the dynamic engine's jitter-dependent turn order and
    the static bulk-synchronous schedule — while (ts, core, within-core
    order) is a pure function of the simulated target, which is what makes
    the two schedulers bit-identical (DESIGN.md §9).
    """

    __slots__ = ("_fifo", "_heap")

    def __init__(self) -> None:
        self._fifo: deque[Event] = deque()
        self._heap: list[tuple[int, int, int, Event]] = []

    def push(self, event: Event) -> None:
        self._fifo.append(event)
        heapq.heappush(self._heap, (event.ts, event.core, event.seq, event))

    def pop_fifo(self) -> Event | None:
        """Arrival-order pop (original bounded slack: 'no such constraint')."""
        while self._fifo:
            event = self._fifo.popleft()
            if not event.consumed:
                event.consumed = True
                return event
        return None

    def pop_oldest(self, max_ts: int) -> Event | None:
        """Timestamp-order pop, restricted to ``ts <= max_ts`` (conservative
        schemes: process the oldest request only once global time reaches it)."""
        heap = self._heap
        while heap and heap[0][0] <= max_ts:
            event = heapq.heappop(heap)[3]
            if not event.consumed:
                event.consumed = True
                return event
        return None

    def oldest_ts(self) -> int | None:
        """Timestamp of the oldest unconsumed request (lookahead bound)."""
        heap = self._heap
        while heap and heap[0][3].consumed:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def __bool__(self) -> bool:
        return any(not e.consumed for e in self._fifo)

    def __len__(self) -> int:
        return sum(1 for e in self._fifo if not e.consumed)
