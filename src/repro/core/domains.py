"""Scheduling domains: the pluggable drain → service → raise interface and
the multi-domain memory-side manager with its execution backends.

DESIGN.md §10.  The paper's slack window decouples *cores* from the manager;
this module decouples the manager's memory side from itself.  The
:class:`SchedulingDomain` protocol names the contract every engine loop
(sequential dynamic, static superstep, threaded) already drives:

    drain    core OutQs feed the domain's global queue(s);
    service  the active scheme's GQ policy picks a batch, the memory side
             executes it, responses/coherence messages land in core InQs;
    raise    global time advances and core windows are raised.

:class:`~repro.core.manager.SimulationManager` is the monolithic
implementation.  :class:`DomainManager` shards the memory side into N
independently-clocked domains (:mod:`repro.mem.domains`) and delegates batch
*execution* — and only execution — to a :class:`Backend`:

* the GQ-policy pops, event delivery and window raises stay on the
  coordinator, so seq draws happen in one deterministic order no matter how
  the backend schedules the shard work;
* each domain's batch touches only that domain's shard (private bank
  ranges, directory region, DRAM channel, violation counters), so backends
  may execute batches concurrently with no shared mutable state;
* cross-domain coherence is exchanged only at window edges: with N>1 every
  window is floored at the exchange quantum (the critical latency), so no
  in-flight message can cross a domain boundary mid-window.  Each domain
  keeps a local clock and an exchanged-timestamp horizon; an event that
  arrives below another domain's horizon is counted as a cross-domain
  ordering slip (``violations.cross_domain``), never silently reordered
  away.

Backends: ``sequential`` (round-robin on the coordinator — the digest
baseline), ``threaded`` (one worker thread per domain; small exchanges are
serviced inline because a sub-threshold batch costs less than a wake/latch
round trip), ``process`` (one worker process per domain for trace
workloads; shard state ships by pickle at start and returns at finalize,
reusing the checkpoint machinery's picklability guarantees).
"""

from __future__ import annotations

import queue
import threading
from typing import Protocol, runtime_checkable

from repro.core.corethread import CoreState, CoreThread
from repro.core.events import REQUEST_KINDS, Event
from repro.core.manager import ManagerStepResult, SimulationManager
from repro.core.queues import GlobalQueue
from repro.core.schedule import floored_window
from repro.core.schemes import INFINITY, Scheme
from repro.mem.domains import ShardedMemorySystem
from repro.violations.detect import ViolationCounters

__all__ = [
    "SchedulingDomain",
    "MemDomain",
    "DomainManager",
    "SequentialBackend",
    "ThreadedBackend",
    "ProcessBackend",
    "make_backend",
    "BACKENDS",
]


class DomainError(RuntimeError):
    """A scheduling-domain backend failed (worker died, hung, or raised)."""


@runtime_checkable
class SchedulingDomain(Protocol):
    """What an engine loop needs from "the manager side" of a simulation.

    Both the monolithic :class:`SimulationManager` and the sharded
    :class:`DomainManager` satisfy this; the engines are written against it
    and never look behind it.
    """

    global_time: int
    requests_processed: int
    barriers_completed: int
    windows_raised: int
    events_drained: int
    gq_max_depth: int

    def step(self) -> ManagerStepResult:
        """One drain → service → raise pass (the quantum/window exchange)."""
        ...

    def refresh_window(self, ct: CoreThread) -> bool:
        """Re-read shared clocks at a core's window edge (sliding windows)."""
        ...

    def current_max_local(self) -> int:
        """Window bound for a newly activated core under the current scheme."""
        ...

    def check_invariants(self) -> None:
        ...

    def finalize(self) -> None:
        """Release backend resources; must be called before reading stats."""
        ...


class MemDomain:
    """One independently-clocked memory-side domain.

    Owns a contiguous L2 bank range, the directory region of the blocks
    mapping there and one DRAM channel — all embodied by its ``memsys``
    shard — plus its own per-domain GQ.  ``clock`` is the domain's local
    time (advanced in lockstep at window-edge exchanges); ``high_ts`` is the
    highest request timestamp it has exchanged, the horizon used for
    cross-domain ordering detection.
    """

    __slots__ = ("domain_id", "memsys", "gq", "clock", "high_ts", "pending")

    def __init__(self, domain_id: int, memsys) -> None:
        self.domain_id = domain_id
        self.memsys = memsys
        self.gq = GlobalQueue()
        self.clock = 0
        self.high_ts = 0
        #: (request Event, ServiceResult) pairs awaiting coordinator delivery.
        self.pending: list = []

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)

    def service_batch(self, batch: list[Event]) -> None:
        """Execute one exchanged batch against this domain's shard.

        Touches only domain-local state (shard occupancy/tags/counters and
        ``pending``), which is what lets backends run it concurrently.
        """
        service = self.memsys.service
        pending = self.pending
        for event in batch:
            pending.append(
                (event, service(REQUEST_KINDS[event.kind], event.addr, event.core, event.ts))
            )


class _GQView:
    """Read-only facade presenting N per-domain GQs as one queue.

    The engines only ever *read* the manager's ``gq`` (lookahead bound,
    deadlock diagnostics, fault-install checks); pushes and pops go through
    the domain manager's step.
    """

    __slots__ = ("_domains",)

    def __init__(self, domains: list[MemDomain]) -> None:
        self._domains = domains

    def oldest_ts(self) -> int | None:
        oldest = None
        for d in self._domains:
            ts = d.gq.oldest_ts()
            if ts is not None and (oldest is None or ts < oldest):
                oldest = ts
        return oldest

    def __len__(self) -> int:
        return sum(len(d.gq) for d in self._domains)

    def __bool__(self) -> bool:
        return any(d.gq for d in self._domains)


class DomainManager(SimulationManager):
    """Sharded drain → service → raise with pluggable batch execution.

    Determinism ladder (DESIGN.md §10):

    * N=1, any backend: byte-identical digests to the monolithic manager.
      The single domain's GQ sees the same pushes, the same policy pops in
      the same order, and delivery constructs response/coherence events in
      the exact per-event order ``SimulationManager._service`` would — so
      every seq draw lands on the same event.
    * N>1: seed-stable and backend-independent.  Batches are buffered and
      delivered domain-major (domain 0..N-1, within-domain pop order), so
      the result is a pure function of the exchanged batches regardless of
      which worker finished first.
    """

    def __init__(
        self,
        cores: list[CoreThread],
        memsys: ShardedMemorySystem,
        scheme: Scheme,
        counters: ViolationCounters,
        *,
        backend: str = "sequential",
        host_timeout: float = 120.0,
    ) -> None:
        super().__init__(cores, memsys, scheme)
        if backend not in BACKENDS:
            raise DomainError(
                f"unknown backend {backend!r} (choose from {sorted(BACKENDS)})"
            )
        #: Engine-level counters: cross-domain slips are coordinator-side
        #: observations, not shard-side ones, so they land here (the shards'
        #: private counters hold their own resource-order violations).
        self.counters = counters
        self.backend_name = backend
        self.host_timeout = host_timeout
        self.domains = [MemDomain(k, shard) for k, shard in enumerate(memsys.shards)]
        self.gq = _GQView(self.domains)
        #: Cross-domain exchange quantum: with N>1 every window is floored at
        #: ``global_time + quantum`` so coherence crosses domains only at
        #: window edges.  The critical latency is the conservative choice —
        #: no response can be consumed sooner, so flooring there cannot let
        #: a core observe a message "from the future" of another domain.
        #: Zero (no floor, no behaviour change) for a single domain.
        self.exchange_quantum = memsys.critical_latency() if memsys.num_domains > 1 else 0
        self.exchanges = 0
        self._backend = None

    # ------------------------------------------------------------- pickling
    def __getstate__(self):
        """Backends hold threads/pipes; drop and lazily rebuild on restore."""
        state = dict(self.__dict__)
        state["_backend"] = None
        return state

    def _ensure_backend(self):
        backend = self._backend
        if backend is None:
            backend = self._backend = BACKENDS[self.backend_name](self)
        return backend

    def finalize(self) -> None:
        if self._backend is not None:
            self._backend.close()
            self._backend = None

    # -------------------------------------------------------------- windows
    def current_max_local(self) -> int:
        return floored_window(
            super().current_max_local(), self.global_time, self.exchange_quantum
        )

    # ------------------------------------------------------------------ step
    def step(self) -> ManagerStepResult:
        backend = self._backend
        if backend is None:
            backend = self._ensure_backend()
        result = ManagerStepResult()
        domains = self.domains
        domain_of = self.memsys.domain_of
        # Fused drain/gather pass, as in the monolithic step — but each event
        # is routed to its owning domain's GQ by address range.
        drained = 0
        active = []
        min_local = None
        at_edge = True
        for ct in self.cores:
            if ct.outq._q:
                for event in ct.outq.drain():
                    domains[domain_of(event.addr)].gq.push(event)
                    drained += 1
            if ct.state == CoreState.ACTIVE:
                active.append(ct)
                lt = ct.local_time
                if min_local is None or lt < min_local:
                    min_local = lt
                if lt < ct.max_local_time:
                    at_edge = False
        result.drained = drained
        self.events_drained += drained
        self._gq_depth += drained
        if self._gq_depth > self.gq_max_depth:
            self.gq_max_depth = self._gq_depth

        # Policy pops stay on the coordinator: the batch an exchange services
        # is a pure function of simulated state, independent of the backend.
        policy = self.scheme.gq_policy
        batches: list[list[Event]] = [[] for _ in domains]
        barrier_fired = False
        if policy == "immediate":
            for d in domains:
                batch = batches[d.domain_id]
                pop = d.gq.pop_fifo
                while True:
                    event = pop()
                    if event is None:
                        break
                    batch.append(event)
        elif policy == "oldest":
            bound = min_local if min_local is not None else self.global_time
            if bound < self.global_time:
                bound = self.global_time
            for d in domains:
                batch = batches[d.domain_id]
                pop = d.gq.pop_oldest
                while True:
                    event = pop(bound)
                    if event is None:
                        break
                    batch.append(event)
        else:  # barrier (cycle-by-cycle / quantum-based / adaptive quantum)
            if active and at_edge:
                barrier_fired = True
                self.barriers_completed += 1
                for d in domains:
                    batch = batches[d.domain_id]
                    pop = d.gq.pop_oldest
                    while True:
                        event = pop(INFINITY)
                        if event is None:
                            break
                        batch.append(event)

        processed = 0
        for batch in batches:
            processed += len(batch)
        if processed:
            self.exchanges += 1
            if len(domains) > 1:
                self._detect_cross_domain(batches)
            backend.execute(batches)
            # Deliver domain-major in within-domain pop order: the one fixed
            # construction order every backend's results are folded into.
            deliver = self._deliver
            for d in domains:
                for event, service_result in d.pending:
                    self.requests_processed += 1
                    deliver(event, service_result)
                d.pending.clear()
        if barrier_fired and self._adapt is not None:
            boundary = min(ct.max_local_time for ct in active)
            self._adapt(processed, max(1, boundary - self.global_time))
        result.processed = processed
        self._gq_depth -= processed

        # Advance global time (monotonic; excludes idle/done cores) and the
        # domain clocks with it — domains run bulk-synchronous lockstep, so
        # after an exchange every local clock equals the global one.
        if min_local is not None and min_local > self.global_time:
            self.global_time = min_local
        gtime = self.global_time
        for d in domains:
            if d.clock < gtime:
                d.clock = gtime

        # Raise windows per the scheme (floored at the exchange quantum).
        new_max = self.current_max_local()
        raised = result.raised
        for ct in active:
            if new_max > ct.max_local_time:
                ct.max_local_time = new_max
                raised.append(ct.core_id)
        self.windows_raised += len(raised)
        return result

    def _detect_cross_domain(self, batches: list[list[Event]]) -> None:
        """Count events arriving below another domain's exchanged horizon.

        Domain d's horizon (``high_ts``) is the highest timestamp it has
        serviced.  An event in this exchange whose timestamp precedes some
        *other* domain's horizon is ordered against already-committed remote
        state — the sharded analogue of the paper's simulation-state
        violation, observable only at exchange granularity.  Horizons update
        after detection so events within one exchange never count against
        each other (they are serviced concurrently by construction).
        """
        domains = self.domains
        best = second = 0
        best_idx = -1
        for d in domains:
            h = d.high_ts
            if h > best:
                second = best
                best = h
                best_idx = d.domain_id
            elif h > second:
                second = h
        record = self.counters.record_cross_domain
        for d in domains:
            batch = batches[d.domain_id]
            if not batch:
                continue
            horizon = second if d.domain_id == best_idx else best
            if horizon:
                late = 0
                for event in batch:
                    if event.ts < horizon:
                        late += 1
                if late:
                    record(f"domain[{d.domain_id}]", late)
        for d in domains:
            batch = batches[d.domain_id]
            if batch:
                top = max(event.ts for event in batch)
                if top > d.high_ts:
                    d.high_ts = top


# --------------------------------------------------------------------------
# Backends
# --------------------------------------------------------------------------


class SequentialBackend:
    """Round-robin batch execution on the coordinator (digest baseline)."""

    name = "sequential"

    def __init__(self, manager: DomainManager) -> None:
        self.domains = manager.domains

    def execute(self, batches: list[list[Event]]) -> None:
        for d in self.domains:
            batch = batches[d.domain_id]
            if batch:
                d.service_batch(batch)

    def close(self) -> None:
        pass


class ThreadedBackend:
    """One persistent worker thread per domain.

    Workers only touch their own domain's shard, so the sole shared state is
    the work/done queue pair.  Exchanges below ``inline_threshold`` total
    events are serviced inline on the coordinator: the results are identical
    either way (domain state is disjoint), and a typical window-edge
    exchange is far cheaper than even one wake/latch round trip.
    """

    name = "threaded"
    #: Total exchanged events below which the coordinator services inline.
    inline_threshold = 32

    def __init__(self, manager: DomainManager) -> None:
        self.domains = manager.domains
        self.timeout = manager.host_timeout
        self._inbox: list[queue.SimpleQueue] = []
        self._done: queue.SimpleQueue = queue.SimpleQueue()
        self._threads: list[threading.Thread] = []

    def _ensure_workers(self) -> None:
        if self._threads:
            return
        for d in self.domains:
            inbox: queue.SimpleQueue = queue.SimpleQueue()
            worker = threading.Thread(
                target=self._worker,
                args=(d, inbox),
                name=f"repro-domain-{d.domain_id}",
                daemon=True,
            )
            worker.start()
            self._inbox.append(inbox)
            self._threads.append(worker)

    def _worker(self, domain: MemDomain, inbox: queue.SimpleQueue) -> None:
        done = self._done
        while True:
            batch = inbox.get()
            if batch is None:
                return
            try:
                domain.service_batch(batch)
            except BaseException as exc:  # propagate to the coordinator
                done.put((domain.domain_id, exc))
            else:
                done.put((domain.domain_id, None))

    def execute(self, batches: list[list[Event]]) -> None:
        nonempty = [d.domain_id for d in self.domains if batches[d.domain_id]]
        total = 0
        for k in nonempty:
            total += len(batches[k])
        if total < self.inline_threshold or len(nonempty) < 2:
            for k in nonempty:
                self.domains[k].service_batch(batches[k])
            return
        self._ensure_workers()
        for k in nonempty:
            self._inbox[k].put(batches[k])
        error = None
        for _ in nonempty:
            try:
                domain_id, exc = self._done.get(timeout=self.timeout)
            except queue.Empty:
                raise DomainError(
                    f"domain worker made no progress for {self.timeout}s "
                    "(threaded backend watchdog)"
                ) from None
            if exc is not None and error is None:
                error = (domain_id, exc)
        if error is not None:
            raise DomainError(f"domain {error[0]} worker failed: {error[1]!r}") from error[1]

    def close(self) -> None:
        for inbox in self._inbox:
            inbox.put(None)
        for worker in self._threads:
            worker.join(timeout=5.0)
        self._inbox = []
        self._threads = []


def _process_domain_worker(conn) -> None:
    """Worker-process loop: owns one pickled shard between init and quit.

    Batches arrive as plain (ReqKind, addr, core, ts) tuples — Events stay
    coordinator-side — and results return as ServiceResult lists.  ``quit``
    ships the shard (mutated occupancy/tags/stats/counters) back, which the
    coordinator swaps in before any stats are read.
    """
    memsys = None
    try:
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "init":
                memsys = message[1]
            elif tag == "batch":
                try:
                    results = [
                        memsys.service(kind, addr, core, ts)
                        for kind, addr, core, ts in message[1]
                    ]
                except BaseException as exc:
                    conn.send(("err", repr(exc)))
                else:
                    conn.send(("ok", results))
            elif tag == "quit":
                conn.send(("state", memsys))
                return
    except (EOFError, OSError):
        return


class ProcessBackend:
    """One persistent worker process per domain (trace workloads).

    Shard state is pickle-cut to the worker at first use and returns at
    finalize — the same picklability contract the checkpoint machinery
    enforces.  Mid-run the coordinator's shard copies are stale, which is
    why the engine gates checkpointing and stats snapshots off this backend.
    """

    name = "process"

    def __init__(self, manager: DomainManager) -> None:
        self.domains = manager.domains
        self.memsys = manager.memsys
        self.timeout = manager.host_timeout
        self._conns = None
        self._procs = None

    def _ensure_workers(self) -> None:
        if self._procs is not None:
            return
        import multiprocessing

        # fork ships nothing implicitly we rely on (state goes via the init
        # message) but starts workers far faster than spawn where available.
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            ctx = multiprocessing.get_context("spawn")
        self._conns = []
        self._procs = []
        for d in self.domains:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_process_domain_worker,
                args=(child,),
                name=f"repro-domain-{d.domain_id}",
                daemon=True,
            )
            proc.start()
            child.close()
            parent.send(("init", d.memsys))
            self._conns.append(parent)
            self._procs.append(proc)

    def execute(self, batches: list[list[Event]]) -> None:
        self._ensure_workers()
        nonempty = [d.domain_id for d in self.domains if batches[d.domain_id]]
        for k in nonempty:
            self._conns[k].send(
                (
                    "batch",
                    [
                        (REQUEST_KINDS[e.kind], e.addr, e.core, e.ts)
                        for e in batches[k]
                    ],
                )
            )
        for k in nonempty:
            conn = self._conns[k]
            if not conn.poll(self.timeout):
                raise DomainError(
                    f"domain {k} worker unresponsive for {self.timeout}s "
                    "(process backend watchdog)"
                )
            tag, payload = conn.recv()
            if tag == "err":
                raise DomainError(f"domain {k} worker failed: {payload}")
            self.domains[k].pending.extend(zip(batches[k], payload))

    def close(self) -> None:
        if self._procs is None:
            return
        for k, conn in enumerate(self._conns):
            try:
                conn.send(("quit",))
                if conn.poll(self.timeout):
                    tag, shard = conn.recv()
                    if tag == "state":
                        # Swap the worker's mutated shard back so stats,
                        # violations and checkpoints see the real final state.
                        self.domains[k].memsys = shard
                        self.memsys.shards[k] = shard
            except (BrokenPipeError, EOFError, OSError):
                pass
            finally:
                conn.close()
        for proc in self._procs:
            proc.join(timeout=5.0)
        self._conns = None
        self._procs = None


BACKENDS = {
    "sequential": SequentialBackend,
    "threaded": ThreadedBackend,
    "process": ProcessBackend,
}


def make_backend(name: str, manager: DomainManager):
    try:
        return BACKENDS[name](manager)
    except KeyError:
        raise DomainError(
            f"unknown backend {name!r} (choose from {sorted(BACKENDS)})"
        ) from None
