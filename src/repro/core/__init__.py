"""The slack simulation engine — the paper's primary contribution.

Schemes: cycle-by-cycle (``cc``), quantum-based (``qN``), lookahead
(``lN``), bounded slack (``sN``), oldest-first bounded slack (``sN*``) and
unbounded slack (``su``).  Two engines share one thread structure:
:class:`SequentialEngine` (deterministic, virtual-host) and
:class:`~repro.core.threaded.ThreadedEngine` (real Python threads,
Pthreads-style as in the paper).
"""

from repro.core.config import HostConfig, SimConfig, TargetConfig
from repro.core.corethread import BatchStats, CoreState, CoreThread
from repro.core.engine import EngineError, SequentialEngine, run_simulation
from repro.core.events import EvKind, Event
from repro.core.manager import SimulationManager
from repro.core.queues import GlobalQueue, InQ, OutQ
from repro.core.results import CoreResult, SimulationResult
from repro.core.schemes import (
    INFINITY,
    AdaptiveQuantum,
    BoundedSlack,
    CycleByCycle,
    Lookahead,
    OldestFirstBoundedSlack,
    QuantumBased,
    Scheme,
    UnboundedSlack,
    parse_scheme,
)

__all__ = [
    "HostConfig",
    "SimConfig",
    "TargetConfig",
    "BatchStats",
    "CoreState",
    "CoreThread",
    "EngineError",
    "SequentialEngine",
    "run_simulation",
    "EvKind",
    "Event",
    "SimulationManager",
    "GlobalQueue",
    "InQ",
    "OutQ",
    "CoreResult",
    "SimulationResult",
    "INFINITY",
    "AdaptiveQuantum",
    "BoundedSlack",
    "CycleByCycle",
    "Lookahead",
    "OldestFirstBoundedSlack",
    "QuantumBased",
    "Scheme",
    "UnboundedSlack",
    "parse_scheme",
]
