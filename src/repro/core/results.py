"""Simulation run results and derived metrics (speedup, error, KIPS).

:class:`SimulationResult` is a thin view over the engine's stats registry:
the engine attaches a ``registry_factory`` at build time, and ``stats`` (the
registry's flat dump) and ``stats_sha256`` (its digest) materialise lazily on
first access — callers that never look at stats (the perf benches) pay none
of the dump cost.  The summary fields read the same component attributes the
registry's sources are bound to, so the two views cannot drift
(``tests/core/test_stats_integration.py`` pins the agreement).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.host.costmodel import HOST_UNIT_SECONDS
from repro.violations.detect import ViolationCounters

__all__ = ["SimulationResult", "CoreResult"]


@dataclass
class CoreResult:
    """Per-core outcome."""

    core_id: int
    committed: int
    cycles: int
    final_time: int
    l1_accesses: int
    l1_misses: int

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


@dataclass
class SimulationResult:
    """Everything a run produced."""

    scheme: str
    host_cores: int
    seed: int
    completed: bool
    #: Target execution time: last workload-thread exit (completed runs) or
    #: global time at truncation.
    execution_cycles: int
    global_time: int
    instructions: int
    host_time: float
    host_busy: float
    cores: list[CoreResult] = field(default_factory=list)
    violations: ViolationCounters = field(default_factory=ViolationCounters)
    output: list = field(default_factory=list)
    requests: int = 0
    barriers: int = 0
    lock_acquires: int = 0
    lock_contended: int = 0
    engine_steps: int = 0
    #: Zero-arg callable yielding the run's stats registry; resolved lazily
    #: so the registry/dump/digest cost stays off the simulate fast path.
    registry_factory: object = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._registry = None
        self._stats = None
        self._digest = None

    @property
    def registry(self):
        """The run's live stats registry (None for hand-built results)."""
        if self._registry is None and self.registry_factory is not None:
            self._registry = self.registry_factory()
        return self._registry

    @property
    def stats(self) -> dict:
        """Flat ``{dotted_path: value}`` dump of the run's stats registry,
        materialised on first access and cached."""
        if self._stats is None:
            reg = self.registry
            self._stats = reg.dump() if reg is not None else {}
        return self._stats

    @property
    def stats_sha256(self) -> str:
        """Digest of the registry's digest-marked stats (determinism
        fingerprint), computed on first access and cached."""
        if self._digest is None:
            reg = self.registry
            self._digest = reg.stats_digest() if reg is not None else ""
        return self._digest

    # ------------------------------------------------------------ derived
    @property
    def host_seconds(self) -> float:
        return self.host_time * HOST_UNIT_SECONDS

    @property
    def kips(self) -> float:
        """Simulated kilo-instructions per modeled host second (Table 2)."""
        return self.instructions / self.host_seconds / 1000.0 if self.host_time else 0.0

    @property
    def host_utilization(self) -> float:
        return self.host_busy / (self.host_time * self.host_cores) if self.host_time else 0.0

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Simulation speedup = baseline simulation time / this run's time."""
        if self.host_time == 0:
            return float("inf")
        return baseline.host_time / self.host_time

    def error_vs(self, gold: "SimulationResult") -> float:
        """Relative execution-time error against a gold (cc) run (Table 3)."""
        if gold.execution_cycles == 0:
            return 0.0
        return abs(self.execution_cycles - gold.execution_cycles) / gold.execution_cycles

    # ------------------------------------------------------------- registry
    def stats_digest(self) -> str:
        """Determinism fingerprint over the registry's digest-marked stats."""
        return self.stats_sha256

    def dump_json(self) -> str:
        """Full stats document (meta + stats + snapshots + digest), sorted."""
        meta = {
            "scheme": self.scheme,
            "seed": self.seed,
            "host_cores": self.host_cores,
            "completed": self.completed,
        }
        if self.registry is not None:
            return self.registry.dump_json(meta=meta)
        doc = {
            "meta": meta,
            "digest": self.stats_sha256,
            "stats": dict(sorted(self.stats.items())),
            "snapshots": [],
        }
        return json.dumps(doc, indent=2, sort_keys=True) + "\n"

    def dump_csv(self) -> str:
        """``stat,value`` lines of the registry dump, sorted by path."""
        from repro.stats.registry import dump_to_csv

        return dump_to_csv(self.stats)

    def int_output(self) -> list[int]:
        return [v for v in self.output if isinstance(v, int)]

    def float_output(self) -> list[float]:
        return [v for v in self.output if isinstance(v, float)]

    def to_dict(self) -> dict:
        """JSON-serialisable summary (for tooling and report pipelines)."""
        return {
            "scheme": self.scheme,
            "host_cores": self.host_cores,
            "seed": self.seed,
            "completed": self.completed,
            "execution_cycles": self.execution_cycles,
            "global_time": self.global_time,
            "instructions": self.instructions,
            "host_time": self.host_time,
            "host_utilization": self.host_utilization,
            "kips": self.kips,
            "requests": self.requests,
            "barriers": self.barriers,
            "lock_acquires": self.lock_acquires,
            "lock_contended": self.lock_contended,
            "violations": {
                "simulation_state": self.violations.simulation_state,
                "system_state": self.violations.system_state,
                "workload_state": self.violations.workload_state,
                "fastforwards": self.violations.fastforwards,
            },
            "cores": [
                {
                    "core": c.core_id,
                    "committed": c.committed,
                    "cycles": c.cycles,
                    "ipc": c.ipc,
                    "l1_miss_rate": (c.l1_misses / c.l1_accesses) if c.l1_accesses else 0.0,
                }
                for c in self.cores
            ],
            "stats": dict(sorted(self.stats.items())),
            "stats_digest": self.stats_sha256,
        }

    def summary(self) -> str:
        return (
            f"[{self.scheme} H={self.host_cores}] "
            f"T_target={self.execution_cycles} cyc, instr={self.instructions}, "
            f"T_host={self.host_time:.0f} u ({self.kips:.1f} KIPS), "
            f"util={self.host_utilization:.2f}, {self.violations.summary()}"
        )
