"""Simulation run results and derived metrics (speedup, error, KIPS)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.host.costmodel import HOST_UNIT_SECONDS
from repro.violations.detect import ViolationCounters

__all__ = ["SimulationResult", "CoreResult"]


@dataclass
class CoreResult:
    """Per-core outcome."""

    core_id: int
    committed: int
    cycles: int
    final_time: int
    l1_accesses: int
    l1_misses: int

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


@dataclass
class SimulationResult:
    """Everything a run produced."""

    scheme: str
    host_cores: int
    seed: int
    completed: bool
    #: Target execution time: last workload-thread exit (completed runs) or
    #: global time at truncation.
    execution_cycles: int
    global_time: int
    instructions: int
    host_time: float
    host_busy: float
    cores: list[CoreResult] = field(default_factory=list)
    violations: ViolationCounters = field(default_factory=ViolationCounters)
    output: list = field(default_factory=list)
    requests: int = 0
    barriers: int = 0
    lock_acquires: int = 0
    lock_contended: int = 0
    engine_steps: int = 0

    # ------------------------------------------------------------ derived
    @property
    def host_seconds(self) -> float:
        return self.host_time * HOST_UNIT_SECONDS

    @property
    def kips(self) -> float:
        """Simulated kilo-instructions per modeled host second (Table 2)."""
        return self.instructions / self.host_seconds / 1000.0 if self.host_time else 0.0

    @property
    def host_utilization(self) -> float:
        return self.host_busy / (self.host_time * self.host_cores) if self.host_time else 0.0

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Simulation speedup = baseline simulation time / this run's time."""
        if self.host_time == 0:
            return float("inf")
        return baseline.host_time / self.host_time

    def error_vs(self, gold: "SimulationResult") -> float:
        """Relative execution-time error against a gold (cc) run (Table 3)."""
        if gold.execution_cycles == 0:
            return 0.0
        return abs(self.execution_cycles - gold.execution_cycles) / gold.execution_cycles

    def int_output(self) -> list[int]:
        return [v for v in self.output if isinstance(v, int)]

    def float_output(self) -> list[float]:
        return [v for v in self.output if isinstance(v, float)]

    def to_dict(self) -> dict:
        """JSON-serialisable summary (for tooling and report pipelines)."""
        return {
            "scheme": self.scheme,
            "host_cores": self.host_cores,
            "seed": self.seed,
            "completed": self.completed,
            "execution_cycles": self.execution_cycles,
            "global_time": self.global_time,
            "instructions": self.instructions,
            "host_time": self.host_time,
            "host_utilization": self.host_utilization,
            "kips": self.kips,
            "requests": self.requests,
            "barriers": self.barriers,
            "lock_acquires": self.lock_acquires,
            "lock_contended": self.lock_contended,
            "violations": {
                "simulation_state": self.violations.simulation_state,
                "system_state": self.violations.system_state,
                "workload_state": self.violations.workload_state,
                "fastforwards": self.violations.fastforwards,
            },
            "cores": [
                {
                    "core": c.core_id,
                    "committed": c.committed,
                    "cycles": c.cycles,
                    "ipc": c.ipc,
                    "l1_miss_rate": (c.l1_misses / c.l1_accesses) if c.l1_accesses else 0.0,
                }
                for c in self.cores
            ],
        }

    def summary(self) -> str:
        return (
            f"[{self.scheme} H={self.host_cores}] "
            f"T_target={self.execution_cycles} cyc, instr={self.instructions}, "
            f"T_host={self.host_time:.0f} u ({self.kips:.1f} KIPS), "
            f"util={self.host_utilization:.2f}, {self.violations.summary()}"
        )
