"""The simulation manager thread (paper §2.1-2.2).

Two responsibilities:

1. simulate the shared lower-level hierarchy — drain every core's OutQ into
   the GQ and service requests against the :class:`MemorySystem` according
   to the active scheme's GQ policy;
2. orchestrate the pace — maintain ``global_time = min(local_time)`` over
   active cores and raise each core's ``max_local_time`` per the scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.corethread import CoreState, CoreThread
from repro.core.events import REQUEST_KINDS, EvKind, Event
from repro.core.queues import GlobalQueue
from repro.core.schemes import INFINITY, Lookahead, Scheme
from repro.mem.memsys import MemorySystem

__all__ = ["SimulationManager", "ManagerStepResult"]


@dataclass
class ManagerStepResult:
    drained: int = 0
    processed: int = 0
    #: Cores whose max_local_time was raised this step.
    raised: list[int] = field(default_factory=list)

    @property
    def work(self) -> int:
        return self.drained + self.processed


class SimulationManager:
    """Owns global time, the GQ and the shared memory system."""

    def __init__(self, cores: list[CoreThread], memsys: MemorySystem, scheme: Scheme) -> None:
        self.cores = cores
        self.memsys = memsys
        self.scheme = scheme
        self.gq = GlobalQueue()
        self.global_time = 0
        self.requests_processed = 0
        self.barriers_completed = 0

    # ------------------------------------------------------------- utilities
    def _active(self) -> list[CoreThread]:
        return [ct for ct in self.cores if ct.state == CoreState.ACTIVE]

    def current_max_local(self) -> int:
        """Window bound for a newly activated core under the current scheme."""
        if isinstance(self.scheme, Lookahead):
            return self.scheme.max_local(self.global_time, self.gq.oldest_ts())
        return self.scheme.max_local(self.global_time)

    def check_invariants(self) -> None:
        """Assert the paper's clock invariant for every active core."""
        for ct in self._active():
            if not self.global_time <= ct.local_time <= max(ct.max_local_time, ct.local_time):
                raise AssertionError(
                    f"clock invariant violated on core {ct.core_id}: "
                    f"{self.global_time} <= {ct.local_time} <= {ct.max_local_time}"
                )

    # ------------------------------------------------------------------ step
    def step(self) -> ManagerStepResult:
        result = ManagerStepResult()
        for ct in self.cores:
            if len(ct.outq):
                for event in ct.outq.drain():
                    self.gq.push(event)
                    result.drained += 1

        active = self._active()
        policy = self.scheme.gq_policy
        if policy == "immediate":
            while True:
                event = self.gq.pop_fifo()
                if event is None:
                    break
                self._service(event)
                result.processed += 1
        elif policy == "oldest":
            bound = min((ct.local_time for ct in active), default=self.global_time)
            while True:
                event = self.gq.pop_oldest(max(bound, self.global_time))
                if event is None:
                    break
                self._service(event)
                result.processed += 1
        else:  # barrier (cycle-by-cycle / quantum-based / adaptive quantum)
            if active and all(ct.local_time >= ct.max_local_time for ct in active):
                self.barriers_completed += 1
                while True:
                    event = self.gq.pop_oldest(INFINITY)
                    if event is None:
                        break
                    self._service(event)
                    result.processed += 1
                adapt = getattr(self.scheme, "adapt", None)
                if adapt is not None:
                    boundary = min(ct.max_local_time for ct in active)
                    adapt(result.processed, max(1, boundary - self.global_time))

        # Advance global time (monotonic; excludes idle/done cores).
        if active:
            new_global = min(ct.local_time for ct in active)
            if new_global > self.global_time:
                self.global_time = new_global

        # Raise windows per the scheme.
        new_max = self.current_max_local()
        for ct in active:
            if new_max > ct.max_local_time:
                ct.max_local_time = new_max
                result.raised.append(ct.core_id)
        return result

    # --------------------------------------------------------------- service
    def _service(self, event: Event) -> None:
        """Service one GQ request and deliver its responses/messages."""
        self.requests_processed += 1
        kind = REQUEST_KINDS[event.kind]
        result = self.memsys.service(kind, event.addr, event.core, event.ts)
        if result.grant is not None:
            self.cores[event.core].deliver(
                Event(
                    EvKind.RESPONSE,
                    event.addr,
                    event.core,
                    result.ready_ts,
                    grant=result.grant,
                    req_seq=event.seq,
                )
            )
        for victim, addr in result.invalidations:
            self.cores[victim].deliver(Event(EvKind.INVALIDATE, addr, victim, result.coherence_ts))
        for owner, addr in result.downgrades:
            self.cores[owner].deliver(Event(EvKind.DOWNGRADE, addr, owner, result.coherence_ts))
