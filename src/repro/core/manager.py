"""The simulation manager thread (paper §2.1-2.2).

Two responsibilities:

1. simulate the shared lower-level hierarchy — drain every core's OutQ into
   the GQ and service requests against the :class:`MemorySystem` according
   to the active scheme's GQ policy;
2. orchestrate the pace — maintain ``global_time = min(local_time)`` over
   active cores and raise each core's ``max_local_time`` per the scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.corethread import CoreState, CoreThread
from repro.core.events import REQUEST_KINDS, EvKind, Event
from repro.core.queues import GlobalQueue
from repro.core.schemes import INFINITY, Lookahead, Scheme
from repro.mem.memsys import MemorySystem

__all__ = ["SimulationManager", "ManagerStepResult"]


@dataclass
class ManagerStepResult:
    drained: int = 0
    processed: int = 0
    #: Cores whose max_local_time was raised this step.
    raised: list[int] = field(default_factory=list)

    @property
    def work(self) -> int:
        return self.drained + self.processed


class SimulationManager:
    """Owns global time, the GQ and the shared memory system."""

    def __init__(self, cores: list[CoreThread], memsys: MemorySystem, scheme: Scheme) -> None:
        self.cores = cores
        self.memsys = memsys
        self.scheme = scheme
        self.gq = GlobalQueue()
        self.global_time = 0
        self.requests_processed = 0
        self.barriers_completed = 0
        self.events_drained = 0
        self.windows_raised = 0
        self.gq_max_depth = 0
        self._gq_depth = 0
        # Hoisted policy facts (schemes are immutable descriptors).
        self._barrier = scheme.gq_policy == "barrier"
        self._lookahead = isinstance(scheme, Lookahead)
        self._adapt = getattr(scheme, "adapt", None)

    # ------------------------------------------------------------- utilities
    def _active(self) -> list[CoreThread]:
        return [ct for ct in self.cores if ct.state == CoreState.ACTIVE]

    def current_max_local(self) -> int:
        """Window bound for a newly activated core under the current scheme."""
        if self._lookahead:
            return self.scheme.max_local(self.global_time, self.gq.oldest_ts())
        return self.scheme.max_local(self.global_time)

    def refresh_window(self, ct: CoreThread) -> bool:
        """Re-read the shared clocks on behalf of *ct* at its window edge.

        In the threaded implementation the pacing variables are plain shared
        words: a core that hits its window edge re-reads them before paying
        the suspend/wake round trip, and the slowest core — whose own
        progress *is* the minimum — never blocks at all.  Returns True and
        raises ``ct.max_local_time`` if the window has already moved.

        Only sliding-window policies qualify: under a barrier the edge is a
        hard synchronization point that must wait for the manager's GQ pass,
        so self-refresh would let cores skip coherence servicing.
        """
        if self._barrier:
            return False
        min_local = None
        for c in self.cores:
            if c.state == CoreState.ACTIVE:
                lt = c.local_time
                if min_local is None or lt < min_local:
                    min_local = lt
        if min_local is not None and min_local > self.global_time:
            self.global_time = min_local
        new_max = self.current_max_local()
        if new_max > ct.max_local_time:
            ct.max_local_time = new_max
            self.windows_raised += 1
            return True
        return False

    def check_invariants(self) -> None:
        """Assert the paper's clock invariant for every active core."""
        for ct in self._active():
            if not self.global_time <= ct.local_time <= max(ct.max_local_time, ct.local_time):
                raise AssertionError(
                    f"clock invariant violated on core {ct.core_id}: "
                    f"{self.global_time} <= {ct.local_time} <= {ct.max_local_time}"
                )

    # ------------------------------------------------------------------ step
    def step(self) -> ManagerStepResult:
        result = ManagerStepResult()
        gq = self.gq
        # One fused pass over the cores: drain OutQs and gather the active
        # set, its minimum local time and barrier status (this method runs
        # once per manager turn — several genexpr scans showed up in the
        # engine profile).
        drained = 0
        active = []
        min_local = None
        at_edge = True
        for ct in self.cores:
            if ct.outq._q:
                for event in ct.outq.drain():
                    gq.push(event)
                    drained += 1
            if ct.state == CoreState.ACTIVE:
                active.append(ct)
                lt = ct.local_time
                if min_local is None or lt < min_local:
                    min_local = lt
                if lt < ct.max_local_time:
                    at_edge = False
        result.drained = drained
        self.events_drained += drained
        self._gq_depth += drained
        if self._gq_depth > self.gq_max_depth:
            self.gq_max_depth = self._gq_depth

        processed = 0
        policy = self.scheme.gq_policy
        if policy == "immediate":
            while True:
                event = gq.pop_fifo()
                if event is None:
                    break
                self._service(event)
                processed += 1
        elif policy == "oldest":
            bound = min_local if min_local is not None else self.global_time
            if bound < self.global_time:
                bound = self.global_time
            while True:
                event = gq.pop_oldest(bound)
                if event is None:
                    break
                self._service(event)
                processed += 1
        else:  # barrier (cycle-by-cycle / quantum-based / adaptive quantum)
            if active and at_edge:
                self.barriers_completed += 1
                while True:
                    event = gq.pop_oldest(INFINITY)
                    if event is None:
                        break
                    self._service(event)
                    processed += 1
                if self._adapt is not None:
                    boundary = min(ct.max_local_time for ct in active)
                    self._adapt(processed, max(1, boundary - self.global_time))
        result.processed = processed
        self._gq_depth -= processed

        # Advance global time (monotonic; excludes idle/done cores).
        if min_local is not None and min_local > self.global_time:
            self.global_time = min_local

        # Raise windows per the scheme.
        new_max = self.current_max_local()
        raised = result.raised
        for ct in active:
            if new_max > ct.max_local_time:
                ct.max_local_time = new_max
                raised.append(ct.core_id)
        self.windows_raised += len(raised)
        return result

    def finalize(self) -> None:
        """Release any resources held for the run (no-op for the monolithic
        manager; the DomainManager stops its backend workers here)."""

    # --------------------------------------------------------------- service
    def _service(self, event: Event) -> None:
        """Service one GQ request and deliver its responses/messages."""
        self.requests_processed += 1
        kind = REQUEST_KINDS[event.kind]
        result = self.memsys.service(kind, event.addr, event.core, event.ts)
        self._deliver(event, result)

    def _deliver(self, event: Event, result) -> None:
        """Turn one ServiceResult into InQ events (response, then coherence
        messages) — the seq-draw order every execution path must preserve."""
        if result.grant is not None:
            self.cores[event.core].deliver(
                Event(
                    EvKind.RESPONSE,
                    event.addr,
                    event.core,
                    result.ready_ts,
                    grant=result.grant,
                    req_seq=event.seq,
                )
            )
        for victim, addr in result.invalidations:
            self.cores[victim].deliver(Event(EvKind.INVALIDATE, addr, victim, result.coherence_ts))
        for owner, addr in result.downgrades:
            self.cores[owner].deliver(Event(EvKind.DOWNGRADE, addr, owner, result.coherence_ts))
