"""Checkpoint/restore for the sequential engine (DESIGN.md §8).

A checkpoint is one pickle of the *whole* :class:`SequentialEngine` taken at
a manager-step boundary — the only points where every core thread is between
turns, so the run loop's transient state collapses to a small snapshot of
hoisted locals (the host-ready heap, suspend/park flags, manager dirtiness)
that ``SequentialEngine._write_checkpoint`` stashes on the engine for the
duration of the dump.  Restoring unpickles the engine, fast-forwards the
global event sequence counter, and ``run()`` resumes from the recorded
locals.

**Restore equivalence** is the contract (pinned by
``tests/core/test_checkpoint.py`` against the checkpoint goldens): a run
that is checkpointed, discarded, restored and finished produces the same
stats digest — including bit-exact modeled host times — as the same run left
uninterrupted.  Checkpointing itself is behaviour-free: enabling it does not
change any digest.

What makes the engine picklable (each site documents its own hook):

* ``TargetMemory`` re-derives its float view over the word array;
* ``Program`` / the core models drop their memoised predecode closures and
  re-derive them on restore;
* the engine drops its lazily-built stats registry (dump-time lambdas) and
  experiment probe;
* the global :func:`repro.core.events.new_seq` position is saved alongside
  the engine and restored monotonically (seqs are deterministic heap
  tie-breakers, so absolute values must survive a process boundary).

Fault-injected runs cannot be checkpointed: fault hooks are closures
installed over engine seams, and a restored run would silently lose them.
"""

from __future__ import annotations

import pickle

from repro._util import atomic_write_bytes
from repro.core import events
from repro.core.engine import EngineError, SequentialEngine

__all__ = ["CHECKPOINT_FORMAT", "CheckpointError", "load_checkpoint", "save_checkpoint"]

#: Bumped whenever the payload layout changes; restores refuse mismatches
#: rather than resuming from a stale-format file.
CHECKPOINT_FORMAT = 1


class CheckpointError(EngineError):
    """A checkpoint could not be written or restored."""


def save_checkpoint(engine: SequentialEngine, path: str) -> None:
    """Atomically write *engine* (mid-run or idle) to *path*.

    Called by the run loop at manager-step boundaries; also usable directly
    on a freshly built engine (a "time zero" checkpoint).
    """
    if engine.faults is not None:
        raise CheckpointError(
            "cannot checkpoint a fault-injected run: fault hooks are closures "
            "over engine seams and would not survive a restore"
        )
    if engine.sim.backend == "process":
        raise CheckpointError(
            "cannot checkpoint a process-backend run: shard state lives in "
            "the worker processes between exchanges, so the coordinator's "
            "copy is stale mid-run"
        )
    payload = {
        "format": CHECKPOINT_FORMAT,
        "seq_position": events.seq_position(),
        "engine": engine,
    }
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # unpicklable attribute — name it, don't truncate
        raise CheckpointError(f"engine state is not picklable: {exc}") from exc
    atomic_write_bytes(path, blob)


def load_checkpoint(path: str) -> SequentialEngine:
    """Load a checkpoint; the returned engine's ``run()`` resumes the run."""
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path}") from None
    except (pickle.UnpicklingError, EOFError) as exc:
        raise CheckpointError(f"{path} is not a checkpoint file: {exc}") from exc
    if not isinstance(payload, dict) or "format" not in payload:
        raise CheckpointError(f"{path} is not a checkpoint file")
    if payload["format"] != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path}: checkpoint format {payload['format']} "
            f"(this build reads format {CHECKPOINT_FORMAT})"
        )
    events.seq_advance_to(payload["seq_position"])
    return payload["engine"]
