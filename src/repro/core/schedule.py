"""Static bulk-synchronous window schedule planner (DESIGN.md §9).

The dynamic engine makes a per-turn decision for every core and manager
step: who runs next is decided by a priority queue of modeled host-ready
times, and the manager polls between core turns waiting for the window
barrier to fill.  Under a barrier-policy scheme (cc / qN) that machinery
answers a question with a statically known answer: *nothing* can cross
between cores inside a window — the manager services the GQ only once every
active core has reached the window edge, so each core's maximal batch is
simply its remaining distance to the edge, cut only by engine-local limits.

This module derives that schedule ahead of execution.  ``plan_window``
produces, at window start, one :class:`CorePlan` per active core: the batch
sequence the core will run before its next *possible* cross-core
interaction point (the window edge).  Batches are cut short by exactly
three things (the invariants the property tests pin):

* the window edge itself — a batch never crosses ``edge``;
* the engine turn cap (``turn_cycles``/``batch_cycles``) — the de-facto
  concurrency granule, identical to the dynamic loop's clamp;
* the ``max_cycles`` runaway net — the budget may exceed it by at most one
  cycle so the engine's runaway guard still fires.

Execution may *consume less* than a planned batch (a core blocked on an
external response burns its ``wait_chunk`` allowance and yields); the
engine then re-cuts the remainder with :func:`split_batches` from the live
local time, which reproduces the dynamic loop's per-turn budget
recomputation bit for bit.

``static_unsupported_reason`` is the gate: static scheduling engages only
where the bulk-synchronous order is provably digest-identical to the
dynamic interleaving.  Everywhere else the engine silently keeps the
dynamic loop — the planner degenerating to "every cycle is a possible
interaction point" is still a correct (just worthless) schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schemes import Scheme

__all__ = [
    "CorePlan",
    "floored_window",
    "split_batches",
    "plan_window",
    "static_unsupported_reason",
]


def floored_window(scheme_edge: int, global_time: int, exchange_quantum: int) -> int:
    """Effective window edge under memory-side sharding (DESIGN.md §10).

    With N>1 scheduling domains every core window is floored at
    ``global_time + exchange_quantum`` so cross-domain coherence only moves
    at window edges.  A zero quantum (single domain, or the monolithic
    manager) leaves the scheme's edge untouched.

    The static-scheduling barrier proof carries over unchanged: flooring
    raises every active core to the *same* edge (the floor is a function of
    global time alone), so the window edge remains a hard synchronization
    point with no mid-window GQ servicing — exactly the property
    :func:`static_unsupported_reason` relies on.
    """
    if exchange_quantum:
        floor = global_time + exchange_quantum
        if scheme_edge < floor:
            return floor
    return scheme_edge


@dataclass(frozen=True)
class CorePlan:
    """The static schedule for one core over one barrier window."""

    core_id: int
    #: Local time at window start.
    start: int
    #: The window edge (``max_local_time``): first cycle the core may NOT
    #: simulate — its next possible cross-core interaction point.
    edge: int
    #: Planned batch budgets.  Invariants: every batch is positive, no
    #: batch crosses ``edge``, and they sum to exactly ``edge - start``
    #: (clamped at the ``limit`` cycle when the runaway net intervenes).
    batches: tuple[int, ...]

    @property
    def cycles(self) -> int:
        return sum(self.batches)


def split_batches(start: int, edge: int, turn_cap: int, limit: int | None = None) -> tuple[int, ...]:
    """Cut ``[start, edge)`` into maximal batches of at most *turn_cap*.

    *limit* is the ``max_cycles`` net: like the dynamic loop's budget, the
    final batch may overrun it by one cycle (so the engine's runaway guard
    observes the overrun) but never farther.  Mirrors
    ``SequentialEngine._turn_budget`` under a barrier policy exactly: batch
    k's size equals the dynamic budget a core at its start cycle would be
    granted.
    """
    if edge <= start:
        return ()
    span = edge - start
    if limit is not None:
        net = limit + 1 - start
        if net < span:
            span = net
        if span <= 0:
            return (1,)  # dynamic floor: always grant one cycle
    if turn_cap >= span:
        return (span,)
    full, rem = divmod(span, turn_cap)
    batches = [turn_cap] * full
    if rem:
        batches.append(rem)
    return tuple(batches)


def plan_window(
    cores: list[tuple[int, int, int]],
    turn_cap: int,
    limit: int | None = None,
) -> list[CorePlan]:
    """Plan one bulk-synchronous superstep.

    *cores* is ``[(core_id, local_time, window_edge), ...]`` for the active
    cores, in the order the superstep will run them (core-id order — the
    same deterministic order the manager wakes suspended cores in).  Cores
    already at their edge contribute an empty plan (they suspend without a
    turn — only possible mid-restore).
    """
    return [
        CorePlan(
            core_id=cid,
            start=local,
            edge=edge,
            batches=split_batches(local, edge, turn_cap, limit),
        )
        for cid, local, edge in cores
    ]


def static_unsupported_reason(
    scheme: Scheme,
    *,
    has_system: bool,
    has_probe: bool,
    has_faults: bool,
    max_instructions: int,
) -> str | None:
    """Why static scheduling cannot engage, or ``None`` when it can.

    The static superstep runs each window's core turns in core-id order
    instead of the dynamic loop's jitter-dependent host order, so it is
    only used where that reordering is provably invisible in the stats
    digest:

    * the scheme must be barrier-policy without an ``adapt`` hook — only
      there is the window edge a hard synchronization point with no
      mid-window GQ servicing (sliding windows deliver events *between*
      core turns, making the interleaving itself semantic);
    * no system emulation — sysapi calls (locks, barriers, semaphores)
      take effect in host arrival order at step time, which same-window
      reordering would change;
    * no per-manager-step probe (Figure 2 wants the dynamic loop's step
      granularity) and no fault ticks (timed faults ride dynamic manager
      steps);
    * no ``max_instructions`` cut (a mid-window cut lands on a
      turn-order-dependent core).
    """
    if scheme.gq_policy != "barrier" or getattr(scheme, "adapt", None) is not None:
        return f"scheme {scheme.name} is not a pure barrier policy"
    if has_system:
        return "system emulation present (sysapi effects are host-order sensitive)"
    if has_probe:
        return "a per-manager-step probe is attached"
    if has_faults:
        return "fault injection rides dynamic manager steps"
    if max_instructions:
        return "max_instructions cuts mid-window at a turn-order-dependent point"
    return None
