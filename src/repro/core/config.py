"""Configuration dataclasses for target, host and simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.l1cache import L1Config
from repro.mem.memsys import MemSysConfig

__all__ = ["TargetConfig", "HostConfig", "SimConfig"]


@dataclass(frozen=True)
class TargetConfig:
    """The simulated CMP (paper §4.1: 8-core, 16KB I/D L1, 256KB shared L2)."""

    num_cores: int = 8
    core_model: str = "inorder"  # "inorder" | "ooo" | "trace"
    l1: L1Config = field(default_factory=L1Config)
    memsys: MemSysConfig = field(default_factory=MemSysConfig)
    #: Model the instruction cache (adds GETS traffic for text fetches).
    model_icache: bool = False
    memory_bytes: int = 16 * 1024 * 1024
    stack_bytes: int = 256 * 1024
    #: Out-of-order core parameters (paper: 4-wide, 64 in-flight).
    ooo_width: int = 4
    ooo_rob: int = 64
    branch_predictor: str = "gshare"
    mispredict_penalty: int = 8


@dataclass(frozen=True)
class HostConfig:
    """The *modeled* host CMP (DESIGN.md §2: virtual-host substitution).

    Costs are in abstract host-time units (think microseconds of host work).
    They were calibrated once against the paper's Table 2 baseline
    (~100-130 KIPS for 9 simulation threads on one host core) and are the
    same for every scheme — only the synchronization structure differs.
    """

    num_cores: int = 8
    #: Host work to simulate one active target-core cycle.
    cycle_cost: float = 1.0
    #: Host work for a stalled/idle target cycle (spin/wait loops are cheap).
    idle_cycle_cost: float = 0.25
    #: Host work per target cycle advanced inside a batched wait-stretch jump
    #: (clock bookkeeping only — the simulator does not execute these cycles).
    skip_cycle_cost: float = 0.02
    #: Host work per wait-stretch jump (the O(1) overhead of one skip).
    skip_stretch_cost: float = 0.3
    #: Extra host work per event generated or consumed by a core thread.
    event_cost: float = 1.5
    #: Host work for the manager to service one GQ request.
    manager_request_cost: float = 2.0
    #: Host work for one manager polling pass that finds nothing to do.
    manager_poll_cost: float = 0.4
    #: Cost to suspend a thread (futex sleep) when it hits its window edge.
    suspend_cost: float = 0.8
    #: Cost to wake a suspended thread (paid when its window reopens).
    wake_cost: float = 1.5
    #: Extra serial delay per *additional* thread woken by the same step:
    #: futex wake-ups leave the waker one at a time, so a barrier reopening
    #: all N cores hands off its wakes in a chain while a slack window raise
    #: typically wakes a single core.
    wake_fanout_cost: float = 0.2
    #: Lognormal sigma of multiplicative per-batch cost jitter (models
    #: instruction-mix variance across threads; drives load imbalance).
    jitter_sigma: float = 0.25


@dataclass(frozen=True)
class SimConfig:
    """One simulation run."""

    #: Slack scheme: "cc", "qN", "lN", "sN", "sN*", "su".
    scheme: str = "cc"
    seed: int = 1
    #: Maximum target cycles before the engine aborts (safety net).
    max_cycles: int = 50_000_000
    #: Maximum committed instructions (0 = run to completion), mirroring the
    #: paper's fixed 100M-instruction runs.
    max_instructions: int = 0
    #: Track conflicting same-word accesses (workload-state violations).
    detect_violations: bool = True
    #: Compensate detected workload violations by fast-forwarding (§3.2.3).
    fastforward: bool = False
    #: Extra cap on target cycles per engine turn (0 = uncapped: turns are
    #: sized by the scheme's grant alone).  Figure 2 sets 1 to probe the
    #: clock protocol at single-cycle granularity.
    batch_cycles: int = 0
    #: Hard cap on target cycles per engine turn, independent of the scheme's
    #: slack grant (0 = uncapped).  A sequential turn is the de-facto
    #: concurrency granule: while one core runs, no other core's coherence
    #: traffic can reach it, so an unbounded turn would let a core run to
    #: completion without ever observing an invalidation.  Keep this well
    #: above the typical wait stretch (so batching still pays) but small
    #: enough that cross-core traffic interleaves.
    turn_cycles: int = 64
    #: Stepping mode: "batched" jumps wait stretches via the wait_state/skip
    #: protocol; "single" runs the identical turn structure one model.step
    #: per cycle (the equivalence oracle for the golden tests).
    stepping: str = "batched"
    #: Window scheduling: "dynamic" interleaves core/manager turns through
    #: the virtual host's priority queue (the paper's futex-style engine);
    #: "static" plans each barrier window as one bulk-synchronous superstep
    #: (repro.core.schedule) — all per-cycle manager dispatch is hoisted to
    #: window edges.  Static engages only where it is provably
    #: digest-identical to dynamic (barrier-policy schemes, trace cores);
    #: everywhere else it falls back to the dynamic loop (DESIGN.md §9).
    scheduling: str = "dynamic"
    #: Execution layer: "predecoded" runs per-PC specialized closures
    #: (repro.cpu.predecode); "oracle" runs funcsim.execute dict dispatch.
    #: Both produce bit-identical architectural trajectories (the
    #: dispatch-differential tests pin this).
    dispatch: str = "predecoded"
    #: Cycles a core burns waiting on external input (a manager response)
    #: before yielding its turn.  Bounds de-facto turn size under su.
    wait_chunk: int = 16
    #: Snapshot the stats registry every N target cycles (0 = off).  The
    #: check rides the manager-step branch — the first manager step at or
    #: after each N-cycle global-time boundary records one snapshot — so the
    #: per-cycle simulate loop never sees it.
    stats_interval: int = 0
    #: Fault-injection plan spec (see :mod:`repro.faults`), e.g.
    #: ``"overrun_window:core=2,at=500,extra=256"``.  None (default) leaves
    #: the engine entirely unhooked — fault seams cost nothing when unused.
    fault_plan: str | None = None
    #: Wall-clock seconds the threaded engine's watchdog allows without
    #: global-time progress before aborting with SimulationHungError.  The
    #: total run time is unbounded as long as the simulation advances.
    host_timeout: float = 120.0
    #: Write a checkpoint every N target cycles of global time (0 = off).
    #: Like stats_interval, the check rides the manager-step branch.
    checkpoint_interval: int = 0
    #: Where checkpoints land (a single file, atomically replaced).  A
    #: nonzero checkpoint_interval with no path is a configuration error.
    checkpoint_path: str | None = None
    #: Scheduling-domain backend (DESIGN.md §10): "sequential" services the
    #: memory-side domains round-robin on the coordinator (default; the
    #: digest baseline), "threaded" runs one worker thread per domain,
    #: "process" runs one worker process per domain (trace workloads only).
    #: Any non-default backend routes through the sharded DomainManager even
    #: at mem_domains=1 — digests there are byte-identical to the monolithic
    #: manager by construction.
    backend: str = "sequential"
    #: Number of independently-clocked memory-side scheduling domains.  L2
    #: banks, directory regions and DRAM channels partition by address range
    #: across domains; with N>1 every core↔domain window is floored at the
    #: cross-domain exchange quantum (the critical latency), so coherence
    #: crosses domains only at window edges.  1 (default) keeps the
    #: monolithic manager on the sequential backend.
    mem_domains: int = 1
    #: Progress-heartbeat file (DESIGN.md §13): when set, the engine runs a
    #: sampler thread that publishes its progress marker (global time,
    #: Σ committed, Σ local clocks) here every ``heartbeat_interval`` wall
    #: seconds, atomically.  Serve workers set this so the supervisor can
    #: tell a slow-but-advancing job from a hung one across the process
    #: boundary; None (default) starts no thread and costs nothing.
    #: Digest-excluded: observation only, never simulated behaviour.
    heartbeat_path: str | None = None
    #: Wall seconds between heartbeat samples.
    heartbeat_interval: float = 1.0
    #: Trace subsystem (DESIGN.md §11): "off" (default) leaves both seams
    #: unhooked; "capture" records the committed-op stream at the timing-core
    #: → memory seam into ``trace_path``; "replay" re-simulates a recorded
    #: stream under *this* run's scheme/window/memory config without
    #: re-executing the functional cores.
    trace_mode: str = "off"
    #: Trace file to write (capture) or read (replay).
    trace_path: str | None = None
    #: Optional JSON object describing the capture's provenance (workload
    #: name, parameters, workload seed); stored in the trace header and
    #: surfaced by ``repro trace info``.
    trace_source: str | None = None
