"""Slang: the reproduction's C-like workload language and compiler.

Replaces the paper's GCC/PISA toolchain (DESIGN.md §2).  Workloads are
written in Slang against the paper's Table 1 Pthread-style API (``init_lock``
/ ``lock`` / ``unlock``, ``init_barrier`` / ``barrier``, ``init_sema`` /
``sema_wait`` / ``sema_signal``) plus ``spawn``/``join`` and math/IO
builtins, and compile to SPISA program images.
"""

from repro.lang.compiler import CompiledProgram, compile_source, compile_to_asm
from repro.lang.errors import CodegenError, LexError, ParseError, SlangError, TypeError_
from repro.lang.parser import parse
from repro.lang.sema import BUILTINS, analyze

__all__ = [
    "CompiledProgram",
    "compile_source",
    "compile_to_asm",
    "CodegenError",
    "LexError",
    "ParseError",
    "SlangError",
    "TypeError_",
    "parse",
    "BUILTINS",
    "analyze",
]
