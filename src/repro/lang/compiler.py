"""Slang compiler driver: source -> AST -> typed AST -> assembly -> Program."""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.lang.ast_nodes import Unit
from repro.lang.codegen import generate
from repro.lang.parser import parse
from repro.lang.sema import analyze

__all__ = ["compile_source", "compile_to_asm", "CompiledProgram"]


@dataclass(frozen=True)
class CompiledProgram:
    """Compilation artefacts: the program image plus intermediate forms."""

    program: Program
    asm: str
    unit: Unit


def compile_to_asm(source: str) -> str:
    """Compile Slang *source* and return the generated assembly text."""
    return generate(analyze(parse(source)))


def compile_source(source: str, *, name: str = "<slang>") -> CompiledProgram:
    """Compile Slang *source* into a loadable :class:`Program` image."""
    unit = analyze(parse(source))
    asm = generate(unit)
    program = assemble(asm, name=name)
    return CompiledProgram(program=program, asm=asm, unit=unit)
