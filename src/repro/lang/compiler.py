"""Slang compiler driver: source -> AST -> typed AST -> assembly -> Program.

Compilation results are memoised on disk (DESIGN.md §6): repeated sweep
points, test runs and parallel workers pay the parse/analyze/generate/
assemble pipeline once per distinct source.  Cache entries are keyed by a
SHA-256 over the source text, the program name, the Python version and a
*toolchain fingerprint* (the bytes of every compiler/assembler module), so
editing any stage of the toolchain invalidates every cached program.

The cache directory defaults to ``.repro_cache/`` under the current
directory and is overridden with the ``REPRO_CACHE_DIR`` environment
variable; setting it to the empty string disables on-disk caching entirely.
Corrupt or unreadable entries are ignored (the source is recompiled and the
entry rewritten); writes are atomic (tempfile + rename), so concurrent
sweep workers never observe a torn entry.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
from dataclasses import dataclass
from pathlib import Path

from repro._util import atomic_write_bytes
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.lang.ast_nodes import Unit
from repro.lang.codegen import generate
from repro.lang.parser import parse
from repro.lang.sema import analyze

__all__ = [
    "compile_source",
    "compile_to_asm",
    "CompiledProgram",
    "cache_dir",
    "toolchain_fingerprint",
]

#: Bump to invalidate every existing cache entry regardless of fingerprint.
_CACHE_FORMAT = 1


@dataclass(frozen=True)
class CompiledProgram:
    """Compilation artefacts: the program image plus intermediate forms."""

    program: Program
    asm: str
    unit: Unit


def cache_dir() -> Path | None:
    """The on-disk compile-cache directory, or ``None`` when disabled.

    ``REPRO_CACHE_DIR`` overrides the ``.repro_cache/`` default; the empty
    string disables caching.
    """
    raw = os.environ.get("REPRO_CACHE_DIR")
    if raw is None:
        return Path(".repro_cache")
    if raw == "":
        return None
    return Path(raw)


_fingerprint: str | None = None

#: Modules whose bytes define the toolchain: any edit must invalidate caches.
_TOOLCHAIN_MODULES = (
    "lang/parser.py",
    "lang/sema.py",
    "lang/codegen.py",
    "lang/ast_nodes.py",
    "lang/compiler.py",
    "isa/assembler.py",
    "isa/opcodes.py",
    "isa/instruction.py",
    "isa/program.py",
)


def toolchain_fingerprint() -> str:
    """SHA-256 over the compiler/assembler sources (memoised per process)."""
    global _fingerprint
    if _fingerprint is None:
        root = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        h.update(str(_CACHE_FORMAT).encode())
        for rel in _TOOLCHAIN_MODULES:
            h.update(rel.encode())
            h.update((root / rel).read_bytes())
        _fingerprint = h.hexdigest()
    return _fingerprint


def _cache_key(source: str, name: str) -> str:
    h = hashlib.sha256()
    h.update(toolchain_fingerprint().encode())
    h.update(f"py{sys.version_info.major}.{sys.version_info.minor}".encode())
    h.update(name.encode())
    h.update(b"\x00")
    h.update(source.encode())
    return h.hexdigest()


def _cache_load(path: Path) -> CompiledProgram | None:
    try:
        with open(path, "rb") as fh:
            cached = pickle.load(fh)
        if isinstance(cached, CompiledProgram):
            return cached
    except Exception:
        pass  # corrupt / stale / unreadable: recompile below
    return None


def _cache_store(path: Path, compiled: CompiledProgram) -> None:
    try:
        atomic_write_bytes(path, pickle.dumps(compiled, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        pass  # caching is best-effort: read-only dirs etc. never break compiles


def compile_to_asm(source: str) -> str:
    """Compile Slang *source* and return the generated assembly text."""
    return generate(analyze(parse(source)))


def compile_source(source: str, *, name: str = "<slang>", cache: bool = True) -> CompiledProgram:
    """Compile Slang *source* into a loadable :class:`Program` image.

    With ``cache=True`` (default) the result is memoised in
    :func:`cache_dir`; pass ``cache=False`` to force a full compile (the
    compile-throughput benchmark does).
    """
    directory = cache_dir() if cache else None
    path = directory / f"{_cache_key(source, name)}.pkl" if directory is not None else None
    if path is not None:
        cached = _cache_load(path)
        if cached is not None:
            return cached
    unit = analyze(parse(source))
    asm = generate(unit)
    program = assemble(asm, name=name)
    compiled = CompiledProgram(program=program, asm=asm, unit=unit)
    if path is not None:
        _cache_store(path, compiled)
    return compiled
