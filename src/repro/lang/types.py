"""Slang type system.

Three scalar kinds (``int`` = signed 64-bit, ``float`` = IEEE double,
``void``), plus first-class pointers and fixed-size arrays.  Every scalar
occupies one 8-byte target word, so ``sizeof`` is uniform and pointer
arithmetic scales by 8.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Type", "INT", "FLOAT", "VOID", "Ptr", "Array", "WORD_BYTES"]

WORD_BYTES = 8


class Type:
    """Base class; concrete types are the singletons and dataclasses below."""

    def __str__(self) -> str:  # pragma: no cover
        return self.__class__.__name__

    @property
    def is_scalar(self) -> bool:
        return isinstance(self, (_Int, _Float)) or isinstance(self, Ptr)

    @property
    def is_numeric(self) -> bool:
        return isinstance(self, (_Int, _Float))

    @property
    def is_float(self) -> bool:
        return isinstance(self, _Float)

    @property
    def is_int(self) -> bool:
        return isinstance(self, _Int)

    @property
    def is_void(self) -> bool:
        return isinstance(self, _Void)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, Ptr)

    @property
    def is_array(self) -> bool:
        return isinstance(self, Array)

    def sizeof(self) -> int:
        """Size in bytes when stored in memory."""
        if isinstance(self, Array):
            return self.length * self.element.sizeof()
        if isinstance(self, _Void):
            raise ValueError("void has no size")
        return WORD_BYTES

    def decay(self) -> "Type":
        """Array-to-pointer decay (C semantics)."""
        if isinstance(self, Array):
            return Ptr(self.element)
        return self


class _Int(Type):
    def __str__(self) -> str:
        return "int"


class _Float(Type):
    def __str__(self) -> str:
        return "float"


class _Void(Type):
    def __str__(self) -> str:
        return "void"


INT = _Int()
FLOAT = _Float()
VOID = _Void()


@dataclass(frozen=True)
class Ptr(Type):
    """Pointer to *base* (``int*``, ``float*``, ``int**`` ...)."""

    base: Type

    def __str__(self) -> str:
        return f"{self.base}*"


@dataclass(frozen=True)
class Array(Type):
    """Fixed-length array; decays to ``Ptr(element)`` in expressions."""

    element: Type
    length: int

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


def same(a: Type, b: Type) -> bool:
    """Structural type equality."""
    if isinstance(a, Ptr) and isinstance(b, Ptr):
        return same(a.base, b.base)
    if isinstance(a, Array) and isinstance(b, Array):
        return a.length == b.length and same(a.element, b.element)
    return type(a) is type(b)
