"""Slang recursive-descent parser with precedence climbing.

Produces a :class:`repro.lang.ast_nodes.Unit`.  Types are parsed eagerly so
the classic cast/parenthesis ambiguity is resolved by one-token lookahead:
``(`` followed by a type keyword is a cast.
"""

from __future__ import annotations

from repro.lang import ast_nodes as A
from repro.lang.errors import ParseError, SourcePos
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.lang.types import FLOAT, INT, VOID, Array, Ptr, Type

__all__ = ["parse"]

_TYPE_KEYWORDS = {"int": INT, "float": FLOAT, "void": VOID}

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.i = 0

    # ------------------------------------------------------------ plumbing
    @property
    def tok(self) -> Token:
        return self.tokens[self.i]

    def peek(self, offset: int = 1) -> Token:
        return self.tokens[min(self.i + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tok
        if tok.kind is not TokenKind.EOF:
            self.i += 1
        return tok

    def expect_op(self, text: str) -> Token:
        if self.tok.kind == TokenKind.OP and self.tok.text == text:
            return self.advance()
        raise ParseError(f"expected {text!r}, found {self.tok.text or 'end of input'!r}", self.tok.pos)

    def at_op(self, *texts: str) -> bool:
        return self.tok.kind == TokenKind.OP and self.tok.text in texts

    def at_keyword(self, *names: str) -> bool:
        return self.tok.kind == TokenKind.KEYWORD and self.tok.text in names

    def at_type(self) -> bool:
        return self.at_keyword("int", "float", "void")

    def expect_ident(self) -> Token:
        if self.tok.kind != TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {self.tok.text!r}", self.tok.pos)
        return self.advance()

    # ---------------------------------------------------------------- types
    def parse_type(self) -> Type:
        if not self.at_type():
            raise ParseError(f"expected type, found {self.tok.text!r}", self.tok.pos)
        ty: Type = _TYPE_KEYWORDS[self.advance().text]
        while self.at_op("*"):
            self.advance()
            ty = Ptr(ty)
        return ty

    # ------------------------------------------------------------ top level
    def parse_unit(self) -> A.Unit:
        start = self.tok.pos
        globals_: list[A.GlobalDecl] = []
        functions: list[A.FuncDef] = []
        while self.tok.kind is not TokenKind.EOF:
            pos = self.tok.pos
            ty = self.parse_type()
            name = self.expect_ident().text
            if self.at_op("("):
                functions.append(self._func_def(pos, ty, name))
            else:
                globals_.append(self._global_decl(pos, ty, name))
        return A.Unit(start, globals_, functions)

    def _global_decl(self, pos: SourcePos, ty: Type, name: str) -> A.GlobalDecl:
        if ty.is_void:
            raise ParseError(f"global {name!r} cannot have type void", pos)
        if self.at_op("["):
            self.advance()
            length_tok = self.advance()
            if length_tok.kind != TokenKind.INT or length_tok.value is None or length_tok.value <= 0:
                raise ParseError("array length must be a positive integer literal", length_tok.pos)
            self.expect_op("]")
            ty = Array(ty, int(length_tok.value))
        init = None
        if self.at_op("="):
            self.advance()
            init = self._const_init(ty)
        self.expect_op(";")
        return A.GlobalDecl(pos, name, ty, init)

    def _const_number(self):
        neg = False
        if self.at_op("-"):
            self.advance()
            neg = True
        tok = self.advance()
        if tok.kind not in (TokenKind.INT, TokenKind.FLOAT):
            raise ParseError("global initializers must be numeric constants", tok.pos)
        value = tok.value
        return -value if neg else value

    def _const_init(self, ty: Type):
        if self.at_op("{"):
            self.advance()
            values = [self._const_number()]
            while self.at_op(","):
                self.advance()
                values.append(self._const_number())
            self.expect_op("}")
            if not ty.is_array:
                raise ParseError("brace initializer on a non-array global", self.tok.pos)
            if len(values) > ty.length:  # type: ignore[attr-defined]
                raise ParseError("too many initializer values", self.tok.pos)
            return values
        return self._const_number()

    def _func_def(self, pos: SourcePos, return_type: Type, name: str) -> A.FuncDef:
        self.expect_op("(")
        params: list[A.Param] = []
        if not self.at_op(")"):
            if self.at_keyword("void") and self.peek().text == ")":
                self.advance()
            else:
                params.append(self._param())
                while self.at_op(","):
                    self.advance()
                    params.append(self._param())
        self.expect_op(")")
        body = self.parse_block()
        return A.FuncDef(pos, name, return_type, params, body)

    def _param(self) -> A.Param:
        pos = self.tok.pos
        ty = self.parse_type()
        if ty.is_void:
            raise ParseError("parameters cannot have type void", pos)
        name = self.expect_ident().text
        if self.at_op("["):  # `int a[]` decays to pointer
            self.advance()
            self.expect_op("]")
            ty = Ptr(ty)
        return A.Param(pos, name, ty)

    # ------------------------------------------------------------ statements
    def parse_block(self) -> A.Block:
        pos = self.tok.pos
        self.expect_op("{")
        body: list[A.Stmt] = []
        while not self.at_op("}"):
            if self.tok.kind is TokenKind.EOF:
                raise ParseError("unterminated block", pos)
            body.append(self.parse_stmt())
        self.expect_op("}")
        return A.Block(pos, body)

    def _stmt_as_block(self) -> A.Block:
        if self.at_op("{"):
            return self.parse_block()
        stmt = self.parse_stmt()
        return A.Block(stmt.pos, [stmt])

    def parse_stmt(self) -> A.Stmt:
        pos = self.tok.pos
        if self.at_op("{"):
            return self.parse_block()
        if self.at_op(";"):
            self.advance()
            return A.Block(pos, [])
        if self.at_keyword("if"):
            return self._if_stmt()
        if self.at_keyword("while"):
            self.advance()
            self.expect_op("(")
            cond = self.parse_expr()
            self.expect_op(")")
            return A.While(pos, cond, self._stmt_as_block())
        if self.at_keyword("for"):
            return self._for_stmt()
        if self.at_keyword("return"):
            self.advance()
            value = None if self.at_op(";") else self.parse_expr()
            self.expect_op(";")
            return A.Return(pos, value)
        if self.at_keyword("break"):
            self.advance()
            self.expect_op(";")
            return A.Break(pos)
        if self.at_keyword("continue"):
            self.advance()
            self.expect_op(";")
            return A.Continue(pos)
        if self.at_type():
            return self._var_decl()
        expr = self.parse_expr()
        self.expect_op(";")
        return A.ExprStmt(pos, expr)

    def _if_stmt(self) -> A.If:
        pos = self.tok.pos
        self.advance()
        self.expect_op("(")
        cond = self.parse_expr()
        self.expect_op(")")
        then = self._stmt_as_block()
        orelse: A.Block | A.If | None = None
        if self.at_keyword("else"):
            self.advance()
            orelse = self._if_stmt() if self.at_keyword("if") else self._stmt_as_block()
        return A.If(pos, cond, then, orelse)

    def _for_stmt(self) -> A.For:
        pos = self.tok.pos
        self.advance()
        self.expect_op("(")
        init: A.Expr | A.VarDecl | None = None
        if not self.at_op(";"):
            if self.at_type():
                init = self._var_decl()  # consumes the ';'
            else:
                init = self.parse_expr()
                self.expect_op(";")
        else:
            self.advance()
        cond = None if self.at_op(";") else self.parse_expr()
        self.expect_op(";")
        step = None if self.at_op(")") else self.parse_expr()
        self.expect_op(")")
        return A.For(pos, init, cond, step, self._stmt_as_block())

    def _var_decl(self) -> A.VarDecl:
        pos = self.tok.pos
        ty = self.parse_type()
        if ty.is_void:
            raise ParseError("variables cannot have type void", pos)
        name = self.expect_ident().text
        if self.at_op("["):
            self.advance()
            length_tok = self.advance()
            if length_tok.kind != TokenKind.INT or not length_tok.value or length_tok.value <= 0:
                raise ParseError("array length must be a positive integer literal", length_tok.pos)
            self.expect_op("]")
            ty = Array(ty, int(length_tok.value))
        init = None
        if self.at_op("="):
            self.advance()
            if ty.is_array:
                raise ParseError("local arrays cannot have initializers", pos)
            init = self.parse_expr()
        self.expect_op(";")
        return A.VarDecl(pos, name, ty, init)

    # ----------------------------------------------------------- expressions
    def parse_expr(self) -> A.Expr:
        return self._assignment()

    def _assignment(self) -> A.Expr:
        pos = self.tok.pos
        left = self._binary(1)
        if self.at_op("="):
            self.advance()
            value = self._assignment()
            return A.Assign(pos, left, value)
        return left

    def _binary(self, min_prec: int) -> A.Expr:
        left = self._unary()
        while (
            self.tok.kind == TokenKind.OP
            and self.tok.text in _PRECEDENCE
            and _PRECEDENCE[self.tok.text] >= min_prec
        ):
            op = self.advance()
            right = self._binary(_PRECEDENCE[op.text] + 1)
            left = A.Binary(op.pos, op.text, left, right)
        return left

    def _unary(self) -> A.Expr:
        pos = self.tok.pos
        if self.at_op("-", "!", "~", "*", "&"):
            op = self.advance().text
            return A.Unary(pos, op, self._unary())
        if self.at_op("(") and self.peek().kind == TokenKind.KEYWORD and self.peek().text in _TYPE_KEYWORDS:
            self.advance()
            ty = self.parse_type()
            self.expect_op(")")
            return A.Cast(pos, ty, self._unary())
        return self._postfix()

    def _postfix(self) -> A.Expr:
        expr = self._primary()
        while True:
            if self.at_op("["):
                pos = self.advance().pos
                index = self.parse_expr()
                self.expect_op("]")
                expr = A.Index(pos, expr, index)
            elif self.at_op("("):
                if not isinstance(expr, A.Name):
                    raise ParseError("only named functions can be called", self.tok.pos)
                pos = self.advance().pos
                args: list[A.Expr] = []
                if not self.at_op(")"):
                    args.append(self.parse_expr())
                    while self.at_op(","):
                        self.advance()
                        args.append(self.parse_expr())
                self.expect_op(")")
                expr = A.Call(pos, expr.name, args)
            else:
                return expr

    def _primary(self) -> A.Expr:
        tok = self.tok
        if tok.kind == TokenKind.INT:
            self.advance()
            return A.IntLit(tok.pos, int(tok.value))
        if tok.kind == TokenKind.FLOAT:
            self.advance()
            return A.FloatLit(tok.pos, float(tok.value))
        if tok.kind == TokenKind.IDENT:
            self.advance()
            return A.Name(tok.pos, tok.text)
        if self.at_op("("):
            self.advance()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        raise ParseError(f"unexpected token {tok.text or 'end of input'!r}", tok.pos)


def parse(source: str) -> A.Unit:
    """Parse Slang *source* into an AST unit."""
    parser = _Parser(tokenize(source))
    return parser.parse_unit()
