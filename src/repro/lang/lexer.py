"""Slang lexer.

Slang is the reproduction's C-like workload language (DESIGN.md §2).  The
lexer produces a flat token stream; ``//`` and ``/* */`` comments are
stripped.  Numeric literals: decimal / hex integers, and floats with a
decimal point and/or exponent.  Character literals ``'c'`` become int
literals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.errors import LexError, SourcePos

__all__ = ["Token", "TokenKind", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "int",
        "float",
        "void",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
    }
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "~",
    "&",
    "|",
    "^",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
]


class TokenKind:
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    pos: SourcePos
    value: int | float | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}@{self.pos})"


def _is_ident_start(c: str) -> bool:
    return c.isalpha() or c == "_"


def _is_ident(c: str) -> bool:
    return c.isalnum() or c == "_"


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*; raises :class:`LexError` on invalid input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def pos() -> SourcePos:
        return SourcePos(line, col)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = source[i]
        if c in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start = pos()
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise LexError("unterminated block comment", start)
            advance(2)
            continue
        if _is_ident_start(c):
            start = pos()
            j = i
            while j < n and _is_ident(source[j]):
                j += 1
            text = source[i:j]
            advance(j - i)
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, start))
            continue
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            tokens.append(_lex_number(source, i, pos(), advance))
            continue
        if c == "'":
            start = pos()
            if i + 2 < n and source[i + 1] == "\\":
                escapes = {"n": 10, "t": 9, "0": 0, "'": 39, "\\": 92}
                esc = source[i + 2]
                if esc not in escapes or i + 3 >= n or source[i + 3] != "'":
                    raise LexError(f"bad escape sequence '\\{esc}'", start)
                tokens.append(Token(TokenKind.INT, source[i : i + 4], start, escapes[esc]))
                advance(4)
            elif i + 2 < n and source[i + 2] == "'":
                tokens.append(Token(TokenKind.INT, source[i : i + 3], start, ord(source[i + 1])))
                advance(3)
            else:
                raise LexError("unterminated character literal", start)
            continue
        matched = False
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(TokenKind.OP, op, pos()))
                advance(len(op))
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {c!r}", pos())
    tokens.append(Token(TokenKind.EOF, "", pos()))
    return tokens


def _lex_number(source: str, i: int, start: SourcePos, advance) -> Token:
    n = len(source)
    j = i
    if source.startswith("0x", i) or source.startswith("0X", i):
        j = i + 2
        while j < n and (source[j] in "0123456789abcdefABCDEF"):
            j += 1
        text = source[i:j]
        if len(text) == 2:
            raise LexError("empty hex literal", start)
        advance(j - i)
        return Token(TokenKind.INT, text, start, int(text, 16))
    is_float = False
    while j < n and source[j].isdigit():
        j += 1
    if j < n and source[j] == ".":
        is_float = True
        j += 1
        while j < n and source[j].isdigit():
            j += 1
    if j < n and source[j] in "eE":
        k = j + 1
        if k < n and source[k] in "+-":
            k += 1
        if k < n and source[k].isdigit():
            is_float = True
            j = k
            while j < n and source[j].isdigit():
                j += 1
    text = source[i:j]
    advance(j - i)
    if is_float:
        return Token(TokenKind.FLOAT, text, start, float(text))
    return Token(TokenKind.INT, text, start, int(text))
