"""Slang semantic analysis: name resolution, type checking, slot assignment.

After ``analyze(unit)``:

* every ``Expr`` node carries ``.type``;
* every ``Name`` carries ``.binding`` (``local``/``param``/``global``/``func``)
  and, for locals/params, ``.slot`` — an index into the function frame;
* implicit ``int -> float`` conversions are materialised as ``Cast`` nodes so
  codegen never converts silently;
* every ``FuncDef`` carries ``.frame_slots`` — the ordered list of
  ``(slot_type, size_words)`` for its params + locals (local arrays get their
  full extent).

Builtins (the paper's Table 1 API plus math/IO intrinsics) are recognised
here and tagged on the ``Call`` node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import ast_nodes as A
from repro.lang.errors import SourcePos, TypeError_
from repro.lang.types import FLOAT, INT, VOID, Array, Ptr, Type, same

__all__ = ["analyze", "BUILTINS", "Builtin"]


@dataclass(frozen=True)
class Builtin:
    """Signature of a compiler builtin."""

    name: str
    params: tuple[Type, ...]
    returns: Type
    #: First parameter is a function reference (spawn only).
    func_ref: bool = False


_IP = Ptr(INT)

BUILTINS: dict[str, Builtin] = {
    b.name: b
    for b in [
        Builtin("print_int", (INT,), VOID),
        Builtin("print_float", (FLOAT,), VOID),
        Builtin("print_char", (INT,), VOID),
        Builtin("exit", (INT,), VOID),
        Builtin("sbrk", (INT,), INT),
        Builtin("clock", (), INT),
        Builtin("thread_id", (), INT),
        Builtin("num_threads", (), INT),
        Builtin("spawn", (INT, INT), INT, func_ref=True),
        Builtin("join", (INT,), VOID),
        # Paper Table 1 synchronization API.
        Builtin("init_lock", (_IP,), VOID),
        Builtin("lock", (_IP,), VOID),
        Builtin("unlock", (_IP,), VOID),
        Builtin("init_barrier", (_IP, INT), VOID),
        Builtin("barrier", (_IP,), VOID),
        Builtin("init_sema", (_IP, INT), VOID),
        Builtin("sema_wait", (_IP,), VOID),
        Builtin("sema_signal", (_IP,), VOID),
        # Math / atomics.
        Builtin("sqrt", (FLOAT,), FLOAT),
        Builtin("sin", (FLOAT,), FLOAT),
        Builtin("cos", (FLOAT,), FLOAT),
        Builtin("fabs", (FLOAT,), FLOAT),
        Builtin("fmin", (FLOAT, FLOAT), FLOAT),
        Builtin("fmax", (FLOAT, FLOAT), FLOAT),
        Builtin("abs", (INT,), INT),
        Builtin("atomic_add", (_IP, INT), INT),
        Builtin("atomic_swap", (_IP, INT), INT),
    ]
}


@dataclass
class _Sig:
    params: tuple[Type, ...]
    returns: Type


class _Scope:
    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.names: dict[str, tuple[str, Type, int]] = {}  # name -> (kind, type, slot)

    def define(self, name: str, kind: str, ty: Type, slot: int, pos: SourcePos) -> None:
        if name in self.names:
            raise TypeError_(f"redefinition of {name!r}", pos)
        self.names[name] = (kind, ty, slot)

    def lookup(self, name: str):
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class _Analyzer:
    def __init__(self, unit: A.Unit) -> None:
        self.unit = unit
        self.globals: dict[str, Type] = {}
        self.functions: dict[str, _Sig] = {}
        self.current: A.FuncDef | None = None
        self.loop_depth = 0

    # ----------------------------------------------------------- top level
    def run(self) -> A.Unit:
        for g in self.unit.globals:
            if g.name in self.globals or g.name in BUILTINS:
                raise TypeError_(f"redefinition of global {g.name!r}", g.pos)
            self._check_global_init(g)
            self.globals[g.name] = g.var_type
        for fn in self.unit.functions:
            if fn.name in self.functions or fn.name in BUILTINS or fn.name in self.globals:
                raise TypeError_(f"redefinition of function {fn.name!r}", fn.pos)
            self.functions[fn.name] = _Sig(tuple(p.param_type for p in fn.params), fn.return_type)
        if "main" not in self.functions:
            raise TypeError_("program has no 'main' function", self.unit.pos)
        if len(self.functions["main"].params) != 0:
            raise TypeError_("'main' must take no parameters", self.unit.pos)
        for fn in self.unit.functions:
            self._check_function(fn)
        return self.unit

    def _check_global_init(self, g: A.GlobalDecl) -> None:
        if g.init is None:
            return
        if isinstance(g.init, list):
            assert g.var_type.is_array
            elem = g.var_type.element  # type: ignore[attr-defined]
            g.init = [self._coerce_const(v, elem, g.pos) for v in g.init]
        else:
            if g.var_type.is_array:
                raise TypeError_("array global needs a brace initializer", g.pos)
            g.init = self._coerce_const(g.init, g.var_type, g.pos)

    @staticmethod
    def _coerce_const(value, ty: Type, pos: SourcePos):
        if ty.is_float:
            return float(value)
        if isinstance(value, float):
            raise TypeError_(f"float constant {value} initialising non-float", pos)
        return int(value)

    # ------------------------------------------------------------ functions
    def _check_function(self, fn: A.FuncDef) -> None:
        self.current = fn
        self.loop_depth = 0
        self._slots: list[tuple[Type, int]] = []
        scope = _Scope()
        if len(fn.params) > 8:
            raise TypeError_(f"{fn.name!r}: at most 8 parameters supported", fn.pos)
        for p in fn.params:
            slot = self._new_slot(p.param_type.decay())
            scope.define(p.name, "param", p.param_type.decay(), slot, p.pos)
        self._check_block(fn.body, scope)
        fn.frame_slots = self._slots  # type: ignore[attr-defined]
        self.current = None

    def _new_slot(self, ty: Type) -> int:
        words = ty.sizeof() // 8 if ty.is_array else 1
        self._slots.append((ty, words))
        return len(self._slots) - 1

    # ------------------------------------------------------------ statements
    def _check_block(self, block: A.Block, parent: _Scope) -> None:
        scope = _Scope(parent)
        for stmt in block.body:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: A.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, A.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, A.ExprStmt):
            self._expr(stmt.expr, scope)
        elif isinstance(stmt, A.VarDecl):
            self._check_vardecl(stmt, scope)
        elif isinstance(stmt, A.If):
            self._condition(stmt.cond, scope)
            self._check_block(stmt.then, scope)
            if isinstance(stmt.orelse, A.If):
                self._check_stmt(stmt.orelse, scope)
            elif stmt.orelse is not None:
                self._check_block(stmt.orelse, scope)
        elif isinstance(stmt, A.While):
            self._condition(stmt.cond, scope)
            self.loop_depth += 1
            self._check_block(stmt.body, scope)
            self.loop_depth -= 1
        elif isinstance(stmt, A.For):
            inner = _Scope(scope)
            if isinstance(stmt.init, A.VarDecl):
                self._check_vardecl(stmt.init, inner)
            elif stmt.init is not None:
                self._expr(stmt.init, inner)
            if stmt.cond is not None:
                self._condition(stmt.cond, inner)
            if stmt.step is not None:
                self._expr(stmt.step, inner)
            self.loop_depth += 1
            self._check_block(stmt.body, inner)
            self.loop_depth -= 1
        elif isinstance(stmt, A.Return):
            self._check_return(stmt, scope)
        elif isinstance(stmt, (A.Break, A.Continue)):
            if self.loop_depth == 0:
                kind = "break" if isinstance(stmt, A.Break) else "continue"
                raise TypeError_(f"{kind} outside a loop", stmt.pos)
        else:  # pragma: no cover
            raise AssertionError(f"unhandled statement {type(stmt).__name__}")

    def _check_vardecl(self, decl: A.VarDecl, scope: _Scope) -> None:
        slot = self._new_slot(decl.var_type)
        scope.define(decl.name, "local", decl.var_type, slot, decl.pos)
        decl.slot = slot  # type: ignore[attr-defined]
        if decl.init is not None:
            value_ty = self._expr(decl.init, scope)
            decl.init = self._convert(decl.init, value_ty, decl.var_type, decl.pos)

    def _check_return(self, stmt: A.Return, scope: _Scope) -> None:
        assert self.current is not None
        want = self.current.return_type
        if stmt.value is None:
            if not want.is_void:
                raise TypeError_(f"{self.current.name!r} must return a {want}", stmt.pos)
            return
        if want.is_void:
            raise TypeError_(f"void function {self.current.name!r} returns a value", stmt.pos)
        got = self._expr(stmt.value, scope)
        stmt.value = self._convert(stmt.value, got, want, stmt.pos)

    def _condition(self, expr: A.Expr, scope: _Scope) -> None:
        ty = self._expr(expr, scope)
        if not (ty.is_int or ty.is_pointer):
            raise TypeError_(f"condition must be int (or pointer), got {ty}", expr.pos)

    # ------------------------------------------------------------ conversion
    def _convert(self, expr: A.Expr, got: Type, want: Type, pos: SourcePos) -> A.Expr:
        """Insert an implicit conversion or raise."""
        got = got.decay()
        want = want.decay()
        if same(got, want):
            return expr
        if got.is_int and want.is_float:
            cast = A.Cast(pos, want, expr)
            cast.type = want
            return cast
        if want.is_pointer and got.is_int and isinstance(expr, A.IntLit) and expr.value == 0:
            cast = A.Cast(pos, want, expr)
            cast.type = want
            return cast
        raise TypeError_(f"cannot implicitly convert {got} to {want}", pos)

    # ----------------------------------------------------------- expressions
    def _expr(self, expr: A.Expr, scope: _Scope) -> Type:
        ty = self._expr_inner(expr, scope)
        expr.type = ty
        return ty

    def _expr_inner(self, expr: A.Expr, scope: _Scope) -> Type:
        if isinstance(expr, A.IntLit):
            if not -(1 << 31) <= expr.value <= (1 << 31) - 1:
                raise TypeError_(f"integer literal {expr.value} exceeds 32 signed bits", expr.pos)
            return INT
        if isinstance(expr, A.FloatLit):
            return FLOAT
        if isinstance(expr, A.Name):
            return self._name(expr, scope)
        if isinstance(expr, A.Unary):
            return self._unary(expr, scope)
        if isinstance(expr, A.Binary):
            return self._binary(expr, scope)
        if isinstance(expr, A.Assign):
            return self._assign(expr, scope)
        if isinstance(expr, A.Call):
            return self._call(expr, scope)
        if isinstance(expr, A.Index):
            return self._index(expr, scope)
        if isinstance(expr, A.Cast):
            return self._cast(expr, scope)
        raise AssertionError(f"unhandled expression {type(expr).__name__}")  # pragma: no cover

    def _name(self, expr: A.Name, scope: _Scope) -> Type:
        hit = scope.lookup(expr.name)
        if hit is not None:
            kind, ty, slot = hit
            expr.binding = kind
            expr.slot = slot  # type: ignore[attr-defined]
            return ty
        if expr.name in self.globals:
            expr.binding = "global"
            return self.globals[expr.name]
        if expr.name in self.functions:
            expr.binding = "func"
            return INT  # code address
        raise TypeError_(f"undefined name {expr.name!r}", expr.pos)

    def _unary(self, expr: A.Unary, scope: _Scope) -> Type:
        if expr.op == "&":
            ty = self._expr(expr.operand, scope)
            if not A.is_lvalue(expr.operand):
                raise TypeError_("'&' requires an lvalue", expr.pos)
            if ty.is_array:
                return Ptr(ty.element)  # type: ignore[attr-defined]
            return Ptr(ty)
        ty = self._expr(expr.operand, scope).decay()
        if expr.op == "*":
            if not ty.is_pointer:
                raise TypeError_(f"cannot dereference {ty}", expr.pos)
            base = ty.base  # type: ignore[attr-defined]
            if base.is_void:
                raise TypeError_("cannot dereference void*", expr.pos)
            return base
        if expr.op == "-":
            if not ty.is_numeric:
                raise TypeError_(f"unary '-' needs a numeric operand, got {ty}", expr.pos)
            return ty
        if expr.op in ("!", "~"):
            if not ty.is_int:
                raise TypeError_(f"unary {expr.op!r} needs an int operand, got {ty}", expr.pos)
            return INT
        raise AssertionError(expr.op)  # pragma: no cover

    def _binary(self, expr: A.Binary, scope: _Scope) -> Type:
        op = expr.op
        lt = self._expr(expr.left, scope).decay()
        rt = self._expr(expr.right, scope).decay()
        if op in ("&&", "||", "&", "|", "^", "<<", ">>", "%"):
            if not (lt.is_int and rt.is_int):
                raise TypeError_(f"{op!r} needs int operands, got {lt} and {rt}", expr.pos)
            return INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if lt.is_pointer or rt.is_pointer:
                if lt.is_pointer and rt.is_pointer and same(lt, rt):
                    return INT
                # pointer vs literal 0
                if lt.is_pointer and rt.is_int:
                    expr.right = self._convert(expr.right, rt, lt, expr.pos)
                    return INT
                if rt.is_pointer and lt.is_int:
                    expr.left = self._convert(expr.left, lt, rt, expr.pos)
                    return INT
                raise TypeError_(f"cannot compare {lt} with {rt}", expr.pos)
            if lt.is_float or rt.is_float:
                expr.left = self._convert(expr.left, lt, FLOAT, expr.pos)
                expr.right = self._convert(expr.right, rt, FLOAT, expr.pos)
            return INT
        if op in ("+", "-", "*", "/"):
            if lt.is_pointer or rt.is_pointer:
                return self._pointer_arith(expr, lt, rt)
            if lt.is_float or rt.is_float:
                if op in ("+", "-", "*", "/"):
                    expr.left = self._convert(expr.left, lt, FLOAT, expr.pos)
                    expr.right = self._convert(expr.right, rt, FLOAT, expr.pos)
                    return FLOAT
            return INT
        raise AssertionError(op)  # pragma: no cover

    def _pointer_arith(self, expr: A.Binary, lt: Type, rt: Type) -> Type:
        op = expr.op
        if op == "+":
            if lt.is_pointer and rt.is_int:
                return lt
            if rt.is_pointer and lt.is_int:
                return rt
        if op == "-":
            if lt.is_pointer and rt.is_int:
                return lt
            if lt.is_pointer and rt.is_pointer and same(lt, rt):
                return INT  # element difference
        raise TypeError_(f"invalid pointer arithmetic: {lt} {op} {rt}", expr.pos)

    def _assign(self, expr: A.Assign, scope: _Scope) -> Type:
        target_ty = self._expr(expr.target, scope)
        if not A.is_lvalue(expr.target):
            raise TypeError_("assignment target is not an lvalue", expr.pos)
        if target_ty.is_array:
            raise TypeError_("cannot assign to an array", expr.pos)
        value_ty = self._expr(expr.value, scope)
        expr.value = self._convert(expr.value, value_ty, target_ty, expr.pos)
        return target_ty

    def _index(self, expr: A.Index, scope: _Scope) -> Type:
        base_ty = self._expr(expr.base, scope).decay()
        if not base_ty.is_pointer:
            raise TypeError_(f"cannot index {base_ty}", expr.pos)
        index_ty = self._expr(expr.index, scope)
        if not index_ty.is_int:
            raise TypeError_(f"array index must be int, got {index_ty}", expr.pos)
        base = base_ty.base  # type: ignore[attr-defined]
        if base.is_void:
            raise TypeError_("cannot index void*", expr.pos)
        return base

    def _cast(self, expr: A.Cast, scope: _Scope) -> Type:
        src = self._expr(expr.operand, scope).decay()
        dst = expr.target_type
        if dst.is_void:
            raise TypeError_("cannot cast to void", expr.pos)
        ok = (
            (src.is_numeric and dst.is_numeric)
            or (src.is_pointer and dst.is_pointer)
            or (src.is_int and dst.is_pointer)
            or (src.is_pointer and dst.is_int)
        )
        if not ok:
            raise TypeError_(f"invalid cast from {src} to {dst}", expr.pos)
        return dst

    def _call(self, expr: A.Call, scope: _Scope) -> Type:
        if expr.func in BUILTINS:
            return self._builtin_call(expr, scope)
        sig = self.functions.get(expr.func)
        if sig is None:
            raise TypeError_(f"call to undefined function {expr.func!r}", expr.pos)
        if len(expr.args) != len(sig.params):
            raise TypeError_(
                f"{expr.func!r} expects {len(sig.params)} argument(s), got {len(expr.args)}",
                expr.pos,
            )
        for i, (arg, want) in enumerate(zip(expr.args, sig.params)):
            got = self._expr(arg, scope)
            expr.args[i] = self._convert(arg, got, want, arg.pos)
        return sig.returns

    def _builtin_call(self, expr: A.Call, scope: _Scope) -> Type:
        b = BUILTINS[expr.func]
        expr.builtin = b.name
        if len(expr.args) != len(b.params):
            raise TypeError_(
                f"builtin {b.name!r} expects {len(b.params)} argument(s), got {len(expr.args)}",
                expr.pos,
            )
        for i, (arg, want) in enumerate(zip(expr.args, b.params)):
            if i == 0 and b.func_ref:
                if not isinstance(arg, A.Name) or arg.name not in self.functions:
                    raise TypeError_("spawn() needs a function name as its first argument", arg.pos)
                sig = self.functions[arg.name]
                if len(sig.params) != 1 or not sig.params[0].is_int:
                    raise TypeError_(
                        f"spawned function {arg.name!r} must take exactly one int argument", arg.pos
                    )
                arg.binding = "func"
                arg.type = INT
                continue
            got = self._expr(arg, scope)
            expr.args[i] = self._convert(arg, got, want, arg.pos)
        return b.returns


def analyze(unit: A.Unit) -> A.Unit:
    """Run semantic analysis in place and return *unit*."""
    return _Analyzer(unit).run()
