"""Slang code generation: typed AST -> SPISA assembly text.

Strategy: a *register stack*.  Expression evaluation pushes values onto a
virtual stack whose top entries live in caller-saved temporaries (``t0-t6``
for ints/pointers, ``ft0-ft7`` for floats); when a class runs out the
bottom-most in-register entry is spilled to a frame slot (it will be needed
last, preserving stack discipline).  User function calls spill the whole
stack because callees reuse the same temporaries.

Frame layout (``s0`` anchors the frame top == caller's ``sp``)::

    s0 -  8   saved ra
    s0 - 16   saved s0
    s0 - 16 - 8*k        variable slots (params copied in, then locals;
                         local arrays occupy their full extent)
    below slots          spill area (size = watermark of the register stack)

Calling convention: up to 8 arguments, argument *i* in ``a_i`` or ``fa_i`` by
declared type; results in ``a0``/``fa0``; ``t*``/``ft*``/``a*`` caller-saved;
``s0``/``sp``/``ra`` managed by prologue/epilogue.  Syscalls (``ecall``)
preserve every register except the ``a0`` result — the emulation layer
guarantees this, which lets builtins avoid spills entirely.

The runtime stub gives every program the same shape: label ``main`` (the
entry) calls the user's ``fn_main`` and exits with its return value; spawned
threads start at their function with ``ra = __thread_exit``, a stub that
issues ``exit(0)``.
"""

from __future__ import annotations

from repro.lang import ast_nodes as A
from repro.lang.errors import CodegenError
from repro.lang.sema import BUILTINS
from repro.lang.types import FLOAT, INT, Type
from repro.sysapi.syscalls import Sys

__all__ = ["generate"]

_INT_TEMPS = ["t0", "t1", "t2", "t3", "t4", "t5", "t6"]
_FLOAT_TEMPS = [f"ft{i}" for i in range(8)]

#: Builtins lowered to inline instructions rather than syscalls.
_INLINE_BUILTINS = {"sqrt", "sin", "cos", "fabs", "fmin", "fmax", "abs", "atomic_add", "atomic_swap"}

#: Builtin name -> syscall number for the trap-based builtins.
_SYSCALL_BUILTINS = {
    "print_int": Sys.PRINT_INT,
    "print_float": Sys.PRINT_FLOAT,
    "print_char": Sys.PRINT_CHAR,
    "exit": Sys.EXIT,
    "sbrk": Sys.SBRK,
    "clock": Sys.CLOCK,
    "thread_id": Sys.THREAD_ID,
    "num_threads": Sys.NUM_THREADS,
    "spawn": Sys.THREAD_SPAWN,
    "join": Sys.THREAD_JOIN,
    "init_lock": Sys.LOCK_INIT,
    "lock": Sys.LOCK_ACQ,
    "unlock": Sys.LOCK_REL,
    "init_barrier": Sys.BARRIER_INIT,
    "barrier": Sys.BARRIER_WAIT,
    "init_sema": Sys.SEMA_INIT,
    "sema_wait": Sys.SEMA_WAIT,
    "sema_signal": Sys.SEMA_SIGNAL,
}


class _Entry:
    """One value on the virtual evaluation stack."""

    __slots__ = ("is_float", "reg", "spill")

    def __init__(self, is_float: bool, reg: str | None, spill: int | None = None) -> None:
        self.is_float = is_float
        self.reg = reg      # register name, or None when spilled
        self.spill = spill  # spill slot index, or None when in a register


class _FuncGen:
    """Code generator for a single function."""

    def __init__(self, cg: "_CodeGen", fn: A.FuncDef) -> None:
        self.cg = cg
        self.fn = fn
        self.lines: list[str] = []
        self.stack: list[_Entry] = []
        self.free_int = list(_INT_TEMPS)
        self.free_float = list(_FLOAT_TEMPS)
        self.spill_free: list[int] = []
        self.spill_next = 0
        self.max_spill = 0
        self.break_labels: list[str] = []
        self.continue_labels: list[str] = []
        # Slot word offsets: slot k occupies words [start, start+w).
        self.slot_offset: list[int] = []
        cum = 0
        for _ty, words in fn.frame_slots:  # type: ignore[attr-defined]
            cum += words
            self.slot_offset.append(cum)  # offset of slot END in words
        self.total_slot_words = cum

    # -------------------------------------------------------------- emission
    def emit(self, line: str) -> None:
        self.lines.append(f"    {line}")

    def label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    # ---------------------------------------------------------- frame offsets
    def slot_addr_offset(self, slot: int) -> int:
        """Byte offset (from s0) of the lowest address of *slot*."""
        return -16 - 8 * self.slot_offset[slot]

    def _spill_offset(self, spill: int) -> int:
        return -16 - 8 * self.total_slot_words - 8 * (spill + 1)

    def _take_spill(self) -> int:
        if self.spill_free:
            return self.spill_free.pop()
        slot = self.spill_next
        self.spill_next += 1
        self.max_spill = max(self.max_spill, self.spill_next)
        return slot

    def _release_spill(self, slot: int) -> None:
        self.spill_free.append(slot)
        if slot == self.spill_next - 1:
            self.spill_next -= 1
            self.spill_free.remove(slot)

    # ------------------------------------------------------- stack operations
    def _spill_entry(self, entry: _Entry) -> None:
        assert entry.reg is not None
        slot = self._take_spill()
        off = self._spill_offset(slot)
        if entry.is_float:
            self.emit(f"fsd {entry.reg}, {off}(s0)")
            self.free_float.append(entry.reg)
        else:
            self.emit(f"sd {entry.reg}, {off}(s0)")
            self.free_int.append(entry.reg)
        entry.reg = None
        entry.spill = slot

    def _spill_bottom(self, is_float: bool) -> None:
        for entry in self.stack:
            if entry.is_float == is_float and entry.reg is not None:
                self._spill_entry(entry)
                return
        raise CodegenError("expression too complex: register stack exhausted", self.fn.pos)

    def _alloc_reg(self, is_float: bool) -> str:
        pool = self.free_float if is_float else self.free_int
        if not pool:
            self._spill_bottom(is_float)
        return pool.pop()

    def push(self, is_float: bool) -> str:
        """Allocate a register, push it on the stack, return its name."""
        reg = self._alloc_reg(is_float)
        self.stack.append(_Entry(is_float, reg))
        return reg

    def push_spilled(self, is_float: bool, spill: int) -> None:
        self.stack.append(_Entry(is_float, None, spill))

    def pop(self) -> tuple[str, bool]:
        """Pop the top entry into a register; returns (reg, is_float).

        The register stays *checked out* — it is not eligible for
        reallocation until the caller hands it back with :meth:`free` (or
        re-pushes it with :meth:`push_reg`).  This prevents a reload or a
        scratch allocation from clobbering an operand that has been popped
        but not yet consumed.
        """
        entry = self.stack.pop()
        if entry.reg is None:
            assert entry.spill is not None
            reg = self._alloc_reg(entry.is_float)
            off = self._spill_offset(entry.spill)
            self.emit(f"fld {reg}, {off}(s0)" if entry.is_float else f"ld {reg}, {off}(s0)")
            self._release_spill(entry.spill)
            entry.reg = reg
        return entry.reg, entry.is_float

    def free(self, reg: str, is_float: bool) -> None:
        """Return a checked-out register to the free pool."""
        pool = self.free_float if is_float else self.free_int
        assert reg not in pool, f"double free of {reg}"
        pool.append(reg)

    def push_reg(self, reg: str, is_float: bool) -> None:
        """Push a checked-out register as a new stack entry."""
        self.stack.append(_Entry(is_float, reg))

    def spill_all(self) -> None:
        """Move every in-register stack entry to spill slots (around calls)."""
        for entry in self.stack:
            if entry.reg is not None:
                self._spill_entry(entry)

    # ------------------------------------------------------------ entry point
    def generate(self) -> list[str]:
        body: list[str] = []
        self.lines = body
        self._gen_block(self.fn.body)
        # Fall off the end: implicit `return` (value undefined for non-void,
        # as in C; we return 0 for safety).
        self.emit("li a0, 0")
        frame = 16 + 8 * self.total_slot_words + 8 * self.max_spill
        frame = (frame + 15) & ~15
        head: list[str] = [f"fn_{self.fn.name}:"]
        head.append(f"    addi sp, sp, -{frame}")
        head.append(f"    sd ra, {frame - 8}(sp)")
        head.append(f"    sd s0, {frame - 16}(sp)")
        head.append(f"    addi s0, sp, {frame}")
        for i, param in enumerate(self.fn.params):
            off = self.slot_addr_offset(i)
            if param.param_type.decay().is_float:
                head.append(f"    fsd fa{i}, {off}(s0)")
            else:
                head.append(f"    sd a{i}, {off}(s0)")
        tail = [
            f"Lret_{self.fn.name}:",
            "    addi sp, s0, 0",
            "    ld ra, -8(sp)",
            "    ld s0, -16(sp)",
            "    ret",
        ]
        return head + body + tail

    # -------------------------------------------------------------- statements
    def _gen_block(self, block: A.Block) -> None:
        for stmt in block.body:
            self._gen_stmt(stmt)
            assert not self.stack, f"value stack not empty after {type(stmt).__name__}"

    def _gen_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Block):
            self._gen_block(stmt)
        elif isinstance(stmt, A.ExprStmt):
            self._gen_expr(stmt.expr)
            if stmt.expr.type is not None and not stmt.expr.type.is_void:
                self.free(*self.pop())
        elif isinstance(stmt, A.VarDecl):
            if stmt.init is not None:
                self._gen_expr(stmt.init)
                reg, is_float = self.pop()
                off = self.slot_addr_offset(stmt.slot)  # type: ignore[attr-defined]
                self.emit(f"fsd {reg}, {off}(s0)" if is_float else f"sd {reg}, {off}(s0)")
                self.free(reg, is_float)
        elif isinstance(stmt, A.If):
            self._gen_if(stmt)
        elif isinstance(stmt, A.While):
            self._gen_while(stmt)
        elif isinstance(stmt, A.For):
            self._gen_for(stmt)
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                self._gen_expr(stmt.value)
                reg, is_float = self.pop()
                self.emit(f"fmv fa0, {reg}" if is_float else f"mv a0, {reg}")
                self.free(reg, is_float)
            self.emit(f"j Lret_{self.fn.name}")
        elif isinstance(stmt, A.Break):
            self.emit(f"j {self.break_labels[-1]}")
        elif isinstance(stmt, A.Continue):
            self.emit(f"j {self.continue_labels[-1]}")
        else:  # pragma: no cover
            raise AssertionError(type(stmt).__name__)

    def _gen_condition(self, cond: A.Expr, false_label: str) -> None:
        self._gen_expr(cond)
        reg, is_float = self.pop()
        self.emit(f"beqz {reg}, {false_label}")
        self.free(reg, is_float)

    def _gen_if(self, stmt: A.If) -> None:
        else_label = self.cg.new_label()
        end_label = self.cg.new_label() if stmt.orelse is not None else else_label
        self._gen_condition(stmt.cond, else_label)
        self._gen_block(stmt.then)
        if stmt.orelse is not None:
            self.emit(f"j {end_label}")
            self.label(else_label)
            if isinstance(stmt.orelse, A.If):
                self._gen_stmt(stmt.orelse)
            else:
                self._gen_block(stmt.orelse)
            self.label(end_label)
        else:
            self.label(else_label)

    def _gen_while(self, stmt: A.While) -> None:
        top = self.cg.new_label()
        end = self.cg.new_label()
        self.label(top)
        self._gen_condition(stmt.cond, end)
        self.break_labels.append(end)
        self.continue_labels.append(top)
        self._gen_block(stmt.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.emit(f"j {top}")
        self.label(end)

    def _gen_for(self, stmt: A.For) -> None:
        top = self.cg.new_label()
        step_label = self.cg.new_label()
        end = self.cg.new_label()
        if isinstance(stmt.init, A.VarDecl):
            self._gen_stmt(stmt.init)
        elif stmt.init is not None:
            self._gen_expr(stmt.init)
            if stmt.init.type is not None and not stmt.init.type.is_void:
                self.free(*self.pop())
        self.label(top)
        if stmt.cond is not None:
            self._gen_condition(stmt.cond, end)
        self.break_labels.append(end)
        self.continue_labels.append(step_label)
        self._gen_block(stmt.body)
        self.break_labels.pop()
        self.continue_labels.pop()
        self.label(step_label)
        if stmt.step is not None:
            self._gen_expr(stmt.step)
            if stmt.step.type is not None and not stmt.step.type.is_void:
                self.free(*self.pop())
        self.emit(f"j {top}")
        self.label(end)

    # ------------------------------------------------------------- expressions
    def _gen_expr(self, expr: A.Expr) -> None:
        """Generate code that pushes the value of *expr* (unless void)."""
        if isinstance(expr, A.IntLit):
            reg = self.push(False)
            self.emit(f"li {reg}, {expr.value}")
        elif isinstance(expr, A.FloatLit):
            self._gen_float_const(expr.value)
        elif isinstance(expr, A.Name):
            self._gen_name(expr)
        elif isinstance(expr, A.Unary):
            self._gen_unary(expr)
        elif isinstance(expr, A.Binary):
            self._gen_binary(expr)
        elif isinstance(expr, A.Assign):
            self._gen_assign(expr)
        elif isinstance(expr, A.Call):
            self._gen_call(expr)
        elif isinstance(expr, A.Index):
            self._gen_addr(expr)
            self._load_from_top(expr.type)
        elif isinstance(expr, A.Cast):
            self._gen_cast(expr)
        else:  # pragma: no cover
            raise AssertionError(type(expr).__name__)

    def _gen_float_const(self, value: float) -> None:
        label = self.cg.float_const(value)
        addr = self.push(False)
        self.emit(f"la {addr}, {label}")
        self.free(*self.pop())
        reg = self.push(True)
        self.emit(f"fld {reg}, 0({addr})")

    def _load_from_top(self, ty: Type | None) -> None:
        """Replace the address on top of the stack with the loaded value."""
        assert ty is not None
        addr, _ = self.pop()
        self.free(addr, False)
        if ty.is_float:
            reg = self.push(True)
            self.emit(f"fld {reg}, 0({addr})")
        else:
            reg = self.push(False)
            self.emit(f"ld {reg}, 0({addr})")

    def _gen_name(self, expr: A.Name) -> None:
        ty = expr.type
        assert ty is not None
        if expr.binding == "func":
            reg = self.push(False)
            self.emit(f"la {reg}, fn_{expr.name}")
            return
        if ty.is_array:
            self._gen_addr(expr)  # decay to pointer
            return
        if expr.binding == "global":
            addr = self.push(False)
            self.emit(f"la {addr}, g_{expr.name}")
            self.free(*self.pop())
            if ty.is_float:
                reg = self.push(True)
                self.emit(f"fld {reg}, 0({addr})")
            else:
                reg = self.push(False)
                self.emit(f"ld {reg}, 0({addr})")
            return
        off = self.slot_addr_offset(expr.slot)  # type: ignore[attr-defined]
        if ty.is_float:
            reg = self.push(True)
            self.emit(f"fld {reg}, {off}(s0)")
        else:
            reg = self.push(False)
            self.emit(f"ld {reg}, {off}(s0)")

    def _gen_addr(self, expr: A.Expr) -> None:
        """Push the address of lvalue *expr* (also used for array decay)."""
        if isinstance(expr, A.Name):
            reg = self.push(False)
            if expr.binding == "global":
                self.emit(f"la {reg}, g_{expr.name}")
            else:
                off = self.slot_addr_offset(expr.slot)  # type: ignore[attr-defined]
                self.emit(f"addi {reg}, s0, {off}")
        elif isinstance(expr, A.Index):
            base_ty = expr.base.type
            assert base_ty is not None
            if base_ty.is_array:
                self._gen_addr(expr.base)
            else:
                self._gen_expr(expr.base)  # pointer rvalue
            self._gen_expr(expr.index)
            idx, _ = self.pop()
            base, _ = self.pop()
            self.free(idx, False)
            self.free(base, False)
            out = self.push(False)
            self.emit(f"slli {idx}, {idx}, 3")
            self.emit(f"add {out}, {base}, {idx}")
        elif isinstance(expr, A.Unary) and expr.op == "*":
            self._gen_expr(expr.operand)
        else:  # pragma: no cover - sema rejects other lvalues
            raise CodegenError(f"not an lvalue: {type(expr).__name__}", expr.pos)

    def _gen_unary(self, expr: A.Unary) -> None:
        if expr.op == "&":
            self._gen_addr(expr.operand)
            return
        if expr.op == "*":
            self._gen_expr(expr.operand)
            self._load_from_top(expr.type)
            return
        self._gen_expr(expr.operand)
        if expr.op == "-":
            reg, is_float = self.pop()
            self.free(reg, is_float)
            out = self.push(is_float)
            self.emit(f"fneg {out}, {reg}" if is_float else f"neg {out}, {reg}")
        elif expr.op == "!":
            reg, _ = self.pop()
            self.free(reg, False)
            out = self.push(False)
            self.emit(f"sltu {out}, zero, {reg}")
            self.emit(f"xori {out}, {out}, 1")
        elif expr.op == "~":
            reg, _ = self.pop()
            self.free(reg, False)
            out = self.push(False)
            self.emit(f"xori {out}, {reg}, -1")
        else:  # pragma: no cover
            raise AssertionError(expr.op)

    _INT_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
                "&": "and", "|": "or", "^": "xor", "<<": "sll", ">>": "sra"}
    _FLOAT_OPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}

    def _gen_binary(self, expr: A.Binary) -> None:
        op = expr.op
        if op in ("&&", "||"):
            self._gen_shortcircuit(expr)
            return
        lt = expr.left.type.decay() if expr.left.type else INT
        rt = expr.right.type.decay() if expr.right.type else INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            self._gen_compare(expr, lt, rt)
            return
        # Pointer arithmetic: scale the int operand by the word size.
        if lt.is_pointer or rt.is_pointer:
            self._gen_pointer_arith(expr, lt, rt)
            return
        self._gen_expr(expr.left)
        self._gen_expr(expr.right)
        rr, r_is_float = self.pop()
        rl, l_is_float = self.pop()
        self.free(rr, r_is_float)
        self.free(rl, l_is_float)
        if l_is_float or r_is_float:
            out = self.push(True)
            self.emit(f"{self._FLOAT_OPS[op]} {out}, {rl}, {rr}")
        else:
            out = self.push(False)
            self.emit(f"{self._INT_OPS[op]} {out}, {rl}, {rr}")

    def _gen_pointer_arith(self, expr: A.Binary, lt: Type, rt: Type) -> None:
        op = expr.op
        self._gen_expr(expr.left)
        self._gen_expr(expr.right)
        rr, _ = self.pop()
        rl, _ = self.pop()
        self.free(rr, False)
        self.free(rl, False)
        out = self.push(False)
        if lt.is_pointer and rt.is_pointer:  # ptr - ptr -> element count
            self.emit(f"sub {out}, {rl}, {rr}")
            self.emit(f"srai {out}, {out}, 3")
            return
        if lt.is_pointer:  # ptr +- int
            self.emit(f"slli {rr}, {rr}, 3")
            self.emit(f"{'add' if op == '+' else 'sub'} {out}, {rl}, {rr}")
        else:  # int + ptr
            self.emit(f"slli {rl}, {rl}, 3")
            self.emit(f"add {out}, {rl}, {rr}")

    def _gen_compare(self, expr: A.Binary, lt: Type, rt: Type) -> None:
        self._gen_expr(expr.left)
        self._gen_expr(expr.right)
        rr, r_is_float = self.pop()
        rl, l_is_float = self.pop()
        self.free(rr, r_is_float)
        self.free(rl, l_is_float)
        op = expr.op
        if l_is_float or r_is_float:
            out = self.push(False)
            table = {"==": ("feq", rl, rr, False), "!=": ("feq", rl, rr, True),
                     "<": ("flt", rl, rr, False), ">=": ("flt", rl, rr, True),
                     "<=": ("fle", rl, rr, False), ">": ("fle", rl, rr, True)}
            mnem, a, b, invert = table[op]
            self.emit(f"{mnem} {out}, {a}, {b}")
            if invert:
                self.emit(f"xori {out}, {out}, 1")
            return
        out = self.push(False)
        if op == "<":
            self.emit(f"slt {out}, {rl}, {rr}")
        elif op == ">":
            self.emit(f"slt {out}, {rr}, {rl}")
        elif op == "<=":
            self.emit(f"slt {out}, {rr}, {rl}")
            self.emit(f"xori {out}, {out}, 1")
        elif op == ">=":
            self.emit(f"slt {out}, {rl}, {rr}")
            self.emit(f"xori {out}, {out}, 1")
        elif op == "==":
            self.emit(f"sub {out}, {rl}, {rr}")
            self.emit(f"sltu {out}, zero, {out}")
            self.emit(f"xori {out}, {out}, 1")
        elif op == "!=":
            self.emit(f"sub {out}, {rl}, {rr}")
            self.emit(f"sltu {out}, zero, {out}")
        else:  # pragma: no cover
            raise AssertionError(op)

    def _gen_shortcircuit(self, expr: A.Binary) -> None:
        """&& / || with a stable spill-slot result (branch-safe)."""
        end = self.cg.new_label()
        slot = self._take_spill()
        off = self._spill_offset(slot)
        is_and = expr.op == "&&"
        self._gen_expr(expr.left)
        rl, _ = self.pop()
        scratch = self._alloc_reg(False)
        self.emit(f"li {scratch}, {0 if is_and else 1}")
        self.emit(f"sd {scratch}, {off}(s0)")
        self.free(scratch, False)
        self.emit(f"beqz {rl}, {end}" if is_and else f"bnez {rl}, {end}")
        self.free(rl, False)
        self._gen_expr(expr.right)
        rr, _ = self.pop()
        scratch = self._alloc_reg(False)
        self.emit(f"sltu {scratch}, zero, {rr}")
        self.emit(f"sd {scratch}, {off}(s0)")
        self.free(scratch, False)
        self.free(rr, False)
        self.label(end)
        self.push_spilled(False, slot)

    def _gen_assign(self, expr: A.Assign) -> None:
        self._gen_addr(expr.target)
        self._gen_expr(expr.value)
        val, is_float = self.pop()
        addr, _ = self.pop()
        self.emit(f"fsd {val}, 0({addr})" if is_float else f"sd {val}, 0({addr})")
        self.free(addr, False)
        self.push_reg(val, is_float)  # assignment yields its value

    def _gen_cast(self, expr: A.Cast) -> None:
        self._gen_expr(expr.operand)
        src = expr.operand.type.decay() if expr.operand.type else INT
        dst = expr.target_type
        if src.is_float and not dst.is_float:
            reg, _ = self.pop()
            self.free(reg, True)
            out = self.push(False)
            self.emit(f"fcvt.l.d {out}, {reg}")
        elif not src.is_float and dst.is_float:
            reg, _ = self.pop()
            self.free(reg, False)
            out = self.push(True)
            self.emit(f"fcvt.d.l {out}, {reg}")
        # int <-> pointer and pointer <-> pointer: no code.

    # -------------------------------------------------------------------- calls
    def _gen_call(self, expr: A.Call) -> None:
        if expr.builtin is not None:
            if expr.builtin in _INLINE_BUILTINS:
                self._gen_inline_builtin(expr)
            else:
                self._gen_syscall_builtin(expr)
            return
        for arg in expr.args:
            self._gen_expr(arg)
        # Move arguments into the a/fa registers, last argument first.
        for i in range(len(expr.args) - 1, -1, -1):
            reg, is_float = self.pop()
            self.emit(f"fmv fa{i}, {reg}" if is_float else f"mv a{i}, {reg}")
            self.free(reg, is_float)
        self.spill_all()  # callee clobbers every temp
        self.emit(f"call fn_{expr.func}")
        assert expr.type is not None
        if not expr.type.is_void:
            if expr.type.is_float:
                out = self.push(True)
                self.emit(f"fmv {out}, fa0")
            else:
                out = self.push(False)
                self.emit(f"mv {out}, a0")

    def _gen_inline_builtin(self, expr: A.Call) -> None:
        name = expr.builtin
        for arg in expr.args:
            self._gen_expr(arg)
        if name in ("sqrt", "sin", "cos", "fabs"):
            reg, _ = self.pop()
            self.free(reg, True)
            out = self.push(True)
            mnem = {"sqrt": "fsqrt", "sin": "fsin", "cos": "fcos", "fabs": "fabs"}[name]
            self.emit(f"{mnem} {out}, {reg}")
        elif name in ("fmin", "fmax"):
            rb, _ = self.pop()
            ra, _ = self.pop()
            self.free(rb, True)
            self.free(ra, True)
            out = self.push(True)
            self.emit(f"{name} {out}, {ra}, {rb}")
        elif name == "abs":
            reg, _ = self.pop()
            self.free(reg, False)
            out = self.push(False)
            if out != reg:
                self.emit(f"mv {out}, {reg}")
            done = self.cg.new_label()
            self.emit(f"bgez {out}, {done}")
            self.emit(f"neg {out}, {out}")
            self.label(done)
        elif name in ("atomic_add", "atomic_swap"):
            val, _ = self.pop()
            ptr, _ = self.pop()
            self.free(val, False)
            self.free(ptr, False)
            out = self.push(False)
            mnem = "amoadd" if name == "atomic_add" else "amoswap"
            self.emit(f"{mnem} {out}, {val}, ({ptr})")
        else:  # pragma: no cover
            raise AssertionError(name)

    def _gen_syscall_builtin(self, expr: A.Call) -> None:
        num = _SYSCALL_BUILTINS[expr.builtin]
        if expr.builtin == "spawn":
            # First argument is a function reference -> its entry address.
            self._gen_expr(expr.args[1])
            reg, _ = self.pop()
            self.emit(f"mv a1, {reg}")
            self.free(reg, False)
            self.emit(f"la a0, fn_{expr.args[0].name}")  # type: ignore[union-attr]
        else:
            # Fixed signatures: argument i lands in a{i} (int/pointer) or
            # fa{i} (float), popped last-argument-first.
            for arg in expr.args:
                self._gen_expr(arg)
            for i in range(len(expr.args) - 1, -1, -1):
                reg, is_float = self.pop()
                self.emit(f"fmv fa{i}, {reg}" if is_float else f"mv a{i}, {reg}")
                self.free(reg, is_float)
        self.emit(f"li a7, {int(num)}")
        self.emit("ecall")
        b = BUILTINS[expr.builtin]
        if not b.returns.is_void:
            out = self.push(False)
            self.emit(f"mv {out}, a0")


class _CodeGen:
    """Whole-unit driver: runtime stub, functions, globals, constant pool."""

    def __init__(self, unit: A.Unit) -> None:
        self.unit = unit
        self.label_counter = 0
        self.float_consts: dict[float, str] = {}

    def new_label(self) -> str:
        self.label_counter += 1
        return f"L{self.label_counter}"

    def float_const(self, value: float) -> str:
        label = self.float_consts.get(value)
        if label is None:
            label = f"fc_{len(self.float_consts)}"
            self.float_consts[value] = label
        return label

    def generate(self) -> str:
        out: list[str] = [".text"]
        # Runtime stub: `main` is the program entry used by the assembler.
        out += [
            "main:",
            "    call fn_main",
            "    li a7, 0",
            "    ecall",
            "__thread_exit:",
            "    li a0, 0",
            "    li a7, 0",
            "    ecall",
        ]
        for fn in self.unit.functions:
            out.append(f"# --- {fn.return_type} {fn.name}({', '.join(str(p.param_type) for p in fn.params)})")
            out += _FuncGen(self, fn).generate()
        out.append(".data")
        for g in self.unit.globals:
            out += self._global_lines(g)
        for value, label in self.float_consts.items():
            out.append(f"{label}: .double {value!r}")
        return "\n".join(out) + "\n"

    @staticmethod
    def _global_lines(g: A.GlobalDecl) -> list[str]:
        lines = [f"g_{g.name}:"]
        ty = g.var_type
        if ty.is_array:
            elem = ty.element  # type: ignore[attr-defined]
            length = ty.length  # type: ignore[attr-defined]
            values = list(g.init) if isinstance(g.init, list) else []
            if values:
                directive = ".double" if elem.is_float else ".word"
                lines.append(f"    {directive} " + ", ".join(repr(v) if elem.is_float else str(v) for v in values))
            if length > len(values):
                lines.append(f"    .space {8 * (length - len(values))}")
        elif ty.is_float:
            value = float(g.init) if g.init is not None else 0.0
            lines.append(f"    .double {value!r}")
        else:
            lines.append(f"    .word {int(g.init) if g.init is not None else 0}")
        return lines


def generate(unit: A.Unit) -> str:
    """Generate SPISA assembly for an analyzed *unit*."""
    return _CodeGen(unit).generate()
