"""Slang abstract syntax tree.

Nodes are plain dataclasses.  ``Expr`` nodes gain a ``type`` attribute during
semantic analysis (:mod:`repro.lang.sema`); lvalue-ness is a structural
property (:func:`is_lvalue`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.errors import SourcePos
from repro.lang.types import Type

__all__ = [
    "Node",
    "Expr",
    "IntLit",
    "FloatLit",
    "Name",
    "Unary",
    "Binary",
    "Assign",
    "Call",
    "Index",
    "Cast",
    "Stmt",
    "ExprStmt",
    "VarDecl",
    "If",
    "While",
    "For",
    "Return",
    "Break",
    "Continue",
    "Block",
    "Param",
    "FuncDef",
    "GlobalDecl",
    "Unit",
    "is_lvalue",
]


@dataclass
class Node:
    pos: SourcePos


# --------------------------------------------------------------- expressions
@dataclass
class Expr(Node):
    #: Filled in by sema.
    type: Type | None = field(default=None, init=False, repr=False)


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class Name(Expr):
    name: str
    #: Filled by sema: "local" | "param" | "global" | "func"
    binding: str | None = field(default=None, init=False, repr=False)


@dataclass
class Unary(Expr):
    op: str  # "-" "!" "~" "*" "&"
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # arithmetic/logic/compare token text
    left: Expr
    right: Expr


@dataclass
class Assign(Expr):
    target: Expr
    value: Expr


@dataclass
class Call(Expr):
    func: str
    args: list[Expr]
    #: Filled by sema for builtin calls (name of the builtin), else None.
    builtin: str | None = field(default=None, init=False, repr=False)


@dataclass
class Index(Expr):
    base: Expr
    index: Expr


@dataclass
class Cast(Expr):
    target_type: Type
    operand: Expr


# ---------------------------------------------------------------- statements
@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class VarDecl(Stmt):
    name: str
    var_type: Type
    init: Expr | None


@dataclass
class If(Stmt):
    cond: Expr
    then: "Block"
    orelse: "Block | If | None"


@dataclass
class While(Stmt):
    cond: Expr
    body: "Block"


@dataclass
class For(Stmt):
    init: Expr | VarDecl | None
    cond: Expr | None
    step: Expr | None
    body: "Block"


@dataclass
class Return(Stmt):
    value: Expr | None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Block(Stmt):
    body: list[Stmt]


# ----------------------------------------------------------------- top level
@dataclass
class Param(Node):
    name: str
    param_type: Type


@dataclass
class FuncDef(Node):
    name: str
    return_type: Type
    params: list[Param]
    body: Block


@dataclass
class GlobalDecl(Node):
    name: str
    var_type: Type
    init: int | float | list | None  # constant initializer (folded by parser)


@dataclass
class Unit(Node):
    """A whole translation unit."""

    globals: list[GlobalDecl]
    functions: list[FuncDef]


def is_lvalue(expr: Expr) -> bool:
    """True if *expr* designates a storage location."""
    if isinstance(expr, Name):
        return expr.binding in ("local", "param", "global")
    if isinstance(expr, Index):
        return True
    if isinstance(expr, Unary) and expr.op == "*":
        return True
    return False
