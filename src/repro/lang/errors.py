"""Slang compiler diagnostics."""

from __future__ import annotations

__all__ = ["SlangError", "LexError", "ParseError", "TypeError_", "CodegenError", "SourcePos"]


class SourcePos:
    """A (line, column) source position, 1-based."""

    __slots__ = ("line", "col")

    def __init__(self, line: int, col: int) -> None:
        self.line = line
        self.col = col

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"

    def __repr__(self) -> str:
        return f"SourcePos({self.line}, {self.col})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourcePos)
            and (self.line, self.col) == (other.line, other.col)
        )


class SlangError(ValueError):
    """Base class for all Slang compilation errors."""

    def __init__(self, message: str, pos: SourcePos | None = None) -> None:
        if pos is not None:
            message = f"{pos}: {message}"
        super().__init__(message)
        self.pos = pos


class LexError(SlangError):
    """Invalid token."""


class ParseError(SlangError):
    """Invalid syntax."""


class TypeError_(SlangError):
    """Semantic / type error (named with a trailing underscore to avoid
    shadowing the builtin)."""


class CodegenError(SlangError):
    """Internal code-generation failure (should indicate a compiler bug or a
    resource limit such as too many function arguments)."""
