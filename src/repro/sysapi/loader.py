"""Program loader: materialise a Program image into target memory.

Layout (see :mod:`repro.isa.program`): text at ``TEXT_BASE``, data + heap at
``DATA_BASE``, and one stack region per hardware context carved from the top
of memory downward.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import align_up
from repro.cpu.arch import TargetMemory
from repro.cpu.predecode import predecode_program
from repro.isa.program import DATA_BASE, TEXT_BASE, Program

__all__ = ["LoadedImage", "load_program"]


@dataclass
class LoadedImage:
    """A program loaded into a fresh target memory."""

    program: Program
    memory: TargetMemory
    heap_start: int
    stack_tops: list[int]
    thread_exit_pc: int

    def stack_top(self, context: int) -> int:
        return self.stack_tops[context]


def load_program(
    program: Program,
    *,
    num_contexts: int = 8,
    memory_bytes: int = 16 * 1024 * 1024,
    stack_bytes: int = 256 * 1024,
) -> LoadedImage:
    """Load *program*, returning memory plus per-context stack tops."""
    mem = TargetMemory(memory_bytes)
    mem.write_words(TEXT_BASE, program.encoded_text())
    if program.data:
        mem.write_bytes(DATA_BASE, program.data)
    heap_start = align_up(program.data_end, 64)
    stacks_bottom = memory_bytes - num_contexts * stack_bytes
    if stacks_bottom <= heap_start + 64 * 1024:
        raise ValueError(
            f"memory too small: heap starts at {heap_start:#x}, "
            f"stacks need {num_contexts * stack_bytes:#x} bytes"
        )
    stack_tops = [memory_bytes - i * stack_bytes - 64 for i in range(num_contexts)]
    thread_exit_pc = program.symbols.get("__thread_exit", program.entry)
    # Warm the predecoded closure tables at load time (memoised on the
    # Program, so all cores sharing this image reuse one table).
    predecode_program(program)
    return LoadedImage(
        program=program,
        memory=mem,
        heap_start=heap_start,
        stack_tops=stack_tops,
        thread_exit_pc=thread_exit_pc,
    )
