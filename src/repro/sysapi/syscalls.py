"""SPISA syscall numbering and argument conventions.

SlackSim is a user-level simulator: "when memory management, file system
handling, and other system functions are called by the simulation workloads,
they are emulated outside the simulator" (paper §4).  We reproduce that
structure: an ``ecall`` traps out of the target into host-level emulation.

Convention: syscall number in ``a7`` (x17); integer arguments in ``a0..a2``;
float argument in ``fa0``; integer result in ``a0``.  Blocking calls (locks,
barriers, semaphores, join) may *not* advance the PC — the emulation layer
re-executes or suspends the workload thread, which is how lock contention
becomes visible to the timing model.

The synchronization calls are exactly the paper's Table 1 API::

    Lock:      init_lock()  lock()  unlock()
    Barrier:   init_barrier()  barrier()
    Semaphore: init_sema()  sema_wait()  sema_signal()
"""

from __future__ import annotations

import enum

__all__ = ["Sys", "SYSCALL_COST_CYCLES"]


class Sys(enum.IntEnum):
    """Syscall numbers (value placed in ``a7``)."""

    EXIT = 0           # a0 = status; terminates the workload thread
    PRINT_INT = 1      # a0 = value
    PRINT_FLOAT = 2    # fa0 = value
    PRINT_CHAR = 3     # a0 = codepoint
    SBRK = 4           # a0 = nbytes -> a0 = old program break
    CLOCK = 5          # -> a0 = core-local simulated cycle

    THREAD_SPAWN = 10  # a0 = entry pc, a1 = argument -> a0 = thread id
    THREAD_JOIN = 11   # a0 = thread id (blocking)
    THREAD_ID = 12     # -> a0
    NUM_THREADS = 13   # -> a0

    LOCK_INIT = 20     # a0 = &lock
    LOCK_ACQ = 21      # a0 = &lock (blocking)
    LOCK_REL = 22      # a0 = &lock
    BARRIER_INIT = 23  # a0 = &barrier, a1 = participant count
    BARRIER_WAIT = 24  # a0 = &barrier (blocking)
    SEMA_INIT = 25     # a0 = &sema, a1 = initial value
    SEMA_WAIT = 26     # a0 = &sema (blocking)
    SEMA_SIGNAL = 27   # a0 = &sema


#: Target cycles charged for a non-blocking syscall (trap + emulation).
SYSCALL_COST_CYCLES = 4
