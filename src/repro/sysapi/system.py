"""System emulation: the syscall router shared by every core thread.

SlackSim emulates system functions *outside* the simulator (paper §4).
:class:`SystemEmulation` owns everything a syscall can touch: the
synchronization primitives (Table 1), the workload thread table
(spawn/join/exit), the shared heap break, and the output streams.  Calls
take effect in simulation order; the threaded engine wraps each call in one
host mutex.

Workload threads map 1:1 onto target cores (the paper runs 8 workload
threads on an 8-core target): ``spawn`` claims the lowest idle core.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro._util import align_up
from repro.cpu.arch import ArchState, REG_A0, REG_A7
from repro.sysapi.loader import LoadedImage
from repro.sysapi.sync import SyncAction, SyncEmulation, SyncResult
from repro.sysapi.syscalls import SYSCALL_COST_CYCLES, Sys

__all__ = ["SystemEmulation", "SysAction", "SysResult", "TargetError"]


class TargetError(RuntimeError):
    """The simulated program did something invalid (bad syscall, bad spawn)."""


class SysAction(enum.Enum):
    PROCEED = "proceed"  # advance pc after `cost` cycles
    BLOCK = "block"      # thread waits; a wake order will arrive later
    EXIT = "exit"        # workload thread terminated


@dataclass
class SysResult:
    action: SysAction
    cost: int = SYSCALL_COST_CYCLES
    #: (core, release_ts) wake orders produced by this call.
    wakes: list[tuple[int, int]] = field(default_factory=list)


@dataclass
class _Thread:
    tid: int
    core: int
    state: str = "running"  # running | exited
    joiners: list[int] = field(default_factory=list)  # cores blocked in join
    exit_ts: int = 0


class SystemEmulation:
    """Shared emulation state + syscall dispatch."""

    def __init__(self, image: LoadedImage, num_cores: int) -> None:
        self.image = image
        self.num_cores = num_cores
        self.sync = SyncEmulation()
        self.brk = image.heap_start
        self.heap_limit = min(image.stack_tops) - 64 * 1024
        self.output: list[tuple[int, object]] = []  # (core, value)
        self.threads: dict[int, _Thread] = {0: _Thread(tid=0, core=0)}
        self._core_to_tid: dict[int, int] = {0: 0}
        self._next_tid = 1
        #: engine hook: activate_context(core, pc, arg, ts)
        self.activate_context: Callable[[int, int, int, int], None] | None = None
        self.spawned = 0

    # ----------------------------------------------------------- inspection
    def live_threads(self) -> int:
        return sum(1 for t in self.threads.values() if t.state == "running")

    def output_of(self, core: int) -> list:
        return [v for c, v in self.output if c == core]

    def merged_output(self) -> list:
        return [v for _, v in self.output]

    # -------------------------------------------------------------- dispatch
    def syscall(self, core: int, state: ArchState, ts: int) -> SysResult:
        """Handle the ``ecall`` trapped by *core* at local time *ts*.

        Register convention: number in a7, args a0..a2 / fa0, result a0.
        All registers except a0 are preserved (the compiler relies on this).
        """
        num = state.x[REG_A7]
        a0 = state.x[REG_A0]
        a1 = state.x[11]
        try:
            sys = Sys(num)
        except ValueError:
            raise TargetError(f"core {core}: unknown syscall {num} at pc {state.pc:#x}") from None

        if sys is Sys.EXIT:
            return self._exit(core, ts)
        if sys is Sys.PRINT_INT:
            self.output.append((core, a0))
            return SysResult(SysAction.PROCEED)
        if sys is Sys.PRINT_FLOAT:
            self.output.append((core, state.f[10]))
            return SysResult(SysAction.PROCEED)
        if sys is Sys.PRINT_CHAR:
            self.output.append((core, chr(a0 & 0x10FFFF)))
            return SysResult(SysAction.PROCEED)
        if sys is Sys.SBRK:
            old = self.brk
            new = align_up(old + a0, 64)
            if new >= self.heap_limit:
                raise TargetError(f"core {core}: sbrk({a0}) exhausts the shared heap")
            self.brk = new
            state.set_x(REG_A0, old)
            return SysResult(SysAction.PROCEED)
        if sys is Sys.CLOCK:
            state.set_x(REG_A0, ts)
            return SysResult(SysAction.PROCEED)
        if sys is Sys.THREAD_ID:
            state.set_x(REG_A0, self._core_to_tid.get(core, core))
            return SysResult(SysAction.PROCEED)
        if sys is Sys.NUM_THREADS:
            state.set_x(REG_A0, len(self.threads))
            return SysResult(SysAction.PROCEED)
        if sys is Sys.THREAD_SPAWN:
            return self._spawn(core, state, a0, a1, ts)
        if sys is Sys.THREAD_JOIN:
            return self._join(core, a0, ts)

        # Table 1 synchronization API.
        if sys is Sys.LOCK_INIT:
            return self._from_sync(self.sync.lock_init(a0))
        if sys is Sys.LOCK_ACQ:
            return self._from_sync(self.sync.lock_acquire(a0, core, ts))
        if sys is Sys.LOCK_REL:
            return self._from_sync(self.sync.lock_release(a0, core, ts))
        if sys is Sys.BARRIER_INIT:
            return self._from_sync(self.sync.barrier_init(a0, a1))
        if sys is Sys.BARRIER_WAIT:
            return self._from_sync(self.sync.barrier_wait(a0, core, ts))
        if sys is Sys.SEMA_INIT:
            return self._from_sync(self.sync.sema_init(a0, a1))
        if sys is Sys.SEMA_WAIT:
            return self._from_sync(self.sync.sema_wait(a0, core, ts))
        if sys is Sys.SEMA_SIGNAL:
            return self._from_sync(self.sync.sema_signal(a0, core, ts))
        raise TargetError(f"core {core}: unhandled syscall {sys.name}")  # pragma: no cover

    @staticmethod
    def _from_sync(result: SyncResult) -> SysResult:
        if result.action is SyncAction.BLOCK:
            return SysResult(SysAction.BLOCK)
        return SysResult(SysAction.PROCEED, cost=result.cost, wakes=list(result.wakes))

    # --------------------------------------------------------------- threads
    def _spawn(self, parent_core: int, state: ArchState, entry: int, arg: int, ts: int) -> SysResult:
        free = [c for c in range(self.num_cores) if c not in self._core_to_tid]
        if not free:
            raise TargetError(
                f"spawn: no idle core for a new workload thread "
                f"({len(self.threads)} threads on {self.num_cores} cores)"
            )
        core = free[0]
        tid = self._next_tid
        self._next_tid += 1
        self.threads[tid] = _Thread(tid=tid, core=core)
        self._core_to_tid[core] = tid
        self.spawned += 1
        if self.activate_context is None:
            raise RuntimeError("SystemEmulation.activate_context is not bound")
        self.activate_context(core, entry, arg, ts)
        state.set_x(REG_A0, tid)
        return SysResult(SysAction.PROCEED, cost=SYSCALL_COST_CYCLES * 4)

    def _join(self, core: int, tid: int, ts: int) -> SysResult:
        thread = self.threads.get(tid)
        if thread is None:
            raise TargetError(f"core {core}: join on unknown thread {tid}")
        if thread.state == "exited":
            return SysResult(SysAction.PROCEED)
        thread.joiners.append(core)
        return SysResult(SysAction.BLOCK)

    def _exit(self, core: int, ts: int) -> SysResult:
        tid = self._core_to_tid.get(core)
        if tid is None:
            raise TargetError(f"exit from core {core} with no workload thread")
        thread = self.threads[tid]
        thread.state = "exited"
        thread.exit_ts = ts
        wakes = [(joiner, ts + 2) for joiner in thread.joiners]
        thread.joiners = []
        # The core becomes idle again (excluded from global time).
        del self._core_to_tid[core]
        return SysResult(SysAction.EXIT, wakes=wakes)
