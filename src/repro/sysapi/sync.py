"""Emulation of the paper's Table 1 synchronization API.

Locks, barriers and semaphores are emulated *outside* the simulated target
(paper §4): calls take effect in the order the simulation reaches them
(simulation-time order), which is exactly why slack schemes can reorder
acquisitions relative to cycle-by-cycle simulation and perturb workload
timing (§3.2.3).

All methods return a :class:`SyncResult`:

* ``PROCEED``: the caller continues after ``cost`` target cycles;
* ``BLOCK``: the caller's workload thread must wait; a later call by another
  core produces a wake order ``(core, release_ts)``.

The same object serves both engines; the threaded engine serialises calls
with one host mutex (the emulation layer is atomic by construction).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

__all__ = ["SyncEmulation", "SyncAction", "SyncResult", "SyncStats"]

#: Target cycles for an uncontended acquire / release / signal.
SYNC_OP_COST = 2
#: Target cycles from a release to the woken waiter resuming.
HANDOFF_COST = 2


class SyncAction(enum.Enum):
    PROCEED = "proceed"
    BLOCK = "block"


@dataclass
class SyncResult:
    action: SyncAction
    #: Target cycles charged to the caller (PROCEED only).
    cost: int = SYNC_OP_COST
    #: (core, release_ts) orders for threads this call woke up.
    wakes: list[tuple[int, int]] = field(default_factory=list)


@dataclass
class SyncStats:
    lock_acquires: int = 0
    lock_contended: int = 0
    barrier_episodes: int = 0
    sema_waits: int = 0
    sema_blocked: int = 0


class _Lock:
    __slots__ = ("holder", "waiters")

    def __init__(self) -> None:
        self.holder: int | None = None
        self.waiters: deque[int] = deque()


class _Barrier:
    __slots__ = ("count", "arrived", "generation")

    def __init__(self, count: int) -> None:
        self.count = count
        self.arrived: list[tuple[int, int]] = []  # (core, arrival_ts)
        self.generation = 0


class _Sema:
    __slots__ = ("value", "waiters")

    def __init__(self, value: int) -> None:
        self.value = value
        self.waiters: deque[int] = deque()


class SyncEmulation:
    """Shared synchronization state, keyed by target address."""

    def __init__(self) -> None:
        self._locks: dict[int, _Lock] = {}
        self._barriers: dict[int, _Barrier] = {}
        self._semas: dict[int, _Sema] = {}
        self.stats = SyncStats()

    # ----------------------------------------------------------------- locks
    def lock_init(self, addr: int) -> SyncResult:
        self._locks[addr] = _Lock()
        return SyncResult(SyncAction.PROCEED)

    def _lock(self, addr: int) -> _Lock:
        lock = self._locks.get(addr)
        if lock is None:  # tolerate implicit init (C programs often do)
            lock = self._locks[addr] = _Lock()
        return lock

    def lock_acquire(self, addr: int, core: int, ts: int) -> SyncResult:
        lock = self._lock(addr)
        self.stats.lock_acquires += 1
        if lock.holder is None:
            lock.holder = core
            return SyncResult(SyncAction.PROCEED)
        if lock.holder == core:
            raise RuntimeError(f"core {core} re-acquired lock {addr:#x} (not recursive)")
        self.stats.lock_contended += 1
        lock.waiters.append(core)
        return SyncResult(SyncAction.BLOCK)

    def lock_release(self, addr: int, core: int, ts: int) -> SyncResult:
        lock = self._lock(addr)
        if lock.holder != core:
            raise RuntimeError(f"core {core} released lock {addr:#x} held by {lock.holder}")
        if lock.waiters:
            successor = lock.waiters.popleft()
            lock.holder = successor  # FIFO handoff
            return SyncResult(SyncAction.PROCEED, wakes=[(successor, ts + HANDOFF_COST)])
        lock.holder = None
        return SyncResult(SyncAction.PROCEED)

    # -------------------------------------------------------------- barriers
    def barrier_init(self, addr: int, count: int) -> SyncResult:
        if count < 1:
            raise RuntimeError(f"barrier {addr:#x} initialised with count {count}")
        self._barriers[addr] = _Barrier(count)
        return SyncResult(SyncAction.PROCEED)

    def barrier_wait(self, addr: int, core: int, ts: int) -> SyncResult:
        barrier = self._barriers.get(addr)
        if barrier is None:
            raise RuntimeError(f"barrier_wait on uninitialised barrier {addr:#x}")
        barrier.arrived.append((core, ts))
        if len(barrier.arrived) < barrier.count:
            return SyncResult(SyncAction.BLOCK)
        # Last arriver: release everyone else at its arrival time.
        release_ts = ts + HANDOFF_COST
        wakes = [(c, release_ts) for c, _ in barrier.arrived if c != core]
        barrier.arrived = []
        barrier.generation += 1
        self.stats.barrier_episodes += 1
        return SyncResult(SyncAction.PROCEED, wakes=wakes)

    # ------------------------------------------------------------ semaphores
    def sema_init(self, addr: int, value: int) -> SyncResult:
        if value < 0:
            raise RuntimeError(f"semaphore {addr:#x} initialised with value {value}")
        self._semas[addr] = _Sema(value)
        return SyncResult(SyncAction.PROCEED)

    def _sema(self, addr: int) -> _Sema:
        sema = self._semas.get(addr)
        if sema is None:
            raise RuntimeError(f"operation on uninitialised semaphore {addr:#x}")
        return sema

    def sema_wait(self, addr: int, core: int, ts: int) -> SyncResult:
        sema = self._sema(addr)
        self.stats.sema_waits += 1
        if sema.value > 0:
            sema.value -= 1
            return SyncResult(SyncAction.PROCEED)
        self.stats.sema_blocked += 1
        sema.waiters.append(core)
        return SyncResult(SyncAction.BLOCK)

    def sema_signal(self, addr: int, core: int, ts: int) -> SyncResult:
        sema = self._sema(addr)
        if sema.waiters:
            successor = sema.waiters.popleft()
            return SyncResult(SyncAction.PROCEED, wakes=[(successor, ts + HANDOFF_COST)])
        sema.value += 1
        return SyncResult(SyncAction.PROCEED)

    # ------------------------------------------------------------ inspection
    def lock_holder(self, addr: int) -> int | None:
        lock = self._locks.get(addr)
        return lock.holder if lock else None

    def barrier_pending(self, addr: int) -> int:
        barrier = self._barriers.get(addr)
        return len(barrier.arrived) if barrier else 0
