"""User-level system emulation (paper §4): syscalls trapped out of the
target and emulated outside the simulator — Table 1 synchronization
primitives, workload threads, heap and I/O."""

from repro.sysapi.loader import LoadedImage, load_program
from repro.sysapi.sync import SyncAction, SyncEmulation, SyncResult
from repro.sysapi.syscalls import Sys
from repro.sysapi.system import SysAction, SysResult, SystemEmulation, TargetError

__all__ = [
    "LoadedImage",
    "load_program",
    "SyncAction",
    "SyncEmulation",
    "SyncResult",
    "Sys",
    "SysAction",
    "SysResult",
    "SystemEmulation",
    "TargetError",
]
