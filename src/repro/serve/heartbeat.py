"""Per-job progress heartbeats: the watchdog story for worker processes.

The threaded engine's watchdog (DESIGN.md §8) reads live engine state to
tell "slow but progressing" from "hung" — it can, because it shares the
process.  A serve worker runs its engine in a *separate* process, so the
supervisor needs the same signal across a process boundary: this module
writes it through the filesystem.

A :class:`HeartbeatWriter` is a daemon thread inside the worker that
samples the engine's progress marker — the same tuple the threaded
watchdog uses: ``(global_time, Σ committed, Σ local clocks)`` — every
``interval`` wall seconds and publishes it atomically to a per-job
heartbeat file.  The supervisor (:mod:`repro.serve.supervisor`) reads the
file and only declares a job *hung* when the progress component stops
changing for the hang window; a slow simulation that keeps advancing its
clocks is left alone no matter how long it runs.  Wall-clock job timeouts
remain available as a separate, harder cap.

The sampler never touches the engine's hot loop: it reads counters the
run loop already maintains on live objects, from a thread that wakes a
few times per second.  An engine with ``SimConfig.heartbeat_path`` unset
pays nothing at all.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro._util import atomic_write_text

__all__ = ["HeartbeatWriter", "engine_progress", "read_heartbeat"]


def engine_progress(engine) -> list:
    """The engine's progress marker as a JSON-ready list.

    Mirrors ``ThreadedEngine._progress_marker``: global time alone misses a
    run-ahead core advancing against a straggler, so committed instructions
    and the summed local clocks are folded in.  Reads are racy against the
    running loop but monotone counters only ever under-report — safe for a
    "did anything change" signal.
    """
    try:
        cores = engine.cores or []
        return [
            int(engine.manager.global_time),
            int(sum(ct.total_committed for ct in cores)),
            int(sum(ct.local_time for ct in cores)),
        ]
    except Exception:
        # Mid-construction/teardown state: report "no reading" rather than
        # kill the beat thread — the next sample will see settled state.
        return []


class HeartbeatWriter:
    """Publish a progress marker to *path* every *interval* seconds.

    ``marker`` is any zero-arg callable returning a JSON-serialisable
    progress value; beats are written with the atomic-write primitive so a
    reader never sees a torn file, and a final beat is flushed on
    :meth:`stop` so the file always reflects the job's last known state.
    """

    def __init__(self, path: str, marker, interval: float = 1.0) -> None:
        self.path = str(path)
        self.marker = marker
        self.interval = max(float(interval), 0.05)
        self.beats = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def beat(self) -> None:
        """Write one heartbeat now (also called from the sampler thread)."""
        self.beats += 1
        payload = {
            "pid": os.getpid(),
            "wall": time.time(),
            "beats": self.beats,
            "progress": self.marker(),
        }
        try:
            atomic_write_text(self.path, json.dumps(payload) + "\n")
        except OSError:
            pass  # a vanished serve dir must not take the job down

    def start(self) -> "HeartbeatWriter":
        self.beat()  # first beat immediately: the file exists once we run
        self._thread = threading.Thread(
            target=self._loop, name="heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.beat()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.beat()  # final state: the completed job's last marker


def read_heartbeat(path) -> dict | None:
    """The last beat published to *path*, or ``None`` (absent/torn).

    A torn read cannot happen under the atomic writer, but the supervisor
    also survives hand-edited or half-provisioned files: anything
    unparseable reads as "no heartbeat yet".
    """
    try:
        with open(path) as fh:
            beat = json.load(fh)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    return beat if isinstance(beat, dict) else None
