"""Durable job queue: sqlite under ``<serve_dir>/queue.sqlite``.

The persistence half of the serve subsystem (DESIGN.md §13).  Every job the
daemon has ever been asked to run is one row keyed by its content-addressed
``job_key`` (:mod:`repro.jobs.spec`), moving through the state machine::

    QUEUED ──lease──▶ LEASED ──start──▶ RUNNING ──complete──▶ DONE
      ▲                  │                  │
      │   requeue (attempts ≤ budget)       │ fail (job error: no retry)
      └──────────────────┴──────────────────┤
                                            ▼
              requeue (attempts > budget) ▶ DEAD        FAILED

``DONE``/``FAILED``/``DEAD`` are terminal; ``retry`` is the only
transition out of a terminal failure state and it re-arms the budget.

**Idempotent submission.**  ``submit`` upserts by ``job_key``: a
resubmitted job *attaches* to the existing row — in-flight, queued, or
already finished — instead of enqueueing a duplicate.  The result itself
lives in the sealed :class:`~repro.jobs.store.ResultStore`; the row is
pure scheduling state, which is why attaching is always safe.

**Leases and fencing.**  A lease hands a job to one worker for a bounded
wall-clock TTL and mints a fresh ``lease_id``; every downstream transition
(start/renew/complete/fail/requeue) must present that token.  A worker
whose lease expired and was re-issued can no longer affect the job — its
stale token fences it out — so SIGKILLed, hung, *and* zombie workers all
collapse to the same safe story: the lease lapses, the job requeues with
backoff, and only the current leaseholder's verdict counts.

**Crash-safe restart.**  All writes are single sqlite transactions in WAL
mode; a daemon killed at any instant restarts with a consistent queue.
``recover()`` then sweeps every LEASED/RUNNING row back to QUEUED —
orphaned work from the previous incarnation — without charging the retry
budget (the daemon dying is not the job's fault; only worker-side
failures consume attempts).

**Determinism.**  Every mutating method takes ``now`` explicitly (tests
and the property machine drive a logical clock); the queue itself never
reads the wall clock except as a default argument.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid
from pathlib import Path

__all__ = ["JobQueue", "QueueError", "STATES", "TERMINAL"]

#: Every legal state, in lifecycle order.
STATES = ("QUEUED", "LEASED", "RUNNING", "DONE", "FAILED", "DEAD")

#: States no lease can act on any more.
TERMINAL = frozenset({"DONE", "FAILED", "DEAD"})

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_key      TEXT PRIMARY KEY,
    spec         TEXT NOT NULL,          -- canonical JSON of the JobSpec
    state        TEXT NOT NULL,
    attempts     INTEGER NOT NULL DEFAULT 0,
    max_retries  INTEGER NOT NULL,
    submitted_at REAL NOT NULL,
    updated_at   REAL NOT NULL,
    not_before   REAL NOT NULL DEFAULT 0,  -- earliest re-lease time (backoff)
    lease_id     TEXT,
    lease_expiry REAL,
    worker       TEXT,
    error        TEXT,
    cancel_requested INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, not_before);
"""


class QueueError(RuntimeError):
    """An illegal queue transition (bad state, stale lease, unknown key)."""


class JobQueue:
    """The durable queue (one sqlite file; safe for many daemon threads).

    One connection guarded by a lock: the daemon is the only *process*
    writing (workers never touch the queue — the supervisor transitions on
    their behalf), but its HTTP handler threads submit concurrently with
    the supervisor loop, so every operation is one locked transaction.
    """

    def __init__(self, path: "Path | str") -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._db = sqlite3.connect(
            str(self.path), check_same_thread=False, isolation_level=None
        )
        self._db.row_factory = sqlite3.Row
        with self._lock:
            self._db.execute("PRAGMA journal_mode=WAL")
            self._db.execute("PRAGMA synchronous=NORMAL")
            self._db.executescript(_SCHEMA)

    def close(self) -> None:
        with self._lock:
            self._db.close()

    # ------------------------------------------------------------ helpers
    def _row(self, key: str) -> "sqlite3.Row | None":
        return self._db.execute(
            "SELECT * FROM jobs WHERE job_key = ?", (key,)
        ).fetchone()

    def _require(self, key: str) -> sqlite3.Row:
        row = self._row(key)
        if row is None:
            raise QueueError(f"unknown job {key}")
        return row

    def _fenced(self, key: str, lease_id: str) -> sqlite3.Row:
        """The row for *key* iff *lease_id* is its current lease."""
        row = self._require(key)
        if row["lease_id"] != lease_id:
            raise QueueError(
                f"stale lease for {key[:16]}: held {row['lease_id']}, "
                f"presented {lease_id}"
            )
        return row

    @staticmethod
    def job_view(row: sqlite3.Row) -> dict:
        """A row as the plain dict the API serves (spec parsed back)."""
        d = dict(row)
        try:
            d["spec"] = json.loads(d["spec"])
        except (TypeError, json.JSONDecodeError):
            pass
        d["cancel_requested"] = bool(d["cancel_requested"])
        return d

    # ---------------------------------------------------------- lifecycle
    def submit(
        self,
        key: str,
        spec_json: str,
        *,
        max_retries: int = 2,
        state: str = "QUEUED",
        now: "float | None" = None,
    ) -> tuple[dict, bool]:
        """Idempotent enqueue: ``(job_view, created)``.

        An existing row in *any* state attaches (``created=False``) — the
        caller polls/fetches the one canonical evaluation.  *state* lets
        the daemon insert straight to DONE when the result store already
        holds the record (a submit that is a pure cache hit never queues).
        """
        now = time.time() if now is None else now
        if state not in ("QUEUED", "DONE"):
            raise QueueError(f"submit cannot insert state {state}")
        with self._lock:
            row = self._row(key)
            if row is not None:
                return self.job_view(row), False
            self._db.execute(
                "INSERT INTO jobs (job_key, spec, state, attempts, max_retries,"
                " submitted_at, updated_at, not_before)"
                " VALUES (?, ?, ?, 0, ?, ?, ?, 0)",
                (key, spec_json, state, int(max_retries), now, now),
            )
            return self.job_view(self._require(key)), True

    def lease(
        self,
        worker: str,
        *,
        ttl: float = 30.0,
        now: "float | None" = None,
    ) -> "dict | None":
        """Atomically claim the oldest due QUEUED job for *worker*.

        Returns the job view (with the fresh ``lease_id``) or ``None`` when
        nothing is due — jobs parked behind a backoff ``not_before`` are
        invisible until their delay elapses.
        """
        now = time.time() if now is None else now
        with self._lock:
            row = self._db.execute(
                "SELECT * FROM jobs WHERE state = 'QUEUED' AND not_before <= ?"
                " ORDER BY rowid LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                return None
            lease_id = uuid.uuid4().hex
            self._db.execute(
                "UPDATE jobs SET state='LEASED', lease_id=?, lease_expiry=?,"
                " worker=?, updated_at=? WHERE job_key=?",
                (lease_id, now + ttl, worker, now, row["job_key"]),
            )
            return self.job_view(self._require(row["job_key"]))

    def start(self, key: str, lease_id: str, *, now: "float | None" = None) -> None:
        """LEASED → RUNNING (the worker actually began executing)."""
        now = time.time() if now is None else now
        with self._lock:
            row = self._fenced(key, lease_id)
            if row["state"] != "LEASED":
                raise QueueError(f"start from {row['state']} (want LEASED)")
            self._db.execute(
                "UPDATE jobs SET state='RUNNING', updated_at=? WHERE job_key=?",
                (now, key),
            )

    def renew(
        self, key: str, lease_id: str, *, ttl: float = 30.0, now: "float | None" = None
    ) -> None:
        """Extend a live lease (heartbeat showed progress).

        The expiry only ever moves forward — a renew computed against an
        older ``now`` cannot shorten the lease (expiry monotonicity, pinned
        by the property tests).
        """
        now = time.time() if now is None else now
        with self._lock:
            row = self._fenced(key, lease_id)
            if row["state"] not in ("LEASED", "RUNNING"):
                raise QueueError(f"renew from terminal state {row['state']}")
            self._db.execute(
                "UPDATE jobs SET lease_expiry=MAX(lease_expiry, ?), updated_at=?"
                " WHERE job_key=?",
                (now + ttl, now, key),
            )

    def complete(self, key: str, lease_id: str, *, now: "float | None" = None) -> None:
        """RUNNING/LEASED → DONE.  Fenced: only the live leaseholder lands
        a completion, so a job can never be double-completed."""
        now = time.time() if now is None else now
        with self._lock:
            row = self._fenced(key, lease_id)
            if row["state"] not in ("LEASED", "RUNNING"):
                raise QueueError(f"complete from {row['state']}")
            self._db.execute(
                "UPDATE jobs SET state='DONE', lease_id=NULL, lease_expiry=NULL,"
                " error=NULL, updated_at=? WHERE job_key=?",
                (now, key),
            )

    def fail(
        self, key: str, lease_id: str, error: str, *, now: "float | None" = None
    ) -> None:
        """RUNNING/LEASED → FAILED: the *job itself* raised.

        Job errors are deterministic (same spec ⇒ same exception), so they
        are never retried — mirroring the sweep runner's discipline that
        point errors propagate while only lost workers retry.
        """
        now = time.time() if now is None else now
        with self._lock:
            row = self._fenced(key, lease_id)
            if row["state"] not in ("LEASED", "RUNNING"):
                raise QueueError(f"fail from {row['state']}")
            self._db.execute(
                "UPDATE jobs SET state='FAILED', lease_id=NULL, lease_expiry=NULL,"
                " error=?, updated_at=? WHERE job_key=?",
                (error, now, key),
            )

    def requeue(
        self,
        key: str,
        lease_id: str,
        error: str,
        *,
        delay: float = 0.0,
        charge: bool = True,
        now: "float | None" = None,
    ) -> str:
        """The worker died (SIGKILL, hang, timeout): retry or dead-letter.

        Charges one attempt (unless ``charge=False`` — daemon-restart
        recovery) and requeues with ``not_before = now + delay`` (the
        supervisor passes a :class:`repro._util.Backoff` delay).  A job
        whose attempts exceed its budget lands in ``DEAD`` with the
        captured *error* — never lost, never retried again without an
        explicit ``retry``.  Returns the resulting state.
        """
        now = time.time() if now is None else now
        with self._lock:
            row = self._fenced(key, lease_id)
            if row["state"] not in ("LEASED", "RUNNING"):
                raise QueueError(f"requeue from {row['state']}")
            attempts = row["attempts"] + (1 if charge else 0)
            if attempts > row["max_retries"]:
                self._db.execute(
                    "UPDATE jobs SET state='DEAD', attempts=?, lease_id=NULL,"
                    " lease_expiry=NULL, error=?, updated_at=? WHERE job_key=?",
                    (attempts, error, now, key),
                )
                return "DEAD"
            self._db.execute(
                "UPDATE jobs SET state='QUEUED', attempts=?, lease_id=NULL,"
                " lease_expiry=NULL, worker=NULL, error=?, not_before=?,"
                " updated_at=? WHERE job_key=?",
                (attempts, error, now + delay, now, key),
            )
            return "QUEUED"

    def expire(self, *, delay: float = 0.0, now: "float | None" = None) -> list[str]:
        """Requeue (or dead-letter) every job whose lease lapsed.

        The safety net under the supervisor's direct worker tracking: even
        if the supervisor loses sight of a worker, no lease outlives its
        TTL.  Charges an attempt — an expired lease is a worker-side
        failure.  Returns the affected keys.
        """
        now = time.time() if now is None else now
        with self._lock:
            rows = self._db.execute(
                "SELECT job_key, lease_id FROM jobs WHERE state IN"
                " ('LEASED','RUNNING') AND lease_expiry < ?",
                (now,),
            ).fetchall()
        expired = []
        for row in rows:
            try:
                self.requeue(
                    row["job_key"],
                    row["lease_id"],
                    "lease expired (worker lost)",
                    delay=delay,
                    now=now,
                )
            except QueueError:
                continue  # completed/re-leased between the scan and now
            expired.append(row["job_key"])
        return expired

    def recover(self, *, now: "float | None" = None) -> list[str]:
        """Daemon restart: re-queue every orphaned LEASED/RUNNING job.

        The previous incarnation's workers are gone with it, so every
        in-flight lease is void.  No attempt is charged — the daemon dying
        is not the job's fault — and ``not_before`` resets so recovered
        work runs immediately.  Returns the recovered keys.
        """
        now = time.time() if now is None else now
        with self._lock:
            rows = self._db.execute(
                "SELECT job_key FROM jobs WHERE state IN ('LEASED','RUNNING')"
            ).fetchall()
            keys = [row["job_key"] for row in rows]
            self._db.execute(
                "UPDATE jobs SET state='QUEUED', lease_id=NULL, lease_expiry=NULL,"
                " worker=NULL, not_before=0, updated_at=?"
                " WHERE state IN ('LEASED','RUNNING')",
                (now,),
            )
        return keys

    def request_cancel(self, key: str, *, now: "float | None" = None) -> str:
        """Cancel *key*: QUEUED cancels immediately (→ FAILED "cancelled");
        LEASED/RUNNING is flagged and the supervisor kills the worker at its
        next tick; terminal states are left untouched.  Returns the state
        after the request."""
        now = time.time() if now is None else now
        with self._lock:
            row = self._require(key)
            if row["state"] == "QUEUED":
                self._db.execute(
                    "UPDATE jobs SET state='FAILED', error='cancelled',"
                    " updated_at=? WHERE job_key=?",
                    (now, key),
                )
                return "FAILED"
            if row["state"] in ("LEASED", "RUNNING"):
                self._db.execute(
                    "UPDATE jobs SET cancel_requested=1, updated_at=?"
                    " WHERE job_key=?",
                    (now, key),
                )
            return self._require(key)["state"]

    def retry(self, key: str, *, now: "float | None" = None) -> dict:
        """FAILED/DEAD → QUEUED with a fresh attempt budget (operator
        action: ``repro jobs retry``)."""
        now = time.time() if now is None else now
        with self._lock:
            row = self._require(key)
            if row["state"] not in ("FAILED", "DEAD"):
                raise QueueError(f"retry from {row['state']} (want FAILED|DEAD)")
            self._db.execute(
                "UPDATE jobs SET state='QUEUED', attempts=0, error=NULL,"
                " not_before=0, cancel_requested=0, updated_at=? WHERE job_key=?",
                (now, key),
            )
            return self.job_view(self._require(key))

    # ----------------------------------------------------------- queries
    def get(self, key: str) -> "dict | None":
        with self._lock:
            row = self._row(key)
        return self.job_view(row) if row is not None else None

    def jobs(self, states: "tuple | None" = None) -> list[dict]:
        """All jobs (optionally filtered), in submission order."""
        with self._lock:
            if states:
                marks = ",".join("?" for _ in states)
                rows = self._db.execute(
                    f"SELECT * FROM jobs WHERE state IN ({marks}) ORDER BY rowid",
                    tuple(states),
                ).fetchall()
            else:
                rows = self._db.execute(
                    "SELECT * FROM jobs ORDER BY rowid"
                ).fetchall()
        return [self.job_view(row) for row in rows]

    def cancel_requests(self) -> list[dict]:
        """Live jobs flagged for cancellation (the supervisor polls this)."""
        with self._lock:
            rows = self._db.execute(
                "SELECT * FROM jobs WHERE cancel_requested=1"
                " AND state IN ('LEASED','RUNNING')"
            ).fetchall()
        return [self.job_view(row) for row in rows]

    def counts(self) -> dict:
        """``{state: row count}`` over every state (zeroes included)."""
        with self._lock:
            rows = self._db.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        counts = dict.fromkeys(STATES, 0)
        counts.update({row["state"]: row["n"] for row in rows})
        return counts

    def depth(self) -> int:
        """Open (non-terminal) jobs — the admission-control measure."""
        counts = self.counts()
        return sum(n for state, n in counts.items() if state not in TERMINAL)
