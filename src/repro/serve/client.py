"""Client for a running ``repro serve`` daemon.

``ServeClient`` wraps the daemon's JSON API in the five calls the serve
contract promises — submit / poll / fetch / cancel / status — plus the
operator verbs (retry, jobs, drain) the ``repro jobs`` CLI exposes.  It
discovers the daemon through the endpoint file the daemon publishes
(``<serve_dir>/endpoint.json``), so a client needs nothing but the shared
cache directory.

Error model: HTTP transport problems raise :class:`ServeUnavailable`
(connection refused, daemon gone); API-level refusals raise
:class:`ServeRejected` carrying the status code — ``429`` (queue full,
with the daemon's ``Retry-After`` in :attr:`ServeRejected.retry_after`),
``503`` (draining), ``404``/``409`` (unknown job / failed job).  Connects
retry briefly with the shared backoff helper so a client racing a
just-started daemon wins without hand-rolled sleeps.
"""

from __future__ import annotations

import http.client
import json
import time
from pathlib import Path

from repro._util import Backoff, retry_with_backoff
from repro.serve.daemon import default_serve_dir, endpoint_path

__all__ = ["ServeClient", "ServeError", "ServeRejected", "ServeUnavailable"]


class ServeError(RuntimeError):
    """Base class for client-side serve failures."""


class ServeUnavailable(ServeError):
    """No daemon reachable (no endpoint file, connection refused, died)."""


class ServeRejected(ServeError):
    """The daemon answered with a refusal status."""

    def __init__(self, status: int, payload: dict) -> None:
        self.status = status
        self.payload = payload
        self.retry_after = payload.get("retry_after")
        super().__init__(
            f"HTTP {status}: {payload.get('error', json.dumps(payload, sort_keys=True))}"
        )


class ServeClient:
    """Talk to the daemon serving *serve_dir* (default: the shared cache)."""

    def __init__(
        self,
        serve_dir: "Path | str | None" = None,
        *,
        host: "str | None" = None,
        port: "int | None" = None,
        timeout: float = 30.0,
    ) -> None:
        if host is not None and port is not None:
            self.host, self.port = host, int(port)
        else:
            serve_dir = serve_dir if serve_dir is not None else default_serve_dir()
            if serve_dir is None:
                raise ServeUnavailable(
                    "no serve endpoint: caching is disabled and no host/port given"
                )
            try:
                endpoint = json.loads(endpoint_path(serve_dir).read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise ServeUnavailable(
                    f"no daemon endpoint under {serve_dir} — is `repro serve` running?"
                ) from exc
            self.host, self.port = endpoint["host"], int(endpoint["port"])
        self.timeout = timeout

    # ------------------------------------------------------------ transport
    def _request(self, method: str, path: str, body: "dict | None" = None) -> dict:
        def attempt() -> dict:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                payload = (
                    json.dumps(body, sort_keys=True).encode()
                    if body is not None
                    else None
                )
                conn.request(
                    method,
                    path,
                    body=payload,
                    headers={"Content-Type": "application/json"} if payload else {},
                )
                response = conn.getresponse()
                raw = response.read()
                try:
                    data = json.loads(raw) if raw else {}
                except json.JSONDecodeError:
                    data = {"error": raw.decode(errors="replace")}
                if response.status >= 400:
                    if isinstance(data, dict):
                        data.setdefault(
                            "retry_after", response.headers.get("Retry-After")
                        )
                    raise ServeRejected(response.status, data)
                return data
            finally:
                conn.close()

        try:
            # A daemon that just started (or is momentarily saturated at the
            # accept queue) deserves a couple of quick retries; anything
            # beyond that is genuinely unavailable.
            return retry_with_backoff(
                attempt,
                retries=3,
                retry_on=(ConnectionRefusedError, ConnectionResetError),
                backoff=Backoff(base=0.1, cap=1.0),
            )
        except (ConnectionError, OSError, http.client.HTTPException) as exc:
            raise ServeUnavailable(
                f"daemon at {self.host}:{self.port} unreachable: {exc}"
            ) from exc

    # ------------------------------------------------------------- the API
    def submit(self, spec_dict: dict, *, max_retries: "int | None" = None) -> dict:
        body: dict = {"spec": spec_dict}
        if max_retries is not None:
            body["max_retries"] = max_retries
        return self._request("POST", "/api/jobs", body)

    def poll(self, key: str) -> dict:
        return self._request("GET", f"/api/jobs/{key}")["job"]

    def fetch(self, key: str) -> dict:
        """The sealed result record for a DONE job."""
        return self._request("GET", f"/api/jobs/{key}/result")["record"]

    def cancel(self, key: str) -> dict:
        return self._request("POST", f"/api/jobs/{key}/cancel")

    def retry(self, key: str) -> dict:
        return self._request("POST", f"/api/jobs/{key}/retry")["job"]

    def jobs(self) -> list[dict]:
        return self._request("GET", "/api/jobs")["jobs"]

    def status(self) -> dict:
        return self._request("GET", "/api/status")

    def drain(self) -> dict:
        return self._request("POST", "/api/drain")

    # ------------------------------------------------------------ patterns
    def submit_and_wait(
        self,
        spec_dict: dict,
        *,
        timeout: float = 300.0,
        poll_interval: float = 0.1,
        max_retries: "int | None" = None,
    ) -> dict:
        """Submit, poll to a terminal state, and return the final job view.

        Honours the daemon's backpressure: a 429 sleeps the advertised
        ``Retry-After`` (or one second) and resubmits — the client is the
        one that waits, the queue never silently grows.
        """
        deadline = time.time() + timeout
        while True:
            try:
                outcome = self.submit(spec_dict, max_retries=max_retries)
                break
            except ServeRejected as exc:
                if exc.status != 429 or time.time() >= deadline:
                    raise
                time.sleep(float(exc.retry_after or 1))
        key = outcome["job_key"]
        while time.time() < deadline:
            job = self.poll(key)
            if job["state"] in ("DONE", "FAILED", "DEAD"):
                return job
            time.sleep(poll_interval)
        raise ServeError(f"job {key[:16]} still {job['state']} after {timeout:.0f}s")
