"""``repro serve``: the simulation-as-a-service daemon.

A long-running process multiplexing many clients onto a supervised worker
pool (DESIGN.md §13).  Three layers, each owned by this module's
:class:`ServeDaemon`:

* an HTTP front-end (:class:`ThreadingHTTPServer` on loopback) exposing
  submit / poll / fetch / cancel / retry / status over JSON;
* the durable :class:`~repro.serve.queue.JobQueue` (sqlite under
  ``<serve_dir>/queue.sqlite``);
* the :class:`~repro.serve.supervisor.Supervisor` pumping jobs from the
  queue through worker processes into the sealed
  :class:`~repro.jobs.store.ResultStore`.

**Admission control.**  Submissions beyond ``max_depth`` open jobs are
refused with ``429`` and a ``Retry-After`` header — explicit backpressure,
never a silent drop; a client that keeps the advertised pace is never
refused twice in a row.  While draining, every submit gets ``503``.

**Idempotent submission.**  The daemon computes the job's content-addressed
key server-side.  A key already finished in the result store inserts
straight to ``DONE`` (a submit that is a cache hit never queues); a key
already queued/leased/running *attaches* to the in-flight row.  Either
way the response carries the key, the state, and ``created``.

**Crash-safe restart.**  All durable state lives in the sqlite queue and
the sealed store, both written atomically/transactionally.  Startup runs
``queue.recover()``: every job the previous incarnation left leased or
running is re-queued (no retry budget charged) and completes under the
new pool — a SIGKILLed daemon loses nothing but in-flight wall time.

**Graceful drain.**  SIGTERM/SIGINT flip the daemon into draining: the
listener refuses new work, leased jobs run to completion (bounded by
``drain_timeout``), the queue is left consistent, and the endpoint file
is removed.  Crash and drain converge on the same durable state by
construction — recovery is one code path, not two.

API (all JSON)::

    POST /api/jobs                   {"spec": {...}, "max_retries": 2}
    GET  /api/jobs                   list every job row
    GET  /api/jobs/<key>             one job row (404 unknown)
    GET  /api/jobs/<key>/result      the sealed result record (409 failed,
                                     404 not finished)
    POST /api/jobs/<key>/cancel      cancel queued/running work
    POST /api/jobs/<key>/retry       re-arm a FAILED/DEAD job
    GET  /api/status                 queue counts, workers, telemetry
    POST /api/drain                  begin a graceful drain (SIGTERM twin)

The bound endpoint is published atomically to ``<serve_dir>/endpoint.json``
(host, port, pid) so clients discover a daemon by cache directory alone.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import repro
from repro._util import atomic_write_text
from repro.jobs import ResultStore
from repro.jobs.spec import job_key, spec_from_dict, spec_to_dict
from repro.jobs.store import TELEMETRY as STORE_TELEMETRY
from repro.serve.queue import JobQueue, QueueError
from repro.serve.supervisor import Supervisor

__all__ = ["ServeDaemon", "default_serve_dir", "endpoint_path"]


def default_serve_dir() -> "Path | None":
    """``<cache root>/serve``, or ``None`` when caching is disabled.

    The serve daemon's durable state (queue, heartbeats, endpoint) lives
    beside the stores it feeds — one cache root to relocate or wipe.
    """
    from repro.lang.compiler import cache_dir

    root = cache_dir()
    return root / "serve" if root is not None else None


def endpoint_path(serve_dir: "Path | str") -> Path:
    return Path(serve_dir) / "endpoint.json"


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the daemon; one instance per request."""

    daemon_ref: "ServeDaemon"  # set by the server factory
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------ plumbing
    def log_message(self, fmt, *args):  # quiet by default
        if self.daemon_ref.verbose:
            super().log_message(fmt, *args)

    def _reply(self, status: int, payload: dict, headers: "dict | None" = None):
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw or b"{}")
        except json.JSONDecodeError:
            return {}
        return payload if isinstance(payload, dict) else {}

    # ------------------------------------------------------------- routing
    def do_GET(self):  # noqa: N802 (http.server API)
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        daemon = self.daemon_ref
        if parts == ["api", "status"]:
            return self._reply(200, daemon.status_view())
        if parts == ["api", "jobs"]:
            return self._reply(200, {"jobs": daemon.queue.jobs()})
        if len(parts) == 3 and parts[:2] == ["api", "jobs"]:
            job = daemon.queue.get(parts[2])
            if job is None:
                return self._reply(404, {"error": f"unknown job {parts[2]}"})
            return self._reply(200, {"job": job})
        if len(parts) == 4 and parts[:2] == ["api", "jobs"] and parts[3] == "result":
            return self._result(parts[2])
        return self._reply(404, {"error": f"no route {self.path}"})

    def do_POST(self):  # noqa: N802
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        daemon = self.daemon_ref
        if parts == ["api", "jobs"]:
            return self._submit()
        if parts == ["api", "drain"]:
            daemon.request_stop("drain requested over the API")
            return self._reply(202, {"draining": True})
        if len(parts) == 4 and parts[:2] == ["api", "jobs"]:
            key, action = parts[2], parts[3]
            try:
                if action == "cancel":
                    state = daemon.queue.request_cancel(key)
                    return self._reply(200, {"job_key": key, "state": state})
                if action == "retry":
                    job = daemon.queue.retry(key)
                    return self._reply(200, {"job": job})
            except QueueError as exc:
                return self._reply(409, {"error": str(exc)})
        return self._reply(404, {"error": f"no route {self.path}"})

    # ------------------------------------------------------------ handlers
    def _submit(self):
        daemon = self.daemon_ref
        if daemon.stopping:
            return self._reply(
                503, {"error": "daemon is draining"}, {"Retry-After": "5"}
            )
        body = self._body()
        spec_dict = body.get("spec")
        if not isinstance(spec_dict, dict):
            return self._reply(400, {"error": "body must carry a spec object"})
        try:
            outcome = daemon.submit(
                spec_dict, max_retries=int(body.get("max_retries", daemon.max_retries))
            )
        except OverflowError:
            # Queue full: explicit backpressure, never a silent drop.
            return self._reply(
                429,
                {
                    "error": "queue full",
                    "depth": daemon.queue.depth(),
                    "max_depth": daemon.max_depth,
                },
                {"Retry-After": str(daemon.retry_after)},
            )
        except Exception as exc:  # bad spec (unknown workload, bad field)
            return self._reply(400, {"error": f"{type(exc).__name__}: {exc}"})
        return self._reply(200, outcome)

    def _result(self, key: str):
        daemon = self.daemon_ref
        job = daemon.queue.get(key)
        if job is None:
            return self._reply(404, {"error": f"unknown job {key}"})
        if job["state"] in ("FAILED", "DEAD"):
            return self._reply(
                409,
                {"job_key": key, "state": job["state"], "error": job["error"]},
            )
        record = daemon.store.load(key) if daemon.store is not None else None
        if job["state"] != "DONE" or record is None:
            return self._reply(
                404,
                {"job_key": key, "state": job["state"], "error": "not finished"},
            )
        return self._reply(200, {"job_key": key, "record": record})


class ServeDaemon:
    """The serve process: queue + supervisor + HTTP front-end."""

    def __init__(
        self,
        serve_dir: "Path | str | None" = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_depth: int = 64,
        max_retries: int = 2,
        lease_ttl: float = 30.0,
        job_timeout: float = 0.0,
        hang_timeout: float = 60.0,
        drain_timeout: float = 60.0,
        retry_after: int = 1,
        seed: "int | None" = None,
        verbose: bool = False,
    ) -> None:
        if serve_dir is None:
            serve_dir = default_serve_dir()
        if serve_dir is None:
            raise RuntimeError(
                "repro serve needs a durable directory: set REPRO_CACHE_DIR "
                "(caching is currently disabled) or pass --serve-dir"
            )
        self.serve_dir = Path(serve_dir)
        self.serve_dir.mkdir(parents=True, exist_ok=True)
        self.max_depth = int(max_depth)
        self.max_retries = int(max_retries)
        self.drain_timeout = float(drain_timeout)
        self.retry_after = int(retry_after)
        self.verbose = verbose
        self.started_wall = time.time()
        self.stopping = False
        self.stop_reason: str | None = None
        self._stop_event = threading.Event()

        self.store = ResultStore.default()
        self.queue = JobQueue(self.serve_dir / "queue.sqlite")
        #: Orphans of the previous incarnation, re-queued before anything
        #: else happens — resume-on-restart is unconditional.
        self.recovered = self.queue.recover()
        self.supervisor = Supervisor(
            self.queue,
            self.serve_dir,
            workers=workers,
            lease_ttl=lease_ttl,
            job_timeout=job_timeout,
            hang_timeout=hang_timeout,
            seed=seed,
        )

        handler = type("Handler", (_Handler,), {"daemon_ref": self})
        self.server = ThreadingHTTPServer((host, port), handler)
        self.server.daemon_threads = True
        self.host, self.port = self.server.server_address[:2]
        atomic_write_text(
            endpoint_path(self.serve_dir),
            json.dumps(
                {
                    "host": self.host,
                    "port": self.port,
                    "pid": os.getpid(),
                    "started_unix": self.started_wall,
                    "version": repro.__version__,
                },
                sort_keys=True,
            )
            + "\n",
        )

    # ----------------------------------------------------------- lifecycle
    def request_stop(self, reason: str) -> None:
        """Begin a graceful drain (idempotent; signal-handler safe)."""
        self.stopping = True
        self.stop_reason = reason
        self._stop_event.set()

    def install_signal_handlers(self) -> None:
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(
                signum,
                lambda s, frame: self.request_stop(signal.Signals(s).name),
            )

    def serve_forever(self, poll: float = 0.05) -> None:
        """Run until a stop is requested, then drain and shut down."""
        http_thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="serve-http",
            daemon=True,
        )
        http_thread.start()
        try:
            while not self._stop_event.is_set():
                self.supervisor.tick()
                self._stop_event.wait(poll)
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Stop accepting, finish leased work, flush, tear down."""
        self.stopping = True
        drained = self.supervisor.drain(timeout=self.drain_timeout)
        self.server.shutdown()
        self.server.server_close()
        try:
            endpoint_path(self.serve_dir).unlink()
        except OSError:
            pass
        self.queue.close()
        if self.verbose:
            print(
                f"serve: stopped ({self.stop_reason or 'shutdown'}), "
                f"drained={drained}"
            )

    # ------------------------------------------------------------- service
    def submit(self, spec_dict: dict, *, max_retries: "int | None" = None) -> dict:
        """Resolve one submission to ``{job_key, state, created, ...}``.

        Raises ``OverflowError`` on queue-full (the handler maps it to 429)
        and lets spec errors propagate (mapped to 400).
        """
        spec = spec_from_dict(spec_dict)
        key = job_key(spec)
        existing = self.queue.get(key)
        if existing is not None:
            return {
                "job_key": key,
                "state": existing["state"],
                "created": False,
                "attempts": existing["attempts"],
            }
        # A submit that is already a store hit never queues: insert the row
        # terminally DONE so poll/fetch serve it like any finished job.
        if self.store is not None and self.store.load(key) is not None:
            view, created = self.queue.submit(
                key,
                json.dumps(spec_to_dict(spec), sort_keys=True),
                max_retries=self.max_retries if max_retries is None else max_retries,
                state="DONE",
            )
            return {
                "job_key": key,
                "state": view["state"],
                "created": created,
                "served_from_store": True,
            }
        if self.queue.depth() >= self.max_depth:
            raise OverflowError("queue full")
        view, created = self.queue.submit(
            key,
            json.dumps(spec_to_dict(spec), sort_keys=True),
            max_retries=self.max_retries if max_retries is None else max_retries,
        )
        return {"job_key": key, "state": view["state"], "created": created}

    def status_view(self) -> dict:
        return {
            "pid": os.getpid(),
            "version": repro.__version__,
            "uptime_s": round(time.time() - self.started_wall, 3),
            "draining": self.stopping,
            "queue": self.queue.counts(),
            "depth": self.queue.depth(),
            "max_depth": self.max_depth,
            "recovered_on_start": self.recovered,
            "store_telemetry": dict(STORE_TELEMETRY),
            **self.supervisor.status(),
        }
