"""Serve worker: one process, one job at a time, fully expendable.

A worker is a child process running :func:`worker_main` in a loop:
receive an assignment over its pipe, execute it through the shared job
pipeline (:func:`repro.jobs.execute` — store hit → trace replay → direct
run), and report a verdict.  Everything durable lives *outside* the
worker: the job row in the sqlite queue (owned by the supervisor), the
result in the sealed :class:`~repro.jobs.store.ResultStore`, and the
progress heartbeat file the engine publishes while it runs.  A worker can
therefore be SIGKILLed at any instant and the system loses nothing but
the in-flight attempt — the supervisor sees the death, requeues the job
with backoff, and replaces the process.

Verdict protocol (child → parent over the pipe)::

    ("ready",)                        after startup
    ("done",  key)                    execute() returned; record is stored
    ("error", key, traceback_text)    the job itself raised (no retry)

A worker that dies sends nothing — the absence *is* the signal; the
supervisor reads ``Process.is_alive()`` / the pipe EOF, not a message.

**Deterministic crash injection** (the chaos ladder's worker-kill rung):
``REPRO_SERVE_CRASH_KEY=<job key or prefix>`` makes the worker ``os._exit``
the instant it receives a matching assignment — indistinguishable from a
SIGKILL mid-job.  With ``REPRO_SERVE_CRASH_ONCE=<marker path>`` the crash
fires only until the marker file exists (create-then-die), so the retried
attempt survives; without it the job crashes every attempt and must
exhaust its budget into DEAD.  Inert unless the variables are set.
"""

from __future__ import annotations

import os
import signal
import traceback
from dataclasses import replace

__all__ = ["execute_assignment", "worker_entry", "worker_main"]


def worker_entry(conn, worker_id: int, stderr_path: str) -> None:
    """Process target: redirect fd 2 to *stderr_path*, then run the loop.

    The dup2 happens at the fd level so even a hard interpreter death
    (abort, fatal error banner) leaves its last words in the per-worker
    stderr file — that text is what the supervisor attaches to a requeued
    or dead-lettered job.
    """
    fd = os.open(stderr_path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
    os.dup2(fd, 2)
    os.close(fd)
    worker_main(conn, worker_id)


def _maybe_crash(key: str) -> None:
    """Die like a SIGKILLed worker if this key is marked for crashing."""
    target = os.environ.get("REPRO_SERVE_CRASH_KEY")
    if not target or not key.startswith(target):
        return
    marker = os.environ.get("REPRO_SERVE_CRASH_ONCE")
    if marker:
        if os.path.exists(marker):
            return  # already crashed once; behave this time
        open(marker, "w").close()
    os._exit(13)


def execute_assignment(spec_dict: dict, heartbeat_path: "str | None"):
    """Run one assignment through the job pipeline, heartbeating progress.

    Split out of the pipe loop so tests (and the chaos script) can run the
    exact worker-side execution path in-process.
    """
    from repro.core.config import SimConfig
    from repro.jobs import ResultStore, execute
    from repro.jobs.spec import spec_from_dict

    spec = spec_from_dict(spec_dict)
    if heartbeat_path is not None:
        sim = spec.sim_config() if spec.sim is not None else SimConfig()
        spec = replace(
            spec, sim=replace(sim, heartbeat_path=heartbeat_path)
        )
    return execute(spec, store=ResultStore.default())


def worker_main(conn, worker_id: int) -> None:
    """The worker process body (target of ``multiprocessing.Process``).

    Runs until the pipe closes or an ``("exit",)`` message arrives.  Every
    exception a job raises is caught, formatted, and reported — one
    poisoned job must never take the worker (let alone the pool) down; only
    genuine process death (crash injection, OOM, kill) ends the loop early.
    """
    # The daemon's Ctrl-C must not fan out to workers mid-drain: the
    # supervisor owns worker shutdown, so the worker ignores SIGINT and
    # keeps SIGTERM default (the supervisor kills on cancel/hang).
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    conn.send(("ready",))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return  # supervisor went away
        if msg[0] == "exit":
            return
        _, key, spec_dict, heartbeat_path = msg
        _maybe_crash(key)
        try:
            execute_assignment(spec_dict, heartbeat_path)
        except BaseException:
            try:
                conn.send(("error", key, traceback.format_exc()))
            except (BrokenPipeError, OSError):
                return
            continue
        try:
            conn.send(("done", key))
        except (BrokenPipeError, OSError):
            return
