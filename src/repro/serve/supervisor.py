"""Supervised worker pool: leases, heartbeats, kills, and replacements.

The supervisor owns every queue transition after submission.  Workers
(:mod:`repro.serve.worker`) never touch sqlite — they execute and report —
so there is exactly one writer process and the failure analysis stays
tractable: whatever happens to a worker, the supervisor's next ``tick()``
observes it and moves the job row accordingly.

Failure domains handled per tick, in order:

1. **Lease expiry** (safety net): no lease outlives its TTL even if the
   supervisor loses track of a worker.  Leases of live, tracked workers
   are renewed every tick, so expiry only fires for genuinely lost ones.
2. **Worker verdicts**: ``done`` → ``complete``; ``error`` (the job
   raised) → ``fail`` — deterministic job errors are never retried,
   mirroring the sweep runner's discipline.
3. **Worker death** (SIGKILL, OOM, crash injection): requeue with a
   per-job :class:`~repro._util.Backoff` delay and one attempt charged;
   the stderr tail the worker left behind rides along as the error text.
   The process is replaced immediately — one poisoned job costs one
   worker incarnation, never the pool.
4. **Hangs and timeouts**: a busy worker whose heartbeat progress marker
   stops changing for ``hang_timeout`` seconds — or whose job exceeds the
   hard ``job_timeout`` wall-clock cap — is SIGKILLed and handled as a
   death.  Progress is the engine's own marker (global time, committed,
   Σ local clocks), so "slow but advancing" is never killed by the hang
   rule.
5. **Cancellations**: a flagged running job gets its worker killed and
   the row failed as ``cancelled``; a flagged job caught between workers
   is failed at its next lease.
6. **Assignment**: idle workers lease due QUEUED jobs (FIFO, backoff
   respected) and start executing.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from pathlib import Path

from repro._util import Backoff, sha256_hex
from repro.serve.heartbeat import read_heartbeat
from repro.serve.queue import JobQueue, QueueError
from repro.serve.worker import worker_entry

__all__ = ["Supervisor", "WorkerHandle"]

#: How much of a dead worker's stderr tail rides into the job's error text.
_STDERR_TAIL = 2000


class WorkerHandle:
    """One worker process plus everything the supervisor knows about it."""

    def __init__(self, index: int, ctx, workers_dir: Path) -> None:
        self.index = index
        self.name = f"w{index}"
        self.stderr_path = workers_dir / f"{self.name}.stderr"
        self.conn, child_conn = ctx.Pipe()
        # Truncate the stderr capture per incarnation: its content should
        # describe *this* process's death, not an ancestor's.
        self.stderr_path.write_text("")
        self.proc = ctx.Process(
            target=worker_entry,
            args=(child_conn, index, str(self.stderr_path)),
            name=f"repro-serve-{self.name}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        # Current assignment (None when idle).
        self.key: str | None = None
        self.lease_id: str | None = None
        self.heartbeat_path: str | None = None
        self.assigned_wall: float = 0.0
        self.last_renew: float = 0.0
        self.last_progress: list | None = None
        self.last_change: float = 0.0

    @property
    def busy(self) -> bool:
        return self.key is not None

    def stderr_tail(self) -> str:
        try:
            text = self.stderr_path.read_text(errors="replace")
        except OSError:
            return ""
        return text[-_STDERR_TAIL:]

    def kill(self) -> None:
        if self.proc.is_alive():
            try:
                os.kill(self.proc.pid, signal.SIGKILL)
            except (OSError, TypeError):
                pass
        self.proc.join(timeout=10.0)

    def view(self) -> dict:
        """The status-API rendering of this worker."""
        return {
            "name": self.name,
            "pid": self.proc.pid,
            "alive": self.proc.is_alive(),
            "busy": self.busy,
            "job_key": self.key,
            "running_s": round(time.time() - self.assigned_wall, 3)
            if self.busy
            else None,
            "progress": self.last_progress,
        }


class Supervisor:
    """Drive *workers* processes against a :class:`JobQueue`."""

    def __init__(
        self,
        queue: JobQueue,
        serve_dir: "Path | str",
        *,
        workers: int = 2,
        lease_ttl: float = 30.0,
        job_timeout: float = 0.0,
        hang_timeout: float = 60.0,
        backoff_base: float = 0.25,
        backoff_cap: float = 8.0,
        seed: "int | None" = None,
    ) -> None:
        self.queue = queue
        self.serve_dir = Path(serve_dir)
        self.workers_dir = self.serve_dir / "workers"
        self.heartbeats_dir = self.serve_dir / "heartbeats"
        self.workers_dir.mkdir(parents=True, exist_ok=True)
        self.heartbeats_dir.mkdir(parents=True, exist_ok=True)
        self.lease_ttl = float(lease_ttl)
        self.job_timeout = float(job_timeout)
        self.hang_timeout = float(hang_timeout)
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._seed = seed
        self._backoffs: dict[str, Backoff] = {}
        # Fork keeps worker startup at milliseconds (the loaded interpreter
        # travels); platforms without it fall back to spawn.
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self.handles = [
            WorkerHandle(i, self._ctx, self.workers_dir) for i in range(workers)
        ]
        self.draining = False
        #: Counters surfaced by /api/status.
        self.telemetry = {
            "completed": 0,
            "failed": 0,
            "requeued": 0,
            "dead": 0,
            "workers_replaced": 0,
            "hangs_killed": 0,
            "timeouts_killed": 0,
            "cancelled": 0,
        }

    # ------------------------------------------------------------ helpers
    def _backoff(self, key: str) -> Backoff:
        if key not in self._backoffs:
            seed = None
            if self._seed is not None:
                # Deterministic per-job jitter stream under a seeded pool.
                seed = int(sha256_hex(f"{self._seed}:{key}")[:8], 16)
            self._backoffs[key] = Backoff(
                base=self._backoff_base, cap=self._backoff_cap, seed=seed
            )
        return self._backoffs[key]

    def _heartbeat_path(self, key: str) -> str:
        return str(self.heartbeats_dir / f"{key}.json")

    def _clear_assignment(self, handle: WorkerHandle) -> None:
        if handle.heartbeat_path:
            try:
                os.unlink(handle.heartbeat_path)
            except OSError:
                pass
        handle.key = None
        handle.lease_id = None
        handle.heartbeat_path = None
        handle.last_progress = None

    def _safe(self, op, *args, **kwargs) -> "str | None":
        """Run a queue transition, tolerating fencing losses.

        A verdict can lose its race (the lease expired and was re-issued,
        the job was cancelled between ticks): the queue's fencing raises
        :class:`QueueError`, and the right response is to drop the stale
        verdict — the current leaseholder owns the truth now.
        """
        try:
            return op(*args, **kwargs)
        except QueueError:
            return None

    def _replace(self, handle: WorkerHandle) -> WorkerHandle:
        handle.kill()
        try:
            handle.conn.close()
        except OSError:
            pass
        fresh = WorkerHandle(handle.index, self._ctx, self.workers_dir)
        self.handles[handle.index] = fresh
        self.telemetry["workers_replaced"] += 1
        return fresh

    def _worker_lost(self, handle: WorkerHandle, reason: str) -> None:
        """A busy worker died / was killed: requeue its job and respawn."""
        key, lease_id = handle.key, handle.lease_id
        assert key is not None and lease_id is not None
        tail = handle.stderr_tail()
        error = reason + (f"\n--- worker stderr ---\n{tail}" if tail.strip() else "")
        delay = self._backoff(key).next()
        state = self._safe(
            self.queue.requeue, key, lease_id, error, delay=delay
        )
        if state == "DEAD":
            self.telemetry["dead"] += 1
        elif state == "QUEUED":
            self.telemetry["requeued"] += 1
        self._clear_assignment(handle)
        self._replace(handle)

    # --------------------------------------------------------------- tick
    def tick(self) -> None:
        """One supervision pass (the daemon calls this a few times/second)."""
        now = time.time()
        self.queue.expire(now=now)
        self._harvest(now)
        self._check_liveness(now)
        self._check_cancels()
        if not self.draining:
            self._assign(now)

    def _harvest(self, now: float) -> None:
        """Drain worker verdict messages."""
        for handle in list(self.handles):
            while True:
                try:
                    if not handle.conn.poll():
                        break
                    msg = handle.conn.recv()
                except (EOFError, OSError):
                    break  # death handled by _check_liveness
                if msg[0] == "ready":
                    continue
                verdict, key = msg[0], msg[1]
                if key != handle.key:
                    continue  # verdict for a superseded assignment
                if verdict == "done":
                    self._safe(self.queue.complete, key, handle.lease_id, now=now)
                    self.telemetry["completed"] += 1
                    self._backoffs.pop(key, None)
                elif verdict == "error":
                    self._safe(
                        self.queue.fail, key, handle.lease_id, msg[2], now=now
                    )
                    self.telemetry["failed"] += 1
                self._clear_assignment(handle)

    def _check_liveness(self, now: float) -> None:
        """Deaths, hangs, hard timeouts; renew leases of healthy workers."""
        for handle in list(self.handles):
            if not handle.proc.is_alive():
                if handle.busy:
                    self._worker_lost(
                        handle,
                        f"worker {handle.name} died "
                        f"(exitcode {handle.proc.exitcode})",
                    )
                else:
                    self._replace(handle)
                continue
            if not handle.busy:
                continue
            # Hard wall-clock cap, independent of progress.
            if self.job_timeout and now - handle.assigned_wall > self.job_timeout:
                self.telemetry["timeouts_killed"] += 1
                handle.kill()
                self._worker_lost(
                    handle,
                    f"job exceeded wall-clock timeout "
                    f"({self.job_timeout:.1f}s)",
                )
                continue
            # Progress-based hang rule: only a *stalled* marker kills.
            beat = read_heartbeat(handle.heartbeat_path)
            progress = beat.get("progress") if beat else None
            if progress and progress != handle.last_progress:
                handle.last_progress = progress
                handle.last_change = now
            if now - handle.last_change > self.hang_timeout:
                self.telemetry["hangs_killed"] += 1
                handle.kill()
                self._worker_lost(
                    handle,
                    f"no simulation progress for {self.hang_timeout:.1f}s "
                    f"(last marker {handle.last_progress})",
                )
                continue
            # Healthy (alive + tracked): keep the lease comfortably ahead.
            if now - handle.last_renew > self.lease_ttl / 4:
                self._safe(
                    self.queue.renew,
                    handle.key,
                    handle.lease_id,
                    ttl=self.lease_ttl,
                    now=now,
                )
                handle.last_renew = now

    def _check_cancels(self) -> None:
        for job in self.queue.cancel_requests():
            handle = next(
                (h for h in self.handles if h.key == job["job_key"]), None
            )
            if handle is None:
                continue  # between workers; caught at its next lease
            handle.kill()
            self._safe(
                self.queue.fail, handle.key, handle.lease_id, "cancelled"
            )
            self.telemetry["cancelled"] += 1
            self._clear_assignment(handle)
            self._replace(handle)

    def _assign(self, now: float) -> None:
        for handle in self.handles:
            if handle.busy or not handle.proc.is_alive():
                continue
            job = self.queue.lease(handle.name, ttl=self.lease_ttl, now=now)
            if job is None:
                return  # queue drained (or everything backing off)
            key, lease_id = job["job_key"], job["lease_id"]
            if job.get("cancel_requested"):
                # Cancelled while queued behind a backoff: fail at lease
                # time instead of burning a worker on it.
                self._safe(self.queue.fail, key, lease_id, "cancelled")
                self.telemetry["cancelled"] += 1
                continue
            hb_path = self._heartbeat_path(key)
            try:
                handle.conn.send(("job", key, job["spec"], hb_path))
            except (BrokenPipeError, OSError):
                # Worker died between liveness check and send: put the
                # lease straight back (no attempt charged — it never ran).
                self._safe(
                    self.queue.requeue,
                    key,
                    lease_id,
                    "worker vanished before assignment",
                    charge=False,
                    now=now,
                )
                continue
            self._safe(self.queue.start, key, lease_id, now=now)
            handle.key = key
            handle.lease_id = lease_id
            handle.heartbeat_path = hb_path
            handle.assigned_wall = now
            handle.last_renew = now
            handle.last_progress = None
            handle.last_change = now

    # ------------------------------------------------------------ shutdown
    def busy_count(self) -> int:
        return sum(1 for h in self.handles if h.busy)

    def drain(self, timeout: float = 60.0, poll: float = 0.05) -> bool:
        """Graceful shutdown: stop assigning, finish leased work, stop.

        Returns True when every in-flight job finished inside *timeout*;
        on False the stragglers stay LEASED/RUNNING in the queue and the
        next daemon incarnation's ``recover()`` re-runs them — graceful
        and crash shutdown converge on the same durable state.
        """
        self.draining = True
        deadline = time.time() + timeout
        while self.busy_count() and time.time() < deadline:
            self.tick()
            time.sleep(poll)
        finished = self.busy_count() == 0
        self.stop()
        return finished

    def stop(self) -> None:
        """Hard-stop every worker (drained or not)."""
        for handle in self.handles:
            try:
                handle.conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
        for handle in self.handles:
            handle.proc.join(timeout=2.0)
            if handle.proc.is_alive():
                handle.kill()
            try:
                handle.conn.close()
            except OSError:
                pass

    def status(self) -> dict:
        return {
            "workers": [h.view() for h in self.handles],
            "draining": self.draining,
            "telemetry": dict(self.telemetry),
        }

