"""Simulation-as-a-service: the fault-tolerant serving half of the job
layer (DESIGN.md §13).

``repro serve`` runs a :class:`~repro.serve.daemon.ServeDaemon` — a durable
sqlite job queue (:mod:`repro.serve.queue`), a supervised worker pool
(:mod:`repro.serve.supervisor` + :mod:`repro.serve.worker`), and a local
HTTP API (:mod:`repro.serve.client`) — multiplexing many clients onto the
content-addressed ``execute()`` pipeline.  Engineered around failure:
workers are SIGKILL-safe (lease expiry + bounded retries + dead-letter),
the daemon resumes orphaned jobs on restart, and a full queue pushes back
explicitly instead of dropping work.

Import surface is lazy: pulling a name here imports only the module that
defines it, so ``repro.core`` can reach :mod:`repro.serve.heartbeat`
without dragging the HTTP stack into every engine run.
"""

from __future__ import annotations

__all__ = [
    "HeartbeatWriter",
    "JobQueue",
    "QueueError",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "ServeRejected",
    "ServeUnavailable",
    "Supervisor",
    "read_heartbeat",
]

_EXPORTS = {
    "HeartbeatWriter": ("repro.serve.heartbeat", "HeartbeatWriter"),
    "read_heartbeat": ("repro.serve.heartbeat", "read_heartbeat"),
    "JobQueue": ("repro.serve.queue", "JobQueue"),
    "QueueError": ("repro.serve.queue", "QueueError"),
    "ServeDaemon": ("repro.serve.daemon", "ServeDaemon"),
    "Supervisor": ("repro.serve.supervisor", "Supervisor"),
    "ServeClient": ("repro.serve.client", "ServeClient"),
    "ServeError": ("repro.serve.client", "ServeError"),
    "ServeRejected": ("repro.serve.client", "ServeRejected"),
    "ServeUnavailable": ("repro.serve.client", "ServeUnavailable"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
