"""Command-line interface: ``slacksim`` (or ``python -m repro``).

Subcommands::

    slacksim run --workload fft --scheme s9 --host-cores 8
    slacksim run --workload fft --stats-out run.stats.json --stats-interval 5000
    slacksim run --workload fft --capture-trace fft.trace
    slacksim run --workload fft --scheme s9 --replay-trace fft.trace
    slacksim compile program.sl [--run]
    slacksim figure2 | figure8 | table2 | table3
    slacksim sweep figure8 --jobs 4 --out figure8.json
    slacksim sweep figure8 --trace --jobs 4
    slacksim sweep --workload fft
    slacksim bench --workload fft --profile
    slacksim stats show run.stats.json
    slacksim stats diff a.stats.json b.stats.json
    slacksim trace info fft.trace
    slacksim cache ls | info <key> | verify | gc | clear
    slacksim serve --workers 4
    slacksim submit --workload fft --scheme s9 --wait
    slacksim jobs ls | info <key> | retry <key> | cancel <key> | status | drain
    slacksim schemes

``run``, ``sweep``, ``bench`` and the figure/table commands all resolve
through the content-addressed job layer (DESIGN.md §12): a request whose
sealed record already sits in ``.repro_cache/results/`` is served from the
store without simulating, byte-identically to a fresh run.
"""

from __future__ import annotations

import argparse
import sys

from repro._util import atomic_write_text
from repro.core import run_simulation
from repro.core.config import HostConfig, SimConfig, TargetConfig

__all__ = ["main"]


def _cmd_run(args: argparse.Namespace) -> int:
    if args.restore:
        # Resume a checkpointed run.  The engine (config, program image,
        # clocks, queues) travels inside the checkpoint; the original
        # workload oracle does not, so output verification is skipped here —
        # restore *equivalence* is pinned by tests/core/test_checkpoint.py.
        from repro.core.checkpoint import load_checkpoint

        engine = load_checkpoint(args.restore)
        result = engine.run()
        print(result.summary())
        print(f"resumed from {args.restore}: completed={result.completed}")
        if args.stats_out:
            text = result.dump_csv() if args.stats_format == "csv" else result.dump_json()
            atomic_write_text(args.stats_out, text)
            print(f"stats ({args.stats_format}) -> {args.stats_out}")
        return 0

    if args.capture_trace and args.replay_trace:
        print("--capture-trace and --replay-trace are mutually exclusive", file=sys.stderr)
        return 2
    if args.capture_trace or args.faults or args.checkpoint or args.checkpoint_interval:
        # Side-effecting runs (a capture file, a checkpoint stream) and
        # fault-injected runs stay on the direct engine path: their point is
        # the side effect / perturbation, not a memoisable result.
        return _run_direct(args)

    from repro.jobs import JobSpec, ResultStore, execute, record_summary
    from repro.stats.registry import dump_to_csv

    spec = JobSpec.build(
        args.workload,
        args.scale,
        scheme=args.scheme,
        seed=args.seed,
        host_cores=args.host_cores,
        core_model=args.core_model,
        fastforward=args.fastforward,
        scheduling="static" if args.static_schedule else "dynamic",
        stats_interval=args.stats_interval,
        host_timeout=args.host_timeout,
        backend=args.backend,
        mem_domains=args.mem_domains,
    )
    try:
        # An explicit --replay-trace bypasses the store read (refresh): the
        # user asked to exercise replay, so replay must actually run.
        outcome = execute(
            spec,
            store=ResultStore.default(),
            trace=args.replay_trace if args.replay_trace else "auto",
            refresh=bool(args.replay_trace),
        )
    except AssertionError as exc:
        print("OUTPUT MISMATCH:")
        print(f"  {exc}")
        return 1
    record = outcome.record
    print(record_summary(record))
    if outcome.hit:
        print(f"served from result store ({outcome.key[:16]}…)")
    if args.replay_trace:
        print(f"replayed from {args.replay_trace} (functional cores not re-executed)")
    if args.stats_out:
        text = (
            dump_to_csv(record["stats"])
            if args.stats_format == "csv"
            else record["stats_dump"]
        )
        atomic_write_text(args.stats_out, text)
        print(f"stats ({args.stats_format}) -> {args.stats_out}")
    print(
        "output verified against the numpy oracle "
        f"({record['metrics']['output_len']} values)"
    )
    if args.verbose:
        for core in record["cores"]:
            ipc = core["committed"] / core["cycles"] if core["cycles"] else 0.0
            print(
                f"  core {core['core']}: {core['committed']} instr / {core['cycles']} cyc "
                f"(IPC {ipc:.2f}), L1 misses {core['l1_misses']}/{core['l1_accesses']}"
            )
    return 0


def _run_direct(args: argparse.Namespace) -> int:
    """The non-job-addressable ``run`` path: captures, checkpoints, faults."""
    from repro.workloads import make_workload

    trace_mode = "off"
    trace_path = None
    trace_source = None
    if args.capture_trace:
        import json

        trace_mode, trace_path = "capture", args.capture_trace
        trace_source = json.dumps({"workload": args.workload, "scale": args.scale})

    workload = make_workload(args.workload, scale=args.scale)
    result = run_simulation(
        workload.program,
        target=TargetConfig(core_model=args.core_model),
        host=HostConfig(num_cores=args.host_cores),
        sim=SimConfig(
            scheme=args.scheme,
            seed=args.seed,
            scheduling="static" if args.static_schedule else "dynamic",
            fastforward=args.fastforward,
            stats_interval=args.stats_interval,
            fault_plan=args.faults,
            host_timeout=args.host_timeout,
            checkpoint_interval=args.checkpoint_interval,
            checkpoint_path=args.checkpoint,
            backend=args.backend,
            mem_domains=args.mem_domains,
            trace_mode=trace_mode,
            trace_path=trace_path,
            trace_source=trace_source,
        ),
    )
    print(result.summary())
    if args.capture_trace:
        print(f"trace captured -> {args.capture_trace}")
    if args.faults:
        print(f"faults injected: {result.stats.get('faults.injected', 0)} "
              f"(plan: {args.faults})")
    if args.stats_out:
        text = result.dump_csv() if args.stats_format == "csv" else result.dump_json()
        atomic_write_text(args.stats_out, text)
        print(f"stats ({args.stats_format}) -> {args.stats_out}")
    problems = workload.mismatches(result.output)
    if problems:
        print("OUTPUT MISMATCH:")
        for p in problems:
            print("  " + p)
        return 1
    print(f"output verified against the numpy oracle ({len(result.output)} values)")
    if args.verbose:
        for core in result.cores:
            print(
                f"  core {core.core_id}: {core.committed} instr / {core.cycles} cyc "
                f"(IPC {core.ipc:.2f}), L1 misses {core.l1_misses}/{core.l1_accesses}"
            )
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.lang import compile_source

    source = open(args.file).read()
    compiled = compile_source(source, name=args.file)
    if args.asm:
        print(compiled.asm)
    else:
        print(compiled.program.listing())
    if args.run:
        from repro.cpu.interp import run_functional

        result = run_functional(compiled.program)
        print(f"# functional run: exit={result.exit_code}, {result.instructions} instructions")
        for value in result.output:
            print(value)
    return 0


def _cmd_experiment(name: str):
    def run(args: argparse.Namespace) -> int:
        import os

        if args.scale:
            os.environ["REPRO_SCALE"] = args.scale
        if name == "figure2":
            from repro.experiments.figure2 import main as entry
        elif name == "figure8":
            from repro.experiments.figure8 import main as entry
        elif name == "table2":
            from repro.experiments.table2 import main as entry
        else:
            from repro.experiments.table3 import main as entry
        entry()
        return 0

    return run


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.experiment is None:
        # Legacy form: render the single-workload slack sweep (ablation A1).
        from repro.experiments.ablations import render_sweep, run_slack_sweep
        from repro.experiments.common import Runner

        runner = Runner(scale=args.scale or "tiny", seed=args.seed)
        points = run_slack_sweep(args.workload, runner=runner)
        print(render_sweep(f"slack sweep ({args.workload})", points))
        return 0

    from repro.experiments.parallel import run_sweep, sweep_to_json

    if args.resume and not args.manifest_dir:
        print("sweep --resume requires --manifest-dir", file=sys.stderr)
        return 2
    telemetry: dict = {}
    payload = run_sweep(
        args.experiment, jobs=args.jobs, scale=args.scale, base_seed=args.seed,
        manifest_dir=args.manifest_dir, resume=args.resume,
        max_retries=args.max_retries, trace=args.trace, telemetry=telemetry,
    )
    text = sweep_to_json(payload)
    # Telemetry goes to stderr: how points were served (store hit vs run vs
    # manifest resume) must never leak into the byte-stable sweep document.
    print(
        f"sweep {args.experiment}: store_hits={telemetry.get('store_hits', 0)} "
        f"store_misses={telemetry.get('store_misses', 0)} "
        f"manifest_resumed={telemetry.get('manifest_resumed', 0)}",
        file=sys.stderr,
    )
    if args.out:
        atomic_write_text(args.out, text)
        print(f"{args.experiment}: {len(payload['points'])} points -> {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.profile:
        import cProfile
        import pstats

        from repro.cpu.interp import run_functional
        from repro.workloads import make_workload

        program = make_workload(args.workload, scale=args.scale, nthreads=1).program
        profiler = cProfile.Profile()
        profiler.enable()
        result = run_functional(program, dispatch=args.dispatch)
        profiler.disable()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
    else:
        from repro.jobs import JobSpec, ResultStore, execute_functional

        spec = JobSpec.build(
            args.workload, args.scale, mode="functional",
            workload_args={"nthreads": 1},
        )
        # Always runs (wall time is the product); the store provides the
        # cross-run determinism check, not a shortcut.
        outcome = execute_functional(
            spec, store=ResultStore.default(), dispatch=args.dispatch
        )
        result = outcome.result
        provenance = outcome.record["provenance"]
        print(
            f"{args.workload} ({args.scale}, {args.dispatch}): "
            f"{result.instructions} instructions in "
            f"{provenance['wall_time_s']:.3f}s = {provenance['kips']:.1f} KIPS"
        )
        for line in outcome.drift:
            print(f"warning: drift against stored record — {line}")
    if result.exit_code not in (0, None):
        print(f"warning: workload exited with code {result.exit_code}")
        return 1
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.stats.registry import diff_dumps, load_dump, load_dump_with_digest, render_dump

    if args.action == "show":
        stats = load_dump(args.files[0])
        print(render_dump(stats, title=f"stats: {args.files[0]}"))
        return 0
    # diff
    if len(args.files) != 2:
        print("stats diff needs exactly two dump files", file=sys.stderr)
        return 2
    (a, digest_a), (b, digest_b) = (load_dump_with_digest(f) for f in args.files)
    lines = diff_dumps(a, b)
    # The recorded digest is the behavioural fingerprint; the flat stats can
    # compare clean while the digests disagree (the digest canonicalises a
    # different line set than the dump renders).  A digest mismatch must
    # fail the diff even when no stat line differs.
    digest_mismatch = (
        digest_a is not None and digest_b is not None and digest_a != digest_b
    )
    if digest_mismatch:
        print(f"~ digest: {digest_a} -> {digest_b}")
    if not lines and not digest_mismatch:
        print(f"identical ({len(a)} stats)")
        return 0
    for line in lines:
        print(line)
    return 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.trace import TraceError, trace_info

    try:
        print(trace_info(args.file))
    except TraceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    from repro.jobs import ResultStore

    store = ResultStore.default()
    if store is None:
        print("result store disabled (REPRO_CACHE_DIR is empty)", file=sys.stderr)
        return 2

    if args.action == "ls":
        entries = store.entries()
        for key, record in entries:
            if record is None:
                print(f"{key[:16]}  INVALID")
                continue
            spec = record["spec"]
            wl = spec["workload"]
            what = f"{wl['name']}/{wl['scale']}"
            if spec["mode"] == "timing":
                what += (
                    f" {spec['sim']['scheme']} h{spec['host']['num_cores']}"
                    f" seed={spec['sim']['seed']}"
                )
            engine = record.get("provenance", {}).get("engine", "?")
            print(f"{key[:16]}  {spec['mode']:10s} {what}  [{engine}]")
        print(f"{len(entries)} record(s) in {store.root}")
        return 0

    if args.action == "info":
        if not args.key:
            print("cache info needs a job key (or unique prefix)", file=sys.stderr)
            return 2
        matches = [k for k in store.keys() if k.startswith(args.key)]
        if len(matches) != 1:
            print(
                f"key prefix {args.key!r} matches {len(matches)} record(s)",
                file=sys.stderr,
            )
            return 1
        record = store.load(matches[0])
        if record is None:
            print(f"record {matches[0]} is invalid (failed its seal)", file=sys.stderr)
            return 1
        # The verbatim stats document is bulky and reproducible from
        # "stats"; elide it from the human view.
        view = {k: v for k, v in record.items() if k != "stats_dump"}
        print(json.dumps(view, indent=2, sort_keys=True))
        return 0

    if args.action == "verify":
        report = store.verify()
        for key in report["corrupt"]:
            print(f"{key[:16]}  CORRUPT -> quarantined")
        for key in report["stale"]:
            print(f"{key[:16]}  stale format (plain miss)")
        print(
            f"checked {report['checked']} record(s): {len(report['ok'])} ok, "
            f"{len(report['stale'])} stale, {len(report['corrupt'])} corrupt; "
            f"{len(report['quarantined'])} quarantined file(s) on disk"
        )
        return 1 if report["corrupt"] else 0

    if args.action == "gc":
        from repro.lang.compiler import toolchain_fingerprint

        dropped = store.gc(
            toolchain=toolchain_fingerprint(), dry_run=args.dry_run
        )
        verb = "would drop" if args.dry_run else "dropped"
        for key in dropped:
            print(f"{verb} {key[:16]}")
        print(f"{verb} {len(dropped)} record(s) (invalid or stale toolchain)")
        return 0

    # clear
    removed = store.clear()
    print(f"removed {removed} record(s) from {store.root}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.daemon import ServeDaemon, endpoint_path

    daemon = ServeDaemon(
        serve_dir=args.serve_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_depth=args.max_depth,
        max_retries=args.max_retries,
        lease_ttl=args.lease_ttl,
        job_timeout=args.job_timeout,
        hang_timeout=args.hang_timeout,
        drain_timeout=args.drain_timeout,
        seed=args.seed,
        verbose=args.verbose,
    )
    daemon.install_signal_handlers()
    print(
        f"serve: http://{daemon.host}:{daemon.port} "
        f"({args.workers} worker(s), queue depth {args.max_depth}) — "
        f"endpoint published to {endpoint_path(daemon.serve_dir)}",
        flush=True,
    )
    if daemon.recovered:
        print(
            f"serve: recovered {len(daemon.recovered)} orphaned job(s) "
            "from the previous incarnation",
            flush=True,
        )
    daemon.serve_forever()
    return 0


def _submit_spec(args: argparse.Namespace) -> dict:
    """The submission wire payload for the common run knobs."""
    from repro.jobs import JobSpec
    from repro.jobs.spec import spec_to_dict

    return spec_to_dict(
        JobSpec.build(
            args.workload,
            args.scale,
            scheme=args.scheme,
            seed=args.seed,
            host_cores=args.host_cores,
            core_model=args.core_model,
            fastforward=args.fastforward,
        )
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.jobs import record_summary
    from repro.serve.client import ServeClient, ServeError, ServeRejected

    try:
        client = ServeClient(serve_dir=args.serve_dir)
        if not args.wait:
            outcome = client.submit(_submit_spec(args))
            suffix = " (attached)" if not outcome.get("created") else ""
            print(f"{outcome['job_key']}  {outcome['state']}{suffix}")
            return 0
        job = client.submit_and_wait(_submit_spec(args), timeout=args.timeout)
        if job["state"] == "DONE":
            print(record_summary(client.fetch(job["job_key"])))
            print(f"{job['job_key'][:16]}  DONE (attempts={job['attempts']})")
            return 0
        print(
            f"{job['job_key'][:16]}  {job['state']}: {job.get('error')}",
            file=sys.stderr,
        )
        return 1
    except ServeRejected as exc:
        print(f"rejected: {exc}", file=sys.stderr)
        return 1
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json

    from repro.serve.client import ServeClient, ServeError

    try:
        client = ServeClient(serve_dir=args.serve_dir)
        if args.action == "ls":
            jobs = client.jobs()
            for job in jobs:
                spec = job.get("spec") or {}
                what = f"{spec.get('workload')}/{spec.get('scale')} {spec.get('scheme')}"
                line = (
                    f"{job['job_key'][:16]}  {job['state']:7s} "
                    f"attempts={job['attempts']}  {what}"
                )
                if job.get("error"):
                    line += f"  [{job['error'].splitlines()[0][:60]}]"
                print(line)
            print(f"{len(jobs)} job(s)")
            return 0
        if args.action == "status":
            print(json.dumps(client.status(), indent=2, sort_keys=True))
            return 0
        if args.action == "drain":
            client.drain()
            print("drain requested")
            return 0
        if not args.key:
            print(f"jobs {args.action} needs a job key", file=sys.stderr)
            return 2
        if args.action == "info":
            print(json.dumps(client.poll(args.key), indent=2, sort_keys=True))
            return 0
        if args.action == "retry":
            job = client.retry(args.key)
            print(f"{job['job_key'][:16]}  {job['state']} (budget re-armed)")
            return 0
        # cancel
        outcome = client.cancel(args.key)
        print(f"{outcome['job_key'][:16]}  {outcome['state']}")
        return 0
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_schemes(args: argparse.Namespace) -> int:
    from repro.core.schemes import parse_scheme

    for spec in ("cc", "q10", "l10", "s9", "s9*", "s100", "su"):
        print(f"  {spec:5s} {parse_scheme(spec).describe()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="slacksim",
        description="SlackSim reproduction: slack-based parallel CMP simulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a registered workload")
    run.add_argument("--workload", default="fft", help="fft | lu | barnes | water")
    run.add_argument("--scheme", default="cc", help="cc | qN | lN | sN | sN* | su")
    run.add_argument("--host-cores", type=int, default=8)
    run.add_argument("--scale", default="tiny", help="tiny | small | paper")
    run.add_argument("--core-model", default="inorder", help="inorder | ooo")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--static-schedule", action="store_true",
                     help="plan barrier windows as bulk-synchronous supersteps "
                     "(digest-identical; falls back to the dynamic loop where "
                     "static scheduling cannot engage, e.g. non-barrier schemes)")
    run.add_argument("--fastforward", action="store_true")
    run.add_argument("--verbose", "-v", action="store_true")
    run.add_argument("--stats-out", help="write the run's stats registry dump here")
    run.add_argument("--stats-format", default="json", choices=("json", "csv"),
                     help="dump format for --stats-out (default json)")
    run.add_argument("--stats-interval", type=int, default=0,
                     help="snapshot the registry every N target cycles (0: off)")
    run.add_argument("--faults", default=None, metavar="PLAN",
                     help="fault-injection plan, e.g. "
                     "'overrun_window:core=2,at=500,extra=256;corrupt_dir:at=800'")
    run.add_argument("--host-timeout", type=float, default=120.0,
                     help="threaded-engine watchdog: abort after this many "
                     "seconds without global-time progress")
    run.add_argument("--checkpoint-interval", type=int, default=0, metavar="N",
                     help="checkpoint every N target cycles of global time "
                     "(0: off; requires --checkpoint)")
    run.add_argument("--checkpoint", metavar="PATH",
                     help="checkpoint file (atomically replaced each interval)")
    run.add_argument("--restore", metavar="PATH",
                     help="resume a checkpointed run (other run options are "
                     "taken from the checkpoint)")
    run.add_argument("--backend", default="sequential",
                     choices=("sequential", "threaded", "process"),
                     help="scheduling-domain backend for the memory side "
                     "(sequential: round-robin digest baseline; threaded: one "
                     "worker thread per domain; process: one worker process "
                     "per domain, trace workloads only)")
    run.add_argument("--mem-domains", type=int, default=1, metavar="N",
                     help="shard the L2 banks / directory regions / DRAM "
                     "channels into N independently-clocked scheduling "
                     "domains (1: monolithic memory side; N>1 floors every "
                     "window at the cross-domain exchange quantum)")
    run.add_argument("--capture-trace", metavar="PATH",
                     help="record the committed-op stream at the timing-core "
                     "-> memory seam into PATH (scheme-invariant; one capture "
                     "serves every later --replay-trace run)")
    run.add_argument("--replay-trace", metavar="PATH",
                     help="re-simulate a captured trace under this run's "
                     "scheme/window/memory config without re-executing the "
                     "functional cores (stats digest is byte-identical to "
                     "the equivalent direct run)")
    run.set_defaults(func=_cmd_run)

    comp = sub.add_parser("compile", help="compile a Slang source file")
    comp.add_argument("file")
    comp.add_argument("--asm", action="store_true", help="print generated assembly")
    comp.add_argument("--run", action="store_true", help="run functionally after compiling")
    comp.set_defaults(func=_cmd_compile)

    for name, help_text in (
        ("figure2", "scheme anatomy (paper Figure 2)"),
        ("figure8", "speedup grid (paper Figure 8)"),
        ("table2", "benchmarks + baseline KIPS (paper Table 2)"),
        ("table3", "slack errors (paper Table 3)"),
    ):
        exp = sub.add_parser(name, help=f"regenerate {help_text}")
        exp.add_argument("--scale", help="tiny | small | paper")
        exp.set_defaults(func=_cmd_experiment(name))

    sweep = sub.add_parser(
        "sweep", help="experiment sweep (figure8 | table3 | ablations), or the "
        "legacy single-workload slack sweep when no experiment is named"
    )
    sweep.add_argument(
        "experiment", nargs="?", default=None,
        help="figure8 | table3 | ablations (omit for the legacy slack sweep)",
    )
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the point grid (default 1: serial)")
    sweep.add_argument("--out", help="write the sweep JSON here instead of stdout")
    sweep.add_argument("--workload", default="fft")
    sweep.add_argument("--scale")
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--manifest-dir", metavar="DIR",
                       help="persist each finished point here (atomic writes); "
                       "enables --resume after a crash or kill")
    sweep.add_argument("--resume", action="store_true",
                       help="skip points already finished in --manifest-dir "
                       "(byte-identical output to an uninterrupted sweep)")
    sweep.add_argument("--max-retries", type=int, default=2,
                       help="extra attempts per point after a worker crash "
                       "(default 2; point errors never retry)")
    sweep.add_argument("--trace", action="store_true",
                       help="capture each distinct (workload, seed) execution "
                       "once into the .repro_cache/traces/ store, then replay "
                       "it for every scheme point (byte-identical sweep JSON)")
    sweep.set_defaults(func=_cmd_sweep)

    bench = sub.add_parser("bench", help="functional KIPS measurement of one workload")
    bench.add_argument("--workload", default="fft")
    bench.add_argument("--scale", default="tiny", help="tiny | small | paper")
    bench.add_argument("--dispatch", default="predecoded", help="predecoded | oracle")
    bench.add_argument("--profile", action="store_true",
                       help="run under cProfile and print the top 20 by cumulative time")
    bench.set_defaults(func=_cmd_bench)

    stats = sub.add_parser("stats", help="render or diff stats registry dumps")
    stats.add_argument("action", choices=("show", "diff"),
                       help="show one dump as a table, or diff two dumps")
    stats.add_argument("files", nargs="+", help="stats JSON dump file(s)")
    stats.set_defaults(func=_cmd_stats)

    trace = sub.add_parser("trace", help="inspect captured trace files")
    trace.add_argument("action", choices=("info",),
                       help="print a trace's header, op counts, source and sha256")
    trace.add_argument("file", help="trace file (written by run --capture-trace)")
    trace.set_defaults(func=_cmd_trace)

    cache = sub.add_parser(
        "cache", help="inspect / maintain the content-addressed result store"
    )
    cache.add_argument(
        "action", choices=("ls", "info", "verify", "gc", "clear"),
        help="ls: list records; info: print one record (by key prefix); "
        "verify: scan store integrity, quarantining corrupt entries; "
        "gc: drop invalid + stale-toolchain records; clear: drop everything",
    )
    cache.add_argument("key", nargs="?", help="job key (or unique prefix) for info")
    cache.add_argument("--dry-run", action="store_true",
                       help="gc: report what would be dropped without deleting")
    cache.set_defaults(func=_cmd_cache)

    serve = sub.add_parser(
        "serve",
        help="run the fault-tolerant simulation service (durable job queue "
        "+ supervised worker pool over the job layer)",
    )
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes in the pool (default 2)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (default 0: an ephemeral port, "
                       "published to the endpoint file)")
    serve.add_argument("--serve-dir", metavar="DIR",
                       help="durable state directory (queue, heartbeats, "
                       "endpoint); default <cache root>/serve")
    serve.add_argument("--max-depth", type=int, default=64,
                       help="open-job admission limit; submits beyond it get "
                       "429 + Retry-After (default 64)")
    serve.add_argument("--max-retries", type=int, default=2,
                       help="worker-crash retries per job before the "
                       "dead-letter state (default 2; job errors never retry)")
    serve.add_argument("--lease-ttl", type=float, default=30.0,
                       help="seconds a worker lease lives without renewal "
                       "(default 30; the crash-safety net across restarts)")
    serve.add_argument("--job-timeout", type=float, default=0.0,
                       help="hard wall-clock seconds per job attempt "
                       "(0: no cap, rely on the progress-based hang rule)")
    serve.add_argument("--hang-timeout", type=float, default=60.0,
                       help="kill a job whose progress heartbeat stalls this "
                       "long (default 60; slow-but-advancing jobs are safe)")
    serve.add_argument("--drain-timeout", type=float, default=60.0,
                       help="graceful-shutdown budget for in-flight jobs "
                       "(default 60; stragglers resume on restart)")
    serve.add_argument("--seed", type=int, default=None,
                       help="seed the retry-backoff jitter (deterministic "
                       "fault schedules for the chaos tests)")
    serve.add_argument("--verbose", "-v", action="store_true",
                       help="log HTTP requests and shutdown detail")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit one job to a running serve daemon"
    )
    submit.add_argument("--workload", default="fft")
    submit.add_argument("--scheme", default="cc")
    submit.add_argument("--host-cores", type=int, default=8)
    submit.add_argument("--scale", default="tiny")
    submit.add_argument("--core-model", default="inorder")
    submit.add_argument("--seed", type=int, default=1)
    submit.add_argument("--fastforward", action="store_true")
    submit.add_argument("--serve-dir", metavar="DIR",
                        help="the daemon's state directory "
                        "(default <cache root>/serve)")
    submit.add_argument("--wait", action="store_true",
                        help="poll to a terminal state and print the result "
                        "summary (honours 429 backpressure by waiting)")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="--wait deadline in seconds (default 300)")
    submit.set_defaults(func=_cmd_submit)

    jobsp = sub.add_parser(
        "jobs", help="inspect / operate a running serve daemon's job queue"
    )
    jobsp.add_argument(
        "action", choices=("ls", "info", "retry", "cancel", "status", "drain"),
        help="ls: all jobs; info: one job; retry: re-arm a FAILED/DEAD job; "
        "cancel: cancel queued/running work; status: daemon + pool view; "
        "drain: graceful shutdown",
    )
    jobsp.add_argument("key", nargs="?", help="job key for info/retry/cancel")
    jobsp.add_argument("--serve-dir", metavar="DIR",
                       help="the daemon's state directory "
                       "(default <cache root>/serve)")
    jobsp.set_defaults(func=_cmd_jobs)

    schemes = sub.add_parser("schemes", help="list supported slack schemes")
    schemes.set_defaults(func=_cmd_schemes)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe (e.g. ``stats show | head``).
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
