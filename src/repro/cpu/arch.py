"""Architectural state: target memory and per-hardware-context registers.

``TargetMemory`` is the single *functional* memory image shared by every
simulated core.  Timing (caches, coherence, interconnect) is modeled
elsewhere; values live here and are read/written at the simulation time the
owning core executes the access.  That "isochrone" semantics is exactly what
makes slack schemes perturb workload behaviour (paper §3.2.3): two cores with
different local times touch this one image in *simulation-time* order.

The backing store is an ``array('q')`` with a zero-copy ``float64`` view, so
integer and float accesses alias the same bytes (as on real hardware) without
per-access ``struct`` packing.
"""

from __future__ import annotations

from array import array

from repro._util import is_pow2, to_signed64

__all__ = ["TargetMemory", "ArchState", "TargetFault", "NUM_XREGS", "NUM_FREGS"]

NUM_XREGS = 32
NUM_FREGS = 32

#: ABI register indices used throughout the system layer.
REG_ZERO, REG_RA, REG_SP, REG_GP, REG_TP = 0, 1, 2, 3, 4
REG_A0 = 10
REG_A7 = 17
FREG_FA0 = 10


class TargetFault(RuntimeError):
    """A target-level memory fault (misaligned or out-of-bounds access)."""


class TargetMemory:
    """Byte-addressed functional memory with aligned 8-byte word accesses."""

    __slots__ = ("size", "nwords", "_words", "_floats")

    def __init__(self, size_bytes: int = 16 * 1024 * 1024) -> None:
        if size_bytes % 8 or not is_pow2(size_bytes):
            raise ValueError(f"memory size {size_bytes} must be a power-of-two multiple of 8")
        self.size = size_bytes
        self.nwords = size_bytes // 8
        self._words = array("q", bytes(size_bytes))
        self._floats = memoryview(self._words).cast("B").cast("d")

    # ------------------------------------------------------------- pickling
    def __getstate__(self):
        # The float view aliases _words' buffer and cannot be pickled;
        # __setstate__ re-derives it, so only the words array travels.
        return (self.size, self.nwords, self._words)

    def __setstate__(self, state) -> None:
        self.size, self.nwords, self._words = state
        self._floats = memoryview(self._words).cast("B").cast("d")

    def _index(self, addr: int) -> int:
        if addr & 7:
            raise TargetFault(f"misaligned word access at {addr:#x}")
        index = addr >> 3
        if not 0 <= index < self.nwords:
            raise TargetFault(f"out-of-bounds access at {addr:#x} (size {self.size:#x})")
        return index

    # ------------------------------------------------------------ integer
    def load_word(self, addr: int) -> int:
        """Load a signed 64-bit word."""
        return self._words[self._index(addr)]

    def store_word(self, addr: int, value: int) -> None:
        """Store a signed 64-bit word (wraps modulo 2**64)."""
        self._words[self._index(addr)] = to_signed64(value)

    # -------------------------------------------------------------- float
    def load_float(self, addr: int) -> float:
        """Load an IEEE-754 double from the same bytes as the word store."""
        return self._floats[self._index(addr)]

    def store_float(self, addr: int, value: float) -> None:
        self._floats[self._index(addr)] = value

    # --------------------------------------------------------------- bulk
    def write_words(self, addr: int, values: list[int]) -> None:
        """Bulk store of encoded words (used by the loader)."""
        base = self._index(addr)
        if base + len(values) > self.nwords:
            raise TargetFault(f"bulk write of {len(values)} words at {addr:#x} overflows memory")
        for i, v in enumerate(values):
            self._words[base + i] = to_signed64(v)

    def write_bytes(self, addr: int, blob: bytes) -> None:
        """Bulk store of raw bytes (8-byte aligned, used by the loader)."""
        if len(blob) % 8:
            raise TargetFault("write_bytes requires a multiple of 8 bytes")
        base = self._index(addr)
        view = memoryview(self._words).cast("B")
        view[base * 8 : base * 8 + len(blob)] = blob

    def snapshot_words(self, addr: int, count: int) -> list[int]:
        """Read *count* consecutive words (for oracles and tests)."""
        base = self._index(addr)
        return list(self._words[base : base + count])

    def snapshot_floats(self, addr: int, count: int) -> list[float]:
        base = self._index(addr)
        return list(self._floats[base : base + count])


class ArchState:
    """One hardware thread context: integer/float register files and a PC.

    ``x0`` is hardwired to zero: writers must go through :meth:`set_x`.
    """

    __slots__ = ("x", "f", "pc", "halted", "context_id")

    def __init__(self, context_id: int = 0, pc: int = 0) -> None:
        self.x: list[int] = [0] * NUM_XREGS
        self.f: list[float] = [0.0] * NUM_FREGS
        self.pc = pc
        self.halted = False
        self.context_id = context_id

    def set_x(self, reg: int, value: int) -> None:
        """Write integer register *reg*, preserving the x0 == 0 invariant."""
        if reg:
            self.x[reg] = to_signed64(value)

    def copy(self) -> "ArchState":
        """Deep copy (used by checkpointing tests)."""
        dup = ArchState(self.context_id, self.pc)
        dup.x = list(self.x)
        dup.f = list(self.f)
        dup.halted = self.halted
        return dup

    def digest(self) -> str:
        """Stable fingerprint of the full architectural state.

        Floats are rendered with ``float.hex`` so the digest is exact (no
        repr rounding); used by the dispatch-differential tests to assert
        bit-identical trajectories between execution layers.
        """
        import hashlib

        h = hashlib.sha256()
        h.update(repr(self.x).encode())
        h.update(repr([v.hex() for v in self.f]).encode())
        h.update(f"pc={self.pc} halted={int(self.halted)}".encode())
        return h.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ArchState ctx={self.context_id} pc={self.pc:#x} halted={self.halted}>"
